//! Criterion microbenchmark: the delta-tuple wire codec on the master's
//! hot path (encode on workers, alloc-free decode on the master).

use criterion::{criterion_group, criterion_main, Criterion};

use dim_cluster::wire;

fn bench_wire(c: &mut Criterion) {
    let deltas: Vec<(u32, u32)> = (0..10_000u32).map(|i| (i * 7 % 50_000, i % 13 + 1)).collect();
    let encoded = wire::encode_deltas(&deltas);

    let mut group = c.benchmark_group("wire_codec_10k_tuples");
    group.sample_size(50);
    group.bench_function("encode", |b| b.iter(|| wire::encode_deltas(&deltas)));
    group.bench_function("decode_alloc", |b| {
        b.iter(|| wire::decode_deltas(&encoded).unwrap())
    });
    group.bench_function("for_each_no_alloc", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            wire::for_each_delta(&encoded, |v, d| acc += (v + d) as u64).unwrap();
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
