//! Criterion microbenchmark: RR-set generation cost per sampler
//! (the ablation behind Fig. 7 / DESIGN.md §6.4).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use rand_pcg::Pcg64;

use dim_diffusion::rr::{AnySampler, RrSampler};
use dim_diffusion::visit::VisitTracker;
use dim_diffusion::DiffusionModel;
use dim_graph::DatasetProfile;

fn bench_samplers(c: &mut Criterion) {
    let graph = DatasetProfile::Facebook.generate(1.0, 42);
    let mut group = c.benchmark_group("rr_sampler");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));

    let cases: Vec<(&str, AnySampler)> = vec![
        (
            "ic_bfs",
            AnySampler::for_model(&graph, DiffusionModel::IndependentCascade),
        ),
        ("ic_subsim", AnySampler::subsim(&graph)),
        (
            "lt_walk",
            AnySampler::for_model(&graph, DiffusionModel::LinearThreshold),
        ),
    ];
    for (name, sampler) in cases {
        group.bench_function(format!("{name}/per_1000_sets"), |b| {
            b.iter_batched(
                || {
                    (
                        Pcg64::seed_from_u64(7),
                        Vec::new(),
                        VisitTracker::new(graph.num_nodes()),
                    )
                },
                |(mut rng, mut out, mut visited)| {
                    let mut work = 0u64;
                    for _ in 0..1000 {
                        work += sampler.sample(&mut rng, &mut out, &mut visited);
                    }
                    work
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
