//! Criterion microbenchmark: forward Monte-Carlo cascade simulation under
//! IC and LT (the seed-quality evaluation path).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use rand_pcg::Pcg64;

use dim_diffusion::forward::{simulate, SimScratch};
use dim_diffusion::DiffusionModel;
use dim_graph::DatasetProfile;

fn bench_forward(c: &mut Criterion) {
    let graph = DatasetProfile::Facebook.generate(1.0, 42);
    let seeds: Vec<u32> = (0..50).map(|i| i * 80).collect();

    let mut group = c.benchmark_group("forward_sim_k50");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    for model in [
        DiffusionModel::IndependentCascade,
        DiffusionModel::LinearThreshold,
    ] {
        group.bench_function(format!("{model}/per_100_cascades"), |b| {
            b.iter_batched(
                || (Pcg64::seed_from_u64(3), SimScratch::new(graph.num_nodes())),
                |(mut rng, mut scratch)| {
                    let mut total = 0usize;
                    for _ in 0..100 {
                        total += simulate(&graph, model, &seeds, &mut rng, &mut scratch);
                    }
                    total
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
