//! Criterion microbenchmark: one NewGreeDi / GreeDi run across machine
//! counts on the Fig. 10 workload.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use dim_cluster::{ExecMode, NetworkModel, SimCluster};
use dim_coverage::greedi::greedi;
use dim_coverage::{newgreedi, CoverageProblem};
use dim_graph::DatasetProfile;

fn bench_distributed_coverage(c: &mut Criterion) {
    let graph = DatasetProfile::Facebook.generate(1.0, 42);
    let problem = CoverageProblem::from_graph_neighborhoods(&graph);
    let k = 50;

    let mut group = c.benchmark_group("distributed_max_coverage");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(3));
    for machines in [1usize, 8, 64] {
        group.bench_function(format!("newgreedi/l{machines}"), |b| {
            b.iter_batched(
                || {
                    SimCluster::new(
                        problem.shard_elements(machines),
                        NetworkModel::zero(),
                        ExecMode::Sequential,
                    )
                },
                |mut cluster| newgreedi(&mut cluster, k),
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("greedi/l{machines}"), |b| {
            b.iter_batched(
                || {
                    SimCluster::new(
                        problem.shard_sets(machines, None),
                        NetworkModel::zero(),
                        ExecMode::Sequential,
                    )
                },
                |mut cluster| greedi(&mut cluster, k, k),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distributed_coverage);
criterion_main!(benches);
