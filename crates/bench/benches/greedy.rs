//! Criterion microbenchmark: bucket selector vs CELF vs naive greedy
//! (DESIGN.md §6.1 — the paper's vector-`D` lazy-update structure).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use dim_coverage::greedy::{bucket_greedy, celf_greedy, naive_greedy};
use dim_coverage::CoverageProblem;
use dim_graph::DatasetProfile;

fn bench_greedy(c: &mut Criterion) {
    let graph = DatasetProfile::Facebook.generate(1.0, 42);
    let problem = CoverageProblem::from_graph_neighborhoods(&graph);
    let k = 50;

    let mut group = c.benchmark_group("greedy_k50");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(3));
    type Algo = fn(&mut dim_coverage::CoverageShard, usize) -> dim_coverage::GreedyResult;
    let algos: Vec<(&str, Algo)> = vec![
        ("bucket", bucket_greedy),
        ("celf", celf_greedy),
        ("naive", naive_greedy),
    ];
    for (name, algo) in algos {
        group.bench_function(name, |b| {
            b.iter_batched(
                || problem.single_shard(),
                |mut shard| algo(&mut shard, k),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_greedy);
criterion_main!(benches);
