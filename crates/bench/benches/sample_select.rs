//! Criterion microbenchmark: the offline/online split's two hot paths
//! composed end to end — RR-sketch *sampling* (`dim sample`'s inner
//! loop, including shard build) and *selection/query* over the resulting
//! sketch (`dim serve`'s inner loop). The workloads live in
//! `dim_bench::sample_select`, shared with the `dim-benchrec` binary
//! that records the `BENCH_sample_select.json` trajectory point.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use dim_bench::sample_select::{
    batch_seed_sets, build_shards, select_top_k, spread_batch, time_stream_apply,
};
use dim_graph::DatasetProfile;

/// RR sets per benchmark sketch.
const THETA: usize = 20_000;
/// Machine shards the sketch is split across.
const SHARDS: usize = 4;

fn bench_sample(c: &mut Criterion) {
    let graph = DatasetProfile::Facebook.generate(1.0, 42);
    let mut group = c.benchmark_group("sample");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.bench_function(format!("build_{SHARDS}_shards_{THETA}_sets"), |b| {
        b.iter(|| build_shards(&graph, THETA, SHARDS, 7))
    });
    group.finish();
}

fn bench_select(c: &mut Criterion) {
    let graph = DatasetProfile::Facebook.generate(1.0, 42);
    let shards = build_shards(&graph, THETA, SHARDS, 7);
    let seed_sets = batch_seed_sets(graph.num_nodes(), 64, 4);
    let mut group = c.benchmark_group("select");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(5));

    // Greedy seed selection over the sharded sketch — the `dim serve`
    // top-k path (and, unconstrained, the selection half of `dim im`).
    group.bench_function("top50", |b| b.iter(|| select_top_k(&shards, 50)));

    // A pipelined spread-query batch through reused cursors — the
    // REQ_BATCH fast path.
    group.bench_function("spread_batch_64", |b| {
        b.iter_batched(
            || (),
            |()| spread_batch(&shards, &seed_sets),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_stream(c: &mut Criterion) {
    let graph = DatasetProfile::Facebook.generate(1.0, 42);
    let mut group = c.benchmark_group("stream");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));

    // Edge-stream repair: apply one 64-op edit batch to a machine holding
    // THETA resident RR sets and re-sample exactly the invalidated sets
    // (the `WorkerOp::ApplyDelta` hot path of `dim stream`). The worker
    // rebuild between measurements is excluded by `time_stream_apply`.
    group.bench_function(format!("apply_64_edits_{THETA}_sets"), |b| {
        b.iter_custom(|iters| {
            (0..iters)
                .map(|_| time_stream_apply(&graph, THETA, 64, 1, 7).0)
                .sum()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sample, bench_select, bench_stream);
criterion_main!(benches);
