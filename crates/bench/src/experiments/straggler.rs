//! Extension experiment: sensitivity to heterogeneous machines.
//!
//! Corollary 1 proves the RR workload balances across *equal* machines;
//! real clusters have stragglers. This experiment runs NewGreeDi on the
//! Fig. 10 workload with one machine at half speed and reports the
//! virtual-time inflation relative to a homogeneous cluster — quantifying
//! how much the paper's max-over-machines phase rule punishes skew.

use dim_cluster::{ClusterBackend, NetworkModel, SimCluster};
use dim_coverage::{newgreedi, CoverageProblem};
use serde::Serialize;

use crate::context::Context;
use crate::report;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    cores: usize,
    even_s: f64,
    straggler_s: f64,
    inflation: f64,
}

/// Runs the comparison on every selected dataset.
pub fn run(ctx: &Context) {
    println!("k = {}, one machine at 0.5x speed\n", ctx.k);
    report::header(&[
        ("dataset", 12),
        ("cores", 6),
        ("even(s)", 9),
        ("straggler(s)", 13),
        ("inflation", 10),
    ]);
    for &profile in &ctx.datasets {
        let graph = ctx.graph(profile);
        let problem = CoverageProblem::from_graph_neighborhoods(&graph);
        for &cores in &[4usize, 16, 64] {
            let mut even = SimCluster::new(
                problem.shard_elements(cores),
                NetworkModel::shared_memory(),
                ctx.exec_mode(),
            );
            let even_r = newgreedi(&mut even, ctx.k).expect("well-formed wire");
            let mut speeds = vec![1.0; cores];
            speeds[0] = 0.5;
            let mut skew = SimCluster::with_speeds(
                problem.shard_elements(cores),
                NetworkModel::shared_memory(),
                ctx.exec_mode(),
                speeds,
            );
            let skew_r = newgreedi(&mut skew, ctx.k).expect("well-formed wire");
            assert_eq!(even_r.seeds, skew_r.seeds, "speeds change time, not output");
            let even_s = even.metrics().elapsed().as_secs_f64();
            let straggler_s = skew.metrics().elapsed().as_secs_f64();
            let row = Row {
                dataset: profile.name(),
                cores,
                even_s,
                straggler_s,
                inflation: straggler_s / even_s,
            };
            println!(
                "{:>12} {:>6} {:>9.4} {:>13.4} {:>9.2}x",
                row.dataset, row.cores, row.even_s, row.straggler_s, row.inflation,
            );
            report::dump_json(&ctx.out_dir, "straggler", &row);
        }
    }
}
