//! Ablations for the design choices called out in DESIGN.md §6.

use std::time::Instant;

use dim_cluster::{ClusterBackend, NetworkModel, SimCluster};
use dim_core::diimm::diimm_with_options;
use dim_core::{ImConfig, SamplerKind};
use dim_coverage::greedy::{bucket_greedy, celf_greedy, naive_greedy};
use dim_coverage::{newgreedi, CoverageProblem};
use dim_diffusion::rr::{sample_batch, AnySampler};
use dim_diffusion::{DiffusionModel, RrStore};
use rand::SeedableRng;
use rand_pcg::Pcg64;
use serde::Serialize;

use crate::context::Context;
use crate::report;

#[derive(Serialize)]
struct TrafficRow {
    dataset: &'static str,
    machines: usize,
    sparse_bytes: u64,
    dense_bytes: u64,
    saving_factor: f64,
}

/// Sparse `⟨v, Δ⟩` delta messages (what NewGreeDi sends) vs the naive
/// alternative of re-uploading every node's coverage each round
/// (§III-B2's "dramatically save the traffic" claim).
pub fn traffic(ctx: &Context) {
    let machines = 8;
    println!("ℓ = {machines}, k = {}\n", ctx.k);
    report::header(&[
        ("dataset", 12),
        ("sparse (KiB)", 13),
        ("dense (KiB)", 12),
        ("saving", 9),
    ]);
    for &profile in &ctx.datasets {
        let graph = ctx.graph(profile);
        let problem = CoverageProblem::from_graph_neighborhoods(&graph);
        let mut cluster = SimCluster::new(
            problem.shard_elements(machines),
            NetworkModel::zero(),
            ctx.exec_mode(),
        );
        let r = newgreedi(&mut cluster, ctx.k).expect("well-formed wire");
        let sparse = cluster.metrics().bytes_to_master;
        // Dense alternative: every machine uploads all n coverages once for
        // initialization and once per selected seed (8 bytes per tuple).
        let n = problem.num_sets() as u64;
        let rounds = 1 + r.seeds.len() as u64;
        let dense = machines as u64 * rounds * (4 + 8 * n);
        let row = TrafficRow {
            dataset: profile.name(),
            machines,
            sparse_bytes: sparse,
            dense_bytes: dense,
            saving_factor: dense as f64 / sparse as f64,
        };
        println!(
            "{:>12} {:>13.1} {:>12.1} {:>8.1}x",
            row.dataset,
            row.sparse_bytes as f64 / 1024.0,
            row.dense_bytes as f64 / 1024.0,
            row.saving_factor,
        );
        report::dump_json(&ctx.out_dir, "ablation_traffic", &row);
    }
}

#[derive(Serialize)]
struct GreedyRow {
    dataset: &'static str,
    bucket_s: f64,
    celf_s: f64,
    naive_s: f64,
    coverage: u64,
}

/// The paper's bucket vector `D` with lazy updates vs CELF vs naive rescan.
pub fn greedy(ctx: &Context) {
    println!("k = {}\n", ctx.k);
    report::header(&[
        ("dataset", 12),
        ("bucket(s)", 10),
        ("CELF(s)", 10),
        ("naive(s)", 10),
        ("coverage", 10),
    ]);
    for &profile in &ctx.datasets {
        let graph = ctx.graph(profile);
        let problem = CoverageProblem::from_graph_neighborhoods(&graph);

        let time_of = |f: fn(&mut dim_coverage::CoverageShard, usize) -> dim_coverage::GreedyResult| {
            let mut shard = problem.single_shard();
            let start = Instant::now();
            let r = f(&mut shard, ctx.k);
            (start.elapsed().as_secs_f64(), r.covered)
        };
        let (bucket_s, cov_b) = time_of(bucket_greedy);
        let (celf_s, _cov_c) = time_of(celf_greedy);
        let (naive_s, _cov_n) = time_of(naive_greedy);
        let row = GreedyRow {
            dataset: profile.name(),
            bucket_s,
            celf_s,
            naive_s,
            coverage: cov_b,
        };
        println!(
            "{:>12} {:>10.3} {:>10.3} {:>10.3} {:>10}",
            row.dataset, row.bucket_s, row.celf_s, row.naive_s, row.coverage,
        );
        report::dump_json(&ctx.out_dir, "ablation_greedy", &row);
    }
}

#[derive(Serialize)]
struct SamplerRow {
    dataset: &'static str,
    rr_sets: usize,
    bfs_s: f64,
    bfs_edges: u64,
    subsim_s: f64,
    subsim_edges: u64,
    work_saving: f64,
}

/// SUBSIM's geometric jumps vs the standard per-edge reverse BFS, on the
/// same number of RR sets.
pub fn sampler(ctx: &Context) {
    let count = 20_000;
    println!("RR sets per run: {count}\n");
    report::header(&[
        ("dataset", 12),
        ("BFS(s)", 9),
        ("BFS work", 12),
        ("SUBSIM(s)", 10),
        ("SUBSIM work", 12),
        ("saving", 8),
    ]);
    for &profile in &ctx.datasets {
        let graph = ctx.graph(profile);
        let run = |sampler: AnySampler| {
            let mut store = RrStore::new();
            let mut rng = Pcg64::seed_from_u64(ctx.seed);
            let start = Instant::now();
            let edges = sample_batch(&sampler, count, &mut rng, &mut store);
            (start.elapsed().as_secs_f64(), edges)
        };
        let (bfs_s, bfs_edges) = run(AnySampler::for_model(
            &graph,
            DiffusionModel::IndependentCascade,
        ));
        let (subsim_s, subsim_edges) = run(AnySampler::subsim(&graph));
        let row = SamplerRow {
            dataset: profile.name(),
            rr_sets: count,
            bfs_s,
            bfs_edges,
            subsim_s,
            subsim_edges,
            work_saving: bfs_edges as f64 / subsim_edges as f64,
        };
        println!(
            "{:>12} {:>9.3} {:>12} {:>10.3} {:>12} {:>7.1}x",
            row.dataset, row.bfs_s, row.bfs_edges, row.subsim_s, row.subsim_edges, row.work_saving,
        );
        report::dump_json(&ctx.out_dir, "ablation_sampler", &row);
    }
}

#[derive(Serialize)]
struct IncrementalRow {
    dataset: &'static str,
    machines: usize,
    full_bytes_up: u64,
    incremental_bytes_up: u64,
    saving_factor: f64,
    same_seeds: bool,
}

/// The paper's §III-C optimization inside DiIMM: each NewGreeDi call
/// reports coverage only over newly generated RR sets vs re-uploading the
/// full coverage every call. Output must be identical; only bytes move.
pub fn incremental(ctx: &Context) {
    let machines = 8;
    println!("ℓ = {machines}, ε = {}, k = {}\n", ctx.epsilon, ctx.k);
    report::header(&[
        ("dataset", 12),
        ("full (KiB)", 12),
        ("incremental (KiB)", 18),
        ("saving", 9),
        ("same seeds", 11),
    ]);
    for &profile in &ctx.datasets {
        let graph = ctx.graph(profile);
        let config = ImConfig {
            k: ctx.k.min(graph.num_nodes()),
            epsilon: ctx.epsilon,
            delta: 1.0 / graph.num_nodes() as f64,
            seed: ctx.seed,
            sampler: SamplerKind::Standard(DiffusionModel::IndependentCascade),
        };
        let full = diimm_with_options(
            &graph,
            &config,
            machines,
            NetworkModel::cluster_1gbps(),
            ctx.exec_mode(),
            false,
        )
        .expect("well-formed wire");
        let incr = diimm_with_options(
            &graph,
            &config,
            machines,
            NetworkModel::cluster_1gbps(),
            ctx.exec_mode(),
            true,
        )
        .expect("well-formed wire");
        let row = IncrementalRow {
            dataset: profile.name(),
            machines,
            full_bytes_up: full.metrics.bytes_to_master,
            incremental_bytes_up: incr.metrics.bytes_to_master,
            saving_factor: full.metrics.bytes_to_master as f64
                / incr.metrics.bytes_to_master as f64,
            same_seeds: full.seeds == incr.seeds,
        };
        println!(
            "{:>12} {:>12.1} {:>18.1} {:>8.2}x {:>11}",
            row.dataset,
            row.full_bytes_up as f64 / 1024.0,
            row.incremental_bytes_up as f64 / 1024.0,
            row.saving_factor,
            row.same_seeds,
        );
        report::dump_json(&ctx.out_dir, "ablation_incremental", &row);
    }
}
