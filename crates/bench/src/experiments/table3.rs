//! Table III — dataset statistics.

use dim_graph::GraphStats;
use serde::Serialize;

use crate::context::Context;
use crate::report;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    scale: f64,
    nodes: usize,
    edges: usize,
    avg_degree: f64,
    paper_nodes: usize,
    paper_avg_degree: f64,
    directed: bool,
}

/// Prints the generated profiles next to the paper's real dataset sizes.
pub fn run(ctx: &Context) {
    report::header(&[
        ("dataset", 12),
        ("scale", 8),
        ("#nodes", 10),
        ("#edges", 12),
        ("avg.deg", 8),
        ("paper #nodes", 13),
        ("paper avg.deg", 14),
        ("type", 10),
    ]);
    for &profile in &ctx.datasets {
        let graph = ctx.graph(profile);
        let stats = GraphStats::compute(&graph);
        let row = Row {
            dataset: profile.name(),
            scale: ctx.scale_of(profile),
            nodes: stats.nodes,
            edges: stats.edges,
            avg_degree: stats.avg_degree,
            paper_nodes: profile.full_nodes(),
            paper_avg_degree: profile.avg_degree(),
            directed: profile.directed(),
        };
        println!(
            "{:>12} {:>8} {:>10} {:>12} {:>8.1} {:>13} {:>14.1} {:>10}",
            row.dataset,
            row.scale,
            row.nodes,
            row.edges,
            row.avg_degree,
            row.paper_nodes,
            row.paper_avg_degree,
            if row.directed { "directed" } else { "undirected" },
        );
        report::dump_json(&ctx.out_dir, "table3", &row);
    }
}
