//! Seed-quality comparison: DiIMM's guaranteed seeds vs the guarantee-free
//! heuristics the paper's introduction contrasts against (IPA/CMD-style
//! parallel heuristics are degree/community rules at heart).
//!
//! All seed sets are evaluated by independent forward Monte-Carlo
//! simulation, normalized to DiIMM's spread.

use dim_cluster::NetworkModel;
use dim_core::diimm::diimm;
use dim_core::heuristics::{degree_discount, random_seeds, top_degree, top_pagerank};
use dim_core::{ImConfig, SamplerKind};
use dim_diffusion::forward::estimate_spread;
use dim_diffusion::DiffusionModel;
use serde::Serialize;

use crate::context::Context;
use crate::report;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    k: usize,
    diimm_spread: f64,
    degree_ratio: f64,
    degree_discount_ratio: f64,
    pagerank_ratio: f64,
    random_ratio: f64,
}

/// Runs the comparison on every selected dataset (IC model, 1k cascades
/// per evaluation).
pub fn run(ctx: &Context) {
    let sims = 1_000;
    println!("k = {}, ε = {}, spreads normalized to DiIMM's\n", ctx.k, ctx.epsilon);
    report::header(&[
        ("dataset", 12),
        ("DiIMM spread", 13),
        ("degree", 9),
        ("deg-disc", 9),
        ("pagerank", 9),
        ("random", 9),
    ]);
    for &profile in &ctx.datasets {
        let graph = ctx.graph(profile);
        let k = ctx.k.min(graph.num_nodes());
        let config = ImConfig {
            k,
            epsilon: ctx.epsilon,
            delta: 1.0 / graph.num_nodes() as f64,
            seed: ctx.seed,
            sampler: SamplerKind::Standard(DiffusionModel::IndependentCascade),
        };
        let ris = diimm(
            &graph,
            &config,
            8,
            NetworkModel::shared_memory(),
            ctx.exec_mode(),
        )
        .expect("well-formed wire");
        let avg_p = graph.num_edges() as f64 / graph.num_nodes() as f64;
        let candidates = [
            top_degree(&graph, k),
            degree_discount(&graph, k, 1.0 / avg_p),
            top_pagerank(&graph, k),
            random_seeds(&graph, k, ctx.seed),
        ];
        let eval = |seeds: &[u32]| {
            estimate_spread(
                &graph,
                DiffusionModel::IndependentCascade,
                seeds,
                sims,
                ctx.seed ^ 0xFEED,
            )
        };
        let base = eval(&ris.seeds);
        let ratios: Vec<f64> = candidates.iter().map(|s| eval(s) / base).collect();
        let row = Row {
            dataset: profile.name(),
            k,
            diimm_spread: base,
            degree_ratio: ratios[0],
            degree_discount_ratio: ratios[1],
            pagerank_ratio: ratios[2],
            random_ratio: ratios[3],
        };
        println!(
            "{:>12} {:>13.1} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            row.dataset,
            row.diimm_spread,
            row.degree_ratio,
            row.degree_discount_ratio,
            row.pagerank_ratio,
            row.random_ratio,
        );
        report::dump_json(&ctx.out_dir, "quality", &row);
    }
}
