//! Fig. 10 — maximum coverage: (a) NewGreeDi running time vs cores,
//! (b) speedup of NewGreeDi and GreeDi over the sequential greedy,
//! (c) coverage ratio of GreeDi to NewGreeDi.

use std::time::Instant;

use dim_cluster::{ClusterBackend, NetworkModel, SimCluster};
use dim_coverage::greedi::greedi;
use dim_coverage::greedy::bucket_greedy;
use dim_coverage::{newgreedi, CoverageProblem};
use serde::Serialize;

use crate::context::Context;
use crate::report;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    cores: usize,
    newgreedi_s: f64,
    newgreedi_comm_s: f64,
    newgreedi_speedup: f64,
    greedi_s: f64,
    greedi_speedup: f64,
    newgreedi_coverage: u64,
    greedi_coverage: u64,
    coverage_ratio: f64,
}

/// Runs the paper's §IV-C workload: the graph as `|V|` sets over `|V|`
/// elements (set `u` = out-neighborhood of `u`), k = 50 by default.
pub fn run(ctx: &Context) {
    println!("k = {}, network = shared memory\n", ctx.k);
    for &profile in &ctx.datasets {
        let graph = ctx.graph(profile);
        let problem = CoverageProblem::from_graph_neighborhoods(&graph);
        println!(
            "--- {} ({} sets, {} elements, total size {}) ---",
            profile.name(),
            problem.num_sets(),
            problem.num_elements(),
            problem.total_size()
        );

        // Sequential greedy baseline (ℓ = 1 time base for both methods).
        let start = Instant::now();
        let mut shard = problem.single_shard();
        let seq = bucket_greedy(&mut shard, ctx.k);
        let seq_time = start.elapsed().as_secs_f64();
        println!(
            "sequential greedy: {:.3}s, coverage {}\n",
            seq_time, seq.covered
        );

        report::header(&[
            ("cores", 6),
            ("NG time(s)", 11),
            ("NG comm(s)", 11),
            ("NG speedup", 11),
            ("GD time(s)", 11),
            ("GD speedup", 11),
            ("cov ratio", 10),
        ]);
        for &cores in &ctx.core_counts {
            let mut ng_cluster = SimCluster::new(
                problem.shard_elements(cores),
                NetworkModel::shared_memory(),
                ctx.exec_mode(),
            );
            let ng = newgreedi(&mut ng_cluster, ctx.k).expect("well-formed wire");
            let ng_metrics = ng_cluster.metrics();
            let ng_time = ng_metrics.elapsed().as_secs_f64();
            assert_eq!(
                ng.covered, seq.covered,
                "NewGreeDi must match the sequential greedy (Lemma 2)"
            );

            let mut gd_cluster = SimCluster::new(
                problem.shard_sets(cores, None),
                NetworkModel::shared_memory(),
                ctx.exec_mode(),
            );
            let gd = greedi(&mut gd_cluster, ctx.k, ctx.k);
            let gd_time = gd_cluster.metrics().elapsed().as_secs_f64();

            let row = Row {
                dataset: profile.name(),
                cores,
                newgreedi_s: ng_time,
                newgreedi_comm_s: ng_metrics.comm_time.as_secs_f64(),
                newgreedi_speedup: seq_time / ng_time,
                greedi_s: gd_time,
                greedi_speedup: seq_time / gd_time,
                newgreedi_coverage: ng.covered,
                greedi_coverage: gd.covered,
                coverage_ratio: gd.covered as f64 / ng.covered as f64,
            };
            println!(
                "{:>6} {:>11.3} {:>11.4} {:>10.1}x {:>11.3} {:>10.1}x {:>10.4}",
                row.cores,
                row.newgreedi_s,
                row.newgreedi_comm_s,
                row.newgreedi_speedup,
                row.greedi_s,
                row.greedi_speedup,
                row.coverage_ratio,
            );
            report::dump_json(&ctx.out_dir, "fig10", &row);
        }
        println!();
    }
}
