//! Figs. 5, 6, 7, 8, 9 — DiIMM / distributed-SUBSIM running time vs the
//! number of machines or cores, with the per-phase breakdown (RR
//! generation / computation / communication) the paper plots as stacked
//! bars.
//!
//! The stacked bars are read straight off the run's phase-labeled
//! [`dim_cluster::PhaseTimeline`]: sampling is the `rr-sampling` label's
//! compute, selection is every other label's compute, and communication
//! is the timeline total's modeled transfer time. The JSON rows also
//! carry the raw per-label breakdown for finer-grained plots.

#[cfg(feature = "proc-backend")]
use dim_cluster::{JoinConfig, ProcCluster, Rendezvous};
use dim_cluster::{phase, NetworkModel, PhaseTimeline};
#[cfg(feature = "proc-backend")]
use dim_core::diimm::diimm_on;
use dim_core::diimm::diimm;
#[cfg(feature = "proc-backend")]
use dim_core::{setup_im_cluster, WorkerHost};
use dim_core::{ImConfig, ImResult, SamplerKind};
use dim_diffusion::DiffusionModel;
use dim_graph::Graph;
use serde::Serialize;

use crate::context::Context;
use crate::report;

/// One timeline label, flattened for the JSON dump.
#[derive(Serialize)]
struct PhaseRow {
    phase: &'static str,
    compute_s: f64,
    comm_s: f64,
    measured_s: f64,
    messages: u64,
    bytes: u64,
}

fn phase_rows(timeline: &PhaseTimeline) -> Vec<PhaseRow> {
    timeline
        .iter()
        .map(|(label, m)| PhaseRow {
            phase: label,
            compute_s: m.compute().as_secs_f64(),
            comm_s: m.comm_time.as_secs_f64(),
            measured_s: m.measured_comm.as_secs_f64(),
            messages: m.messages,
            bytes: m.total_bytes(),
        })
        .collect()
}

#[derive(Serialize)]
struct Row {
    figure: &'static str,
    dataset: &'static str,
    model: &'static str,
    sampler: &'static str,
    machines: usize,
    sampling_s: f64,
    selection_s: f64,
    comm_s: f64,
    measured_comm_s: f64,
    total_s: f64,
    speedup: f64,
    rr_sets: usize,
    bytes_up: u64,
    bytes_down: u64,
    est_spread: f64,
    phases: Vec<PhaseRow>,
}

struct Setup {
    figure: &'static str,
    sampler: SamplerKind,
    network: NetworkModel,
    network_label: &'static str,
    multicore: bool,
}

/// One DiIMM run on the configured backend.
fn run_one(
    ctx: &Context,
    graph: &Graph,
    config: &ImConfig,
    machines: usize,
    network: NetworkModel,
) -> ImResult {
    #[cfg(feature = "proc-backend")]
    if ctx.backend == crate::context::Backend::Proc {
        let seed = config.seed;
        let mut cluster =
            ProcCluster::auto_with(machines, network, seed, |i| WorkerHost::new(i, seed))
                .expect("loopback worker cluster");
        setup_im_cluster(&mut cluster, graph, config.sampler).expect("well-formed wire");
        return diimm_on(&mut cluster, graph, config, true).expect("well-formed wire");
    }
    #[cfg(feature = "proc-backend")]
    if ctx.backend == crate::context::Backend::Join {
        // One rendezvous session per row: pre-started join workers
        // re-register between rows, so a fleet started once covers the
        // whole sweep. The bind→membership latency is recorded in the
        // timeline (`rendezvous` label) and ends up in the JSON rows.
        let mut rendezvous = Rendezvous::bind_env(JoinConfig::new(machines))
            .expect("bind rendezvous listener (DIM_MASTER_BIND)");
        let addr = rendezvous.local_addr().expect("rendezvous local addr");
        eprintln!(
            "waiting for {machines} join worker(s) on {addr} \
             (start each with: dim-worker --connect {addr} --join)"
        );
        let mut cluster = rendezvous
            .accept_session(network, config.seed)
            .expect("join workers register before the join timeout");
        setup_im_cluster(&mut cluster, graph, config.sampler).expect("well-formed wire");
        return diimm_on(&mut cluster, graph, config, true).expect("well-formed wire");
    }
    diimm(graph, config, machines, network, ctx.exec_mode()).expect("well-formed wire")
}

fn run_setup(ctx: &Context, setup: Setup) {
    let machine_counts = if setup.multicore {
        &ctx.core_counts
    } else {
        &ctx.cluster_machines
    };
    let sampler_label = match setup.sampler {
        SamplerKind::Standard(_) => "standard",
        SamplerKind::Subsim => "subsim",
    };
    println!(
        "model = {}, sampler = {sampler_label}, network = {}, ε = {}, k = {}\n",
        setup.sampler.model(),
        setup.network_label,
        ctx.epsilon,
        ctx.k
    );
    for &profile in &ctx.datasets {
        let graph = ctx.graph(profile);
        let config = ImConfig {
            k: ctx.k.min(graph.num_nodes()),
            epsilon: ctx.epsilon,
            delta: 1.0 / graph.num_nodes() as f64,
            seed: ctx.seed,
            sampler: setup.sampler,
        };
        println!(
            "--- {} (n = {}, m = {}) ---",
            profile.name(),
            graph.num_nodes(),
            graph.num_edges()
        );
        report::header(&[
            ("ℓ", 4),
            ("sampling(s)", 12),
            ("selection(s)", 13),
            ("comm(s)", 9),
            ("measured(s)", 12),
            ("total(s)", 10),
            ("speedup", 8),
            ("#RR", 10),
        ]);
        let mut baseline = None;
        for &machines in machine_counts {
            let r = run_one(ctx, &graph, &config, machines, setup.network);
            // Stacked bars straight off the timeline, not the derived
            // `timings` view: sampling = the rr-sampling label's compute,
            // selection = all remaining compute, comm = modeled transfers.
            let flat = r.timeline.total();
            let sampling = r.timeline.get(phase::RR_SAMPLING).compute();
            let selection = flat.compute().saturating_sub(sampling);
            let total = (sampling + selection + flat.comm_time).as_secs_f64();
            let base = *baseline.get_or_insert(total);
            let row = Row {
                figure: setup.figure,
                dataset: profile.name(),
                model: if setup.sampler.model() == DiffusionModel::IndependentCascade {
                    "ic"
                } else {
                    "lt"
                },
                sampler: sampler_label,
                machines,
                sampling_s: sampling.as_secs_f64(),
                selection_s: selection.as_secs_f64(),
                comm_s: flat.comm_time.as_secs_f64(),
                measured_comm_s: flat.measured_comm.as_secs_f64(),
                total_s: total,
                speedup: base / total,
                rr_sets: r.num_rr_sets,
                bytes_up: flat.bytes_to_master,
                bytes_down: flat.bytes_from_master,
                est_spread: r.est_spread,
                phases: phase_rows(&r.timeline),
            };
            println!(
                "{:>4} {:>12.3} {:>13.3} {:>9.4} {:>12.4} {:>10.3} {:>7.1}x {:>10}",
                row.machines,
                row.sampling_s,
                row.selection_s,
                row.comm_s,
                row.measured_comm_s,
                row.total_s,
                row.speedup,
                row.rr_sets,
            );
            report::dump_json(&ctx.out_dir, setup.figure, &row);
        }
        println!();
    }
}

/// Fig. 5: DiIMM, IC model, 1 Gbps cluster.
pub fn fig5(ctx: &Context) {
    run_setup(
        ctx,
        Setup {
            figure: "fig5",
            sampler: SamplerKind::Standard(DiffusionModel::IndependentCascade),
            network: NetworkModel::cluster_1gbps(),
            network_label: "1 Gbps cluster",
            multicore: false,
        },
    );
}

/// Fig. 6: DiIMM, IC model, multi-core server (shared-memory MPI).
pub fn fig6(ctx: &Context) {
    run_setup(
        ctx,
        Setup {
            figure: "fig6",
            sampler: SamplerKind::Standard(DiffusionModel::IndependentCascade),
            network: NetworkModel::shared_memory(),
            network_label: "shared memory",
            multicore: true,
        },
    );
}

/// Fig. 7: distributed SUBSIM, IC model, multi-core server.
pub fn fig7(ctx: &Context) {
    run_setup(
        ctx,
        Setup {
            figure: "fig7",
            sampler: SamplerKind::Subsim,
            network: NetworkModel::shared_memory(),
            network_label: "shared memory",
            multicore: true,
        },
    );
}

/// Fig. 8: DiIMM, LT model, 1 Gbps cluster.
pub fn fig8(ctx: &Context) {
    run_setup(
        ctx,
        Setup {
            figure: "fig8",
            sampler: SamplerKind::Standard(DiffusionModel::LinearThreshold),
            network: NetworkModel::cluster_1gbps(),
            network_label: "1 Gbps cluster",
            multicore: false,
        },
    );
}

/// Fig. 9: DiIMM, LT model, multi-core server.
pub fn fig9(ctx: &Context) {
    run_setup(
        ctx,
        Setup {
            figure: "fig9",
            sampler: SamplerKind::Standard(DiffusionModel::LinearThreshold),
            network: NetworkModel::shared_memory(),
            network_label: "shared memory",
            multicore: true,
        },
    );
}
