//! Figs. 5, 6, 7, 8, 9 — DiIMM / distributed-SUBSIM running time vs the
//! number of machines or cores, with the per-phase breakdown (RR
//! generation / computation / communication) the paper plots as stacked
//! bars.

use dim_cluster::{ExecMode, NetworkModel};
use dim_core::diimm::diimm;
use dim_core::{ImConfig, SamplerKind};
use dim_diffusion::DiffusionModel;
use serde::Serialize;

use crate::context::Context;
use crate::report;

#[derive(Serialize)]
struct Row {
    figure: &'static str,
    dataset: &'static str,
    model: &'static str,
    sampler: &'static str,
    machines: usize,
    sampling_s: f64,
    selection_s: f64,
    comm_s: f64,
    total_s: f64,
    speedup: f64,
    rr_sets: usize,
    bytes_up: u64,
    bytes_down: u64,
    est_spread: f64,
}

struct Setup {
    figure: &'static str,
    sampler: SamplerKind,
    network: NetworkModel,
    network_label: &'static str,
    multicore: bool,
}

fn run_setup(ctx: &Context, setup: Setup) {
    let machine_counts = if setup.multicore {
        &ctx.core_counts
    } else {
        &ctx.cluster_machines
    };
    let sampler_label = match setup.sampler {
        SamplerKind::Standard(_) => "standard",
        SamplerKind::Subsim => "subsim",
    };
    println!(
        "model = {}, sampler = {sampler_label}, network = {}, ε = {}, k = {}\n",
        setup.sampler.model(),
        setup.network_label,
        ctx.epsilon,
        ctx.k
    );
    for &profile in &ctx.datasets {
        let graph = ctx.graph(profile);
        let config = ImConfig {
            k: ctx.k.min(graph.num_nodes()),
            epsilon: ctx.epsilon,
            delta: 1.0 / graph.num_nodes() as f64,
            seed: ctx.seed,
            sampler: setup.sampler,
        };
        println!(
            "--- {} (n = {}, m = {}) ---",
            profile.name(),
            graph.num_nodes(),
            graph.num_edges()
        );
        report::header(&[
            ("ℓ", 4),
            ("sampling(s)", 12),
            ("selection(s)", 13),
            ("comm(s)", 9),
            ("total(s)", 10),
            ("speedup", 8),
            ("#RR", 10),
        ]);
        let mut baseline = None;
        for &machines in machine_counts {
            let r = diimm(&graph, &config, machines, setup.network, ExecMode::Sequential);
            let total = r.timings.total().as_secs_f64();
            let base = *baseline.get_or_insert(total);
            let row = Row {
                figure: setup.figure,
                dataset: profile.name(),
                model: if setup.sampler.model() == DiffusionModel::IndependentCascade {
                    "ic"
                } else {
                    "lt"
                },
                sampler: sampler_label,
                machines,
                sampling_s: r.timings.sampling.as_secs_f64(),
                selection_s: r.timings.selection.as_secs_f64(),
                comm_s: r.timings.communication.as_secs_f64(),
                total_s: total,
                speedup: base / total,
                rr_sets: r.num_rr_sets,
                bytes_up: r.metrics.bytes_to_master,
                bytes_down: r.metrics.bytes_from_master,
                est_spread: r.est_spread,
            };
            println!(
                "{:>4} {:>12.3} {:>13.3} {:>9.4} {:>10.3} {:>7.1}x {:>10}",
                row.machines,
                row.sampling_s,
                row.selection_s,
                row.comm_s,
                row.total_s,
                row.speedup,
                row.rr_sets,
            );
            report::dump_json(&ctx.out_dir, setup.figure, &row);
        }
        println!();
    }
}

/// Fig. 5: DiIMM, IC model, 1 Gbps cluster.
pub fn fig5(ctx: &Context) {
    run_setup(
        ctx,
        Setup {
            figure: "fig5",
            sampler: SamplerKind::Standard(DiffusionModel::IndependentCascade),
            network: NetworkModel::cluster_1gbps(),
            network_label: "1 Gbps cluster",
            multicore: false,
        },
    );
}

/// Fig. 6: DiIMM, IC model, multi-core server (shared-memory MPI).
pub fn fig6(ctx: &Context) {
    run_setup(
        ctx,
        Setup {
            figure: "fig6",
            sampler: SamplerKind::Standard(DiffusionModel::IndependentCascade),
            network: NetworkModel::shared_memory(),
            network_label: "shared memory",
            multicore: true,
        },
    );
}

/// Fig. 7: distributed SUBSIM, IC model, multi-core server.
pub fn fig7(ctx: &Context) {
    run_setup(
        ctx,
        Setup {
            figure: "fig7",
            sampler: SamplerKind::Subsim,
            network: NetworkModel::shared_memory(),
            network_label: "shared memory",
            multicore: true,
        },
    );
}

/// Fig. 8: DiIMM, LT model, 1 Gbps cluster.
pub fn fig8(ctx: &Context) {
    run_setup(
        ctx,
        Setup {
            figure: "fig8",
            sampler: SamplerKind::Standard(DiffusionModel::LinearThreshold),
            network: NetworkModel::cluster_1gbps(),
            network_label: "1 Gbps cluster",
            multicore: false,
        },
    );
}

/// Fig. 9: DiIMM, LT model, multi-core server.
pub fn fig9(ctx: &Context) {
    run_setup(
        ctx,
        Setup {
            figure: "fig9",
            sampler: SamplerKind::Standard(DiffusionModel::LinearThreshold),
            network: NetworkModel::shared_memory(),
            network_label: "shared memory",
            multicore: true,
        },
    );
}
