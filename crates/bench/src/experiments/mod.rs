//! One module per paper table/figure. Each experiment prints a console
//! table mirroring the paper's presentation and appends JSON records under
//! the context's output directory.

pub mod ablations;
pub mod fig10;
pub mod im_scaling;
pub mod opim_ext;
pub mod quality;
pub mod straggler;
pub mod table2;
pub mod table3;
pub mod table4;

use crate::context::Context;

/// An experiment entry: name, description, runner.
pub type Experiment = (&'static str, &'static str, fn(&Context));

/// Experiment registry: name → (description, runner).
pub const EXPERIMENTS: &[Experiment] = &[
    ("table2", "empirical approximation ratios of distributed max-coverage baselines", table2::run),
    ("table3", "dataset statistics (profiles vs the paper's real datasets)", table3::run),
    ("table4", "number and total size of RR sets under the IC model", table4::run),
    ("fig5", "DiIMM running time, IC model, cluster network (1 Gbps)", im_scaling::fig5),
    ("fig6", "DiIMM running time, IC model, multi-core server", im_scaling::fig6),
    ("fig7", "distributed SUBSIM running time, IC model, multi-core server", im_scaling::fig7),
    ("fig8", "DiIMM running time, LT model, cluster network (1 Gbps)", im_scaling::fig8),
    ("fig9", "DiIMM running time, LT model, multi-core server", im_scaling::fig9),
    ("fig10", "maximum coverage: NewGreeDi vs GreeDi vs sequential greedy", fig10::run),
    ("ablation-traffic", "sparse-delta vs full-vector reduce traffic", ablations::traffic),
    ("ablation-greedy", "bucket selector vs CELF vs naive rescan", ablations::greedy),
    ("ablation-sampler", "SUBSIM geometric jumps vs per-edge BFS work", ablations::sampler),
    ("ablation-incremental", "incremental vs full coverage reporting in DiIMM", ablations::incremental),
    ("quality", "seed quality: DiIMM vs degree/degree-discount/PageRank/random", quality::run),
    ("ext-opim", "extension: OPIM-C adaptive stopping vs IMM sample counts", opim_ext::run),
    ("ext-straggler", "extension: NewGreeDi sensitivity to a half-speed machine", straggler::run),
];

/// Runs one experiment by name (or `all`). Returns false on unknown names.
pub fn run(name: &str, ctx: &Context) -> bool {
    if name == "all" {
        for (n, desc, f) in EXPERIMENTS {
            println!("\n=== {n}: {desc} ===\n");
            f(ctx);
        }
        return true;
    }
    match EXPERIMENTS.iter().find(|(n, _, _)| *n == name) {
        Some((n, desc, f)) => {
            println!("=== {n}: {desc} ===\n");
            f(ctx);
            true
        }
        None => false,
    }
}
