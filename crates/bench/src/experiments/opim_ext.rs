//! Extension experiment: OPIM-C's adaptive stopping vs IMM's worst-case
//! sample budget (the paper names OPIM-C among the frameworks its building
//! blocks support; this quantifies why that matters).

use dim_cluster::NetworkModel;
use dim_core::diimm::diimm;
use dim_core::opim::dopim_c;
use dim_core::{ImConfig, SamplerKind};
use dim_diffusion::DiffusionModel;
use serde::Serialize;

use crate::context::Context;
use crate::report;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    machines: usize,
    imm_rr_sets: usize,
    opim_rr_sets: usize,
    sample_saving: f64,
    imm_total_s: f64,
    opim_total_s: f64,
    spread_ratio: f64,
}

/// Compares DiIMM and distributed OPIM-C at ℓ = 8 on every dataset.
pub fn run(ctx: &Context) {
    let machines = 8;
    println!("ℓ = {machines}, ε = {}, k = {}\n", ctx.epsilon, ctx.k);
    report::header(&[
        ("dataset", 12),
        ("IMM #RR", 10),
        ("OPIM #RR", 10),
        ("saving", 8),
        ("IMM(s)", 9),
        ("OPIM(s)", 9),
        ("spread ratio", 13),
    ]);
    for &profile in &ctx.datasets {
        let graph = ctx.graph(profile);
        let config = ImConfig {
            k: ctx.k.min(graph.num_nodes()),
            epsilon: ctx.epsilon,
            delta: 1.0 / graph.num_nodes() as f64,
            seed: ctx.seed,
            sampler: SamplerKind::Standard(DiffusionModel::IndependentCascade),
        };
        let net = NetworkModel::shared_memory();
        let imm_r = diimm(&graph, &config, machines, net, ctx.exec_mode()).expect("well-formed wire");
        let opim_r = dopim_c(&graph, &config, machines, net, ctx.exec_mode()).expect("well-formed wire");
        let row = Row {
            dataset: profile.name(),
            machines,
            imm_rr_sets: imm_r.num_rr_sets,
            opim_rr_sets: opim_r.num_rr_sets,
            sample_saving: imm_r.num_rr_sets as f64 / opim_r.num_rr_sets as f64,
            imm_total_s: imm_r.timings.total().as_secs_f64(),
            opim_total_s: opim_r.timings.total().as_secs_f64(),
            spread_ratio: opim_r.est_spread / imm_r.est_spread,
        };
        println!(
            "{:>12} {:>10} {:>10} {:>7.1}x {:>9.3} {:>9.3} {:>13.3}",
            row.dataset,
            row.imm_rr_sets,
            row.opim_rr_sets,
            row.sample_saving,
            row.imm_total_s,
            row.opim_total_s,
            row.spread_ratio,
        );
        report::dump_json(&ctx.out_dir, "ext_opim", &row);
    }
}
