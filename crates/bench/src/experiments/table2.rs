//! Table II — empirical counterpart: approximation quality of the
//! distributed max-coverage baselines relative to the centralized greedy.
//!
//! The paper's Table II lists *proved* ratios; here we measure the achieved
//! coverage of each method on the §IV-C workload, normalized by the
//! centralized greedy's coverage (NewGreeDi's is 1.0 by construction).

use dim_cluster::{NetworkModel, SimCluster};
use dim_coverage::greedi::greedi;
use dim_coverage::greedy::bucket_greedy;
use dim_coverage::{newgreedi, CoverageProblem};
use serde::Serialize;

use crate::context::Context;
use crate::report;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    machines: usize,
    greedy_coverage: u64,
    newgreedi_ratio: f64,
    greedi_ratio: f64,
    randgreedi_ratio: f64,
}

/// Measures the coverage ratio of each distributed method at ℓ = 8.
pub fn run(ctx: &Context) {
    let machines = 8;
    println!("k = {}, ℓ = {machines}\n", ctx.k);
    report::header(&[
        ("dataset", 12),
        ("greedy cov.", 12),
        ("NewGreeDi", 10),
        ("GreeDi", 10),
        ("RandGreeDi", 11),
    ]);
    for &profile in &ctx.datasets {
        let graph = ctx.graph(profile);
        let problem = CoverageProblem::from_graph_neighborhoods(&graph);
        let mut shard = problem.single_shard();
        let central = bucket_greedy(&mut shard, ctx.k);

        let mut ng_cluster = SimCluster::new(
            problem.shard_elements(machines),
            NetworkModel::zero(),
            ctx.exec_mode(),
        );
        let ng = newgreedi(&mut ng_cluster, ctx.k).expect("well-formed wire");

        let mut gd_cluster = SimCluster::new(
            problem.shard_sets(machines, None),
            NetworkModel::zero(),
            ctx.exec_mode(),
        );
        let gd = greedi(&mut gd_cluster, ctx.k, ctx.k);

        let mut rg_cluster = SimCluster::new(
            problem.shard_sets(machines, Some(ctx.seed)),
            NetworkModel::zero(),
            ctx.exec_mode(),
        );
        let rg = greedi(&mut rg_cluster, ctx.k, ctx.k);

        let base = central.covered as f64;
        let row = Row {
            dataset: profile.name(),
            machines,
            greedy_coverage: central.covered,
            newgreedi_ratio: ng.covered as f64 / base,
            greedi_ratio: gd.covered as f64 / base,
            randgreedi_ratio: rg.covered as f64 / base,
        };
        println!(
            "{:>12} {:>12} {:>10.4} {:>10.4} {:>11.4}",
            row.dataset,
            row.greedy_coverage,
            row.newgreedi_ratio,
            row.greedi_ratio,
            row.randgreedi_ratio,
        );
        report::dump_json(&ctx.out_dir, "table2", &row);
    }
}
