//! Table IV — number and total size of RR sets under the IC model.

use dim_core::{imm, ImConfig, SamplerKind};
use dim_diffusion::DiffusionModel;
use serde::Serialize;

use crate::context::Context;
use crate::report;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    epsilon: f64,
    k: usize,
    rr_sets: usize,
    total_size: usize,
    avg_rr_size: f64,
    edges_examined: u64,
}

/// Runs sequential IMM per dataset and reports θ and Σ|R| — the workload
/// volumes that the distributed experiments then split across machines.
pub fn run(ctx: &Context) {
    report::header(&[
        ("dataset", 12),
        ("#RR sets", 12),
        ("total size", 14),
        ("avg |R|", 9),
        ("Σ w(R)", 14),
    ]);
    for &profile in &ctx.datasets {
        let graph = ctx.graph(profile);
        let config = ImConfig {
            k: ctx.k.min(graph.num_nodes()),
            epsilon: ctx.epsilon,
            delta: 1.0 / graph.num_nodes() as f64,
            seed: ctx.seed,
            sampler: SamplerKind::Standard(DiffusionModel::IndependentCascade),
        };
        let r = imm(&graph, &config);
        let row = Row {
            dataset: profile.name(),
            epsilon: ctx.epsilon,
            k: config.k,
            rr_sets: r.num_rr_sets,
            total_size: r.total_rr_size,
            avg_rr_size: r.total_rr_size as f64 / r.num_rr_sets as f64,
            edges_examined: r.edges_examined,
        };
        println!(
            "{:>12} {:>12} {:>14} {:>9.2} {:>14}",
            row.dataset, row.rr_sets, row.total_size, row.avg_rr_size, row.edges_examined,
        );
        report::dump_json(&ctx.out_dir, "table4", &row);
    }
}
