//! The sample/select benchmark workloads, shared by the
//! `benches/sample_select.rs` criterion harness and the `dim-benchrec`
//! binary that records `BENCH_sample_select.json` (same code timed two
//! ways, so the trajectory file and the criterion reports agree on what
//! was measured).

use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_pcg::Pcg64;

use dim_cluster::{
    phase, ExecMode, FaultInjector, FaultPlan, NetworkModel, OpCluster, SimCluster, WorkerOp,
};
use dim_core::diimm::DiimmWorker;
use dim_core::recover::{RecoveringCluster, RecoveryPolicy};
use dim_core::{ImConfig, SamplerKind};
use dim_coverage::{constrained_greedy, CoverageShard, SketchCursors};
use dim_diffusion::rr::{AnySampler, RrSampler};
use dim_diffusion::visit::VisitTracker;
use dim_diffusion::DiffusionModel;
use dim_graph::{DeltaBatch, EdgeOp, Graph};

/// Samples `theta` RR sets under IC and builds the per-machine coverage
/// shards — what one `dim sample` machine does before persisting.
///
/// Each RR set is pushed straight into its shard's pooled arena instead of
/// being staged through a `Vec<Vec<u32>>`: one allocation per shard rather
/// than one per RR set. The RNG draw order and the shard assignment
/// (`theta.div_ceil(shards)` consecutive sets per shard) are unchanged, so
/// the sketch — and every seed selected from it — is byte-identical to the
/// staged construction.
pub fn build_shards(graph: &Graph, theta: usize, shards: usize, seed: u64) -> Vec<CoverageShard> {
    let sampler = AnySampler::for_model(graph, DiffusionModel::IndependentCascade);
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut visited = VisitTracker::new(graph.num_nodes());
    if theta == 0 {
        return Vec::new();
    }
    let per_shard = theta.div_ceil(shards.max(1));
    let num_shards = theta.div_ceil(per_shard);
    let mut result: Vec<CoverageShard> =
        (0..num_shards).map(|_| CoverageShard::new(theta)).collect();
    let mut out = Vec::new();
    for i in 0..theta {
        sampler.sample(&mut rng, &mut out, &mut visited);
        result[i / per_shard].push_element(&out);
    }
    for s in &mut result {
        s.prepare();
    }
    result
}

/// Greedy top-k over the sharded sketch — the selection hot path.
pub fn select_top_k(shards: &[CoverageShard], k: usize) -> Vec<u32> {
    constrained_greedy(shards, k, &[], &[]).seeds
}

/// The deterministic seed sets the spread-batch workload queries.
pub fn batch_seed_sets(num_nodes: usize, batch: usize, per_query: usize) -> Vec<Vec<u32>> {
    (0..batch as u32)
        .map(|i| {
            (0..per_query as u32)
                .map(|j| (i * 131 + j * 17) % num_nodes.max(1) as u32)
                .collect()
        })
        .collect()
}

/// A pipelined spread-query batch through one reused cursor set — the
/// `REQ_BATCH` fast path. Returns the summed coverage (a checksum).
pub fn spread_batch(shards: &[CoverageShard], seed_sets: &[Vec<u32>]) -> u64 {
    let mut cursors = SketchCursors::new(shards);
    seed_sets
        .iter()
        .map(|seeds| cursors.seed_set_coverage(seeds))
        .sum()
}

/// The deterministic edit batch the stream-apply workload applies:
/// `edits` ops cycling insert → reweight → delete over spread-out node
/// pairs. Delta semantics make every op valid on any graph of `num_nodes`
/// nodes: inserts overwrite, reweights/deletes of missing edges are
/// no-ops — so the batch needs no knowledge of the edge set.
pub fn stream_edit_batch(num_nodes: usize, edits: usize, seq: u64) -> DeltaBatch {
    let n = num_nodes.max(2) as u32;
    let ops = (0..edits as u32)
        .map(|i| {
            let u = (i * 131 + 7) % n;
            // `1 + offset` is in `[1, n − 1]`, so `v` can never equal `u`.
            let v = (u + 1 + (i * 37) % (n - 1)) % n;
            match i % 3 {
                0 => EdgeOp::Insert { u, v, p: 0.3 },
                1 => EdgeOp::Reweight { u, v, p: 0.6 },
                _ => EdgeOp::Delete { u, v },
            }
        })
        .collect();
    DeltaBatch::new(seq, ops)
}

/// What one stream-apply pass did, alongside its timing.
#[derive(Clone, Copy, Debug)]
pub struct StreamApplyOutcome {
    /// Edge ops the batch carried.
    pub edits: usize,
    /// RR sets the batch invalidated — each one re-sampled on its
    /// original per-set stream against the mutated graph.
    pub sets_resampled: usize,
}

/// Best-of-`iters` timing of the edge-stream repair hot path: one DiIMM
/// machine holding `theta` resident RR sets applies an `edits`-op batch
/// and incrementally re-samples exactly the invalidated sets — what
/// `WorkerOp::ApplyDelta` costs per machine in `dim stream`. Each
/// iteration rebuilds an identical resident worker outside the timed
/// region (including the shard index build), so the measurement covers
/// only validate + graph rebuild + invalidation scan + re-sample +
/// element replacement.
pub fn time_stream_apply(
    graph: &Graph,
    theta: usize,
    edits: usize,
    iters: usize,
    seed: u64,
) -> (Duration, StreamApplyOutcome) {
    assert!(iters >= 1);
    let config = ImConfig {
        k: 1,
        epsilon: 0.5,
        delta: 0.1,
        seed,
        sampler: SamplerKind::Standard(DiffusionModel::IndependentCascade),
    };
    let batch = stream_edit_batch(graph.num_nodes(), edits, 0);
    let mut best: Option<Duration> = None;
    let mut outcome = None;
    for _ in 0..iters {
        let mut worker = DiimmWorker::new(graph, &config, 0);
        worker.generate(theta);
        worker.shard.prepare();
        let start = Instant::now();
        let repaired = worker
            .apply_delta(&batch)
            .expect("generated batch is valid for the graph");
        let elapsed = start.elapsed();
        if best.map_or(true, |b| elapsed < b) {
            best = Some(elapsed);
        }
        outcome = Some(StreamApplyOutcome {
            edits: batch.ops.len(),
            sets_resampled: repaired.len(),
        });
    }
    (best.unwrap(), outcome.unwrap())
}

/// What one speculative recovery pass rebuilt, alongside its timing.
#[derive(Clone, Copy, Debug)]
pub struct FaultRecoverOutcome {
    /// RR sets the surviving machine re-derived for the lost shard.
    pub rebuilt_sets: usize,
    /// Op rounds the victim completed before its link died.
    pub healthy_rounds: usize,
}

/// Best-of-`iters` timing of the speculative-recovery hot path: a 2-machine
/// cluster samples `theta` RR sets over `rounds` op rounds, machine 1's
/// link is killed on the final round, and the recovery layer rebuilds its
/// entire shard by replaying the op log on the lost machine's per-set RNG
/// streams. The timed region is exactly the killed round — quorum check,
/// source-fresh worker, full replay, and local service of the in-flight op
/// — which is what a real `Degraded` completion pays over a healthy run.
pub fn time_fault_recover(
    graph: &Graph,
    theta: usize,
    rounds: usize,
    iters: usize,
    seed: u64,
) -> (Duration, FaultRecoverOutcome) {
    assert!(iters >= 1 && rounds >= 2);
    let config = ImConfig {
        k: 1,
        epsilon: 0.5,
        delta: 0.1,
        seed,
        sampler: SamplerKind::Standard(DiffusionModel::IndependentCascade),
    };
    let per_round = theta.div_ceil(rounds) as u64;
    let mut best: Option<Duration> = None;
    let mut outcome = None;
    for _ in 0..iters {
        let workers: Vec<DiimmWorker> =
            (0..2).map(|i| DiimmWorker::new(graph, &config, i)).collect();
        let sim = SimCluster::new(workers, NetworkModel::cluster_1gbps(), ExecMode::Sequential)
            .with_faults(FaultInjector::new(
                FaultPlan::kill_machine(1, rounds as u64 - 1),
                2,
            ));
        let policy = RecoveryPolicy {
            min_survivors: 1,
            ..RecoveryPolicy::resample()
        };
        let mut cluster = RecoveringCluster::new(sim, graph, &config, policy);
        for _ in 0..rounds - 1 {
            cluster
                .control(phase::RR_SAMPLING, |_| WorkerOp::SampleRr { count: per_round })
                .expect("rounds before the kill are healthy");
        }
        let start = Instant::now();
        cluster
            .control(phase::RR_SAMPLING, |_| WorkerOp::SampleRr { count: per_round })
            .expect("single loss recovers under min_survivors = 1");
        let elapsed = start.elapsed();
        if best.map_or(true, |b| elapsed < b) {
            best = Some(elapsed);
        }
        let degraded = cluster
            .degraded_outcome()
            .expect("the kill round engaged recovery");
        outcome = Some(FaultRecoverOutcome {
            rebuilt_sets: degraded.rebuilt_sets as usize,
            healthy_rounds: rounds - 1,
        });
    }
    (best.unwrap(), outcome.unwrap())
}

/// Best-of-`iters` wall-clock of `f` (minimum is the standard
/// noise-robust point estimate for CPU-bound microbenchmarks).
pub fn time_best_of<T>(iters: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    assert!(iters >= 1);
    let mut best: Option<Duration> = None;
    let mut last = None;
    for _ in 0..iters {
        let start = Instant::now();
        let value = f();
        let elapsed = start.elapsed();
        if best.map_or(true, |b| elapsed < b) {
            best = Some(elapsed);
        }
        last = Some(value);
    }
    (best.unwrap(), last.unwrap())
}

/// The record `dim-benchrec` writes to `BENCH_sample_select.json` (one
/// JSON object per line; the file accumulates labeled entries such as
/// `before`/`after` pairs across optimization passes).
#[derive(Clone, Debug)]
pub struct SampleSelectReport {
    /// What this entry measures relative to its neighbors in the file
    /// (e.g. `"before-flat-hot-paths"`, `"after-flat-hot-paths"`).
    pub label: String,
    pub provenance: String,
    pub graph: String,
    pub num_nodes: usize,
    pub theta: usize,
    pub shards: usize,
    pub k: usize,
    pub batch: usize,
    pub sample_build_ms: f64,
    pub select_top_k_ms: f64,
    pub spread_batch_ms: f64,
    pub stream_apply_ms: f64,
    /// Edge ops the stream-apply phase pushed through one machine.
    pub stream_edits: usize,
    /// RR sets those edits invalidated (and the repair re-sampled).
    pub stream_resampled: usize,
    pub fault_recover_ms: f64,
    /// RR sets the speculative-recovery phase rebuilt for the lost shard.
    pub recover_rebuilt: usize,
}

/// The timed-phase keys a report records, shared by the writer and the
/// `--check` regression guard. The guard skips any key the committed
/// baseline entry predates, so adding a phase here never breaks `--check`
/// against an older trajectory file.
pub const PHASE_KEYS: [&str; 5] = [
    "sample_build_ms",
    "select_top_k_ms",
    "spread_batch_ms",
    "stream_apply_ms",
    "fault_recover_ms",
];

impl SampleSelectReport {
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"bench\":\"sample_select\",\"label\":\"{}\",\"provenance\":\"{}\",",
                "\"graph\":\"{}\",\"num_nodes\":{},\"theta\":{},",
                "\"shards\":{},\"k\":{},\"batch\":{},",
                "\"sample_build_ms\":{:.3},\"select_top_k_ms\":{:.3},",
                "\"spread_batch_ms\":{:.3},\"stream_apply_ms\":{:.3},",
                "\"stream_edits\":{},\"stream_resampled\":{},",
                "\"fault_recover_ms\":{:.3},\"recover_rebuilt\":{}}}"
            ),
            self.label,
            self.provenance,
            self.graph,
            self.num_nodes,
            self.theta,
            self.shards,
            self.k,
            self.batch,
            self.sample_build_ms,
            self.select_top_k_ms,
            self.spread_batch_ms,
            self.stream_apply_ms,
            self.stream_edits,
            self.stream_resampled,
            self.fault_recover_ms,
            self.recover_rebuilt,
        )
    }

    /// Reads one phase timing back by key.
    pub fn phase_ms(&self, key: &str) -> Option<f64> {
        match key {
            "sample_build_ms" => Some(self.sample_build_ms),
            "select_top_k_ms" => Some(self.select_top_k_ms),
            "spread_batch_ms" => Some(self.spread_batch_ms),
            "stream_apply_ms" => Some(self.stream_apply_ms),
            "fault_recover_ms" => Some(self.fault_recover_ms),
            _ => None,
        }
    }
}

/// Extracts field `key`'s numeric value from one serialized report line.
/// A minimal scanner (the report format is flat, fields never contain `,`
/// or `}`), so the `--check` regression guard works in offline-stub
/// builds where no real JSON parser is available.
pub fn json_number(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c == ',' || c == '}')
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_graph::generators::barabasi_albert;
    use dim_graph::WeightModel;

    #[test]
    fn workloads_are_deterministic_and_agree_with_direct_evaluation() {
        let graph = barabasi_albert(200, 3, WeightModel::WeightedCascade, 7);
        let shards = build_shards(&graph, 500, 3, 11);
        assert_eq!(shards.len(), 3);
        assert_eq!(
            shards
                .iter()
                .map(CoverageShard::num_elements)
                .sum::<usize>(),
            500
        );
        assert_eq!(
            shards
                .iter()
                .map(|s| s.num_sets())
                .collect::<std::collections::HashSet<_>>()
                .len(),
            1,
            "all shards index the same universe"
        );
        let again = build_shards(&graph, 500, 3, 11);
        let seeds = select_top_k(&shards, 5);
        assert_eq!(seeds.len(), 5);
        assert_eq!(seeds, select_top_k(&again, 5), "same seed, same sketch");

        let seed_sets = batch_seed_sets(graph.num_nodes(), 16, 3);
        assert!(seed_sets
            .iter()
            .all(|s| s.iter().all(|&v| (v as usize) < 200)));
        let total = spread_batch(&shards, &seed_sets);
        let direct: u64 = seed_sets
            .iter()
            .map(|s| dim_coverage::seed_set_coverage(&shards, s))
            .sum();
        assert_eq!(total, direct, "reused cursors match fresh evaluation");
    }

    #[test]
    fn stream_apply_workload_is_deterministic_and_repairs_sets() {
        let graph = barabasi_albert(200, 3, WeightModel::WeightedCascade, 7);
        let batch = stream_edit_batch(graph.num_nodes(), 30, 0);
        assert_eq!(batch.ops.len(), 30);
        batch.validate(graph.num_nodes()).expect("generated batch is valid");

        let (_, first) = time_stream_apply(&graph, 400, 30, 1, 11);
        let (_, again) = time_stream_apply(&graph, 400, 30, 2, 11);
        assert_eq!(first.edits, 30);
        assert!(first.sets_resampled > 0, "30 edits must invalidate some sets");
        assert!(first.sets_resampled <= 400);
        assert_eq!(
            first.sets_resampled, again.sets_resampled,
            "same seed, same invalidation"
        );
    }

    #[test]
    fn fault_recover_workload_rebuilds_the_full_lost_shard() {
        let graph = barabasi_albert(200, 3, WeightModel::WeightedCascade, 7);
        let (_, first) = time_fault_recover(&graph, 400, 4, 1, 11);
        let (_, again) = time_fault_recover(&graph, 400, 4, 2, 11);
        // The victim had completed 3 of 4 rounds of ⌈400/4⌉ sets each.
        assert_eq!(first.healthy_rounds, 3);
        assert_eq!(first.rebuilt_sets, 300, "replay rebuilds the whole shard");
        assert_eq!(first.rebuilt_sets, again.rebuilt_sets);
    }

    #[test]
    fn report_serializes_every_field() {
        let report = SampleSelectReport {
            label: "after".into(),
            provenance: "unit-test".into(),
            graph: "facebook:1".into(),
            num_nodes: 4039,
            theta: 20_000,
            shards: 4,
            k: 50,
            batch: 64,
            sample_build_ms: 12.5,
            select_top_k_ms: 3.25,
            spread_batch_ms: 1.125,
            stream_apply_ms: 2.75,
            stream_edits: 64,
            stream_resampled: 301,
            fault_recover_ms: 6.5,
            recover_rebuilt: 15_000,
        };
        let json = report.to_json();
        for key in [
            "\"bench\":\"sample_select\"",
            "\"label\":\"after\"",
            "\"provenance\":\"unit-test\"",
            "\"graph\":\"facebook:1\"",
            "\"theta\":20000",
            "\"sample_build_ms\":12.500",
            "\"select_top_k_ms\":3.250",
            "\"spread_batch_ms\":1.125",
            "\"stream_apply_ms\":2.750",
            "\"stream_edits\":64",
            "\"stream_resampled\":301",
            "\"fault_recover_ms\":6.500",
            "\"recover_rebuilt\":15000",
        ] {
            assert!(json.contains(key), "{json} missing {key}");
        }
        let (elapsed, value) = time_best_of(3, || 41 + 1);
        assert_eq!(value, 42);
        assert!(elapsed < Duration::from_secs(1));
    }

    #[test]
    fn json_number_roundtrips_phases() {
        let report = SampleSelectReport {
            label: "before".into(),
            provenance: "unit-test".into(),
            graph: "facebook:1".into(),
            num_nodes: 4039,
            theta: 20_000,
            shards: 4,
            k: 50,
            batch: 64,
            sample_build_ms: 92.897,
            select_top_k_ms: 5.644,
            spread_batch_ms: 0.107,
            stream_apply_ms: 4.012,
            stream_edits: 64,
            stream_resampled: 512,
            fault_recover_ms: 9.301,
            recover_rebuilt: 15_000,
        };
        let line = report.to_json();
        for key in PHASE_KEYS {
            let parsed = json_number(&line, key).unwrap();
            let original = report.phase_ms(key).unwrap();
            assert!(
                (parsed - original).abs() < 1e-9,
                "{key}: {parsed} vs {original}"
            );
        }
        assert_eq!(json_number(&line, "theta"), Some(20_000.0));
        assert_eq!(json_number(&line, "no_such_key"), None);
        assert_eq!(json_number("not json", "sample_build_ms"), None);
    }
}
