//! The sample/select benchmark workloads, shared by the
//! `benches/sample_select.rs` criterion harness and the `dim-benchrec`
//! binary that records `BENCH_sample_select.json` (same code timed two
//! ways, so the trajectory file and the criterion reports agree on what
//! was measured).

use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_pcg::Pcg64;

use dim_coverage::{constrained_greedy, CoverageShard, SketchCursors};
use dim_diffusion::rr::{AnySampler, RrSampler};
use dim_diffusion::visit::VisitTracker;
use dim_diffusion::DiffusionModel;
use dim_graph::Graph;

/// Samples `theta` RR sets under IC and builds the per-machine coverage
/// shards — what one `dim sample` machine does before persisting.
///
/// Each RR set is pushed straight into its shard's pooled arena instead of
/// being staged through a `Vec<Vec<u32>>`: one allocation per shard rather
/// than one per RR set. The RNG draw order and the shard assignment
/// (`theta.div_ceil(shards)` consecutive sets per shard) are unchanged, so
/// the sketch — and every seed selected from it — is byte-identical to the
/// staged construction.
pub fn build_shards(graph: &Graph, theta: usize, shards: usize, seed: u64) -> Vec<CoverageShard> {
    let sampler = AnySampler::for_model(graph, DiffusionModel::IndependentCascade);
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut visited = VisitTracker::new(graph.num_nodes());
    if theta == 0 {
        return Vec::new();
    }
    let per_shard = theta.div_ceil(shards.max(1));
    let num_shards = theta.div_ceil(per_shard);
    let mut result: Vec<CoverageShard> =
        (0..num_shards).map(|_| CoverageShard::new(theta)).collect();
    let mut out = Vec::new();
    for i in 0..theta {
        sampler.sample(&mut rng, &mut out, &mut visited);
        result[i / per_shard].push_element(&out);
    }
    for s in &mut result {
        s.prepare();
    }
    result
}

/// Greedy top-k over the sharded sketch — the selection hot path.
pub fn select_top_k(shards: &[CoverageShard], k: usize) -> Vec<u32> {
    constrained_greedy(shards, k, &[], &[]).seeds
}

/// The deterministic seed sets the spread-batch workload queries.
pub fn batch_seed_sets(num_nodes: usize, batch: usize, per_query: usize) -> Vec<Vec<u32>> {
    (0..batch as u32)
        .map(|i| {
            (0..per_query as u32)
                .map(|j| (i * 131 + j * 17) % num_nodes.max(1) as u32)
                .collect()
        })
        .collect()
}

/// A pipelined spread-query batch through one reused cursor set — the
/// `REQ_BATCH` fast path. Returns the summed coverage (a checksum).
pub fn spread_batch(shards: &[CoverageShard], seed_sets: &[Vec<u32>]) -> u64 {
    let mut cursors = SketchCursors::new(shards);
    seed_sets
        .iter()
        .map(|seeds| cursors.seed_set_coverage(seeds))
        .sum()
}

/// Best-of-`iters` wall-clock of `f` (minimum is the standard
/// noise-robust point estimate for CPU-bound microbenchmarks).
pub fn time_best_of<T>(iters: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    assert!(iters >= 1);
    let mut best: Option<Duration> = None;
    let mut last = None;
    for _ in 0..iters {
        let start = Instant::now();
        let value = f();
        let elapsed = start.elapsed();
        if best.map_or(true, |b| elapsed < b) {
            best = Some(elapsed);
        }
        last = Some(value);
    }
    (best.unwrap(), last.unwrap())
}

/// The record `dim-benchrec` writes to `BENCH_sample_select.json` (one
/// JSON object per line; the file accumulates labeled entries such as
/// `before`/`after` pairs across optimization passes).
#[derive(Clone, Debug)]
pub struct SampleSelectReport {
    /// What this entry measures relative to its neighbors in the file
    /// (e.g. `"before-flat-hot-paths"`, `"after-flat-hot-paths"`).
    pub label: String,
    pub provenance: String,
    pub graph: String,
    pub num_nodes: usize,
    pub theta: usize,
    pub shards: usize,
    pub k: usize,
    pub batch: usize,
    pub sample_build_ms: f64,
    pub select_top_k_ms: f64,
    pub spread_batch_ms: f64,
}

/// The timed-phase keys a report records, shared by the writer and the
/// `--check` regression guard.
pub const PHASE_KEYS: [&str; 3] = ["sample_build_ms", "select_top_k_ms", "spread_batch_ms"];

impl SampleSelectReport {
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"bench\":\"sample_select\",\"label\":\"{}\",\"provenance\":\"{}\",",
                "\"graph\":\"{}\",\"num_nodes\":{},\"theta\":{},",
                "\"shards\":{},\"k\":{},\"batch\":{},",
                "\"sample_build_ms\":{:.3},\"select_top_k_ms\":{:.3},",
                "\"spread_batch_ms\":{:.3}}}"
            ),
            self.label,
            self.provenance,
            self.graph,
            self.num_nodes,
            self.theta,
            self.shards,
            self.k,
            self.batch,
            self.sample_build_ms,
            self.select_top_k_ms,
            self.spread_batch_ms,
        )
    }

    /// Reads one phase timing back by key.
    pub fn phase_ms(&self, key: &str) -> Option<f64> {
        match key {
            "sample_build_ms" => Some(self.sample_build_ms),
            "select_top_k_ms" => Some(self.select_top_k_ms),
            "spread_batch_ms" => Some(self.spread_batch_ms),
            _ => None,
        }
    }
}

/// Extracts field `key`'s numeric value from one serialized report line.
/// A minimal scanner (the report format is flat, fields never contain `,`
/// or `}`), so the `--check` regression guard works in offline-stub
/// builds where no real JSON parser is available.
pub fn json_number(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c == ',' || c == '}')
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_graph::generators::barabasi_albert;
    use dim_graph::WeightModel;

    #[test]
    fn workloads_are_deterministic_and_agree_with_direct_evaluation() {
        let graph = barabasi_albert(200, 3, WeightModel::WeightedCascade, 7);
        let shards = build_shards(&graph, 500, 3, 11);
        assert_eq!(shards.len(), 3);
        assert_eq!(
            shards
                .iter()
                .map(CoverageShard::num_elements)
                .sum::<usize>(),
            500
        );
        assert_eq!(
            shards
                .iter()
                .map(|s| s.num_sets())
                .collect::<std::collections::HashSet<_>>()
                .len(),
            1,
            "all shards index the same universe"
        );
        let again = build_shards(&graph, 500, 3, 11);
        let seeds = select_top_k(&shards, 5);
        assert_eq!(seeds.len(), 5);
        assert_eq!(seeds, select_top_k(&again, 5), "same seed, same sketch");

        let seed_sets = batch_seed_sets(graph.num_nodes(), 16, 3);
        assert!(seed_sets
            .iter()
            .all(|s| s.iter().all(|&v| (v as usize) < 200)));
        let total = spread_batch(&shards, &seed_sets);
        let direct: u64 = seed_sets
            .iter()
            .map(|s| dim_coverage::seed_set_coverage(&shards, s))
            .sum();
        assert_eq!(total, direct, "reused cursors match fresh evaluation");
    }

    #[test]
    fn report_serializes_every_field() {
        let report = SampleSelectReport {
            label: "after".into(),
            provenance: "unit-test".into(),
            graph: "facebook:1".into(),
            num_nodes: 4039,
            theta: 20_000,
            shards: 4,
            k: 50,
            batch: 64,
            sample_build_ms: 12.5,
            select_top_k_ms: 3.25,
            spread_batch_ms: 1.125,
        };
        let json = report.to_json();
        for key in [
            "\"bench\":\"sample_select\"",
            "\"label\":\"after\"",
            "\"provenance\":\"unit-test\"",
            "\"graph\":\"facebook:1\"",
            "\"theta\":20000",
            "\"sample_build_ms\":12.500",
            "\"select_top_k_ms\":3.250",
            "\"spread_batch_ms\":1.125",
        ] {
            assert!(json.contains(key), "{json} missing {key}");
        }
        let (elapsed, value) = time_best_of(3, || 41 + 1);
        assert_eq!(value, 42);
        assert!(elapsed < Duration::from_secs(1));
    }

    #[test]
    fn json_number_roundtrips_phases() {
        let report = SampleSelectReport {
            label: "before".into(),
            provenance: "unit-test".into(),
            graph: "facebook:1".into(),
            num_nodes: 4039,
            theta: 20_000,
            shards: 4,
            k: 50,
            batch: 64,
            sample_build_ms: 92.897,
            select_top_k_ms: 5.644,
            spread_batch_ms: 0.107,
        };
        let line = report.to_json();
        for key in PHASE_KEYS {
            let parsed = json_number(&line, key).unwrap();
            let original = report.phase_ms(key).unwrap();
            assert!(
                (parsed - original).abs() < 1e-9,
                "{key}: {parsed} vs {original}"
            );
        }
        assert_eq!(json_number(&line, "theta"), Some(20_000.0));
        assert_eq!(json_number(&line, "no_such_key"), None);
        assert_eq!(json_number("not json", "sample_build_ms"), None);
    }
}
