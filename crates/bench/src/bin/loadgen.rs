//! `dim-loadgen` — open-loop load generator for a running `dim serve`.
//!
//! ```text
//! dim-loadgen --addr 127.0.0.1:7117 [--concurrency 8] [--requests 200]
//!             [--batch 32] [--seeds-per-query 4] [--seed 42]
//!             [--timeout 10] [--out BENCH_serve.json]
//!             [--provenance LABEL] [--tenants N]
//! ```
//!
//! Drives the same deterministic spread-query stream twice at equal
//! concurrency — plain request/response, then pipelined `REQ_BATCH` —
//! prints a comparison table, and writes the joint client/server record
//! to `--out` (the `BENCH_serve.json` artifact CI uploads). Exits
//! non-zero if any query errored; the batched-vs-unbatched comparison is
//! recorded, not enforced, so a noisy runner cannot flake the build.
//!
//! `--tenants N` targets a multi-tenant server (`dim serve --tenants`)
//! whose registry uses the bench credential convention (`tenant-0` …
//! `tenant-{N-1}` with tokens `tenant-<i>-token`): the baseline phases
//! run authenticated as `tenant-0`, then a third phase splits the same
//! total concurrency round-robin across all N tenants and appends the
//! per-tenant throughput as the report's `multi_tenant` key (absent from
//! older baselines, so consumers must treat it as optional).

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;

use dim_bench::serve_bench::{
    default_tenant_credentials, run, run_multi_tenant, LoadgenConfig, PhaseResult,
};
use dim_serve::ConnectOptions;

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {flag:?}"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        map.insert(name.to_string(), value.clone());
    }
    Ok(map)
}

fn num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("bad --{name} value {s:?}")),
    }
}

fn phase_row(name: &str, p: &PhaseResult) {
    println!(
        "{name:>10} {:>6} {:>8} {:>12.1} {:>9} {:>9} {:>9} {:>9}",
        p.batch, p.queries, p.throughput_qps, p.p50_us, p.p95_us, p.p99_us, p.max_us
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_loadgen(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_loadgen(args: &[String]) -> Result<bool, String> {
    let flags = parse_flags(args)?;
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7117".to_string());
    let tenants = num(&flags, "tenants", 0usize)?;
    let credentials = default_tenant_credentials(tenants);
    let connect = ConnectOptions {
        deadline: Duration::from_secs(num(&flags, "timeout", 10u64)?),
        // Against a multi-tenant server the baseline runs as tenant-0.
        credentials: credentials.first().cloned(),
        ..ConnectOptions::default()
    };
    // Discover the node-id space from the server itself.
    let stats = dim_bench::serve_bench::fetch_stats(&addr, &connect)
        .map_err(|e| format!("cannot reach server at {addr}: {e}"))?;
    let config = LoadgenConfig {
        addr,
        concurrency: num(&flags, "concurrency", 8usize)?,
        requests_per_client: num(&flags, "requests", 200usize)?,
        batch: num(&flags, "batch", 32usize)?,
        seeds_per_query: num(&flags, "seeds-per-query", 4usize)?,
        num_nodes: stats.num_nodes.min(u32::MAX as u64) as u32,
        seed: num(&flags, "seed", 42u64)?,
        connect,
    };
    println!(
        "dim-loadgen: {} clients x {} queries against {} \
         ({} RR sets, n = {}, generation {})",
        config.concurrency,
        config.requests_per_client,
        config.addr,
        stats.theta,
        stats.num_nodes,
        stats.generation
    );
    let mut report = run(&config, flags.get("provenance").map_or("local", |s| s))
        .map_err(|e| format!("load generation failed: {e}"))?;
    if !credentials.is_empty() {
        let m = run_multi_tenant(&config, &credentials)
            .map_err(|e| format!("multi-tenant phase failed: {e}"))?;
        println!(
            "multi-tenant: {} tenants x {:.1} qps each = {:.1} qps aggregate \
             ({} queries, {} errors)",
            m.tenants,
            m.per_tenant
                .iter()
                .map(|t| t.throughput_qps)
                .fold(f64::INFINITY, f64::min),
            m.throughput_qps,
            m.queries,
            m.errors
        );
        report.multi_tenant = Some(m);
    }
    println!(
        "{:>10} {:>6} {:>8} {:>12} {:>9} {:>9} {:>9} {:>9}",
        "phase", "batch", "queries", "qps", "p50_us", "p95_us", "p99_us", "max_us"
    );
    phase_row("unbatched", &report.unbatched);
    phase_row("batched", &report.batched);
    println!(
        "batching: {} ({:.2}x throughput at concurrency {})",
        if report.batching_wins() {
            "wins"
        } else {
            "LOSES"
        },
        report.batched.throughput_qps / report.unbatched.throughput_qps.max(1e-9),
        report.concurrency
    );
    let out = flags.get("out").map_or("BENCH_serve.json", |s| s);
    std::fs::write(out, format!("{}\n", report.to_json()))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    let errors = report.unbatched.errors
        + report.batched.errors
        + report.multi_tenant.as_ref().map_or(0, |m| m.errors);
    if errors > 0 {
        eprintln!("dim-loadgen: {errors} queries errored");
    }
    Ok(errors == 0)
}
