//! `dim-benchrec` — records the sample/select hot-path trajectory point
//! (`BENCH_sample_select.json`) without the criterion harness, so the
//! file regenerates in seconds on any machine (including offline-stub
//! builds, which must tag `--provenance offline-stub`: the stub RNG
//! changes the sampled sketch, so those numbers are only comparable to
//! other offline-stub runs).
//!
//! ```text
//! dim-benchrec [--graph facebook] [--scale 1.0] [--theta 20000]
//!              [--shards 4] [--k 50] [--batch 64] [--edits 64]
//!              [--iters 3] [--out BENCH_sample_select.json]
//!              [--provenance LABEL] [--label NAME] [--append true]
//!              [--check FILE]
//! ```
//!
//! `--label` tags the recorded line (e.g. `before` / `after` around an
//! optimization). `--append true` appends to `--out` instead of
//! overwriting, building up the JSONL trajectory. `--check FILE` is the
//! CI regression guard: measure fresh, compare each timed phase against
//! the last entry of the committed FILE, and exit nonzero if any phase
//! regressed by more than 20% (plus a small absolute slack for
//! sub-millisecond phases); in check mode nothing is written unless
//! `--out` is given explicitly.

use std::collections::HashMap;
use std::process::ExitCode;

use dim_bench::sample_select::{
    batch_seed_sets, build_shards, json_number, select_top_k, spread_batch, time_best_of,
    time_fault_recover, time_stream_apply, SampleSelectReport, PHASE_KEYS,
};
use dim_graph::DatasetProfile;

/// Relative regression budget for `--check`.
const CHECK_TOLERANCE: f64 = 0.20;
/// Absolute slack in ms, so scheduler jitter on sub-millisecond phases
/// (spread_batch runs in ~0.1 ms) cannot trip the relative gate.
const CHECK_SLACK_MS: f64 = 0.5;

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {flag:?}"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        map.insert(name.to_string(), value.clone());
    }
    Ok(map)
}

fn num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("bad --{name} value {s:?}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match record(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn record(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let name = flags.get("graph").map_or("facebook", |s| s.as_str());
    let profile = DatasetProfile::parse(name).ok_or_else(|| format!("unknown profile {name:?}"))?;
    let scale: f64 = num(&flags, "scale", 1.0)?;
    let theta: usize = num(&flags, "theta", 20_000usize)?;
    let shards: usize = num(&flags, "shards", 4usize)?;
    let k: usize = num(&flags, "k", 50usize)?;
    let batch: usize = num(&flags, "batch", 64usize)?;
    let edits: usize = num(&flags, "edits", 64usize)?;
    let iters: usize = num(&flags, "iters", 3usize)?.max(1);
    let graph = profile.generate(scale, 42);

    let (sample_elapsed, sketch) = time_best_of(iters, || build_shards(&graph, theta, shards, 7));
    let (select_elapsed, seeds) = time_best_of(iters, || select_top_k(&sketch, k));
    let seed_sets = batch_seed_sets(graph.num_nodes(), batch, 4);
    let (batch_elapsed, coverage) = time_best_of(iters, || spread_batch(&sketch, &seed_sets));
    let (stream_elapsed, stream) = time_stream_apply(&graph, theta, edits, iters, 7);
    let (recover_elapsed, recover) = time_fault_recover(&graph, theta, 4, iters, 7);

    let report = SampleSelectReport {
        label: flags.get("label").map_or("current", |s| s).to_string(),
        provenance: flags.get("provenance").map_or("local", |s| s).to_string(),
        graph: format!("{name}:{scale}"),
        num_nodes: graph.num_nodes(),
        theta,
        shards,
        k,
        batch,
        sample_build_ms: sample_elapsed.as_secs_f64() * 1e3,
        select_top_k_ms: select_elapsed.as_secs_f64() * 1e3,
        spread_batch_ms: batch_elapsed.as_secs_f64() * 1e3,
        stream_apply_ms: stream_elapsed.as_secs_f64() * 1e3,
        stream_edits: stream.edits,
        stream_resampled: stream.sets_resampled,
        fault_recover_ms: recover_elapsed.as_secs_f64() * 1e3,
        recover_rebuilt: recover.rebuilt_sets,
    };
    println!(
        "dim-benchrec: {name}:{scale} (n = {}), θ = {theta} in {shards} shard(s), \
         best of {iters}",
        graph.num_nodes()
    );
    println!("  sample+build: {:>10.3} ms", report.sample_build_ms);
    println!(
        "  select top{k}: {:>10.3} ms (first seed {:?})",
        report.select_top_k_ms,
        seeds.first()
    );
    println!(
        "  spread x{batch}: {:>10.3} ms (coverage checksum {coverage})",
        report.spread_batch_ms
    );
    let edits_per_sec = report.stream_edits as f64 / (report.stream_apply_ms / 1e3).max(1e-9);
    println!(
        "  stream x{edits}: {:>10.3} ms ({edits_per_sec:.0} edits/s, {} sets resampled)",
        report.stream_apply_ms, report.stream_resampled
    );
    println!(
        "  fault recover: {:>9.3} ms ({} sets rebuilt after a single-machine loss)",
        report.fault_recover_ms, report.recover_rebuilt
    );
    let check_result = match flags.get("check") {
        Some(committed) => Some(check_regression(committed, &report)?),
        None => None,
    };

    // In check mode, only write when the caller names a destination —
    // the guard must never clobber the committed trajectory file.
    let out = match (flags.get("out"), check_result.is_some()) {
        (Some(o), _) => Some(o.as_str()),
        (None, true) => None,
        (None, false) => Some("BENCH_sample_select.json"),
    };
    if let Some(out) = out {
        let line = format!("{}\n", report.to_json());
        let append = flags.get("append").map(String::as_str) == Some("true");
        let payload = if append {
            let mut existing = std::fs::read_to_string(out).unwrap_or_default();
            existing.push_str(&line);
            existing
        } else {
            line
        };
        std::fs::write(out, payload).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote {out}");
    }
    match check_result {
        Some(true) | None => Ok(()),
        Some(false) => Err("bench regression gate failed".into()),
    }
}

/// Compares the fresh measurement against the last recorded entry of
/// `committed`. Returns `Ok(false)` when any phase regressed beyond the
/// budget; errors only on unreadable/unparsable files.
fn check_regression(committed: &str, fresh: &SampleSelectReport) -> Result<bool, String> {
    let contents =
        std::fs::read_to_string(committed).map_err(|e| format!("cannot read {committed}: {e}"))?;
    let baseline = contents
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .ok_or_else(|| format!("{committed} has no recorded entries"))?;
    let label = baseline
        .split("\"label\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .unwrap_or("?");
    println!("checking against {committed} (entry {label:?}):");
    let mut ok = true;
    for key in PHASE_KEYS {
        // A committed entry may predate a phase (e.g. `stream_apply_ms`
        // landed after the trajectory started): skip it instead of
        // failing, so --check keeps working against older baselines.
        let Some(was) = json_number(baseline, key) else {
            println!("  {key}: not recorded in baseline entry, skipped");
            continue;
        };
        let now = fresh.phase_ms(key).expect("known phase key");
        let budget = was * (1.0 + CHECK_TOLERANCE) + CHECK_SLACK_MS;
        let verdict = if now <= budget { "ok" } else { "REGRESSED" };
        println!("  {key}: {now:.3} ms vs recorded {was:.3} ms (budget {budget:.3}) {verdict}");
        ok &= now <= budget;
    }
    Ok(ok)
}
