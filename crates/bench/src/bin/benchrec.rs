//! `dim-benchrec` — records the sample/select hot-path trajectory point
//! (`BENCH_sample_select.json`) without the criterion harness, so the
//! file regenerates in seconds on any machine (including offline-stub
//! builds, which must tag `--provenance offline-stub`: the stub RNG
//! changes the sampled sketch, so those numbers are only comparable to
//! other offline-stub runs).
//!
//! ```text
//! dim-benchrec [--graph facebook] [--scale 1.0] [--theta 20000]
//!              [--shards 4] [--k 50] [--batch 64] [--iters 3]
//!              [--out BENCH_sample_select.json] [--provenance LABEL]
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use dim_bench::sample_select::{
    batch_seed_sets, build_shards, select_top_k, spread_batch, time_best_of, SampleSelectReport,
};
use dim_graph::DatasetProfile;

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {flag:?}"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        map.insert(name.to_string(), value.clone());
    }
    Ok(map)
}

fn num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("bad --{name} value {s:?}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match record(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn record(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let name = flags.get("graph").map_or("facebook", |s| s.as_str());
    let profile = DatasetProfile::parse(name).ok_or_else(|| format!("unknown profile {name:?}"))?;
    let scale: f64 = num(&flags, "scale", 1.0)?;
    let theta: usize = num(&flags, "theta", 20_000usize)?;
    let shards: usize = num(&flags, "shards", 4usize)?;
    let k: usize = num(&flags, "k", 50usize)?;
    let batch: usize = num(&flags, "batch", 64usize)?;
    let iters: usize = num(&flags, "iters", 3usize)?.max(1);
    let graph = profile.generate(scale, 42);

    let (sample_elapsed, sketch) = time_best_of(iters, || build_shards(&graph, theta, shards, 7));
    let (select_elapsed, seeds) = time_best_of(iters, || select_top_k(&sketch, k));
    let seed_sets = batch_seed_sets(graph.num_nodes(), batch, 4);
    let (batch_elapsed, coverage) = time_best_of(iters, || spread_batch(&sketch, &seed_sets));

    let report = SampleSelectReport {
        provenance: flags.get("provenance").map_or("local", |s| s).to_string(),
        graph: format!("{name}:{scale}"),
        num_nodes: graph.num_nodes(),
        theta,
        shards,
        k,
        batch,
        sample_build_ms: sample_elapsed.as_secs_f64() * 1e3,
        select_top_k_ms: select_elapsed.as_secs_f64() * 1e3,
        spread_batch_ms: batch_elapsed.as_secs_f64() * 1e3,
    };
    println!(
        "dim-benchrec: {name}:{scale} (n = {}), θ = {theta} in {shards} shard(s), \
         best of {iters}",
        graph.num_nodes()
    );
    println!("  sample+build: {:>10.3} ms", report.sample_build_ms);
    println!(
        "  select top{k}: {:>10.3} ms (first seed {:?})",
        report.select_top_k_ms,
        seeds.first()
    );
    println!(
        "  spread x{batch}: {:>10.3} ms (coverage checksum {coverage})",
        report.spread_batch_ms
    );
    let out = flags.get("out").map_or("BENCH_sample_select.json", |s| s);
    std::fs::write(out, format!("{}\n", report.to_json()))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}
