//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment|all> [flags]
//!
//! experiments:
//!   table2 table3 table4 fig5 fig6 fig7 fig8 fig9 fig10
//!   ablation-traffic ablation-greedy ablation-sampler
//!
//! flags:
//!   --quick              quarter scale, looser ε, shorter sweeps
//!   --epsilon <ε>        approximation error (default 0.2)
//!   --k <k>              seed-set size (default 50)
//!   --seed <s>           master RNG seed (default 42)
//!   --scale <f>          multiply every dataset scale by f
//!   --datasets <a,b,..>  facebook, googleplus, livejournal, twitter
//!   --machines <a,b,..>  machine/core counts to sweep
//!   --backend <b>        sequential | threads | rayon | proc (needs
//!                        --features proc-backend; DiIMM scaling figures
//!                        then report measured next to modeled comm time)
//!   --out <dir>          JSON output directory (default results/)
//! ```

use dim_bench::{experiments, Context};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((name, rest)) = args.split_first() else {
        usage();
        std::process::exit(2);
    };
    if name == "--help" || name == "-h" || name == "help" {
        usage();
        return;
    }
    let ctx = match Context::parse(rest) {
        Ok(ctx) => ctx,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            usage();
            std::process::exit(2);
        }
    };
    if !experiments::run(name, &ctx) {
        eprintln!("error: unknown experiment {name:?}\n");
        usage();
        std::process::exit(2);
    }
}

fn usage() {
    eprintln!("usage: repro <experiment|all> [flags]\n\nexperiments:");
    for (name, desc, _) in experiments::EXPERIMENTS {
        eprintln!("  {name:<18} {desc}");
    }
    eprintln!(
        "\nflags:\n  --quick | --epsilon <e> | --k <k> | --seed <s> | --scale <f>\n  --datasets <a,b,..> | --machines <a,b,..> | --backend <b> | --out <dir>"
    );
}
