//! Shared experiment configuration, parsed from CLI flags.

use dim_cluster::ExecMode;
use dim_graph::{DatasetProfile, Graph};

/// Which cluster backend the experiments run on (`--backend` flag).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// In-process `SimCluster` with the given execution mode.
    Sim(ExecMode),
    /// Process-per-machine TCP backend (`ProcCluster`); only the DiIMM
    /// scaling experiments support it, and only when the harness is built
    /// with `--features proc-backend`.
    Proc,
    /// Rendezvous TCP backend (`JoinCluster`): pre-started
    /// `dim-worker --connect ADDR --join` processes register with the
    /// master at `DIM_MASTER_BIND` instead of being spawned. Same
    /// restrictions as `Proc`, and the rendezvous latency lands in each
    /// row's phase breakdown under the `rendezvous` label.
    Join,
}

/// Configuration shared by all experiments.
#[derive(Clone, Debug)]
pub struct Context {
    /// Per-dataset node-count scale relative to the real datasets
    /// (Table III sizes). Order follows [`DatasetProfile::ALL`].
    pub scales: [f64; 4],
    /// Approximation error ε (paper: 0.01; reproduction default: 0.1 — see
    /// DESIGN.md §4 for why).
    pub epsilon: f64,
    /// Seed-set size k (paper default: 50).
    pub k: usize,
    /// Master RNG seed.
    pub seed: u64,
    /// Datasets to run (subset of [`DatasetProfile::ALL`]).
    pub datasets: Vec<DatasetProfile>,
    /// Machine counts for cluster experiments (Figs. 5, 8).
    pub cluster_machines: Vec<usize>,
    /// Core counts for multi-core experiments (Figs. 6, 7, 9, 10).
    pub core_counts: Vec<usize>,
    /// Directory for JSON result dumps.
    pub out_dir: String,
    /// Cluster backend (`--backend sequential|threads|rayon|proc`).
    pub backend: Backend,
}

impl Default for Context {
    fn default() -> Self {
        Context {
            // Defaults keep every dataset's RR generation tractable on a
            // small host while preserving each profile's density and skew:
            // Facebook runs at full size; the directed graphs are scaled to
            // 16K / 121K / 208K nodes. Sized so the single-machine baseline
            // costs seconds of compute, keeping the compute:communication
            // ratio in the paper's regime.
            scales: [1.0, 0.15, 0.025, 0.005],
            epsilon: 0.1,
            k: 50,
            seed: 42,
            datasets: DatasetProfile::ALL.to_vec(),
            cluster_machines: vec![1, 2, 4, 8, 16],
            core_counts: vec![1, 2, 4, 8, 16, 32, 64],
            out_dir: "results".to_string(),
            backend: Backend::Sim(ExecMode::Sequential),
        }
    }
}

impl Context {
    /// Parses CLI flags (everything after the experiment name). Returns an
    /// error message on unknown or malformed flags.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut ctx = Context::default();
        let mut it = args.iter().peekable();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("flag {name} needs a value"))
            };
            match flag.as_str() {
                "--quick" => {
                    // Quarter scale, looser ε, shorter sweeps.
                    for s in &mut ctx.scales {
                        *s *= 0.25;
                    }
                    ctx.epsilon = 0.25;
                    ctx.cluster_machines = vec![1, 4, 16];
                    ctx.core_counts = vec![1, 4, 16, 64];
                }
                "--epsilon" => ctx.epsilon = parse_num(&value("--epsilon")?)?,
                "--k" => ctx.k = parse_num::<f64>(&value("--k")?)? as usize,
                "--seed" => ctx.seed = parse_num::<f64>(&value("--seed")?)? as u64,
                "--scale" => {
                    let f: f64 = parse_num(&value("--scale")?)?;
                    for s in &mut ctx.scales {
                        *s *= f;
                    }
                }
                "--out" => ctx.out_dir = value("--out")?,
                "--datasets" => {
                    let list = value("--datasets")?;
                    ctx.datasets = list
                        .split(',')
                        .map(|name| {
                            DatasetProfile::parse(name)
                                .ok_or_else(|| format!("unknown dataset {name:?}"))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "--machines" => {
                    let list = value("--machines")?;
                    ctx.cluster_machines = parse_usize_list(&list)?;
                    ctx.core_counts = ctx.cluster_machines.clone();
                }
                "--backend" => {
                    ctx.backend = match value("--backend")?.as_str() {
                        "sequential" | "seq" => Backend::Sim(ExecMode::Sequential),
                        "threads" => Backend::Sim(ExecMode::Threads),
                        "rayon" => Backend::Sim(ExecMode::Rayon),
                        "proc" if cfg!(feature = "proc-backend") => Backend::Proc,
                        "join" if cfg!(feature = "proc-backend") => Backend::Join,
                        name @ ("proc" | "join") => {
                            return Err(format!(
                                "backend {name:?} needs a build with --features proc-backend"
                            ))
                        }
                        other => return Err(format!("unknown backend {other:?}")),
                    };
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if ctx.datasets.is_empty() {
            return Err("no datasets selected".into());
        }
        Ok(ctx)
    }

    /// The `SimCluster` execution mode for experiments that only run on
    /// the simulated backend; `--backend proc` falls back to `Sequential`
    /// there (the process backend's master side is sequential anyway).
    pub fn exec_mode(&self) -> ExecMode {
        match self.backend {
            Backend::Sim(mode) => mode,
            Backend::Proc | Backend::Join => ExecMode::Sequential,
        }
    }

    /// The scale configured for `profile`.
    pub fn scale_of(&self, profile: DatasetProfile) -> f64 {
        let idx = DatasetProfile::ALL
            .iter()
            .position(|p| *p == profile)
            .expect("profile in ALL");
        self.scales[idx]
    }

    /// Generates the (scaled) graph for `profile` with this context's seed.
    pub fn graph(&self, profile: DatasetProfile) -> Graph {
        profile.generate(self.scale_of(profile), self.seed)
    }
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad number {s:?}"))
}

fn parse_usize_list(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|x| x.trim().parse().map_err(|_| format!("bad count {x:?}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let ctx = Context::parse(&[]).unwrap();
        assert_eq!(ctx.k, 50);
        assert_eq!(ctx.datasets.len(), 4);
        assert_eq!(ctx.cluster_machines, vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn parses_flags() {
        let ctx = Context::parse(&args(&[
            "--epsilon", "0.1", "--k", "10", "--datasets", "facebook,tw", "--seed", "7",
        ]))
        .unwrap();
        assert_eq!(ctx.epsilon, 0.1);
        assert_eq!(ctx.k, 10);
        assert_eq!(ctx.seed, 7);
        assert_eq!(
            ctx.datasets,
            vec![DatasetProfile::Facebook, DatasetProfile::Twitter]
        );
    }

    #[test]
    fn quick_mode_shrinks() {
        let ctx = Context::parse(&args(&["--quick"])).unwrap();
        assert!(ctx.scales[0] < 1.0);
        assert_eq!(ctx.core_counts, vec![1, 4, 16, 64]);
    }

    #[test]
    fn machines_override() {
        let ctx = Context::parse(&args(&["--machines", "1,2,3"])).unwrap();
        assert_eq!(ctx.cluster_machines, vec![1, 2, 3]);
        assert_eq!(ctx.core_counts, vec![1, 2, 3]);
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(Context::parse(&args(&["--nope"])).is_err());
        assert!(Context::parse(&args(&["--datasets", "mars"])).is_err());
        assert!(Context::parse(&args(&["--epsilon"])).is_err());
    }

    #[test]
    fn parses_backend() {
        let ctx = Context::parse(&args(&["--backend", "threads"])).unwrap();
        assert_eq!(ctx.backend, Backend::Sim(ExecMode::Threads));
        assert_eq!(ctx.exec_mode(), ExecMode::Threads);
        assert!(Context::parse(&args(&["--backend", "mpi"])).is_err());
        let proc = Context::parse(&args(&["--backend", "proc"]));
        let join = Context::parse(&args(&["--backend", "join"]));
        if cfg!(feature = "proc-backend") {
            assert_eq!(proc.unwrap().backend, Backend::Proc);
            let join = join.unwrap();
            assert_eq!(join.backend, Backend::Join);
            assert_eq!(join.exec_mode(), ExecMode::Sequential);
        } else {
            assert!(proc.is_err());
            assert!(join.is_err());
        }
    }

    #[test]
    fn scale_of_matches_order() {
        let ctx = Context::default();
        assert_eq!(ctx.scale_of(DatasetProfile::Facebook), 1.0);
        assert_eq!(ctx.scale_of(DatasetProfile::Twitter), 0.005);
    }
}
