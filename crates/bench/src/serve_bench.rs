//! Open-loop load generation against a running `dim serve` instance —
//! the engine of the `dim-loadgen` binary and of the serve-tier CI
//! benchmark.
//!
//! A run drives the same query mix twice at equal concurrency: once as
//! single `REQ_SPREAD` frames (one decode per query) and once pipelined
//! through `REQ_BATCH` (one decode per N queries), so the report
//! quantifies exactly what batching buys. Client-side latencies go
//! through the serving tier's own [`LatencyHistogram`], and the final
//! report joins them with the server's `REQ_STATS` view into the
//! hand-rolled JSON that lands in `BENCH_serve.json` (dependency-free,
//! so offline builds produce real files too).

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dim_serve::{
    ConnectOptions, Credentials, LatencyHistogram, QueryClient, QueryRequest, QueryResponse,
    SketchStats,
};

/// One load-generation run's shape.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server address (`HOST:PORT`).
    pub addr: String,
    /// Client threads, each with its own connection.
    pub concurrency: usize,
    /// Queries each client issues per phase.
    pub requests_per_client: usize,
    /// Queries pipelined per `REQ_BATCH` frame in the batched phase.
    pub batch: usize,
    /// Seed nodes per spread query.
    pub seeds_per_query: usize,
    /// Node-id space to draw seed sets from (from `REQ_STATS` usually).
    pub num_nodes: u32,
    /// Jitter/workload seed — two runs with one seed issue identical
    /// query streams.
    pub seed: u64,
    /// Connect retry policy (loadgen usually starts with the server).
    pub connect: ConnectOptions,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7117".to_string(),
            concurrency: 8,
            requests_per_client: 200,
            batch: 32,
            seeds_per_query: 4,
            num_nodes: 1,
            seed: 42,
            connect: ConnectOptions::default(),
        }
    }
}

/// Measured outcome of one phase (unbatched or batched).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseResult {
    /// Queries per `REQ_BATCH` frame (1 = plain request/response).
    pub batch: usize,
    /// Spread queries answered successfully.
    pub queries: u64,
    /// Queries that came back as errors (wire or server-side).
    pub errors: u64,
    /// Wall-clock for the whole phase across all clients.
    pub elapsed: Duration,
    /// `queries / elapsed`.
    pub throughput_qps: f64,
    /// Client-observed wire latency per frame, µs.
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

impl PhaseResult {
    /// JSON object fragment (all fields; elapsed in seconds).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"batch\":{},\"queries\":{},\"errors\":{},",
                "\"elapsed_s\":{:.6},\"throughput_qps\":{:.1},",
                "\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{}}}"
            ),
            self.batch,
            self.queries,
            self.errors,
            self.elapsed.as_secs_f64(),
            self.throughput_qps,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.max_us,
        )
    }
}

/// splitmix64 — the workload stream. Deterministic per (seed, client),
/// so reruns and the two phases issue the same queries.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The spread queries client `client_idx` issues in one phase.
fn client_queries(config: &LoadgenConfig, client_idx: usize) -> Vec<QueryRequest> {
    let mut state = config.seed ^ (client_idx as u64).wrapping_mul(0xA24B_AED4_963E_E407);
    (0..config.requests_per_client)
        .map(|_| {
            let seeds = (0..config.seeds_per_query)
                .map(|_| (splitmix64(&mut state) % config.num_nodes.max(1) as u64) as u32)
                .collect();
            QueryRequest::Spread { seeds }
        })
        .collect()
}

/// Runs one phase at `config.concurrency` clients. `batch == 1` sends
/// plain request/response frames; `batch > 1` pipelines that many
/// queries per `REQ_BATCH` frame (same total query count).
pub fn run_phase(config: &LoadgenConfig, batch: usize) -> io::Result<PhaseResult> {
    assert!(batch >= 1, "batch must be at least 1");
    let latency = Arc::new(LatencyHistogram::new());
    let ok = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::with_capacity(config.concurrency);
    for client_idx in 0..config.concurrency {
        let queries = client_queries(config, client_idx);
        let (latency, ok, errors) = (latency.clone(), ok.clone(), errors.clone());
        let (addr, connect) = (config.addr.clone(), config.connect.clone());
        handles.push(std::thread::spawn(move || -> io::Result<()> {
            let mut client = QueryClient::connect_with(&*addr, &connect)?;
            for chunk in queries.chunks(batch) {
                let sent = Instant::now();
                let replies = if batch == 1 {
                    vec![client.request(&chunk[0])?]
                } else {
                    client.batch(chunk)?
                };
                latency.record(sent.elapsed().as_micros() as u64);
                for reply in replies {
                    match reply {
                        QueryResponse::Spread { .. } => ok.fetch_add(1, Ordering::Relaxed),
                        _ => errors.fetch_add(1, Ordering::Relaxed),
                    };
                }
            }
            Ok(())
        }));
    }
    for handle in handles {
        match handle.join() {
            Ok(Ok(())) => {}
            // A client that died mid-stream (e.g. shed) contributes its
            // unanswered queries as errors rather than aborting the run.
            Ok(Err(_)) => {
                errors.fetch_add(1, Ordering::Relaxed);
            }
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
    let elapsed = start.elapsed();
    let queries = ok.load(Ordering::Relaxed);
    Ok(PhaseResult {
        batch,
        queries,
        errors: errors.load(Ordering::Relaxed),
        elapsed,
        throughput_qps: queries as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: latency.quantile(0.50),
        p95_us: latency.quantile(0.95),
        p99_us: latency.quantile(0.99),
        max_us: latency.max(),
    })
}

/// One `REQ_STATS` roundtrip (also how loadgen discovers `num_nodes`).
pub fn fetch_stats(addr: &str, connect: &ConnectOptions) -> io::Result<SketchStats> {
    QueryClient::connect_with(addr, connect)?.stats()
}

/// The credential convention `dim-loadgen --tenants N` assumes: tenant
/// ids `tenant-0 … tenant-{N-1}`, each with token `tenant-<i>-token`.
/// A server under multi-tenant bench must be started from a
/// `TENANTS.json` using the same ids/tokens.
pub fn default_tenant_credentials(n: usize) -> Vec<Credentials> {
    (0..n)
        .map(|i| Credentials::new(format!("tenant-{i}"), format!("tenant-{i}-token")))
        .collect()
}

/// One tenant's share of the multi-tenant phase.
#[derive(Clone, Debug)]
pub struct TenantThroughput {
    /// Tenant id the clients authenticated as.
    pub id: String,
    /// Spread queries this tenant's clients got answered.
    pub queries: u64,
    /// `queries / elapsed` of the whole phase.
    pub throughput_qps: f64,
}

/// Outcome of the multi-tenant phase: the same *total* concurrency as
/// the single-tenant phases, split round-robin across authenticated
/// tenant namespaces — so `throughput_qps` here is directly comparable
/// to the unbatched single-tenant baseline.
#[derive(Clone, Debug)]
pub struct MultiTenantResult {
    /// Tenants the clients were split across.
    pub tenants: usize,
    /// Spread queries answered across all tenants.
    pub queries: u64,
    /// Errored queries (wire or server-side, incl. quota shed).
    pub errors: u64,
    /// Wall-clock for the whole phase.
    pub elapsed: Duration,
    /// Aggregate `queries / elapsed`.
    pub throughput_qps: f64,
    /// Per-tenant rows, credential order.
    pub per_tenant: Vec<TenantThroughput>,
}

impl MultiTenantResult {
    /// JSON object fragment for the `multi_tenant` report key.
    pub fn to_json(&self) -> String {
        let per_tenant: Vec<String> = self
            .per_tenant
            .iter()
            .map(|t| {
                format!(
                    "{{\"id\":\"{}\",\"queries\":{},\"throughput_qps\":{:.1}}}",
                    t.id, t.queries, t.throughput_qps
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"tenants\":{},\"queries\":{},\"errors\":{},",
                "\"elapsed_s\":{:.6},\"throughput_qps\":{:.1},",
                "\"per_tenant\":[{}]}}"
            ),
            self.tenants,
            self.queries,
            self.errors,
            self.elapsed.as_secs_f64(),
            self.throughput_qps,
            per_tenant.join(","),
        )
    }
}

/// Runs the multi-tenant phase: `config.concurrency` clients total,
/// client `i` authenticating as `tenants[i % tenants.len()]`, each
/// issuing its deterministic query stream as plain request/response
/// frames (the unbatched shape, so the aggregate compares 1:1 with the
/// single-tenant baseline).
pub fn run_multi_tenant(
    config: &LoadgenConfig,
    tenants: &[Credentials],
) -> io::Result<MultiTenantResult> {
    assert!(!tenants.is_empty(), "multi-tenant phase needs tenants");
    let ok: Arc<Vec<AtomicU64>> =
        Arc::new((0..tenants.len()).map(|_| AtomicU64::new(0)).collect());
    let errors = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::with_capacity(config.concurrency);
    for client_idx in 0..config.concurrency {
        let slot = client_idx % tenants.len();
        let queries = client_queries(config, client_idx);
        let (ok, errors) = (ok.clone(), errors.clone());
        let addr = config.addr.clone();
        let mut connect = config.connect.clone();
        connect.credentials = Some(tenants[slot].clone());
        handles.push(std::thread::spawn(move || -> io::Result<()> {
            let mut client = QueryClient::connect_with(&*addr, &connect)?;
            for query in &queries {
                match client.request(query)? {
                    QueryResponse::Spread { .. } => ok[slot].fetch_add(1, Ordering::Relaxed),
                    _ => errors.fetch_add(1, Ordering::Relaxed),
                };
            }
            Ok(())
        }));
    }
    for handle in handles {
        match handle.join() {
            Ok(Ok(())) => {}
            Ok(Err(_)) => {
                errors.fetch_add(1, Ordering::Relaxed);
            }
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
    let elapsed = start.elapsed();
    let secs = elapsed.as_secs_f64().max(1e-9);
    let per_tenant: Vec<TenantThroughput> = tenants
        .iter()
        .enumerate()
        .map(|(i, creds)| {
            let queries = ok[i].load(Ordering::Relaxed);
            TenantThroughput {
                id: creds.tenant.clone(),
                queries,
                throughput_qps: queries as f64 / secs,
            }
        })
        .collect();
    let queries: u64 = per_tenant.iter().map(|t| t.queries).sum();
    Ok(MultiTenantResult {
        tenants: tenants.len(),
        queries,
        errors: errors.load(Ordering::Relaxed),
        elapsed,
        throughput_qps: queries as f64 / secs,
        per_tenant,
    })
}

/// The complete serve-tier benchmark record dumped to `BENCH_serve.json`.
#[derive(Clone, Debug)]
pub struct ServeBenchReport {
    pub concurrency: usize,
    pub unbatched: PhaseResult,
    pub batched: PhaseResult,
    /// The multi-tenant phase, when `--tenants N` asked for one. Absent
    /// from older baselines — consumers must treat the key as optional.
    pub multi_tenant: Option<MultiTenantResult>,
    /// Server-side view after both phases.
    pub server: SketchStats,
    /// How the numbers were produced (e.g. `cargo-release`,
    /// `offline-stub`) — keeps trajectories comparable.
    pub provenance: String,
}

impl ServeBenchReport {
    /// Did pipelining pay for itself? The acceptance bar for the CI run.
    pub fn batching_wins(&self) -> bool {
        self.batched.throughput_qps >= self.unbatched.throughput_qps
    }

    pub fn to_json(&self) -> String {
        let mut out = format!(
            concat!(
                "{{\"bench\":\"serve\",\"provenance\":\"{}\",",
                "\"concurrency\":{},\"batching_wins\":{},",
                "\"unbatched\":{},\"batched\":{},",
                "\"server\":{{\"num_nodes\":{},\"theta\":{},\"shard_count\":{},",
                "\"queries_answered\":{},\"generation\":{},\"shed\":{},",
                "\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}"
            ),
            self.provenance,
            self.concurrency,
            self.batching_wins(),
            self.unbatched.to_json(),
            self.batched.to_json(),
            self.server.num_nodes,
            self.server.theta,
            self.server.shard_count,
            self.server.queries_answered,
            self.server.generation,
            self.server.shed,
            self.server.p50_us,
            self.server.p95_us,
            self.server.p99_us,
        );
        if let Some(m) = &self.multi_tenant {
            out.push_str(",\"multi_tenant\":");
            out.push_str(&m.to_json());
        }
        out.push('}');
        out
    }
}

/// Runs the full two-phase benchmark against `config.addr`.
pub fn run(config: &LoadgenConfig, provenance: &str) -> io::Result<ServeBenchReport> {
    let unbatched = run_phase(config, 1)?;
    let batched = run_phase(config, config.batch.max(2))?;
    let server = fetch_stats(&config.addr, &config.connect)?;
    Ok(ServeBenchReport {
        concurrency: config.concurrency,
        unbatched,
        batched,
        multi_tenant: None,
        server,
        provenance: provenance.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_coverage::CoverageShard;
    use dim_serve::{ServeOptions, Server, Sketch};

    fn test_sketch() -> Sketch {
        let shards = vec![
            CoverageShard::from_records(5, [&[0u32][..], &[1, 2], &[0, 2]]),
            CoverageShard::from_records(5, [&[1u32, 4][..], &[0], &[1, 3]]),
        ];
        Sketch::new(5, 6, 10, shards)
    }

    fn test_server() -> Server {
        Server::start_with(
            "127.0.0.1:0",
            test_sketch(),
            ServeOptions {
                workers: 4,
                ..ServeOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn two_phase_run_answers_every_query_and_serializes() {
        let server = test_server();
        let config = LoadgenConfig {
            addr: server.local_addr().to_string(),
            concurrency: 3,
            requests_per_client: 20,
            batch: 8,
            seeds_per_query: 2,
            num_nodes: 5,
            ..LoadgenConfig::default()
        };
        let report = run(&config, "unit-test").unwrap();
        assert_eq!(report.unbatched.queries, 60);
        assert_eq!(report.unbatched.errors, 0);
        assert_eq!(report.batched.queries, 60);
        assert_eq!(report.batched.errors, 0);
        assert_eq!(report.batched.batch, 8);
        assert!(report.unbatched.throughput_qps > 0.0);
        // Server saw both phases plus the closing stats query's own count.
        assert_eq!(report.server.queries_answered, 121);
        let json = report.to_json();
        for key in [
            "\"bench\":\"serve\"",
            "\"provenance\":\"unit-test\"",
            "\"concurrency\":3",
            "\"unbatched\":{\"batch\":1",
            "\"batched\":{\"batch\":8",
            "\"queries_answered\":121",
            "\"batching_wins\":",
        ] {
            assert!(json.contains(key), "{json} missing {key}");
        }
        server.shutdown();
    }

    #[test]
    fn multi_tenant_phase_splits_clients_and_serializes() {
        use dim_serve::{TenantBind, TenantQuota, TenantSpec};
        let creds = default_tenant_credentials(2);
        let binds = creds
            .iter()
            .map(|c| TenantBind {
                spec: TenantSpec {
                    id: c.tenant.clone(),
                    auth: c.digest(),
                    store: None,
                    graph: None,
                    quota: TenantQuota::default(),
                },
                sketch: test_sketch(),
                generation: 1,
                reload: None,
            })
            .collect();
        let server = Server::start_multi(
            "127.0.0.1:0",
            binds,
            ServeOptions {
                workers: 4,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        let mut config = LoadgenConfig {
            addr: server.local_addr().to_string(),
            concurrency: 4,
            requests_per_client: 20,
            batch: 8,
            seeds_per_query: 2,
            num_nodes: 5,
            ..LoadgenConfig::default()
        };
        // The single-tenant baseline runs authenticated as tenant-0.
        config.connect.credentials = Some(creds[0].clone());
        let mut report = run(&config, "unit-test").unwrap();
        assert_eq!(report.unbatched.errors + report.batched.errors, 0);
        // The report is old-shape JSON until the multi-tenant phase runs.
        assert!(!report.to_json().contains("multi_tenant"));
        let m = run_multi_tenant(&config, &creds).unwrap();
        assert_eq!(m.tenants, 2);
        assert_eq!(m.queries, 80);
        assert_eq!(m.errors, 0);
        assert_eq!(m.per_tenant.len(), 2);
        // 4 clients round-robin over 2 tenants: an even split.
        for t in &m.per_tenant {
            assert_eq!(t.queries, 40);
            assert!(t.throughput_qps > 0.0);
        }
        assert_eq!(m.per_tenant[0].id, "tenant-0");
        report.multi_tenant = Some(m);
        let json = report.to_json();
        for key in [
            "\"multi_tenant\":{\"tenants\":2",
            "\"queries\":80",
            "\"per_tenant\":[{\"id\":\"tenant-0\"",
        ] {
            assert!(json.contains(key), "{json} missing {key}");
        }
        assert!(json.ends_with("]}}"), "multi_tenant must close the report: {json}");
        server.shutdown();
    }

    #[test]
    fn workload_is_deterministic_and_in_range() {
        let config = LoadgenConfig {
            requests_per_client: 50,
            seeds_per_query: 3,
            num_nodes: 7,
            ..LoadgenConfig::default()
        };
        let a = client_queries(&config, 1);
        let b = client_queries(&config, 1);
        assert_eq!(a, b);
        assert_ne!(a, client_queries(&config, 2));
        for query in &a {
            let QueryRequest::Spread { seeds } = query else {
                panic!("loadgen only issues spread queries");
            };
            assert_eq!(seeds.len(), 3);
            assert!(seeds.iter().all(|&s| s < 7));
        }
    }
}
