//! Result reporting: aligned console tables plus JSON-lines dumps.

use std::io::Write;
use std::path::Path;

use serde::Serialize;

/// Prints a header row followed by a rule.
pub fn header(columns: &[(&str, usize)]) {
    let mut line = String::new();
    for (name, width) in columns {
        line.push_str(&format!("{name:>width$} "));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
}

/// Formats a duration in seconds with ms precision.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Appends one JSON record per line to `<out_dir>/<name>.jsonl`, creating
/// the directory if needed. IO failures are reported but non-fatal — the
/// console table is the primary output.
pub fn dump_json<T: Serialize>(out_dir: &str, name: &str, record: &T) {
    let dir = Path::new(out_dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {out_dir}: {e}");
        return;
    }
    let path = dir.join(format!("{name}.jsonl"));
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| {
            let line = serde_json::to_string(record).expect("serializable record");
            writeln!(f, "{line}")
        });
    if let Err(e) = result {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Row {
        x: u32,
    }

    #[test]
    fn dump_appends_lines() {
        let dir = std::env::temp_dir().join(format!("dim-report-{}", std::process::id()));
        let dir_s = dir.to_str().unwrap().to_string();
        dump_json(&dir_s, "t", &Row { x: 1 });
        dump_json(&dir_s, "t", &Row { x: 2 });
        let content = std::fs::read_to_string(dir.join("t.jsonl")).unwrap();
        assert_eq!(content.lines().count(), 2);
        assert!(content.contains("{\"x\":1}"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn secs_formats() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
    }
}
