//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§IV). See DESIGN.md for the experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured results.
//!
//! The entry point is the `repro` binary:
//!
//! ```text
//! repro all                  # every experiment at the default scale
//! repro fig5 --quick         # one experiment, reduced scale
//! repro table4 --epsilon 0.1 --datasets facebook,googleplus
//! ```
//!
//! Two further binaries track the serving tier: `dim-loadgen`
//! ([`serve_bench`]) drives a running `dim serve` and writes
//! `BENCH_serve.json`; `dim-benchrec` ([`sample_select`]) times the
//! sample/select hot paths and writes `BENCH_sample_select.json`.

pub mod context;
pub mod experiments;
pub mod report;
pub mod sample_select;
pub mod serve_bench;

pub use context::Context;
