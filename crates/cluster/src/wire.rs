//! Wire codec for the messages exchanged by the distributed algorithms.
//!
//! NewGreeDi's reduce stage has workers upload sparse vectors of
//! `⟨node, Δ⟩` tuples (§III-B2 of the paper). Serializing them for real —
//! rather than estimating sizes — makes the cluster's traffic accounting
//! byte-accurate and lets tests assert exact message contents.
//!
//! Format (little-endian):
//! `[u32 count] ([u32 node] [u32 delta])*` for delta vectors, and
//! `[u32 count] ([u32 value])*` for plain id vectors.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A sparse coverage-delta message: each tuple says "node `v`'s marginal
/// coverage decreases by `delta`".
pub type DeltaVec = Vec<(u32, u32)>;

/// Typed decode failure for wire messages.
///
/// The master's reduce stages used to `.expect()` on malformed worker
/// messages; a single corrupt frame from one machine would abort the whole
/// run. Decoders return `None` (they see only a byte slice, with no context
/// to attach); the algorithm layer wraps that into a `WireError` naming the
/// phase and sender so callers can decide what to do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Phase label during which the bad message arrived (see [`crate::phase`]).
    pub phase: &'static str,
    /// Index of the machine whose message failed to decode, if known.
    pub machine: Option<usize>,
    /// What was wrong with the message.
    pub kind: WireErrorKind,
}

/// What kind of decode failure occurred.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireErrorKind {
    /// Header or body truncated / trailing garbage / count overflow.
    Malformed,
    /// A frame arrived shorter than its fixed-size preamble (e.g. a REPLY
    /// body without its 8-byte elapsed-time prefix). Distinguished from
    /// [`WireErrorKind::Malformed`] so hostile-truncation paths are typed
    /// rather than folded into generic decode failure.
    Truncated,
    /// Decoded fine but referenced an out-of-range node/set id.
    IdOutOfRange,
    /// The transport link to a machine failed (connection reset, timeout).
    /// Worker state is resident on that machine, so the round cannot
    /// proceed without it.
    Link,
    /// A registration claimed a machine id another live worker already
    /// holds in this session.
    DuplicateId,
    /// A registration arrived after every slot of the session's expected
    /// cluster size was taken (retryable by the worker: the *next* session
    /// may have room).
    SessionFull,
}

impl WireError {
    /// A malformed-message error in `phase` from machine `machine`.
    pub fn malformed(phase: &'static str, machine: usize) -> Self {
        WireError {
            phase,
            machine: Some(machine),
            kind: WireErrorKind::Malformed,
        }
    }

    /// A truncated-frame error in `phase` from machine `machine`.
    pub fn truncated(phase: &'static str, machine: usize) -> Self {
        WireError {
            phase,
            machine: Some(machine),
            kind: WireErrorKind::Truncated,
        }
    }

    /// An out-of-range id error in `phase` from machine `machine`.
    pub fn id_out_of_range(phase: &'static str, machine: usize) -> Self {
        WireError {
            phase,
            machine: Some(machine),
            kind: WireErrorKind::IdOutOfRange,
        }
    }

    /// A dead-link error in `phase` on the connection to `machine`.
    pub fn link(phase: &'static str, machine: usize) -> Self {
        WireError {
            phase,
            machine: Some(machine),
            kind: WireErrorKind::Link,
        }
    }

    /// A duplicate-registration error in `phase` for machine `machine`.
    pub fn duplicate_id(phase: &'static str, machine: usize) -> Self {
        WireError {
            phase,
            machine: Some(machine),
            kind: WireErrorKind::DuplicateId,
        }
    }

    /// A session-full error in `phase` (no machine slot to attribute).
    pub fn session_full(phase: &'static str) -> Self {
        WireError {
            phase,
            machine: None,
            kind: WireErrorKind::SessionFull,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self.kind {
            WireErrorKind::Malformed => "malformed wire message",
            WireErrorKind::Truncated => "truncated wire message",
            WireErrorKind::IdOutOfRange => "out-of-range id in wire message",
            WireErrorKind::Link => "dead link",
            WireErrorKind::DuplicateId => "duplicate machine id in registration",
            WireErrorKind::SessionFull => "session already has its full membership",
        };
        match self.machine {
            Some(m) => write!(f, "{what} from machine {m} in phase `{}`", self.phase),
            None => write!(f, "{what} in phase `{}`", self.phase),
        }
    }
}

impl std::error::Error for WireError {}

/// Hard cap on a single frame's declared length (header + body), shared by
/// every transport built on [`write_frame`]/[`read_frame`]: the process
/// backend, the rendezvous handshake, and the `dim-serve` query protocol.
pub const MAX_FRAME: usize = 64 << 20;

/// Writes one length-prefixed frame: `[u32 len LE][u8 opcode][body]`,
/// where `len` counts the opcode byte plus the body.
pub fn write_frame(w: &mut impl Write, opcode: u8, body: &[u8]) -> io::Result<()> {
    let len = 1 + body.len();
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&[opcode])?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame written by [`write_frame`], rejecting zero-length and
/// over-[`MAX_FRAME`] headers before allocating.
pub fn read_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>)> {
    let mut hdr = [0u8; 4];
    r.read_exact(&mut hdr)?;
    let len = u32::from_le_bytes(hdr) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let opcode = body[0];
    body.remove(0);
    Ok((opcode, body))
}

/// An `InvalidData` error for protocol violations.
pub fn protocol_err(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Serializes a delta vector.
pub fn encode_deltas(deltas: &[(u32, u32)]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + deltas.len() * 8);
    buf.put_u32_le(deltas.len() as u32);
    for &(v, d) in deltas {
        buf.put_u32_le(v);
        buf.put_u32_le(d);
    }
    buf.freeze()
}

/// Deserializes a delta vector. Returns `None` on malformed input.
pub fn decode_deltas(mut buf: &[u8]) -> Option<DeltaVec> {
    if buf.len() < 4 {
        return None;
    }
    let count = buf.get_u32_le() as usize;
    // `count * 8` wraps on 32-bit targets for counts ≥ 2²⁹, letting a
    // hostile header pass the length check with a short body.
    if Some(buf.len()) != count.checked_mul(8) {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let v = buf.get_u32_le();
        let d = buf.get_u32_le();
        out.push((v, d));
    }
    Some(out)
}

/// Visits each `⟨set, Δ⟩` tuple of an encoded delta message without
/// allocating. Returns `None` on malformed input. The master's reduce
/// stage uses this on the hot path instead of [`decode_deltas`].
pub fn for_each_delta(mut buf: &[u8], mut f: impl FnMut(u32, u32)) -> Option<()> {
    if buf.len() < 4 {
        return None;
    }
    let count = buf.get_u32_le() as usize;
    if Some(buf.len()) != count.checked_mul(8) {
        return None;
    }
    for _ in 0..count {
        let v = buf.get_u32_le();
        let d = buf.get_u32_le();
        f(v, d);
    }
    Some(())
}

/// Serializes a vector of 32-bit ids (e.g. the chosen seed broadcast).
pub fn encode_ids(ids: &[u32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + ids.len() * 4);
    buf.put_u32_le(ids.len() as u32);
    for &v in ids {
        buf.put_u32_le(v);
    }
    buf.freeze()
}

/// Deserializes a vector of 32-bit ids. Returns `None` on malformed input.
pub fn decode_ids(mut buf: &[u8]) -> Option<Vec<u32>> {
    if buf.len() < 4 {
        return None;
    }
    let count = buf.get_u32_le() as usize;
    if Some(buf.len()) != count.checked_mul(4) {
        return None;
    }
    Some((0..count).map(|_| buf.get_u32_le()).collect())
}

/// Size in bytes of an encoded delta vector with `count` tuples, without
/// materializing it. Used for ablation accounting.
pub fn delta_wire_size(count: usize) -> u64 {
    4 + 8 * count as u64
}

/// Size in bytes of an encoded id vector with `count` entries.
pub fn ids_wire_size(count: usize) -> u64 {
    4 + 4 * count as u64
}

/// Size in bytes of one raw little-endian `u64` on the wire — the payload
/// of every message that ships a single count (covered totals, validation
/// coverage, partial sums).
pub fn u64_wire_size() -> u64 {
    std::mem::size_of::<u64>() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_roundtrip() {
        let deltas = vec![(0u32, 3u32), (17, 1), (u32::MAX, 42)];
        let bytes = encode_deltas(&deltas);
        assert_eq!(bytes.len() as u64, delta_wire_size(deltas.len()));
        assert_eq!(decode_deltas(&bytes).unwrap(), deltas);
    }

    #[test]
    fn empty_delta_roundtrip() {
        let bytes = encode_deltas(&[]);
        assert_eq!(bytes.len(), 4);
        assert_eq!(decode_deltas(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn for_each_matches_decode() {
        let deltas = vec![(3u32, 1u32), (9, 4)];
        let bytes = encode_deltas(&deltas);
        let mut seen = Vec::new();
        for_each_delta(&bytes, |v, d| seen.push((v, d))).unwrap();
        assert_eq!(seen, deltas);
        assert!(for_each_delta(&bytes[..3], |_, _| ()).is_none());
    }

    #[test]
    fn ids_roundtrip() {
        let ids = vec![5u32, 0, 999_999];
        let bytes = encode_ids(&ids);
        assert_eq!(bytes.len() as u64, ids_wire_size(ids.len()));
        assert_eq!(decode_ids(&bytes).unwrap(), ids);
    }

    #[test]
    fn rejects_truncated() {
        let bytes = encode_deltas(&[(1, 2), (3, 4)]);
        assert!(decode_deltas(&bytes[..bytes.len() - 1]).is_none());
        assert!(decode_deltas(&[]).is_none());
        let ids = encode_ids(&[7]);
        assert!(decode_ids(&ids[..ids.len() - 2]).is_none());
    }

    #[test]
    fn u64_wire_size_is_eight() {
        assert_eq!(u64_wire_size(), 8);
    }

    #[test]
    fn rejects_overlong() {
        let mut bytes = encode_ids(&[7]).to_vec();
        bytes.push(0);
        assert!(decode_ids(&bytes).is_none());
    }

    #[test]
    fn rejects_pathological_counts() {
        // Header claims u32::MAX tuples with an 8-byte body. On 32-bit
        // targets `count * 8` used to wrap; on any target the decoder must
        // reject rather than trust the header.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        assert!(decode_deltas(&bytes).is_none());
        assert!(for_each_delta(&bytes, |_, _| ()).is_none());
        assert!(decode_ids(&bytes).is_none());

        // count = 2²⁹ + 1: `count * 8` ≡ 8 (mod 2³²), matching an 8-byte
        // body exactly on a 32-bit usize — the precise wrap case.
        let mut wrap = Vec::new();
        wrap.extend_from_slice(&0x2000_0001u32.to_le_bytes());
        wrap.extend_from_slice(&[0u8; 8]);
        assert!(decode_deltas(&wrap).is_none());
        assert!(for_each_delta(&wrap, |_, _| ()).is_none());

        // count = 2³⁰ + 1: `count * 4` ≡ 4 (mod 2³²), ditto for ids.
        let mut wrap4 = Vec::new();
        wrap4.extend_from_slice(&0x4000_0001u32.to_le_bytes());
        wrap4.extend_from_slice(&[0u8; 4]);
        assert!(decode_ids(&wrap4).is_none());
    }

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, b"payload").unwrap();
        let (opcode, body) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(opcode, 7);
        assert_eq!(body, b"payload");
    }

    #[test]
    fn frame_rejects_zero_and_oversized_lengths() {
        // len = 0 frames would loop forever; the reader rejects them.
        let zero = 0u32.to_le_bytes();
        assert!(read_frame(&mut zero.as_slice()).is_err());
        // A header claiming more than MAX_FRAME must fail before allocating.
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        assert!(read_frame(&mut huge.as_slice()).is_err());
        // And the writer refuses to produce such a frame in the first place.
        let body = vec![0u8; MAX_FRAME];
        let mut out = Vec::new();
        assert!(write_frame(&mut out, 0, &body).is_err());
    }

    #[test]
    fn frame_rejects_truncation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, b"abcdef").unwrap();
        for cut in [0, 2, 4, buf.len() - 1] {
            assert!(read_frame(&mut &buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn wire_error_display_names_phase_and_machine() {
        let e = WireError::malformed("delta-upload", 3);
        let s = e.to_string();
        assert!(s.contains("delta-upload") && s.contains("machine 3"), "{s}");
        let e = WireError::id_out_of_range("coverage-upload", 0);
        assert_eq!(e.kind, WireErrorKind::IdOutOfRange);
        assert!(e.to_string().contains("out-of-range"));
        let e = WireError::truncated("coverage-upload", 2);
        assert_eq!(e.kind, WireErrorKind::Truncated);
        let s = e.to_string();
        assert!(s.contains("truncated") && s.contains("machine 2"), "{s}");
    }
}
