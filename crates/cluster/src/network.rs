//! Latency/bandwidth network model pricing message transfers.

use std::time::Duration;

/// Prices message transfers between the master and the workers.
///
/// The topology is the paper's: a star through one switch, master at the
/// center. The master's link serializes both gathers (all workers upload to
/// the master) and broadcasts (the master uploads to all workers), so the
/// transfer time for a round moving `total_bytes` across `messages` messages
/// is `messages · latency + total_bytes / bandwidth`. Latency per message is
/// charged once per *round trip batch*, not per byte.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// Fixed per-message overhead (MPI envelope, switch hop, syscalls).
    pub latency: Duration,
    /// Usable link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

impl NetworkModel {
    /// The paper's cluster: 1 Gbps Ethernet (≈ 119 MiB/s usable) with a
    /// 50 µs per-message overhead, the typical small-message half-RTT of
    /// TCP-based Open MPI on GbE.
    pub fn cluster_1gbps() -> Self {
        NetworkModel {
            latency: Duration::from_micros(50),
            bandwidth_bytes_per_sec: 1e9 / 8.0,
        }
    }

    /// The paper's multi-core server: MPI over shared memory. Message
    /// overhead is ~1 µs and the copy bandwidth is on the order of memory
    /// bandwidth (we use 20 GB/s per channel, conservative for a Xeon).
    pub fn shared_memory() -> Self {
        NetworkModel {
            latency: Duration::from_micros(1),
            bandwidth_bytes_per_sec: 20e9,
        }
    }

    /// Free communication — useful for isolating compute scaling in tests
    /// and ablations.
    pub fn zero() -> Self {
        NetworkModel {
            latency: Duration::ZERO,
            bandwidth_bytes_per_sec: f64::INFINITY,
        }
    }

    /// Time to move `bytes` across the master link in `messages`
    /// point-to-point messages (latency paid per message).
    pub fn transfer_time(&self, messages: u64, bytes: u64) -> Duration {
        let wire = if self.bandwidth_bytes_per_sec.is_finite() {
            Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
        } else {
            Duration::ZERO
        };
        latency_times(self.latency, messages).saturating_add(wire)
    }

    /// Time for a tree-based collective (MPI gather / broadcast) across
    /// `participants` machines moving `bytes` in total: `⌈log₂(ℓ+1)⌉`
    /// latency terms (the tree depth) plus the master link's serialization
    /// of the full payload. This is the Hockney-style model of Open MPI's
    /// binomial-tree collectives, and what [`crate::SimCluster`] charges
    /// for its gather/broadcast phases.
    pub fn collective_time(&self, participants: u64, bytes: u64) -> Duration {
        // Bit length of `participants` = ⌈log₂(ℓ+1)⌉ without the overflow
        // `(ℓ+1).next_power_of_two()` would hit near u64::MAX.
        let depth = (u64::BITS - participants.leading_zeros()) as u64;
        let wire = if self.bandwidth_bytes_per_sec.is_finite() {
            Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
        } else {
            Duration::ZERO
        };
        latency_times(self.latency, depth).saturating_add(wire)
    }
}

/// `latency · n` for a u64 count, saturating at [`Duration::MAX`].
///
/// `Duration::checked_mul` takes a `u32`, so the obvious
/// `latency.checked_mul(n as u32)` silently truncates counts above
/// `u32::MAX` *before* the checked multiply ever sees them — a
/// 4-billion-message round would be priced at nearly zero latency. Compute
/// in u128 nanoseconds instead and saturate explicitly.
fn latency_times(latency: Duration, n: u64) -> Duration {
    let nanos = latency.as_nanos().saturating_mul(n as u128);
    match (
        u64::try_from(nanos / 1_000_000_000),
        (nanos % 1_000_000_000) as u32,
    ) {
        (Ok(secs), subsec) => Duration::new(secs, subsec),
        (Err(_), _) => Duration::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbe_transfer_times() {
        let net = NetworkModel::cluster_1gbps();
        // 125 MB at 125 MB/s = 1 s (+ 1 message latency).
        let t = net.transfer_time(1, 125_000_000);
        assert!((t.as_secs_f64() - 1.0001).abs() < 1e-3, "{t:?}");
    }

    #[test]
    fn latency_scales_with_messages() {
        let net = NetworkModel::cluster_1gbps();
        let t1 = net.transfer_time(1, 0);
        let t16 = net.transfer_time(16, 0);
        assert_eq!(t16, t1 * 16);
    }

    #[test]
    fn collective_latency_logarithmic() {
        let net = NetworkModel::cluster_1gbps();
        // Tree depth: 1 machine → 1 hop; 16 machines → ⌈log₂ 17⌉ = 5 hops.
        assert_eq!(net.collective_time(1, 0), net.latency);
        assert_eq!(net.collective_time(16, 0), net.latency * 5);
        assert!(net.collective_time(64, 0) < net.transfer_time(64, 0));
    }

    #[test]
    fn collective_bandwidth_term_unchanged() {
        let net = NetworkModel::cluster_1gbps();
        let t = net.collective_time(1, 125_000_000);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-3, "{t:?}");
    }

    #[test]
    fn zero_model_free() {
        let net = NetworkModel::zero();
        assert_eq!(net.transfer_time(1000, u64::MAX / 2), Duration::ZERO);
    }

    #[test]
    fn latency_not_truncated_beyond_u32_messages() {
        // Regression: `checked_mul(messages as u32)` truncated the count
        // before the checked multiply, so u32::MAX + 1 messages wrapped to 0
        // and the whole round was priced at ~0 latency.
        let net = NetworkModel::cluster_1gbps();
        let messages = u32::MAX as u64 + 1;
        let t = net.transfer_time(messages, 0);
        // 2³² messages · 50 µs = 2³² · 5e-5 s ≈ 214 748.36 s.
        let expect = 4_294_967_296.0 * 50e-6;
        assert!(
            (t.as_secs_f64() - expect).abs() < 1.0,
            "expected ≈{expect}s, got {t:?}"
        );
        assert!(t > net.transfer_time(u32::MAX as u64, 0));
    }

    #[test]
    fn latency_saturates_at_duration_max() {
        let net = NetworkModel {
            latency: Duration::from_secs(2),
            bandwidth_bytes_per_sec: f64::INFINITY,
        };
        // 2 s · u64::MAX seconds overflows Duration's u64 seconds field.
        assert_eq!(net.transfer_time(u64::MAX, 0), Duration::MAX);
        // GbE latency stays exactly representable even at u64::MAX messages.
        let gbe = NetworkModel::cluster_1gbps();
        assert_eq!(
            gbe.transfer_time(u64::MAX, 0).as_nanos(),
            50_000u128 * u64::MAX as u128
        );
    }

    #[test]
    fn collective_depth_defined_for_huge_counts() {
        let net = NetworkModel::cluster_1gbps();
        // ⌈log₂(u64::MAX + 1)⌉ = 64 latency hops; previously
        // `(ℓ+1).next_power_of_two()` overflowed in debug builds.
        assert_eq!(net.collective_time(u64::MAX, 0), net.latency * 64);
    }

    #[test]
    fn shared_memory_cheaper_than_cluster() {
        let shm = NetworkModel::shared_memory();
        let eth = NetworkModel::cluster_1gbps();
        let bytes = 10_000_000;
        assert!(shm.transfer_time(8, bytes) < eth.transfer_time(8, bytes));
    }
}
