//! Latency/bandwidth network model pricing message transfers.

use std::time::Duration;

/// Prices message transfers between the master and the workers.
///
/// The topology is the paper's: a star through one switch, master at the
/// center. The master's link serializes both gathers (all workers upload to
/// the master) and broadcasts (the master uploads to all workers), so the
/// transfer time for a round moving `total_bytes` across `messages` messages
/// is `messages · latency + total_bytes / bandwidth`. Latency per message is
/// charged once per *round trip batch*, not per byte.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// Fixed per-message overhead (MPI envelope, switch hop, syscalls).
    pub latency: Duration,
    /// Usable link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

impl NetworkModel {
    /// The paper's cluster: 1 Gbps Ethernet (≈ 119 MiB/s usable) with a
    /// 50 µs per-message overhead, the typical small-message half-RTT of
    /// TCP-based Open MPI on GbE.
    pub fn cluster_1gbps() -> Self {
        NetworkModel {
            latency: Duration::from_micros(50),
            bandwidth_bytes_per_sec: 1e9 / 8.0,
        }
    }

    /// The paper's multi-core server: MPI over shared memory. Message
    /// overhead is ~1 µs and the copy bandwidth is on the order of memory
    /// bandwidth (we use 20 GB/s per channel, conservative for a Xeon).
    pub fn shared_memory() -> Self {
        NetworkModel {
            latency: Duration::from_micros(1),
            bandwidth_bytes_per_sec: 20e9,
        }
    }

    /// Free communication — useful for isolating compute scaling in tests
    /// and ablations.
    pub fn zero() -> Self {
        NetworkModel {
            latency: Duration::ZERO,
            bandwidth_bytes_per_sec: f64::INFINITY,
        }
    }

    /// Time to move `bytes` across the master link in `messages`
    /// point-to-point messages (latency paid per message).
    pub fn transfer_time(&self, messages: u64, bytes: u64) -> Duration {
        let wire = if self.bandwidth_bytes_per_sec.is_finite() {
            Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
        } else {
            Duration::ZERO
        };
        self.latency
            .checked_mul(messages as u32)
            .unwrap_or(Duration::MAX)
            .saturating_add(wire)
    }

    /// Time for a tree-based collective (MPI gather / broadcast) across
    /// `participants` machines moving `bytes` in total: `⌈log₂(ℓ+1)⌉`
    /// latency terms (the tree depth) plus the master link's serialization
    /// of the full payload. This is the Hockney-style model of Open MPI's
    /// binomial-tree collectives, and what [`crate::SimCluster`] charges
    /// for its gather/broadcast phases.
    pub fn collective_time(&self, participants: u64, bytes: u64) -> Duration {
        let depth = (participants + 1).next_power_of_two().trailing_zeros();
        let wire = if self.bandwidth_bytes_per_sec.is_finite() {
            Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
        } else {
            Duration::ZERO
        };
        self.latency
            .checked_mul(depth)
            .unwrap_or(Duration::MAX)
            .saturating_add(wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbe_transfer_times() {
        let net = NetworkModel::cluster_1gbps();
        // 125 MB at 125 MB/s = 1 s (+ 1 message latency).
        let t = net.transfer_time(1, 125_000_000);
        assert!((t.as_secs_f64() - 1.0001).abs() < 1e-3, "{t:?}");
    }

    #[test]
    fn latency_scales_with_messages() {
        let net = NetworkModel::cluster_1gbps();
        let t1 = net.transfer_time(1, 0);
        let t16 = net.transfer_time(16, 0);
        assert_eq!(t16, t1 * 16);
    }

    #[test]
    fn collective_latency_logarithmic() {
        let net = NetworkModel::cluster_1gbps();
        // Tree depth: 1 machine → 1 hop; 16 machines → ⌈log₂ 17⌉ = 5 hops.
        assert_eq!(net.collective_time(1, 0), net.latency);
        assert_eq!(net.collective_time(16, 0), net.latency * 5);
        assert!(net.collective_time(64, 0) < net.transfer_time(64, 0));
    }

    #[test]
    fn collective_bandwidth_term_unchanged() {
        let net = NetworkModel::cluster_1gbps();
        let t = net.collective_time(1, 125_000_000);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-3, "{t:?}");
    }

    #[test]
    fn zero_model_free() {
        let net = NetworkModel::zero();
        assert_eq!(net.transfer_time(1000, u64::MAX / 2), Duration::ZERO);
    }

    #[test]
    fn shared_memory_cheaper_than_cluster() {
        let shm = NetworkModel::shared_memory();
        let eth = NetworkModel::cluster_1gbps();
        let bytes = 10_000_000;
        assert!(shm.transfer_time(8, bytes) < eth.transfer_time(8, bytes));
    }
}
