//! A minimal, dependency-free JSON reader shared by every config
//! surface that parses operator-authored files: fault plans
//! ([`crate::faults::FaultPlan::from_json`]) and tenant registries
//! (`dim_serve::tenant`). It supports exactly the JSON these configs
//! use — objects, arrays, strings with basic escapes, numbers, bools,
//! null — with strict trailing-byte detection via [`Json::parse`].

/// A minimal JSON value tree, wide enough for fault plans and
/// tenant configs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

pub struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    pub fn new(text: &'a str) -> Self {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    pub fn err<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("{what} at byte {}", self.pos))
    }

    pub fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected {:?}", b as char))
        }
    }

    pub fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(&format!("expected `{word}`"))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        _ => return self.err("unsupported escape"),
                    }
                    self.pos += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through verbatim.
                    let len = match c {
                        _ if c < 0x80 => 1,
                        _ if c >= 0xF0 => 4,
                        _ if c >= 0xE0 => 3,
                        _ => 2,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }
}

impl Json {
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Ok(*n as u64)
            }
            other => Err(format!("{what}: expected a non-negative integer, got {other:?}")),
        }
    }

    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None | Some(Json::Null) => Ok(default),
            Some(v) => v.as_u64(key),
        }
    }

    pub fn u32_or(&self, key: &str, default: u32) -> Result<u32, String> {
        let v = self.u64_or(key, u64::from(default))?;
        u32::try_from(v).map_err(|_| format!("{key}: {v} does not fit in u32"))
    }
}

impl Json {
    /// Parses `text` as one JSON value; trailing non-whitespace bytes
    /// are an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = JsonParser::new(text);
        let root = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return parser.err("trailing bytes after value");
        }
        Ok(root)
    }

    /// The string value of `key`, if present and a string.
    pub fn str_of(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Json::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// This value as a string, with a typed error naming `what`.
    pub fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("{what}: expected a string, got {other:?}")),
        }
    }
}
