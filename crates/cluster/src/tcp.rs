//! The process-per-machine [`ClusterBackend`] over TCP.
//!
//! [`ProcCluster`] is the "real distribution" counterpart of
//! [`crate::SimCluster`]: each of the ℓ machines is a separate OS process
//! (the `dim-worker` binary, or a thread serving the identical protocol in
//! tests) that **owns its resident state** — graph partition, RNG stream,
//! RR-set shard, coverage labels — and answers serialized
//! [`WorkerOp`]s until shutdown. The master holds no shard state at all;
//! every algorithm phase becomes one op round through the [`OpCluster`]
//! seam, and since [`crate::SimCluster`] interprets the *same* op values in
//! process, both backends execute the same algorithm by construction.
//!
//! # Frame protocol
//!
//! Every frame is `[u32 len (LE)] [u8 opcode] [body; len − 1]`, with `len`
//! capped at [`MAX_FRAME`]. Opcodes:
//!
//! | opcode | name  | direction | body                                     |
//! |--------|-------|-----------|------------------------------------------|
//! | 0      | HELLO | w → m     | `[u32 machine_id] [u64 stream_seed]`     |
//! | 1      | OP    | m → w     | one encoded [`WorkerOp`]                 |
//! | 2      | REPLY | w → m     | `[u64 elapsed_ns]` + encoded [`WorkerReply`] |
//!
//! An op round is pipelined: the master sends every machine its OP frame
//! first, then reads the ℓ REPLY frames — so worker processes genuinely
//! compute in parallel, and the round's compute cost is the *maximum*
//! worker-reported `elapsed_ns` (the paper's rule). The REPLY's elapsed
//! prefix lets the master separate worker compute from transfer time: the
//! wall clock of the send and of the receive-minus-compute land in
//! [`ClusterMetrics::measured_comm`] under the phase's labels, next to the
//! modeled [`ClusterMetrics::comm_time`].
//!
//! There is no dedicated shutdown frame: [`WorkerOp::Shutdown`] rides the
//! normal OP path (sent by `Drop`), and a master disconnect (EOF) is an
//! equally clean exit — workers log a line and exit 0 either way.
//!
//! # Failure semantics
//!
//! Worker state is resident in the worker processes, so a dead link is
//! *fatal to the round*, not a degraded-measurement detail: an I/O error
//! or malformed frame marks the link dead, increments
//! [`ProcCluster::link_errors`], and surfaces as a typed
//! [`WireError`] (kind [`crate::WireErrorKind::Link`] for transport
//! failures, `Malformed` for protocol violations) which the algorithms
//! propagate to their callers. This mirrors MPI's fail-stop model rather
//! than the earlier pattern-verified placeholder path, which could shrug
//! links off because no state lived behind them.
//!
//! # Addresses
//!
//! The master binds `127.0.0.1:0` by default; set `DIM_MASTER_BIND` (e.g.
//! `0.0.0.0:7070`) to accept workers from other hosts. Workers are told
//! where to connect via `--addr` (or the `DIM_WORKER_ADDR` environment
//! variable) — groundwork for multi-host runs beyond loopback.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use crate::backend::ClusterBackend;
use crate::metrics::{ClusterMetrics, PhaseTimeline};
use crate::network::NetworkModel;
use crate::ops::{OpCluster, OpExecutor, WorkerOp, WorkerReply};
use crate::rng::stream_seed;
use crate::wire::WireError;

/// Hard cap on a single frame's declared length (header + body).
pub const MAX_FRAME: usize = 64 << 20;

/// Seconds a handshake read or worker connect may block before the link is
/// declared dead.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Seconds the master waits for a REPLY — generous, because arbitrary
/// worker compute (RR sampling of a whole shard) happens between the OP
/// and its REPLY.
const REPLY_TIMEOUT: Duration = Duration::from_secs(60);

/// Frame opcodes (see the module docs for the protocol table).
mod frame {
    pub const HELLO: u8 = 0;
    pub const OP: u8 = 1;
    pub const REPLY: u8 = 2;
}

fn write_frame(w: &mut impl Write, opcode: u8, body: &[u8]) -> io::Result<()> {
    let len = 1 + body.len();
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&[opcode])?;
    w.write_all(body)?;
    w.flush()
}

fn read_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>)> {
    let mut hdr = [0u8; 4];
    r.read_exact(&mut hdr)?;
    let len = u32::from_le_bytes(hdr) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let opcode = body[0];
    body.remove(0);
    Ok((opcode, body))
}

fn protocol_err(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Fault injections for protocol tests (worker side).
///
/// The `dim-worker` binary reads these from the `DIM_WORKER_FAULT`
/// environment variable (e.g. `truncate-upload:1`); in-crate tests pass
/// them to [`run_worker_with_fault`] directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerFault {
    /// On the `request`-th reply (1-based), declare a full frame but send
    /// only a few bytes, then close the connection.
    TruncateUpload {
        /// Which reply (1-based) to sabotage.
        request: usize,
    },
}

impl WorkerFault {
    /// Parses the `DIM_WORKER_FAULT` syntax (`truncate-upload:N`).
    pub fn parse(s: &str) -> Option<WorkerFault> {
        let (kind, arg) = s.split_once(':')?;
        match kind {
            "truncate-upload" => Some(WorkerFault::TruncateUpload {
                request: arg.parse().ok()?,
            }),
            _ => None,
        }
    }
}

/// Serves the worker side of the protocol until [`WorkerOp::Shutdown`] or
/// master disconnect, answering every op via `executor`.
///
/// This is the entire body of the `dim-worker` binary; tests call it on a
/// thread with one end of a loopback socket pair. Returns `Ok(())` on both
/// clean exits (shutdown op, EOF) so process workers exit 0.
pub fn run_worker<E: OpExecutor>(
    stream: TcpStream,
    machine_id: u32,
    master_seed: u64,
    executor: &mut E,
) -> io::Result<()> {
    run_worker_with_fault(stream, machine_id, master_seed, executor, None)
}

/// [`run_worker`] with an optional injected fault.
pub fn run_worker_with_fault<E: OpExecutor>(
    mut stream: TcpStream,
    machine_id: u32,
    master_seed: u64,
    executor: &mut E,
    fault: Option<WorkerFault>,
) -> io::Result<()> {
    let seed = stream_seed(master_seed, machine_id as usize);
    let mut hello = Vec::with_capacity(12);
    hello.extend_from_slice(&machine_id.to_le_bytes());
    hello.extend_from_slice(&seed.to_le_bytes());
    write_frame(&mut stream, frame::HELLO, &hello)?;

    let mut replies = 0usize;
    loop {
        let (opcode, body) = match read_frame(&mut stream) {
            Ok(f) => f,
            // Master hung up without a Shutdown op: a normal exit path.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                eprintln!("dim-worker[{machine_id}]: master disconnected, exiting");
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        if opcode != frame::OP {
            return Err(protocol_err(&format!("unexpected opcode {opcode}")));
        }
        let Some(op) = WorkerOp::decode(&body) else {
            return Err(protocol_err("malformed op"));
        };
        if op == WorkerOp::Shutdown {
            let reply = [&0u64.to_le_bytes()[..], &WorkerReply::Ok.encode()].concat();
            let _ = write_frame(&mut stream, frame::REPLY, &reply);
            eprintln!("dim-worker[{machine_id}]: shutdown op received, exiting");
            return Ok(());
        }
        let start = Instant::now();
        let reply = executor.execute(&op);
        let elapsed = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        replies += 1;
        if fault == Some(WorkerFault::TruncateUpload { request: replies }) {
            // Declare a 64-byte frame, deliver 3 bytes, vanish.
            stream.write_all(&64u32.to_le_bytes())?;
            stream.write_all(&[frame::REPLY, 0xde, 0xad])?;
            stream.flush()?;
            return Ok(());
        }
        let body = [&elapsed.to_le_bytes()[..], &reply.encode()].concat();
        write_frame(&mut stream, frame::REPLY, &body)?;
    }
}

/// Master-side end of one worker link.
struct Link {
    stream: TcpStream,
    alive: bool,
}

/// What keeps a worker endpoint running.
enum Served {
    /// A spawned `dim-worker` OS process.
    Process(std::process::Child),
    /// An in-process thread serving [`run_worker`] (test/fallback mode).
    Thread(std::thread::JoinHandle<io::Result<()>>),
}

/// A master/worker cluster of ℓ machines, each a separate endpoint over
/// TCP (OS processes via [`ProcCluster::spawn`], threads via
/// [`ProcCluster::local_with`]), driven through serialized [`WorkerOp`]s.
///
/// Worker state is *resident in the endpoints* — the master side carries no
/// shard data, which is why [`ClusterBackend::Worker`] is `()` here.
/// Implements [`OpCluster`] with pipelined op rounds that populate
/// [`ClusterMetrics::measured_comm`] per phase from the real transfers.
pub struct ProcCluster {
    /// One unit per machine; the real state lives across the sockets.
    units: Vec<()>,
    network: NetworkModel,
    timeline: PhaseTimeline,
    master_seed: u64,
    links: Vec<Link>,
    served: Vec<Served>,
    link_errors: u64,
}

/// The master's listening address: `DIM_MASTER_BIND` or loopback.
fn master_bind_addr() -> String {
    std::env::var("DIM_MASTER_BIND").unwrap_or_else(|_| "127.0.0.1:0".to_string())
}

impl ProcCluster {
    /// Spawns `count` `dim-worker` OS processes and connects them over TCP.
    ///
    /// The worker binary is located via the `DIM_WORKER_BIN` environment
    /// variable, falling back to a `dim-worker` next to (or one directory
    /// above) the current executable — which covers `cargo test`, whose
    /// test binaries live in `target/<profile>/deps` while bin targets
    /// land in `target/<profile>`. Errors if the binary cannot be found
    /// or any worker fails to spawn/handshake, so callers can skip
    /// gracefully where process spawning is unavailable.
    pub fn spawn(count: usize, network: NetworkModel, master_seed: u64) -> io::Result<Self> {
        let bin = worker_binary()?;
        Self::spawn_with_bin(count, network, master_seed, &bin)
    }

    /// [`ProcCluster::spawn`] with an explicit worker binary.
    fn spawn_with_bin(
        count: usize,
        network: NetworkModel,
        master_seed: u64,
        bin: &std::path::Path,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(master_bind_addr())?;
        let addr = listener.local_addr()?;
        let mut children = Vec::with_capacity(count);
        let mut spawn_all = || -> io::Result<Vec<TcpStream>> {
            for id in 0..count {
                let child = std::process::Command::new(bin)
                    .arg("--addr")
                    .arg(addr.to_string())
                    .arg("--machine-id")
                    .arg(id.to_string())
                    .arg("--master-seed")
                    .arg(master_seed.to_string())
                    .stdin(std::process::Stdio::null())
                    .spawn()?;
                children.push(child);
            }
            accept_n(&listener, count)
        };
        match spawn_all() {
            Ok(streams) => Self::assemble(
                count,
                network,
                master_seed,
                streams,
                children.into_iter().map(Served::Process).collect(),
            ),
            Err(e) => {
                for mut c in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                Err(e)
            }
        }
    }

    /// Builds a cluster whose machines are in-process threads serving the
    /// identical frame protocol over real loopback sockets, each running
    /// the executor `factory(machine_id)` produces.
    ///
    /// This is the test seam and the fallback where spawning processes is
    /// unavailable; everything except the process boundary (handshake,
    /// framing, op dispatch, measured transfers) is exercised the same way.
    pub fn local_with<E, F>(
        count: usize,
        network: NetworkModel,
        master_seed: u64,
        factory: F,
    ) -> io::Result<Self>
    where
        E: OpExecutor + Send + 'static,
        F: Fn(usize) -> E,
    {
        Self::local_with_faults(count, network, master_seed, factory, Vec::new())
    }

    /// [`ProcCluster::local_with`] with per-machine fault injections
    /// (`faults.get(i)` applies to machine `i`).
    pub fn local_with_faults<E, F>(
        count: usize,
        network: NetworkModel,
        master_seed: u64,
        factory: F,
        faults: Vec<Option<WorkerFault>>,
    ) -> io::Result<Self>
    where
        E: OpExecutor + Send + 'static,
        F: Fn(usize) -> E,
    {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let mut served = Vec::with_capacity(count);
        for id in 0..count {
            let fault = faults.get(id).copied().flatten();
            let mut executor = factory(id);
            let handle = std::thread::spawn(move || {
                let stream = TcpStream::connect(addr)?;
                run_worker_with_fault(stream, id as u32, master_seed, &mut executor, fault)
            });
            served.push(Served::Thread(handle));
        }
        let streams = accept_n(&listener, count)?;
        Self::assemble(count, network, master_seed, streams, served)
    }

    /// [`ProcCluster::spawn`] if a worker binary is available and spawning
    /// works, otherwise [`ProcCluster::local_with`] using `factory`. Never
    /// fails for want of the binary alone.
    pub fn auto_with<E, F>(
        count: usize,
        network: NetworkModel,
        master_seed: u64,
        factory: F,
    ) -> io::Result<Self>
    where
        E: OpExecutor + Send + 'static,
        F: Fn(usize) -> E,
    {
        if let Ok(bin) = worker_binary() {
            if let Ok(cluster) = Self::spawn_with_bin(count, network, master_seed, &bin) {
                return Ok(cluster);
            }
        }
        Self::local_with(count, network, master_seed, factory)
    }

    /// Handshakes `streams` (in any order — HELLO carries the machine id)
    /// and assembles the cluster.
    fn assemble(
        count: usize,
        network: NetworkModel,
        master_seed: u64,
        streams: Vec<TcpStream>,
        served: Vec<Served>,
    ) -> io::Result<Self> {
        assert!(count > 0, "cluster needs at least one machine");
        let mut slots: Vec<Option<Link>> = (0..count).map(|_| None).collect();
        for mut stream in streams {
            stream.set_read_timeout(Some(IO_TIMEOUT))?;
            stream.set_nodelay(true)?;
            let (opcode, body) = read_frame(&mut stream)?;
            if opcode != frame::HELLO || body.len() != 12 {
                return Err(protocol_err("bad HELLO"));
            }
            let id = u32::from_le_bytes(body[..4].try_into().unwrap()) as usize;
            let seed = u64::from_le_bytes(body[4..].try_into().unwrap());
            if id >= count || slots[id].is_some() {
                return Err(protocol_err("bad machine id in HELLO"));
            }
            if seed != stream_seed(master_seed, id) {
                return Err(protocol_err("worker stream seed mismatch"));
            }
            stream.set_read_timeout(Some(REPLY_TIMEOUT))?;
            slots[id] = Some(Link { stream, alive: true });
        }
        let links = slots
            .into_iter()
            .map(|s| s.ok_or_else(|| protocol_err("missing worker connection")))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(ProcCluster {
            units: vec![(); count],
            network,
            timeline: PhaseTimeline::new(),
            master_seed,
            links,
            served,
            link_errors: 0,
        })
    }

    /// The master seed the worker streams were derived from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Number of link faults observed so far (dead links stay dead).
    pub fn link_errors(&self) -> u64 {
        self.link_errors
    }

    /// Number of links still alive.
    pub fn live_links(&self) -> usize {
        self.links.iter().filter(|l| l.alive).count()
    }

    /// OS process ids of the spawned worker processes (empty for
    /// thread-served clusters). Lets tests verify no orphans survive drop.
    pub fn worker_pids(&self) -> Vec<u32> {
        self.served
            .iter()
            .filter_map(|s| match s {
                Served::Process(child) => Some(child.id()),
                Served::Thread(_) => None,
            })
            .collect()
    }

    /// Marks link `i` dead and returns the typed error for `phase`.
    fn fail_link(&mut self, phase: &'static str, i: usize, malformed: bool) -> WireError {
        self.links[i].alive = false;
        self.link_errors += 1;
        if malformed {
            WireError::malformed(phase, i)
        } else {
            WireError::link(phase, i)
        }
    }
}

/// Accepts exactly `n` connections, bounded by [`IO_TIMEOUT`] overall.
fn accept_n(listener: &TcpListener, n: usize) -> io::Result<Vec<TcpStream>> {
    listener.set_nonblocking(true)?;
    let deadline = Instant::now() + IO_TIMEOUT;
    let mut streams = Vec::with_capacity(n);
    while streams.len() < n {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                streams.push(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "workers did not all connect",
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(streams)
}

/// Locates the `dim-worker` binary (see [`ProcCluster::spawn`]).
fn worker_binary() -> io::Result<std::path::PathBuf> {
    if let Some(path) = std::env::var_os("DIM_WORKER_BIN") {
        let path = std::path::PathBuf::from(path);
        if path.exists() {
            return Ok(path);
        }
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            "DIM_WORKER_BIN does not exist",
        ));
    }
    let exe = std::env::current_exe()?;
    let mut dir = exe
        .parent()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no exe dir"))?
        .to_path_buf();
    for _ in 0..2 {
        let candidate = dir.join("dim-worker");
        if candidate.exists() {
            return Ok(candidate);
        }
        if !dir.pop() {
            break;
        }
    }
    Err(io::Error::new(
        io::ErrorKind::NotFound,
        "dim-worker binary not found (set DIM_WORKER_BIN)",
    ))
}

impl Drop for ProcCluster {
    fn drop(&mut self) {
        for link in &mut self.links {
            if link.alive {
                let _ = write_frame(&mut link.stream, frame::OP, &WorkerOp::Shutdown.encode());
            }
            let _ = link.stream.shutdown(std::net::Shutdown::Both);
        }
        for served in self.served.drain(..) {
            match served {
                Served::Process(mut child) => {
                    // The Shutdown op (or the closed socket) makes workers
                    // exit; give them a moment, then make sure.
                    let deadline = Instant::now() + Duration::from_secs(2);
                    loop {
                        match child.try_wait() {
                            Ok(Some(_)) => break,
                            Ok(None) if Instant::now() < deadline => {
                                std::thread::sleep(Duration::from_millis(10));
                            }
                            _ => {
                                let _ = child.kill();
                                let _ = child.wait();
                                break;
                            }
                        }
                    }
                }
                Served::Thread(handle) => {
                    let _ = handle.join();
                }
            }
        }
    }
}

impl ClusterBackend for ProcCluster {
    /// Worker state is resident in the worker processes; the master holds
    /// only connection endpoints.
    type Worker = ();

    fn num_machines(&self) -> usize {
        self.units.len()
    }

    fn network(&self) -> NetworkModel {
        self.network
    }

    fn workers(&self) -> &[()] {
        &self.units
    }

    fn timeline(&self) -> &PhaseTimeline {
        &self.timeline
    }

    fn record(&mut self, label: &'static str, delta: ClusterMetrics) {
        self.timeline.record(label, delta);
    }

    /// Master-side sequential execution over the unit states, timed like
    /// `SimCluster` in `ExecMode::Sequential`. Algorithms running on this
    /// backend do their distributed work through [`OpCluster::exec_ops`];
    /// this exists to satisfy the closure contract for master-local steps.
    fn par_step<R, F>(&mut self, label: &'static str, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut ()) -> R + Sync,
    {
        let mut results = Vec::with_capacity(self.units.len());
        let mut max = Duration::ZERO;
        let mut sum = Duration::ZERO;
        for (i, u) in self.units.iter_mut().enumerate() {
            let start = Instant::now();
            results.push(f(i, u));
            let t = start.elapsed();
            max = max.max(t);
            sum += t;
        }
        self.record(
            label,
            ClusterMetrics {
                worker_compute: max,
                worker_busy: sum,
                phases: 1,
                ..Default::default()
            },
        );
        results
    }

    fn master<R, F>(&mut self, label: &'static str, f: F) -> R
    where
        F: FnOnce() -> R,
    {
        let start = Instant::now();
        let r = f();
        self.record(
            label,
            ClusterMetrics {
                master_compute: start.elapsed(),
                ..Default::default()
            },
        );
        r
    }
}

impl OpCluster for ProcCluster {
    /// One pipelined op round: send every machine its OP frame, then read
    /// the ℓ REPLY frames. Worker compute is the maximum of the
    /// worker-reported elapsed times (workers run concurrently);
    /// `measured_comm` records the send wall clock under `down_label`
    /// (falling back to `up_label`) and the receive wall clock minus the
    /// compute window under `up_label`.
    fn exec_ops<F>(
        &mut self,
        down_label: Option<&'static str>,
        up_label: &'static str,
        op: F,
    ) -> Result<Vec<WorkerReply>, WireError>
    where
        F: Fn(usize) -> WorkerOp + Sync,
    {
        let l = self.links.len();
        for i in 0..l {
            if !self.links[i].alive {
                return Err(WireError::link(up_label, i));
            }
        }
        let send_start = Instant::now();
        for i in 0..l {
            let encoded = op(i).encode();
            if write_frame(&mut self.links[i].stream, frame::OP, &encoded).is_err() {
                return Err(self.fail_link(up_label, i, false));
            }
        }
        let send_wall = send_start.elapsed();

        let recv_start = Instant::now();
        let mut replies = Vec::with_capacity(l);
        let mut max_elapsed = Duration::ZERO;
        let mut sum_elapsed = Duration::ZERO;
        for i in 0..l {
            let (opcode, body) = match read_frame(&mut self.links[i].stream) {
                Ok(f) => f,
                Err(_) => return Err(self.fail_link(up_label, i, false)),
            };
            if opcode != frame::REPLY || body.len() < 8 {
                return Err(self.fail_link(up_label, i, true));
            }
            let nanos = u64::from_le_bytes(body[..8].try_into().unwrap());
            let Some(reply) = WorkerReply::decode(&body[8..]) else {
                return Err(self.fail_link(up_label, i, true));
            };
            if let WorkerReply::Err(msg) = &reply {
                eprintln!("dim worker {i} failed op in phase `{up_label}`: {msg}");
                return Err(WireError::malformed(up_label, i));
            }
            let elapsed = Duration::from_nanos(nanos);
            max_elapsed = max_elapsed.max(elapsed);
            sum_elapsed += elapsed;
            replies.push(reply);
        }
        let recv_wall = recv_start.elapsed();

        self.record(
            up_label,
            ClusterMetrics {
                worker_compute: max_elapsed,
                worker_busy: sum_elapsed,
                phases: 1,
                ..Default::default()
            },
        );
        self.record(
            down_label.unwrap_or(up_label),
            ClusterMetrics {
                measured_comm: send_wall,
                ..Default::default()
            },
        );
        self.record(
            up_label,
            ClusterMetrics {
                measured_comm: recv_wall.saturating_sub(max_elapsed),
                ..Default::default()
            },
        );
        Ok(replies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::phase;
    use crate::ops::{expect_counts, expect_ok};
    use crate::runtime::{ExecMode, SimCluster};
    use crate::wire::WireErrorKind;

    /// Toy resident state: `SampleRr` accumulates, `CoveredCount` reports,
    /// `ApplySeed` subtracts, `InitialCoverage` reports one delta tuple.
    struct Tally(u64);

    impl OpExecutor for Tally {
        fn execute(&mut self, op: &WorkerOp) -> WorkerReply {
            match op {
                WorkerOp::SampleRr { count } => {
                    self.0 += count;
                    WorkerReply::Ok
                }
                WorkerOp::ApplySeed { set } => {
                    self.0 = self.0.saturating_sub(u64::from(*set));
                    WorkerReply::Deltas(vec![(*set, self.0 as u32)])
                }
                WorkerOp::InitialCoverage => WorkerReply::Deltas(vec![(1, self.0 as u32)]),
                WorkerOp::CoveredCount => WorkerReply::Count(self.0),
                _ => WorkerReply::Err("unsupported".into()),
            }
        }
    }

    #[test]
    fn fault_parse() {
        assert_eq!(
            WorkerFault::parse("truncate-upload:3"),
            Some(WorkerFault::TruncateUpload { request: 3 })
        );
        assert_eq!(WorkerFault::parse("nonsense"), None);
        assert_eq!(WorkerFault::parse("truncate-upload:x"), None);
    }

    #[test]
    fn op_rounds_reach_resident_state() {
        let mut cluster = ProcCluster::local_with(3, NetworkModel::cluster_1gbps(), 7, |i| {
            Tally(i as u64 * 100)
        })
        .unwrap();
        let acks = cluster
            .control(phase::RR_SAMPLING, |i| WorkerOp::SampleRr {
                count: i as u64 + 1,
            })
            .unwrap();
        expect_ok(&acks, phase::RR_SAMPLING).unwrap();
        let counts = cluster
            .op_gather(phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount)
            .unwrap();
        assert_eq!(
            expect_counts(&counts, phase::COUNT_UPLOAD).unwrap(),
            vec![1, 102, 203]
        );
        let m = cluster.timeline().get(phase::COUNT_UPLOAD);
        assert_eq!(m.messages, 3);
        assert_eq!(m.bytes_to_master, 24);
        // The round physically crossed the sockets.
        assert!(m.measured_comm > Duration::ZERO);
        assert_eq!(cluster.link_errors(), 0);
    }

    #[test]
    fn broadcast_gather_measured_and_modeled() {
        let mut cluster =
            ProcCluster::local_with(2, NetworkModel::cluster_1gbps(), 1, |_| Tally(50)).unwrap();
        let replies = cluster
            .op_broadcast_gather(phase::SEED_BROADCAST, 8, phase::DELTA_UPLOAD, |_| {
                WorkerOp::ApplySeed { set: 5 }
            })
            .unwrap();
        assert_eq!(replies.len(), 2);
        let down = cluster.timeline().get(phase::SEED_BROADCAST);
        let up = cluster.timeline().get(phase::DELTA_UPLOAD);
        assert_eq!(down.bytes_from_master, 16);
        assert!(down.comm_time > Duration::ZERO);
        assert!(down.measured_comm > Duration::ZERO);
        assert_eq!(up.bytes_to_master, 2 * crate::wire::delta_wire_size(1));
        assert!(up.measured_comm > Duration::ZERO);
        // Label order mirrors the algorithm: broadcast before upload.
        let labels: Vec<_> = cluster.timeline().labels().collect();
        assert_eq!(labels, vec![phase::SEED_BROADCAST, phase::DELTA_UPLOAD]);
    }

    /// Runs the same two op rounds through any [`OpCluster`]; used to show
    /// sim and proc backends agree on results and modeled metrics.
    fn sample_then_count<B: OpCluster>(cluster: &mut B) -> Vec<WorkerReply> {
        cluster
            .control(phase::RR_SAMPLING, |i| WorkerOp::SampleRr {
                count: 10 * (i as u64 + 1),
            })
            .unwrap();
        cluster
            .op_gather(phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount)
            .unwrap()
    }

    #[test]
    fn same_ops_same_results_and_modeled_metrics_as_sim() {
        let mut sim = SimCluster::new(
            vec![Tally(0), Tally(0)],
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        );
        let sim_counts = sample_then_count(&mut sim);
        let mut proc =
            ProcCluster::local_with(2, NetworkModel::cluster_1gbps(), 99, |_| Tally(0)).unwrap();
        let proc_counts = sample_then_count(&mut proc);
        assert_eq!(sim_counts, proc_counts);
        let ms = sim.timeline().get(phase::COUNT_UPLOAD);
        let mp = proc.timeline().get(phase::COUNT_UPLOAD);
        // Identical modeled traffic and pricing; only measured differs.
        assert_eq!(ms.messages, mp.messages);
        assert_eq!(ms.bytes_to_master, mp.bytes_to_master);
        assert_eq!(ms.comm_time, mp.comm_time);
        assert_eq!(ms.measured_comm, Duration::ZERO);
        assert!(mp.measured_comm > Duration::ZERO);
    }

    #[test]
    fn large_frames_roundtrip() {
        // A multi-megabyte reply exercises framing well past one packet.
        struct Big;
        impl OpExecutor for Big {
            fn execute(&mut self, op: &WorkerOp) -> WorkerReply {
                match op {
                    WorkerOp::InitialCoverage => {
                        WorkerReply::Deltas((0..500_000u32).map(|v| (v, 1)).collect())
                    }
                    _ => WorkerReply::Err("unsupported".into()),
                }
            }
        }
        let mut cluster = ProcCluster::local_with(2, NetworkModel::zero(), 5, |_| Big).unwrap();
        let replies = cluster
            .op_gather(phase::COVERAGE_UPLOAD, |_| WorkerOp::InitialCoverage)
            .unwrap();
        for reply in &replies {
            match reply {
                WorkerReply::Deltas(d) => assert_eq!(d.len(), 500_000),
                other => panic!("unexpected reply {other:?}"),
            }
        }
        assert_eq!(cluster.link_errors(), 0);
        assert_eq!(
            cluster.metrics().bytes_to_master,
            2 * crate::wire::delta_wire_size(500_000)
        );
    }

    #[test]
    fn truncated_reply_fails_round_with_typed_error() {
        // Machine 1 truncates its first reply. Worker state is resident, so
        // the round must fail with a typed error naming the machine — not
        // silently degrade like the old placeholder-payload path.
        let faults = vec![None, Some(WorkerFault::TruncateUpload { request: 1 })];
        let mut cluster = ProcCluster::local_with_faults(
            2,
            NetworkModel::cluster_1gbps(),
            3,
            |_| Tally(9),
            faults,
        )
        .unwrap();
        let err = cluster
            .op_gather(phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount)
            .unwrap_err();
        assert_eq!(err.phase, phase::COUNT_UPLOAD);
        assert_eq!(err.machine, Some(1));
        assert!(
            matches!(err.kind, WireErrorKind::Link | WireErrorKind::Malformed),
            "{err:?}"
        );
        assert_eq!(cluster.link_errors(), 1);
        assert_eq!(cluster.live_links(), 1);
        // Later rounds refuse to run without the dead machine's state.
        let err = cluster
            .op_gather(phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount)
            .unwrap_err();
        assert_eq!(err.kind, WireErrorKind::Link);
        assert_eq!(err.machine, Some(1));
    }

    #[test]
    fn worker_error_reply_is_typed_not_fatal_to_link() {
        let mut cluster =
            ProcCluster::local_with(2, NetworkModel::zero(), 4, |_| Tally(0)).unwrap();
        let err = cluster
            .control(phase::VALIDATION, |_| WorkerOp::Stats)
            .unwrap_err();
        assert_eq!(err.phase, phase::VALIDATION);
        assert_eq!(err.machine, Some(0));
        assert_eq!(err.kind, WireErrorKind::Malformed);
    }

    #[test]
    fn rejects_seed_mismatch_in_handshake() {
        // A worker whose HELLO advertises the wrong stream seed is refused
        // at construction: the cross-process RNG contract is load-bearing.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let bogus = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut body = Vec::new();
            body.extend_from_slice(&0u32.to_le_bytes());
            body.extend_from_slice(&0xbad_5eedu64.to_le_bytes());
            let _ = write_frame(&mut s, frame::HELLO, &body);
            // Hold the socket open until the master decides.
            let _ = read_frame(&mut s);
        });
        let streams = accept_n(&listener, 1).unwrap();
        let err = match ProcCluster::assemble(1, NetworkModel::zero(), 1, streams, Vec::new()) {
            Ok(_) => panic!("seed mismatch accepted"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("seed mismatch"), "{err}");
        let _ = bogus.join();
    }

    #[test]
    fn drop_shuts_workers_down_cleanly() {
        let cluster =
            ProcCluster::local_with(3, NetworkModel::zero(), 11, |_| Tally(0)).unwrap();
        // Dropping sends the Shutdown op and joins the threads; a hang here
        // would fail the test by timeout.
        drop(cluster);
    }
}
