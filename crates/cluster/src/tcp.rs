//! The process-per-machine [`ClusterBackend`] over TCP.
//!
//! [`ProcCluster`] is the "real distribution" counterpart of
//! [`crate::SimCluster`]: each of the ℓ machines is a separate OS process
//! (the `dim-worker` binary, or a thread serving the identical protocol in
//! tests) that **owns its resident state** — graph partition, RNG stream,
//! RR-set shard, coverage labels — and answers serialized
//! [`WorkerOp`]s until shutdown. The master holds no shard state at all;
//! every algorithm phase becomes one op round through the [`OpCluster`]
//! seam, and since [`crate::SimCluster`] interprets the *same* op values in
//! process, both backends execute the same algorithm by construction.
//!
//! # Frame protocol
//!
//! Every frame is `[u32 len (LE)] [u8 opcode] [body; len − 1]`, with `len`
//! capped at [`MAX_FRAME`]. Opcodes:
//!
//! | opcode | name      | direction | body                                     |
//! |--------|-----------|-----------|------------------------------------------|
//! | 0      | HELLO     | w → m     | [`rendezvous::Hello`] (version, caps, id, stream seed) |
//! | 1      | OP        | m → w     | one encoded [`WorkerOp`]                 |
//! | 2      | REPLY     | w → m     | `[u64 elapsed_ns]` + encoded [`WorkerReply`] |
//! | 3      | JOIN      | w → m     | [`rendezvous::JoinHello`] (version, caps, requested id) |
//! | 4      | WELCOME   | m → w     | [`rendezvous::Welcome`] (session, id, ℓ, master seed) |
//! | 5      | HEARTBEAT | m ⇄ w     | [`rendezvous::Heartbeat`] (session, seq) — worker echoes |
//! | 6      | REJECT    | m → w     | [`rendezvous::Reject`] (reason)          |
//!
//! Every connection — spawned worker or join-mode worker — handshakes the
//! same way (protocol v2): the worker sends JOIN, the master registers it
//! in a [`rendezvous::MembershipTable`] and answers WELCOME (or REJECT
//! with a typed reason), and the worker confirms with HELLO carrying the
//! stream seed it derived from the WELCOME. The master cross-checks that
//! seed against [`stream_seed`]`(master_seed, id)` — the cross-process RNG
//! contract is load-bearing for backend equivalence, so a divergent worker
//! is refused before it can compute anything.
//!
//! An op round is pipelined: the master sends every machine its OP frame
//! first, then reads the ℓ REPLY frames — so worker processes genuinely
//! compute in parallel, and the round's compute cost is the *maximum*
//! worker-reported `elapsed_ns` (the paper's rule). The REPLY's elapsed
//! prefix lets the master separate worker compute from transfer time: the
//! wall clock of the send and of the receive-minus-compute land in
//! [`ClusterMetrics::measured_comm`] under the phase's labels, next to the
//! modeled [`ClusterMetrics::comm_time`]. Between rounds the master may
//! probe idle links with [`ProcCluster::heartbeat`]; workers echo the
//! frame, and a missed echo fail-stops the link with the same typed
//! [`WireError`] an op-round failure produces.
//!
//! There is no dedicated shutdown frame: [`WorkerOp::Shutdown`] rides the
//! normal OP path (sent by `Drop`), and a master disconnect (EOF) is an
//! equally clean exit — workers log a line and exit 0 either way.
//!
//! # Failure semantics
//!
//! Worker state is resident in the worker processes, so a dead link is
//! *fatal to the round*, not a degraded-measurement detail: an I/O error
//! or malformed frame marks the link dead, increments
//! [`ProcCluster::link_errors`], and surfaces as a typed
//! [`WireError`] (kind [`crate::WireErrorKind::Link`] for transport
//! failures, `Malformed` for protocol violations) which the algorithms
//! propagate to their callers. This mirrors MPI's fail-stop model rather
//! than the earlier pattern-verified placeholder path, which could shrug
//! links off because no state lived behind them.
//!
//! # Addresses
//!
//! The master binds `127.0.0.1:0` by default; set `DIM_MASTER_BIND` (e.g.
//! `0.0.0.0:7070`) to accept workers from other hosts. Workers are told
//! where to connect via `--addr` (or the `DIM_WORKER_ADDR` environment
//! variable) — groundwork for multi-host runs beyond loopback.

use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use crate::backend::{phase, ClusterBackend};
#[cfg(feature = "chaos")]
use crate::faults::{FaultInjector, LinkDecision};
use crate::metrics::{ClusterMetrics, PhaseTimeline};
use crate::network::NetworkModel;
use crate::ops::{OpCluster, OpExecutor, WorkerOp, WorkerReply};
use crate::rendezvous::{self, Heartbeat, JoinHello, MembershipTable, Reject};
use crate::wire::{WireError, WireErrorKind};

pub use crate::wire::MAX_FRAME;
pub(crate) use crate::wire::{protocol_err, read_frame, write_frame};

/// Default seconds a handshake read or worker connect may block before the
/// link is declared dead ([`handshake_timeout`]).
const DEFAULT_HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Seconds the master waits for a REPLY — generous, because arbitrary
/// worker compute (RR sampling of a whole shard) happens between the OP
/// and its REPLY.
const REPLY_TIMEOUT: Duration = Duration::from_secs(60);

/// The handshake/connect timeout, shared by the spawn and join paths:
/// `DIM_HANDSHAKE_TIMEOUT_SECS` (whole seconds) or 10 s. Bounds every
/// pre-membership read — accept loops, JOIN/WELCOME/HELLO exchanges — and
/// the join-mode worker's connect attempts.
pub fn handshake_timeout() -> Duration {
    std::env::var("DIM_HANDSHAKE_TIMEOUT_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .filter(|&secs| secs > 0)
        .map(Duration::from_secs)
        .unwrap_or(DEFAULT_HANDSHAKE_TIMEOUT)
}

/// Frame opcodes (see the module docs for the protocol table).
pub(crate) mod frame {
    pub const HELLO: u8 = 0;
    pub const OP: u8 = 1;
    pub const REPLY: u8 = 2;
    pub const JOIN: u8 = 3;
    pub const WELCOME: u8 = 4;
    pub const HEARTBEAT: u8 = 5;
    pub const REJECT: u8 = 6;
}

/// Fault injections for protocol tests (worker side).
///
/// The `dim-worker` binary reads these from the `DIM_WORKER_FAULT`
/// environment variable (e.g. `truncate-upload:1`); in-crate tests pass
/// them to [`run_worker_with_fault`] directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerFault {
    /// On the `request`-th reply (1-based), declare a full frame but send
    /// only a few bytes, then close the connection.
    TruncateUpload {
        /// Which reply (1-based) to sabotage.
        request: usize,
    },
}

impl WorkerFault {
    /// Parses the `DIM_WORKER_FAULT` syntax (`truncate-upload:N`).
    pub fn parse(s: &str) -> Option<WorkerFault> {
        let (kind, arg) = s.split_once(':')?;
        match kind {
            "truncate-upload" => Some(WorkerFault::TruncateUpload {
                request: arg.parse().ok()?,
            }),
            _ => None,
        }
    }
}

/// How a served session ended, from the worker's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionEnd {
    /// The master sent [`WorkerOp::Shutdown`]; the session is over but the
    /// master process may still be alive (join-mode workers re-register
    /// for the next session).
    Shutdown,
    /// The master hung up (EOF) without a shutdown op — equally clean.
    Disconnected,
}

/// Serves the worker side of the protocol until [`WorkerOp::Shutdown`] or
/// master disconnect, answering every op via `executor`.
///
/// This is the entire body of the `dim-worker` binary's spawn mode; tests
/// call it on a thread with one end of a loopback socket pair. Returns
/// `Ok(())` on both clean exits (shutdown op, EOF) so process workers
/// exit 0.
pub fn run_worker<E: OpExecutor>(
    stream: TcpStream,
    machine_id: u32,
    master_seed: u64,
    executor: &mut E,
) -> io::Result<()> {
    run_worker_with_fault(stream, machine_id, master_seed, executor, None)
}

/// [`run_worker`] with an optional injected fault.
///
/// Spawn-mode preamble: the worker was launched knowing its machine id and
/// the master seed, so it requests exactly that slot through the v2
/// JOIN/WELCOME/HELLO handshake and cross-checks the WELCOME against its
/// command line before serving ops.
pub fn run_worker_with_fault<E: OpExecutor>(
    mut stream: TcpStream,
    machine_id: u32,
    master_seed: u64,
    executor: &mut E,
    fault: Option<WorkerFault>,
) -> io::Result<()> {
    let welcome = rendezvous::join_handshake(&mut stream, JoinHello::new(Some(machine_id)))
        .map_err(|e| e.into_io())?;
    if welcome.master_seed != master_seed {
        return Err(protocol_err(&format!(
            "WELCOME master seed {} does not match --master-seed {}",
            welcome.master_seed, master_seed
        )));
    }
    serve_session(stream, machine_id, executor, fault).map(|_| ())
}

/// Serves one session's op loop after a completed handshake: answers OP
/// frames, echoes HEARTBEAT frames, and returns how the session ended.
/// Shared by the spawn path ([`run_worker`]) and the join path
/// ([`rendezvous::run_join_worker`]).
pub(crate) fn serve_session<E: OpExecutor>(
    mut stream: TcpStream,
    machine_id: u32,
    executor: &mut E,
    fault: Option<WorkerFault>,
) -> io::Result<SessionEnd> {
    // A master that hangs up mid-session is a *session end*, not a worker
    // fault — and it does not always look like a clean EOF. If the master
    // fail-stops on another machine's dead link and drops the cluster, our
    // last heartbeat echo may still sit unread in its receive buffer, so
    // the close arrives as an RST: the next read or write here fails with
    // ConnectionReset/BrokenPipe rather than UnexpectedEof. All of those
    // mean the same thing to a worker (especially a join-mode one, which
    // re-registers for the next session), so map the whole family to
    // `SessionEnd::Disconnected`.
    let disconnected = |e: &io::Error| {
        matches!(
            e.kind(),
            io::ErrorKind::UnexpectedEof
                | io::ErrorKind::BrokenPipe
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
        )
    };
    let mut replies = 0usize;
    loop {
        let (opcode, body) = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(e) if disconnected(&e) => {
                eprintln!("dim-worker[{machine_id}]: master disconnected, exiting session");
                return Ok(SessionEnd::Disconnected);
            }
            Err(e) => return Err(e),
        };
        match opcode {
            frame::OP => {}
            frame::HEARTBEAT => {
                // Liveness probe: echo the exact body back.
                if Heartbeat::decode(&body).is_none() {
                    return Err(protocol_err("malformed heartbeat"));
                }
                match write_frame(&mut stream, frame::HEARTBEAT, &body) {
                    Ok(()) => continue,
                    Err(e) if disconnected(&e) => {
                        eprintln!(
                            "dim-worker[{machine_id}]: master disconnected, exiting session"
                        );
                        return Ok(SessionEnd::Disconnected);
                    }
                    Err(e) => return Err(e),
                }
            }
            frame::REJECT => {
                let reason = Reject::decode(&body)
                    .map(|r| r.reason.describe())
                    .unwrap_or("unknown reason");
                return Err(protocol_err(&format!("master rejected session: {reason}")));
            }
            other => return Err(protocol_err(&format!("unexpected opcode {other}"))),
        }
        let Some(op) = WorkerOp::decode(&body) else {
            return Err(protocol_err("malformed op"));
        };
        if op == WorkerOp::Shutdown {
            let reply = [&0u64.to_le_bytes()[..], &WorkerReply::Ok.encode()].concat();
            let _ = write_frame(&mut stream, frame::REPLY, &reply);
            eprintln!("dim-worker[{machine_id}]: shutdown op received, ending session");
            return Ok(SessionEnd::Shutdown);
        }
        let start = Instant::now();
        let reply = executor.execute(&op);
        let elapsed = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        replies += 1;
        if fault == Some(WorkerFault::TruncateUpload { request: replies }) {
            // Declare a 64-byte frame, deliver 3 bytes, vanish.
            stream.write_all(&64u32.to_le_bytes())?;
            stream.write_all(&[frame::REPLY, 0xde, 0xad])?;
            stream.flush()?;
            return Ok(SessionEnd::Disconnected);
        }
        let body = [&elapsed.to_le_bytes()[..], &reply.encode()].concat();
        match write_frame(&mut stream, frame::REPLY, &body) {
            Ok(()) => {}
            Err(e) if disconnected(&e) => {
                eprintln!("dim-worker[{machine_id}]: master disconnected, exiting session");
                return Ok(SessionEnd::Disconnected);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Master-side end of one worker link.
struct Link {
    stream: TcpStream,
    alive: bool,
}

/// What keeps a worker endpoint running.
pub(crate) enum Served {
    /// A spawned `dim-worker` OS process.
    Process(std::process::Child),
    /// An in-process thread serving [`run_worker`] (test/fallback mode).
    Thread(std::thread::JoinHandle<io::Result<()>>),
}

/// A master/worker cluster of ℓ machines, each a separate endpoint over
/// TCP (OS processes via [`ProcCluster::spawn`], threads via
/// [`ProcCluster::local_with`]), driven through serialized [`WorkerOp`]s.
///
/// Worker state is *resident in the endpoints* — the master side carries no
/// shard data, which is why [`ClusterBackend::Worker`] is `()` here.
/// Implements [`OpCluster`] with pipelined op rounds that populate
/// [`ClusterMetrics::measured_comm`] per phase from the real transfers.
pub struct ProcCluster {
    /// One unit per machine; the real state lives across the sockets.
    units: Vec<()>,
    network: NetworkModel,
    timeline: PhaseTimeline,
    master_seed: u64,
    /// Rendezvous session this cluster was assembled for (0 for
    /// spawn/thread clusters, which live exactly one session).
    session: u64,
    links: Vec<Link>,
    served: Vec<Served>,
    link_errors: u64,
    /// How long a heartbeat echo may take before the link fail-stops.
    heartbeat_timeout: Duration,
    /// Probe idle links this often *during* op rounds (`None` = only
    /// between rounds). See [`default_heartbeat_interval`].
    heartbeat_interval: Option<Duration>,
    heartbeat_seq: u64,
    /// Socket-level fault injector (see [`crate::faults`]): the same
    /// [`FaultInjector`] schedule `SimCluster` interprets in virtual time,
    /// applied here for real — stalls become socket sleeps, kills become
    /// mid-frame connection teardown.
    #[cfg(feature = "chaos")]
    chaos: Option<FaultInjector>,
}

/// The master's listening address: `DIM_MASTER_BIND` or loopback.
pub(crate) fn master_bind_addr() -> String {
    std::env::var("DIM_MASTER_BIND").unwrap_or_else(|_| "127.0.0.1:0".to_string())
}

impl ProcCluster {
    /// Spawns `count` `dim-worker` OS processes and connects them over TCP.
    ///
    /// The worker binary is located via the `DIM_WORKER_BIN` environment
    /// variable, falling back to a `dim-worker` next to (or one directory
    /// above) the current executable — which covers `cargo test`, whose
    /// test binaries live in `target/<profile>/deps` while bin targets
    /// land in `target/<profile>`. Errors if the binary cannot be found
    /// or any worker fails to spawn/handshake, so callers can skip
    /// gracefully where process spawning is unavailable.
    pub fn spawn(count: usize, network: NetworkModel, master_seed: u64) -> io::Result<Self> {
        let bin = worker_binary()?;
        Self::spawn_with_bin(count, network, master_seed, &bin)
    }

    /// [`ProcCluster::spawn`] with an explicit worker binary.
    fn spawn_with_bin(
        count: usize,
        network: NetworkModel,
        master_seed: u64,
        bin: &std::path::Path,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(master_bind_addr())?;
        let addr = listener.local_addr()?;
        let mut children = Vec::with_capacity(count);
        let mut spawn_all = || -> io::Result<Vec<TcpStream>> {
            for id in 0..count {
                let child = std::process::Command::new(bin)
                    .arg("--addr")
                    .arg(addr.to_string())
                    .arg("--machine-id")
                    .arg(id.to_string())
                    .arg("--master-seed")
                    .arg(master_seed.to_string())
                    .stdin(std::process::Stdio::null())
                    .spawn()?;
                children.push(child);
            }
            accept_n(&listener, count)
        };
        match spawn_all() {
            Ok(streams) => Self::assemble(
                count,
                network,
                master_seed,
                streams,
                children.into_iter().map(Served::Process).collect(),
            ),
            Err(e) => {
                for mut c in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                Err(e)
            }
        }
    }

    /// Builds a cluster whose machines are in-process threads serving the
    /// identical frame protocol over real loopback sockets, each running
    /// the executor `factory(machine_id)` produces.
    ///
    /// This is the test seam and the fallback where spawning processes is
    /// unavailable; everything except the process boundary (handshake,
    /// framing, op dispatch, measured transfers) is exercised the same way.
    pub fn local_with<E, F>(
        count: usize,
        network: NetworkModel,
        master_seed: u64,
        factory: F,
    ) -> io::Result<Self>
    where
        E: OpExecutor + Send + 'static,
        F: Fn(usize) -> E,
    {
        Self::local_with_faults(count, network, master_seed, factory, Vec::new())
    }

    /// [`ProcCluster::local_with`] with per-machine fault injections
    /// (`faults.get(i)` applies to machine `i`).
    pub fn local_with_faults<E, F>(
        count: usize,
        network: NetworkModel,
        master_seed: u64,
        factory: F,
        faults: Vec<Option<WorkerFault>>,
    ) -> io::Result<Self>
    where
        E: OpExecutor + Send + 'static,
        F: Fn(usize) -> E,
    {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let mut served = Vec::with_capacity(count);
        for id in 0..count {
            let fault = faults.get(id).copied().flatten();
            let mut executor = factory(id);
            let handle = std::thread::spawn(move || {
                let stream = TcpStream::connect(addr)?;
                run_worker_with_fault(stream, id as u32, master_seed, &mut executor, fault)
            });
            served.push(Served::Thread(handle));
        }
        let streams = accept_n(&listener, count)?;
        Self::assemble(count, network, master_seed, streams, served)
    }

    /// [`ProcCluster::spawn`] if a worker binary is available and spawning
    /// works, otherwise [`ProcCluster::local_with`] using `factory`. Never
    /// fails for want of the binary alone.
    pub fn auto_with<E, F>(
        count: usize,
        network: NetworkModel,
        master_seed: u64,
        factory: F,
    ) -> io::Result<Self>
    where
        E: OpExecutor + Send + 'static,
        F: Fn(usize) -> E,
    {
        if let Ok(bin) = worker_binary() {
            if let Ok(cluster) = Self::spawn_with_bin(count, network, master_seed, &bin) {
                return Ok(cluster);
            }
        }
        Self::local_with(count, network, master_seed, factory)
    }

    /// Handshakes `streams` (in any order — the JOIN carries each worker's
    /// requested machine id) and assembles the cluster. Spawn-mode
    /// assembly is strict: any handshake failure fails the whole
    /// construction, because the master launched exactly `count` workers
    /// itself.
    fn assemble(
        count: usize,
        network: NetworkModel,
        master_seed: u64,
        streams: Vec<TcpStream>,
        served: Vec<Served>,
    ) -> io::Result<Self> {
        assert!(count > 0, "cluster needs at least one machine");
        let mut table = MembershipTable::new(count);
        let mut slots: Vec<Option<TcpStream>> = (0..count).map(|_| None).collect();
        for mut stream in streams {
            let id = rendezvous::master_handshake(&mut stream, &mut table, 0, master_seed)
                .map_err(|e| e.into_io())?;
            slots[id as usize] = Some(stream);
        }
        let links = slots
            .into_iter()
            .map(|s| s.ok_or_else(|| protocol_err("missing worker connection")))
            .collect::<io::Result<Vec<_>>>()?;
        Self::from_streams(links, served, network, master_seed, 0, default_heartbeat_timeout())
    }

    /// Builds a cluster from fully handshaked streams in machine order.
    /// `served` may be empty (join-mode clusters do not own their worker
    /// processes). Shared by [`ProcCluster::assemble`] and
    /// [`rendezvous::Rendezvous::accept_session`].
    pub(crate) fn from_streams(
        streams: Vec<TcpStream>,
        served: Vec<Served>,
        network: NetworkModel,
        master_seed: u64,
        session: u64,
        heartbeat_timeout: Duration,
    ) -> io::Result<Self> {
        let count = streams.len();
        let mut links = Vec::with_capacity(count);
        for stream in streams {
            stream.set_read_timeout(Some(REPLY_TIMEOUT))?;
            links.push(Link { stream, alive: true });
        }
        Ok(ProcCluster {
            units: vec![(); count],
            network,
            timeline: PhaseTimeline::new(),
            master_seed,
            session,
            links,
            served,
            link_errors: 0,
            heartbeat_timeout,
            heartbeat_interval: default_heartbeat_interval(),
            heartbeat_seq: 0,
            #[cfg(feature = "chaos")]
            chaos: None,
        })
    }

    /// Arms (or clears) the socket-level chaos injector. Subsequent op
    /// rounds consult the injector per machine: `Healthy { delay }` sleeps
    /// `delay` before the OP frame goes out (a real write stall on the
    /// wire), `Killed` tears the connection down mid-frame — the worker
    /// sees a truncated frame then a reset, exactly like a crashed master,
    /// and the master's round surfaces a typed link error for that
    /// machine.
    #[cfg(feature = "chaos")]
    pub fn set_chaos(&mut self, injector: Option<FaultInjector>) {
        self.chaos = injector;
    }

    /// The armed chaos injector, if any (its event log is the determinism
    /// observable).
    #[cfg(feature = "chaos")]
    pub fn chaos_injector(&self) -> Option<&FaultInjector> {
        self.chaos.as_ref()
    }

    /// Mid-frame kill: ship a torn frame prefix (2 of the 4 length-header
    /// bytes) so the peer is mid-`read_exact` when the socket resets, then
    /// shut the connection down both ways.
    #[cfg(feature = "chaos")]
    fn kill_link_mid_frame(&mut self, i: usize) {
        let _ = self.links[i].stream.write_all(&[0xAA, 0x55]);
        let _ = self.links[i].stream.flush();
        let _ = self.links[i].stream.shutdown(std::net::Shutdown::Both);
    }

    /// The master seed the worker streams were derived from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Number of link faults observed so far (dead links stay dead).
    pub fn link_errors(&self) -> u64 {
        self.link_errors
    }

    /// Number of links still alive.
    pub fn live_links(&self) -> usize {
        self.links.iter().filter(|l| l.alive).count()
    }

    /// OS process ids of the spawned worker processes (empty for
    /// thread-served clusters). Lets tests verify no orphans survive drop.
    pub fn worker_pids(&self) -> Vec<u32> {
        self.served
            .iter()
            .filter_map(|s| match s {
                Served::Process(child) => Some(child.id()),
                Served::Thread(_) => None,
            })
            .collect()
    }

    /// The rendezvous session this cluster belongs to (0 when the master
    /// spawned its own workers).
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// Probes every live link with a HEARTBEAT frame and waits for the
    /// echoes, each bounded by the cluster's heartbeat timeout. A missing,
    /// late, or wrong echo fail-stops that link exactly like an op-round
    /// failure: the link is marked dead and the typed [`WireError`] names
    /// the machine. Intended for idle gaps — between runs, while the
    /// master does long local work — where no op round would notice a
    /// vanished worker.
    pub fn heartbeat(&mut self) -> Result<(), WireError> {
        self.heartbeat_seq += 1;
        let probe = Heartbeat {
            session: self.session,
            seq: self.heartbeat_seq,
        };
        let body = probe.encode();
        let l = self.links.len();
        let mut messages = 0u64;
        let start = Instant::now();
        for i in 0..l {
            if !self.links[i].alive {
                return Err(WireError::link(phase::HEARTBEAT, i));
            }
            if write_frame(&mut self.links[i].stream, frame::HEARTBEAT, &body).is_err() {
                return Err(self.fail_link(phase::HEARTBEAT, i, WireErrorKind::Link));
            }
        }
        for i in 0..l {
            if self.links[i].stream.set_read_timeout(Some(self.heartbeat_timeout)).is_err() {
                return Err(self.fail_link(phase::HEARTBEAT, i, WireErrorKind::Link));
            }
            let echo = read_frame(&mut self.links[i].stream);
            let _ = self.links[i].stream.set_read_timeout(Some(REPLY_TIMEOUT));
            match echo {
                Ok((frame::HEARTBEAT, echo_body)) if echo_body == body => messages += 2,
                // A short echo body is a truncation, typed as such; any
                // other wrong echo is a protocol violation.
                Ok((frame::HEARTBEAT, echo_body)) if echo_body.len() < body.len() => {
                    return Err(self.fail_link(phase::HEARTBEAT, i, WireErrorKind::Truncated))
                }
                Ok(_) => {
                    return Err(self.fail_link(phase::HEARTBEAT, i, WireErrorKind::Malformed))
                }
                Err(_) => return Err(self.fail_link(phase::HEARTBEAT, i, WireErrorKind::Link)),
            }
        }
        self.record(
            phase::HEARTBEAT,
            ClusterMetrics {
                measured_comm: start.elapsed(),
                messages,
                phases: 1,
                ..Default::default()
            },
        );
        Ok(())
    }

    /// Marks link `i` dead and returns the typed error for `phase`.
    fn fail_link(&mut self, phase: &'static str, i: usize, kind: WireErrorKind) -> WireError {
        self.links[i].alive = false;
        self.link_errors += 1;
        WireError {
            phase,
            machine: Some(i),
            kind,
        }
    }

    /// Probes one idle link with a HEARTBEAT and waits for the echo under
    /// the heartbeat timeout. Returns `false` (link unhealthy) on any
    /// failure; the caller decides whether to fail-stop the link.
    fn probe_link(&mut self, j: usize) -> bool {
        self.heartbeat_seq += 1;
        let body = Heartbeat {
            session: self.session,
            seq: self.heartbeat_seq,
        }
        .encode();
        if write_frame(&mut self.links[j].stream, frame::HEARTBEAT, &body).is_err() {
            return false;
        }
        if self.links[j].stream.set_read_timeout(Some(self.heartbeat_timeout)).is_err() {
            return false;
        }
        let echo = read_frame(&mut self.links[j].stream);
        let _ = self.links[j].stream.set_read_timeout(Some(REPLY_TIMEOUT));
        matches!(echo, Ok((frame::HEARTBEAT, b)) if b == body)
    }

    /// Waits for link `i`'s next frame. With no probe interval configured
    /// this is one blocking read under [`REPLY_TIMEOUT`]. With
    /// [`default_heartbeat_interval`] set, the wait is chopped into
    /// interval-sized slices: each tick with no reply yet, every *idle*
    /// link in `replied` (machines whose reply this round already arrived
    /// — their next inbound frame can only be an echo, so probing cannot
    /// interleave with a pending REPLY) is heartbeat-probed, detecting a
    /// mid-phase death within one interval instead of at phase end. The
    /// straggler link itself is never probed — its REPLY is in flight —
    /// but it stays bounded by [`REPLY_TIMEOUT`]. Uses `peek` so a tick
    /// never consumes partial frame bytes.
    fn read_reply(
        &mut self,
        up_label: &'static str,
        i: usize,
        replied: &[usize],
    ) -> Result<(u8, Vec<u8>), WireError> {
        let Some(interval) = self.heartbeat_interval else {
            return match read_frame(&mut self.links[i].stream) {
                Ok(f) => Ok(f),
                Err(_) => Err(self.fail_link(up_label, i, WireErrorKind::Link)),
            };
        };
        let deadline = Instant::now() + REPLY_TIMEOUT;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(self.fail_link(up_label, i, WireErrorKind::Link));
            }
            let wait = interval.min(deadline - now);
            if self.links[i].stream.set_read_timeout(Some(wait)).is_err() {
                return Err(self.fail_link(up_label, i, WireErrorKind::Link));
            }
            let mut first = [0u8; 1];
            match self.links[i].stream.peek(&mut first) {
                // EOF before any reply byte: the worker is gone.
                Ok(0) => return Err(self.fail_link(up_label, i, WireErrorKind::Link)),
                Ok(_) => {
                    // The reply has started arriving; switch back to the
                    // full deadline and read the frame normally.
                    let _ = self.links[i].stream.set_read_timeout(Some(REPLY_TIMEOUT));
                    return match read_frame(&mut self.links[i].stream) {
                        Ok(f) => Ok(f),
                        Err(_) => Err(self.fail_link(up_label, i, WireErrorKind::Link)),
                    };
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    // Interval tick: probe the idle links. A failed probe
                    // fail-stops that link for subsequent rounds (its
                    // reply this round already landed and stands).
                    for &j in replied {
                        if self.links[j].alive && !self.probe_link(j) {
                            let _ = self.fail_link(phase::HEARTBEAT, j, WireErrorKind::Link);
                        }
                    }
                }
                Err(_) => return Err(self.fail_link(up_label, i, WireErrorKind::Link)),
            }
        }
    }
}

/// The heartbeat-echo deadline: `DIM_HEARTBEAT_TIMEOUT_SECS` (whole
/// seconds) or 5 s.
pub(crate) fn default_heartbeat_timeout() -> Duration {
    std::env::var("DIM_HEARTBEAT_TIMEOUT_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .filter(|&secs| secs > 0)
        .map(Duration::from_secs)
        .unwrap_or(Duration::from_secs(5))
}

/// The *mid-phase* idle-link probe interval: `DIM_HEARTBEAT_INTERVAL_SECS`
/// (whole seconds); unset or 0 disables mid-phase probing (the default).
///
/// [`ProcCluster::heartbeat`] only runs *between* rounds, so a worker that
/// dies while the master waits on a long-running straggler goes unnoticed
/// until the phase ends. With this knob set, the master slices its reply
/// wait into interval-sized ticks and heartbeat-probes every idle link
/// (machines whose reply already arrived this round) on each tick,
/// fail-stopping dead links within one interval. Each probe's echo is
/// bounded by the companion knob `DIM_HEARTBEAT_TIMEOUT_SECS` (see
/// [`default_heartbeat_timeout`] above).
pub(crate) fn default_heartbeat_interval() -> Option<Duration> {
    std::env::var("DIM_HEARTBEAT_INTERVAL_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .filter(|&secs| secs > 0)
        .map(Duration::from_secs)
}

/// Accepts exactly `n` connections, bounded by [`handshake_timeout`]
/// overall.
fn accept_n(listener: &TcpListener, n: usize) -> io::Result<Vec<TcpStream>> {
    listener.set_nonblocking(true)?;
    let deadline = Instant::now() + handshake_timeout();
    let mut streams = Vec::with_capacity(n);
    while streams.len() < n {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                streams.push(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "workers did not all connect",
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(streams)
}

/// Locates the `dim-worker` binary (see [`ProcCluster::spawn`]).
fn worker_binary() -> io::Result<std::path::PathBuf> {
    if let Some(path) = std::env::var_os("DIM_WORKER_BIN") {
        let path = std::path::PathBuf::from(path);
        if path.exists() {
            return Ok(path);
        }
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            "DIM_WORKER_BIN does not exist",
        ));
    }
    let exe = std::env::current_exe()?;
    let mut dir = exe
        .parent()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no exe dir"))?
        .to_path_buf();
    for _ in 0..2 {
        let candidate = dir.join("dim-worker");
        if candidate.exists() {
            return Ok(candidate);
        }
        if !dir.pop() {
            break;
        }
    }
    Err(io::Error::new(
        io::ErrorKind::NotFound,
        "dim-worker binary not found (set DIM_WORKER_BIN)",
    ))
}

impl Drop for ProcCluster {
    fn drop(&mut self) {
        for link in &mut self.links {
            if link.alive {
                let _ = write_frame(&mut link.stream, frame::OP, &WorkerOp::Shutdown.encode());
            }
            let _ = link.stream.shutdown(std::net::Shutdown::Both);
        }
        for served in self.served.drain(..) {
            match served {
                Served::Process(mut child) => {
                    // The Shutdown op (or the closed socket) makes workers
                    // exit; give them a moment, then make sure.
                    let deadline = Instant::now() + Duration::from_secs(2);
                    loop {
                        match child.try_wait() {
                            Ok(Some(_)) => break,
                            Ok(None) if Instant::now() < deadline => {
                                std::thread::sleep(Duration::from_millis(10));
                            }
                            _ => {
                                let _ = child.kill();
                                let _ = child.wait();
                                break;
                            }
                        }
                    }
                }
                Served::Thread(handle) => {
                    let _ = handle.join();
                }
            }
        }
    }
}

impl ClusterBackend for ProcCluster {
    /// Worker state is resident in the worker processes; the master holds
    /// only connection endpoints.
    type Worker = ();

    fn num_machines(&self) -> usize {
        self.units.len()
    }

    fn network(&self) -> NetworkModel {
        self.network
    }

    fn workers(&self) -> &[()] {
        &self.units
    }

    fn timeline(&self) -> &PhaseTimeline {
        &self.timeline
    }

    fn record(&mut self, label: &'static str, delta: ClusterMetrics) {
        self.timeline.record(label, delta);
    }

    /// Master-side sequential execution over the unit states, timed like
    /// `SimCluster` in `ExecMode::Sequential`. Algorithms running on this
    /// backend do their distributed work through [`OpCluster::exec_ops`];
    /// this exists to satisfy the closure contract for master-local steps.
    fn par_step<R, F>(&mut self, label: &'static str, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut ()) -> R + Sync,
    {
        let mut results = Vec::with_capacity(self.units.len());
        let mut max = Duration::ZERO;
        let mut sum = Duration::ZERO;
        for (i, u) in self.units.iter_mut().enumerate() {
            let start = Instant::now();
            results.push(f(i, u));
            let t = start.elapsed();
            max = max.max(t);
            sum += t;
        }
        self.record(
            label,
            ClusterMetrics {
                worker_compute: max,
                worker_busy: sum,
                phases: 1,
                ..Default::default()
            },
        );
        results
    }

    fn master<R, F>(&mut self, label: &'static str, f: F) -> R
    where
        F: FnOnce() -> R,
    {
        let start = Instant::now();
        let r = f();
        self.record(
            label,
            ClusterMetrics {
                master_compute: start.elapsed(),
                ..Default::default()
            },
        );
        r
    }
}

impl OpCluster for ProcCluster {
    /// One pipelined op round: send every machine its OP frame, then read
    /// the ℓ REPLY frames. Worker compute is the maximum of the
    /// worker-reported elapsed times (workers run concurrently);
    /// `measured_comm` records the send wall clock under `down_label`
    /// (falling back to `up_label`) and the receive wall clock minus the
    /// compute window under `up_label`.
    fn exec_ops<F>(
        &mut self,
        down_label: Option<&'static str>,
        up_label: &'static str,
        op: F,
    ) -> Result<Vec<WorkerReply>, WireError>
    where
        F: Fn(usize) -> WorkerOp + Sync,
    {
        // Fail-stop view over the partial-failure primitive: the first
        // per-machine error aborts the round. Unlike the pre-recovery
        // implementation this still *drains* every live link's reply
        // first (inside `exec_ops_each`), so a failed round leaves no
        // stale REPLY frames buffered on surviving links.
        let mut out = Vec::with_capacity(self.links.len());
        for reply in self.exec_ops_each(down_label, up_label, op) {
            out.push(reply?);
        }
        Ok(out)
    }

    /// The partial-failure round primitive: every live link gets its OP
    /// and is read back even when another link fails mid-round — the seam
    /// speculative recovery needs (one dead machine must not discard the
    /// survivors' replies, which would leave their sockets desynchronized
    /// for the rebuild rounds that follow).
    fn exec_ops_each<F>(
        &mut self,
        down_label: Option<&'static str>,
        up_label: &'static str,
        op: F,
    ) -> Vec<Result<WorkerReply, WireError>>
    where
        F: Fn(usize) -> WorkerOp + Sync,
    {
        let l = self.links.len();
        let mut out: Vec<Option<Result<WorkerReply, WireError>>> = (0..l).map(|_| None).collect();

        // Socket-level chaos: fix this round's decisions up front (the
        // injector is round-ordered, matching SimCluster's interpretation
        // of the same plan).
        #[cfg(feature = "chaos")]
        let decisions: Option<Vec<LinkDecision>> = self.chaos.as_mut().map(|inj| {
            let d = (0..l).map(|i| inj.decide(i)).collect();
            inj.next_round();
            d
        });

        let send_start = Instant::now();
        for i in 0..l {
            if !self.links[i].alive {
                out[i] = Some(Err(WireError::link(up_label, i)));
                continue;
            }
            #[cfg(feature = "chaos")]
            if let Some(ds) = &decisions {
                match ds[i] {
                    LinkDecision::Killed => {
                        self.kill_link_mid_frame(i);
                        out[i] = Some(Err(self.fail_link(up_label, i, WireErrorKind::Link)));
                        continue;
                    }
                    LinkDecision::Healthy { delay } if delay > Duration::ZERO => {
                        // Write stall: the injected delay really elapses
                        // on the socket before this OP frame goes out.
                        std::thread::sleep(delay);
                    }
                    LinkDecision::Healthy { .. } => {}
                }
            }
            let encoded = op(i).encode();
            if write_frame(&mut self.links[i].stream, frame::OP, &encoded).is_err() {
                out[i] = Some(Err(self.fail_link(up_label, i, WireErrorKind::Link)));
            }
        }
        let send_wall = send_start.elapsed();

        let recv_start = Instant::now();
        let mut max_elapsed = Duration::ZERO;
        let mut sum_elapsed = Duration::ZERO;
        let mut replied: Vec<usize> = Vec::with_capacity(l);
        for i in 0..l {
            if out[i].is_some() {
                continue;
            }
            let (opcode, body) = match self.read_reply(up_label, i, &replied) {
                Ok(f) => f,
                Err(e) => {
                    out[i] = Some(Err(e));
                    continue;
                }
            };
            if opcode != frame::REPLY {
                out[i] = Some(Err(self.fail_link(up_label, i, WireErrorKind::Malformed)));
                continue;
            }
            // A REPLY body shorter than its 8-byte elapsed-time prefix is
            // a *truncation*, typed as such (it used to fold into the
            // generic malformed path; the `[..8].try_into()` below is
            // guarded by this check).
            if body.len() < 8 {
                out[i] = Some(Err(self.fail_link(up_label, i, WireErrorKind::Truncated)));
                continue;
            }
            let nanos = u64::from_le_bytes(body[..8].try_into().unwrap());
            let Some(reply) = WorkerReply::decode(&body[8..]) else {
                out[i] = Some(Err(self.fail_link(up_label, i, WireErrorKind::Malformed)));
                continue;
            };
            if let WorkerReply::Err(msg) = &reply {
                // A typed worker-side failure: the link itself is healthy.
                eprintln!("dim worker {i} failed op in phase `{up_label}`: {msg}");
                out[i] = Some(Err(WireError::malformed(up_label, i)));
                continue;
            }
            let elapsed = Duration::from_nanos(nanos);
            max_elapsed = max_elapsed.max(elapsed);
            sum_elapsed += elapsed;
            replied.push(i);
            out[i] = Some(Ok(reply));
        }
        let recv_wall = recv_start.elapsed();

        self.record(
            up_label,
            ClusterMetrics {
                worker_compute: max_elapsed,
                worker_busy: sum_elapsed,
                phases: 1,
                ..Default::default()
            },
        );
        self.record(
            down_label.unwrap_or(up_label),
            ClusterMetrics {
                measured_comm: send_wall,
                ..Default::default()
            },
        );
        self.record(
            up_label,
            ClusterMetrics {
                measured_comm: recv_wall.saturating_sub(max_elapsed),
                ..Default::default()
            },
        );
        out.into_iter()
            .map(|r| r.expect("every machine resolved"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rendezvous::PROTOCOL_VERSION;
    use crate::backend::phase;
    use crate::ops::{expect_counts, expect_ok};
    use crate::runtime::{ExecMode, SimCluster};
    use crate::wire::WireErrorKind;

    /// Toy resident state: `SampleRr` accumulates, `CoveredCount` reports,
    /// `ApplySeed` subtracts, `InitialCoverage` reports one delta tuple.
    struct Tally(u64);

    impl OpExecutor for Tally {
        fn execute(&mut self, op: &WorkerOp) -> WorkerReply {
            match op {
                WorkerOp::SampleRr { count } => {
                    self.0 += count;
                    WorkerReply::Ok
                }
                WorkerOp::ApplySeed { set } => {
                    self.0 = self.0.saturating_sub(u64::from(*set));
                    WorkerReply::Deltas(vec![(*set, self.0 as u32)])
                }
                WorkerOp::InitialCoverage => WorkerReply::Deltas(vec![(1, self.0 as u32)]),
                WorkerOp::CoveredCount => WorkerReply::Count(self.0),
                _ => WorkerReply::Err("unsupported".into()),
            }
        }
    }

    #[test]
    fn fault_parse() {
        assert_eq!(
            WorkerFault::parse("truncate-upload:3"),
            Some(WorkerFault::TruncateUpload { request: 3 })
        );
        assert_eq!(WorkerFault::parse("nonsense"), None);
        assert_eq!(WorkerFault::parse("truncate-upload:x"), None);
    }

    #[test]
    fn op_rounds_reach_resident_state() {
        let mut cluster = ProcCluster::local_with(3, NetworkModel::cluster_1gbps(), 7, |i| {
            Tally(i as u64 * 100)
        })
        .unwrap();
        let acks = cluster
            .control(phase::RR_SAMPLING, |i| WorkerOp::SampleRr {
                count: i as u64 + 1,
            })
            .unwrap();
        expect_ok(&acks, phase::RR_SAMPLING).unwrap();
        let counts = cluster
            .op_gather(phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount)
            .unwrap();
        assert_eq!(
            expect_counts(&counts, phase::COUNT_UPLOAD).unwrap(),
            vec![1, 102, 203]
        );
        let m = cluster.timeline().get(phase::COUNT_UPLOAD);
        assert_eq!(m.messages, 3);
        assert_eq!(m.bytes_to_master, 24);
        // The round physically crossed the sockets.
        assert!(m.measured_comm > Duration::ZERO);
        assert_eq!(cluster.link_errors(), 0);
    }

    #[test]
    fn broadcast_gather_measured_and_modeled() {
        let mut cluster =
            ProcCluster::local_with(2, NetworkModel::cluster_1gbps(), 1, |_| Tally(50)).unwrap();
        let replies = cluster
            .op_broadcast_gather(phase::SEED_BROADCAST, 8, phase::DELTA_UPLOAD, |_| {
                WorkerOp::ApplySeed { set: 5 }
            })
            .unwrap();
        assert_eq!(replies.len(), 2);
        let down = cluster.timeline().get(phase::SEED_BROADCAST);
        let up = cluster.timeline().get(phase::DELTA_UPLOAD);
        assert_eq!(down.bytes_from_master, 16);
        assert!(down.comm_time > Duration::ZERO);
        assert!(down.measured_comm > Duration::ZERO);
        assert_eq!(up.bytes_to_master, 2 * crate::wire::delta_wire_size(1));
        assert!(up.measured_comm > Duration::ZERO);
        // Label order mirrors the algorithm: broadcast before upload.
        let labels: Vec<_> = cluster.timeline().labels().collect();
        assert_eq!(labels, vec![phase::SEED_BROADCAST, phase::DELTA_UPLOAD]);
    }

    /// Runs the same two op rounds through any [`OpCluster`]; used to show
    /// sim and proc backends agree on results and modeled metrics.
    fn sample_then_count<B: OpCluster>(cluster: &mut B) -> Vec<WorkerReply> {
        cluster
            .control(phase::RR_SAMPLING, |i| WorkerOp::SampleRr {
                count: 10 * (i as u64 + 1),
            })
            .unwrap();
        cluster
            .op_gather(phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount)
            .unwrap()
    }

    #[test]
    fn same_ops_same_results_and_modeled_metrics_as_sim() {
        let mut sim = SimCluster::new(
            vec![Tally(0), Tally(0)],
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        );
        let sim_counts = sample_then_count(&mut sim);
        let mut proc =
            ProcCluster::local_with(2, NetworkModel::cluster_1gbps(), 99, |_| Tally(0)).unwrap();
        let proc_counts = sample_then_count(&mut proc);
        assert_eq!(sim_counts, proc_counts);
        let ms = sim.timeline().get(phase::COUNT_UPLOAD);
        let mp = proc.timeline().get(phase::COUNT_UPLOAD);
        // Identical modeled traffic and pricing; only measured differs.
        assert_eq!(ms.messages, mp.messages);
        assert_eq!(ms.bytes_to_master, mp.bytes_to_master);
        assert_eq!(ms.comm_time, mp.comm_time);
        assert_eq!(ms.measured_comm, Duration::ZERO);
        assert!(mp.measured_comm > Duration::ZERO);
    }

    #[test]
    fn large_frames_roundtrip() {
        // A multi-megabyte reply exercises framing well past one packet.
        struct Big;
        impl OpExecutor for Big {
            fn execute(&mut self, op: &WorkerOp) -> WorkerReply {
                match op {
                    WorkerOp::InitialCoverage => {
                        WorkerReply::Deltas((0..500_000u32).map(|v| (v, 1)).collect())
                    }
                    _ => WorkerReply::Err("unsupported".into()),
                }
            }
        }
        let mut cluster = ProcCluster::local_with(2, NetworkModel::zero(), 5, |_| Big).unwrap();
        let replies = cluster
            .op_gather(phase::COVERAGE_UPLOAD, |_| WorkerOp::InitialCoverage)
            .unwrap();
        for reply in &replies {
            match reply {
                WorkerReply::Deltas(d) => assert_eq!(d.len(), 500_000),
                other => panic!("unexpected reply {other:?}"),
            }
        }
        assert_eq!(cluster.link_errors(), 0);
        assert_eq!(
            cluster.metrics().bytes_to_master,
            2 * crate::wire::delta_wire_size(500_000)
        );
    }

    #[test]
    fn truncated_reply_fails_round_with_typed_error() {
        // Machine 1 truncates its first reply. Worker state is resident, so
        // the round must fail with a typed error naming the machine — not
        // silently degrade like the old placeholder-payload path.
        let faults = vec![None, Some(WorkerFault::TruncateUpload { request: 1 })];
        let mut cluster = ProcCluster::local_with_faults(
            2,
            NetworkModel::cluster_1gbps(),
            3,
            |_| Tally(9),
            faults,
        )
        .unwrap();
        let err = cluster
            .op_gather(phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount)
            .unwrap_err();
        assert_eq!(err.phase, phase::COUNT_UPLOAD);
        assert_eq!(err.machine, Some(1));
        assert!(
            matches!(err.kind, WireErrorKind::Link | WireErrorKind::Malformed),
            "{err:?}"
        );
        assert_eq!(cluster.link_errors(), 1);
        assert_eq!(cluster.live_links(), 1);
        // Later rounds refuse to run without the dead machine's state.
        let err = cluster
            .op_gather(phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount)
            .unwrap_err();
        assert_eq!(err.kind, WireErrorKind::Link);
        assert_eq!(err.machine, Some(1));
    }

    #[test]
    fn worker_error_reply_is_typed_not_fatal_to_link() {
        let mut cluster =
            ProcCluster::local_with(2, NetworkModel::zero(), 4, |_| Tally(0)).unwrap();
        let err = cluster
            .control(phase::VALIDATION, |_| WorkerOp::Stats)
            .unwrap_err();
        assert_eq!(err.phase, phase::VALIDATION);
        assert_eq!(err.machine, Some(0));
        assert_eq!(err.kind, WireErrorKind::Malformed);
    }

    #[test]
    fn rejects_seed_mismatch_in_handshake() {
        // A worker whose confirming HELLO advertises the wrong stream seed
        // is refused at construction: the cross-process RNG contract is
        // load-bearing.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let bogus = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            write_frame(&mut s, frame::JOIN, &JoinHello::new(Some(0)).encode()).unwrap();
            let (opcode, body) = read_frame(&mut s).unwrap();
            assert_eq!(opcode, frame::WELCOME);
            let welcome = rendezvous::Welcome::decode(&body).unwrap();
            let hello = rendezvous::Hello {
                version: PROTOCOL_VERSION,
                caps: rendezvous::caps::ALL,
                machine_id: welcome.machine_id,
                stream_seed: 0xbad_5eed, // anything but the derived seed
            };
            let _ = write_frame(&mut s, frame::HELLO, &hello.encode());
            // Hold the socket open until the master decides; the REJECT
            // frame tells this worker why it was refused.
            if let Ok((opcode, body)) = read_frame(&mut s) {
                assert_eq!(opcode, frame::REJECT);
                assert_eq!(
                    Reject::decode(&body).unwrap().reason,
                    rendezvous::RejectReason::SeedMismatch
                );
            }
        });
        let streams = accept_n(&listener, 1).unwrap();
        let err = match ProcCluster::assemble(1, NetworkModel::zero(), 1, streams, Vec::new()) {
            Ok(_) => panic!("seed mismatch accepted"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("seed mismatch"), "{err}");
        let _ = bogus.join();
    }

    #[test]
    fn short_reply_body_is_typed_truncated() {
        // A hostile worker answers its OP with a REPLY whose body is
        // shorter than the 8-byte elapsed-time prefix. The old decode path
        // folded this into generic malformed; it must surface as a typed
        // truncation naming the machine — and never panic.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hostile = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            rendezvous::join_handshake(&mut s, JoinHello::new(Some(0))).unwrap();
            let (opcode, _) = read_frame(&mut s).unwrap();
            assert_eq!(opcode, frame::OP);
            write_frame(&mut s, frame::REPLY, &[0xde, 0xad, 0xbe]).unwrap();
            // Hold the socket until the master tears it down.
            let _ = read_frame(&mut s);
        });
        let streams = accept_n(&listener, 1).unwrap();
        let mut cluster =
            ProcCluster::assemble(1, NetworkModel::zero(), 7, streams, Vec::new()).unwrap();
        let err = cluster
            .control(phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount)
            .unwrap_err();
        assert_eq!(err.kind, WireErrorKind::Truncated);
        assert_eq!(err.machine, Some(0));
        assert_eq!(cluster.link_errors(), 1);
        assert_eq!(cluster.live_links(), 0);
        drop(cluster);
        let _ = hostile.join();
    }

    #[test]
    fn exec_ops_each_keeps_survivor_replies_past_a_dead_link() {
        // Machine 0 truncates its reply mid-round; the partial-failure
        // primitive must still deliver machine 1's and 2's replies and
        // keep their sockets consistent for the next round.
        let faults = vec![Some(WorkerFault::TruncateUpload { request: 1 }), None, None];
        let mut cluster = ProcCluster::local_with_faults(
            3,
            NetworkModel::zero(),
            21,
            |i| Tally(i as u64 + 1),
            faults,
        )
        .unwrap();
        let replies =
            cluster.exec_ops_each(None, phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount);
        assert!(replies[0].is_err());
        assert_eq!(replies[1], Ok(WorkerReply::Count(2)));
        assert_eq!(replies[2], Ok(WorkerReply::Count(3)));
        assert_eq!(cluster.live_links(), 2);
        // Survivors answer the next round normally.
        let again = cluster.exec_ops_each(None, phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount);
        assert_eq!(again[0].as_ref().unwrap_err().kind, WireErrorKind::Link);
        assert_eq!(again[1], Ok(WorkerReply::Count(2)));
        assert_eq!(again[2], Ok(WorkerReply::Count(3)));
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn chaos_kill_tears_link_mid_frame_and_types_the_error() {
        use crate::faults::{FaultInjector, FaultPlan};
        let mut cluster =
            ProcCluster::local_with(2, NetworkModel::zero(), 13, |i| Tally(10 + i as u64))
                .unwrap();
        // Round 0 healthy, machine 1 dies at round 1.
        cluster.set_chaos(Some(FaultInjector::new(FaultPlan::kill_machine(1, 1), 2)));
        let first = cluster.exec_ops_each(None, phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount);
        assert_eq!(first[0], Ok(WorkerReply::Count(10)));
        assert_eq!(first[1], Ok(WorkerReply::Count(11)));
        let second =
            cluster.exec_ops_each(None, phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount);
        assert_eq!(second[0], Ok(WorkerReply::Count(10)));
        assert_eq!(second[1].as_ref().unwrap_err().kind, WireErrorKind::Link);
        assert_eq!(cluster.live_links(), 1);
        let events = cluster.chaos_injector().unwrap().events().to_vec();
        assert!(events
            .iter()
            .any(|e| e.kind == crate::faults::FaultEventKind::Kill && e.machine == 1));
        // The torn-down worker thread exits as a clean disconnect — drop
        // joins it; a hang here fails the test by timeout.
        drop(cluster);
    }

    #[test]
    fn heartbeat_echoes_on_live_links_and_records_metrics() {
        let mut cluster =
            ProcCluster::local_with(2, NetworkModel::zero(), 8, |_| Tally(0)).unwrap();
        cluster.heartbeat().unwrap();
        cluster.heartbeat().unwrap();
        let m = cluster.timeline().get(phase::HEARTBEAT);
        assert_eq!(m.phases, 2);
        assert_eq!(m.messages, 8); // 2 probes × 2 machines × (send + echo)
        assert_eq!(m.bytes_to_master + m.bytes_from_master, 0); // not modeled traffic
        // Heartbeats interleave cleanly with op rounds on the same links.
        let counts = cluster
            .op_gather(phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount)
            .unwrap();
        assert_eq!(counts.len(), 2);
        cluster.heartbeat().unwrap();
        assert_eq!(cluster.link_errors(), 0);
    }

    #[test]
    fn drop_shuts_workers_down_cleanly() {
        let cluster =
            ProcCluster::local_with(3, NetworkModel::zero(), 11, |_| Tally(0)).unwrap();
        // Dropping sends the Shutdown op and joins the threads; a hang here
        // would fail the test by timeout.
        drop(cluster);
    }
}
