//! The process-per-machine [`ClusterBackend`] over TCP loopback.
//!
//! [`ProcCluster`] is the "real I/O" counterpart of [`crate::SimCluster`]:
//! each of the ℓ machines is a separate OS process (the `dim-worker`
//! binary, or a thread serving the identical protocol in tests), connected
//! to the master over a loopback TCP socket. Algorithm closures still run
//! master-side — `par_step` closures capture arbitrary borrowed state and
//! cannot be shipped across a process boundary — and execute sequentially
//! with exactly [`crate::ExecMode::Sequential`]'s virtual-time accounting,
//! so a `ProcCluster` run is bit-identical to a sequential `SimCluster`
//! run. What the worker processes add is the *physical* communication
//! path: every `gather`/`broadcast` moves its modeled byte volume over the
//! sockets for real, and the wall-clock cost lands in
//! [`ClusterMetrics::measured_comm`] next to the modeled
//! [`ClusterMetrics::comm_time`], giving experiments a modeled-vs-measured
//! comparison per phase.
//!
//! # Frame protocol
//!
//! Every frame is `[u32 len (LE)] [u8 op] [body; len − 1]`, with `len`
//! capped at [`MAX_FRAME`]. Opcodes:
//!
//! | op | name       | direction | body                                   |
//! |----|------------|-----------|----------------------------------------|
//! | 0  | HELLO      | w → m     | `[u32 machine_id] [u64 stream_seed]`   |
//! | 1  | UPLOAD_REQ | m → w     | `[u64 n]` + phase label bytes          |
//! | 2  | DATA       | w → m     | ≤ [`CHUNK`] pattern bytes              |
//! | 3  | DOWNLOAD   | m → w     | ≤ [`CHUNK`] payload bytes (ACKed)      |
//! | 4  | ACK        | w → m     | empty                                  |
//! | 5  | SHUTDOWN   | m → w     | empty                                  |
//!
//! Upload payloads are not the algorithm's messages (those never leave the
//! master) but a deterministic byte pattern drawn from a [`PatternGen`]
//! seeded with `stream_seed(master_seed, machine_id)` — the same stream
//! derivation every stochastic component uses. The master mirrors each
//! worker's generator and verifies every received byte, so a worker
//! process with a diverged RNG stream (or a corrupted link) is detected,
//! not silently tolerated.
//!
//! # Fault tolerance
//!
//! A link that yields an I/O error, a malformed frame, or a pattern
//! mismatch is marked dead and skipped for the rest of the run;
//! [`ProcCluster::link_errors`] counts such events. Algorithm results are
//! unaffected (worker state is master-side), only the measured-transfer
//! channel degrades — mirroring how the simulated backends keep working
//! with no sockets at all.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use crate::backend::ClusterBackend;
use crate::metrics::{ClusterMetrics, PhaseTimeline};
use crate::network::NetworkModel;
use crate::rng::stream_seed;

/// Hard cap on a single frame's declared length (header + body).
pub const MAX_FRAME: usize = 64 << 20;
/// Payload bytes per DATA/DOWNLOAD frame; larger transfers are chunked.
pub const CHUNK: usize = 1 << 20;

/// Seconds a handshake or in-phase read may block before the link is
/// declared dead.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Frame opcodes (see the module docs for the protocol table).
mod op {
    pub const HELLO: u8 = 0;
    pub const UPLOAD_REQ: u8 = 1;
    pub const DATA: u8 = 2;
    pub const DOWNLOAD: u8 = 3;
    pub const ACK: u8 = 4;
    pub const SHUTDOWN: u8 = 5;
}

fn write_frame(w: &mut impl Write, opcode: u8, body: &[u8]) -> io::Result<()> {
    let len = 1 + body.len();
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&[opcode])?;
    w.write_all(body)?;
    w.flush()
}

fn read_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>)> {
    let mut hdr = [0u8; 4];
    r.read_exact(&mut hdr)?;
    let len = u32::from_le_bytes(hdr) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let opcode = body[0];
    body.remove(0);
    Ok((opcode, body))
}

fn protocol_err(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Deterministic byte-pattern generator (SplitMix64 stream).
///
/// Workers fill their upload payloads from one of these, seeded with
/// their [`stream_seed`]; the master mirrors the generator per machine and
/// verifies every byte it receives, which turns each gather into an
/// end-to-end check that both processes derived the same RNG stream.
#[derive(Clone, Debug)]
pub struct PatternGen {
    state: u64,
    stash: u64,
    stash_len: usize,
}

impl PatternGen {
    /// A generator over the stream identified by `seed`.
    pub fn new(seed: u64) -> Self {
        PatternGen {
            state: seed,
            stash: 0,
            stash_len: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Fills `out` with the next bytes of the stream.
    pub fn fill(&mut self, out: &mut [u8]) {
        for b in out.iter_mut() {
            if self.stash_len == 0 {
                self.stash = self.next_u64();
                self.stash_len = 8;
            }
            *b = self.stash as u8;
            self.stash >>= 8;
            self.stash_len -= 1;
        }
    }
}

/// Fault injections for protocol tests (worker side).
///
/// The `dim-worker` binary reads these from the `DIM_WORKER_FAULT`
/// environment variable (e.g. `truncate-upload:1`); in-crate tests pass
/// them to [`run_worker_with_fault`] directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerFault {
    /// On the `request`-th upload (1-based), declare a full frame but send
    /// only a few bytes, then close the connection.
    TruncateUpload {
        /// Which upload request (1-based) to sabotage.
        request: usize,
    },
}

impl WorkerFault {
    /// Parses the `DIM_WORKER_FAULT` syntax (`truncate-upload:N`).
    pub fn parse(s: &str) -> Option<WorkerFault> {
        let (kind, arg) = s.split_once(':')?;
        match kind {
            "truncate-upload" => Some(WorkerFault::TruncateUpload {
                request: arg.parse().ok()?,
            }),
            _ => None,
        }
    }
}

/// Serves the worker side of the protocol until SHUTDOWN or EOF.
///
/// This is the entire body of the `dim-worker` binary; tests call it on a
/// thread with one end of a loopback socket pair.
pub fn run_worker(stream: TcpStream, machine_id: u32, master_seed: u64) -> io::Result<()> {
    run_worker_with_fault(stream, machine_id, master_seed, None)
}

/// [`run_worker`] with an optional injected fault.
pub fn run_worker_with_fault(
    mut stream: TcpStream,
    machine_id: u32,
    master_seed: u64,
    fault: Option<WorkerFault>,
) -> io::Result<()> {
    let seed = stream_seed(master_seed, machine_id as usize);
    let mut hello = Vec::with_capacity(12);
    hello.extend_from_slice(&machine_id.to_le_bytes());
    hello.extend_from_slice(&seed.to_le_bytes());
    write_frame(&mut stream, op::HELLO, &hello)?;

    let mut pattern = PatternGen::new(seed);
    let mut uploads = 0usize;
    loop {
        let (opcode, body) = match read_frame(&mut stream) {
            Ok(frame) => frame,
            // Master hung up without SHUTDOWN: a normal exit path.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        match opcode {
            op::UPLOAD_REQ => {
                if body.len() < 8 {
                    return Err(protocol_err("short UPLOAD_REQ"));
                }
                let n = u64::from_le_bytes(body[..8].try_into().unwrap()) as usize;
                uploads += 1;
                if fault == Some(WorkerFault::TruncateUpload { request: uploads }) {
                    // Declare a 64-byte frame, deliver 3 bytes, vanish.
                    stream.write_all(&64u32.to_le_bytes())?;
                    stream.write_all(&[op::DATA, 0xde, 0xad])?;
                    stream.flush()?;
                    return Ok(());
                }
                let mut sent = 0usize;
                let mut chunk = vec![0u8; CHUNK.min(n.max(1))];
                while sent < n {
                    let take = CHUNK.min(n - sent);
                    pattern.fill(&mut chunk[..take]);
                    write_frame(&mut stream, op::DATA, &chunk[..take])?;
                    sent += take;
                }
            }
            op::DOWNLOAD => write_frame(&mut stream, op::ACK, &[])?,
            op::SHUTDOWN => return Ok(()),
            other => return Err(protocol_err(&format!("unexpected opcode {other}"))),
        }
    }
}

/// Master-side end of one worker link.
struct Link {
    stream: TcpStream,
    /// Mirror of the worker's [`PatternGen`], for verifying uploads.
    mirror: PatternGen,
    alive: bool,
}

/// What keeps a worker endpoint running.
enum Served {
    /// A spawned `dim-worker` OS process.
    Process(std::process::Child),
    /// An in-process thread serving [`run_worker`] (test/fallback mode).
    Thread(std::thread::JoinHandle<io::Result<()>>),
}

/// A master/worker cluster of ℓ machines, each a separate endpoint over
/// TCP loopback (OS processes via [`ProcCluster::spawn`], threads via
/// [`ProcCluster::local`]).
///
/// Implements [`ClusterBackend`] with sequential master-side execution
/// (deterministic, bit-identical to `SimCluster` in
/// [`crate::ExecMode::Sequential`]) plus physical per-phase transfers that
/// populate [`ClusterMetrics::measured_comm`]. See the module docs.
pub struct ProcCluster<W> {
    workers: Vec<W>,
    network: NetworkModel,
    timeline: PhaseTimeline,
    master_seed: u64,
    links: Vec<Link>,
    served: Vec<Served>,
    link_errors: u64,
}

impl<W: Send> ProcCluster<W> {
    /// Spawns one `dim-worker` OS process per machine and connects them
    /// over loopback TCP.
    ///
    /// The worker binary is located via the `DIM_WORKER_BIN` environment
    /// variable, falling back to a `dim-worker` next to (or one directory
    /// above) the current executable — which covers `cargo test`, whose
    /// test binaries live in `target/<profile>/deps` while bin targets
    /// land in `target/<profile>`. Errors if the binary cannot be found
    /// or any worker fails to spawn/handshake, so callers can skip
    /// gracefully where process spawning is unavailable.
    pub fn spawn(workers: Vec<W>, network: NetworkModel, master_seed: u64) -> io::Result<Self> {
        let bin = worker_binary()?;
        Self::spawn_with_bin(workers, network, master_seed, &bin).map_err(|(e, _)| e)
    }

    /// [`ProcCluster::spawn`] with an explicit worker binary; hands the
    /// worker states back on failure so callers can fall back.
    fn spawn_with_bin(
        workers: Vec<W>,
        network: NetworkModel,
        master_seed: u64,
        bin: &std::path::Path,
    ) -> Result<Self, (io::Error, Vec<W>)> {
        match Self::spawn_inner(workers.len(), network, master_seed, bin) {
            Ok((streams, served)) => {
                Self::assemble(workers, network, master_seed, streams, served)
                    .map_err(|e| (e, Vec::new()))
            }
            Err(e) => Err((e, workers)),
        }
    }

    /// Spawns and connects the worker processes (no worker state involved).
    fn spawn_inner(
        count: usize,
        _network: NetworkModel,
        master_seed: u64,
        bin: &std::path::Path,
    ) -> io::Result<(Vec<TcpStream>, Vec<Served>)> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let mut children = Vec::with_capacity(count);
        for id in 0..count {
            let child = std::process::Command::new(bin)
                .arg("--connect")
                .arg(addr.to_string())
                .arg("--machine-id")
                .arg(id.to_string())
                .arg("--master-seed")
                .arg(master_seed.to_string())
                .stdin(std::process::Stdio::null())
                .spawn();
            match child {
                Ok(c) => children.push(c),
                Err(e) => {
                    for mut c in children {
                        let _ = c.kill();
                        let _ = c.wait();
                    }
                    return Err(e);
                }
            }
        }
        match accept_n(&listener, children.len()) {
            Ok(streams) => Ok((streams, children.into_iter().map(Served::Process).collect())),
            Err(e) => {
                for mut c in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                Err(e)
            }
        }
    }

    /// Builds a cluster whose machines are in-process threads serving the
    /// identical frame protocol over real loopback sockets.
    ///
    /// This is the test seam and the fallback where spawning processes is
    /// unavailable; everything except the process boundary (handshake,
    /// framing, pattern verification, measured transfers) is exercised the
    /// same way.
    pub fn local(workers: Vec<W>, network: NetworkModel, master_seed: u64) -> io::Result<Self> {
        Self::local_with_faults(workers, network, master_seed, Vec::new())
    }

    /// [`ProcCluster::local`] with per-machine fault injections
    /// (`faults.get(i)` applies to machine `i`).
    pub fn local_with_faults(
        workers: Vec<W>,
        network: NetworkModel,
        master_seed: u64,
        faults: Vec<Option<WorkerFault>>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let mut served = Vec::with_capacity(workers.len());
        for id in 0..workers.len() {
            let fault = faults.get(id).copied().flatten();
            let handle = std::thread::spawn(move || {
                let stream = TcpStream::connect(addr)?;
                run_worker_with_fault(stream, id as u32, master_seed, fault)
            });
            served.push(Served::Thread(handle));
        }
        let streams = accept_n(&listener, served.len())?;
        Self::assemble(workers, network, master_seed, streams, served)
    }

    /// [`ProcCluster::spawn`] if a worker binary is available, otherwise
    /// [`ProcCluster::local`]. Never fails for want of the binary alone.
    pub fn auto(workers: Vec<W>, network: NetworkModel, master_seed: u64) -> io::Result<Self> {
        let workers = match worker_binary() {
            Ok(bin) => match Self::spawn_with_bin(workers, network, master_seed, &bin) {
                Ok(cluster) => return Ok(cluster),
                Err((e, workers)) if !workers.is_empty() => {
                    // Spawn-stage failure: fall through to thread workers.
                    let _ = e;
                    workers
                }
                Err((e, _)) => return Err(e),
            },
            Err(_) => workers,
        };
        Self::local(workers, network, master_seed)
    }

    /// Handshakes `streams` (in any order — HELLO carries the machine id)
    /// and assembles the cluster.
    fn assemble(
        workers: Vec<W>,
        network: NetworkModel,
        master_seed: u64,
        streams: Vec<TcpStream>,
        served: Vec<Served>,
    ) -> io::Result<Self> {
        assert!(!workers.is_empty(), "cluster needs at least one machine");
        let l = workers.len();
        let mut slots: Vec<Option<Link>> = (0..l).map(|_| None).collect();
        for mut stream in streams {
            stream.set_read_timeout(Some(IO_TIMEOUT))?;
            stream.set_nodelay(true)?;
            let (opcode, body) = read_frame(&mut stream)?;
            if opcode != op::HELLO || body.len() != 12 {
                return Err(protocol_err("bad HELLO"));
            }
            let id = u32::from_le_bytes(body[..4].try_into().unwrap()) as usize;
            let seed = u64::from_le_bytes(body[4..].try_into().unwrap());
            if id >= l || slots[id].is_some() {
                return Err(protocol_err("bad machine id in HELLO"));
            }
            if seed != stream_seed(master_seed, id) {
                return Err(protocol_err("worker stream seed mismatch"));
            }
            slots[id] = Some(Link {
                stream,
                mirror: PatternGen::new(seed),
                alive: true,
            });
        }
        let links = slots
            .into_iter()
            .map(|s| s.ok_or_else(|| protocol_err("missing worker connection")))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(ProcCluster {
            workers,
            network,
            timeline: PhaseTimeline::new(),
            master_seed,
            links,
            served,
            link_errors: 0,
        })
    }

    /// The master seed the worker streams were derived from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Number of link faults observed so far (dead links stay dead).
    pub fn link_errors(&self) -> u64 {
        self.link_errors
    }

    /// Number of links still alive.
    pub fn live_links(&self) -> usize {
        self.links.iter().filter(|l| l.alive).count()
    }

    /// Consumes the cluster, returning the worker states.
    pub fn into_workers(mut self) -> Vec<W> {
        std::mem::take(&mut self.workers)
    }

    /// Requests `n` pattern bytes from machine `i` and verifies them
    /// against the master-side mirror. Marks the link dead on any error.
    fn pull_from(&mut self, i: usize, n: u64, label: &'static str) {
        if !self.links[i].alive {
            return;
        }
        let result = (|| -> io::Result<()> {
            let link = &mut self.links[i];
            let mut req = Vec::with_capacity(8 + label.len());
            req.extend_from_slice(&n.to_le_bytes());
            req.extend_from_slice(label.as_bytes());
            write_frame(&mut link.stream, op::UPLOAD_REQ, &req)?;
            let mut received = 0u64;
            let mut expected = vec![0u8; CHUNK];
            while received < n {
                let (opcode, body) = read_frame(&mut link.stream)?;
                if opcode != op::DATA {
                    return Err(protocol_err("expected DATA"));
                }
                if body.is_empty() || received + body.len() as u64 > n {
                    return Err(protocol_err("DATA over-delivery"));
                }
                link.mirror.fill(&mut expected[..body.len()]);
                if body != expected[..body.len()] {
                    return Err(protocol_err("upload pattern mismatch"));
                }
                received += body.len() as u64;
            }
            Ok(())
        })();
        if result.is_err() {
            self.links[i].alive = false;
            self.link_errors += 1;
        }
    }

    /// Pushes `n` payload bytes to machine `i` (chunked DOWNLOAD frames,
    /// each ACKed). Marks the link dead on any error.
    fn push_to(&mut self, i: usize, n: u64) {
        if !self.links[i].alive {
            return;
        }
        let result = (|| -> io::Result<()> {
            let link = &mut self.links[i];
            let payload = vec![0u8; CHUNK.min(n.max(1) as usize)];
            let mut sent = 0u64;
            loop {
                let take = (n - sent).min(CHUNK as u64) as usize;
                write_frame(&mut link.stream, op::DOWNLOAD, &payload[..take])?;
                let (opcode, body) = read_frame(&mut link.stream)?;
                if opcode != op::ACK || !body.is_empty() {
                    return Err(protocol_err("expected ACK"));
                }
                sent += take as u64;
                if sent >= n {
                    return Ok(());
                }
            }
        })();
        if result.is_err() {
            self.links[i].alive = false;
            self.link_errors += 1;
        }
    }
}

/// Accepts exactly `n` connections, bounded by [`IO_TIMEOUT`] overall.
fn accept_n(listener: &TcpListener, n: usize) -> io::Result<Vec<TcpStream>> {
    listener.set_nonblocking(true)?;
    let deadline = Instant::now() + IO_TIMEOUT;
    let mut streams = Vec::with_capacity(n);
    while streams.len() < n {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                streams.push(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "workers did not all connect",
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(streams)
}

/// Locates the `dim-worker` binary (see [`ProcCluster::spawn`]).
fn worker_binary() -> io::Result<std::path::PathBuf> {
    if let Some(path) = std::env::var_os("DIM_WORKER_BIN") {
        let path = std::path::PathBuf::from(path);
        if path.exists() {
            return Ok(path);
        }
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            "DIM_WORKER_BIN does not exist",
        ));
    }
    let exe = std::env::current_exe()?;
    let mut dir = exe
        .parent()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no exe dir"))?
        .to_path_buf();
    for _ in 0..2 {
        let candidate = dir.join("dim-worker");
        if candidate.exists() {
            return Ok(candidate);
        }
        if !dir.pop() {
            break;
        }
    }
    Err(io::Error::new(
        io::ErrorKind::NotFound,
        "dim-worker binary not found (set DIM_WORKER_BIN)",
    ))
}

impl<W> Drop for ProcCluster<W> {
    fn drop(&mut self) {
        for link in &mut self.links {
            if link.alive {
                let _ = write_frame(&mut link.stream, op::SHUTDOWN, &[]);
            }
            let _ = link.stream.shutdown(std::net::Shutdown::Both);
        }
        for served in self.served.drain(..) {
            match served {
                Served::Process(mut child) => {
                    // SHUTDOWN (or the closed socket) makes workers exit;
                    // give them a moment, then make sure.
                    let deadline = Instant::now() + Duration::from_secs(2);
                    loop {
                        match child.try_wait() {
                            Ok(Some(_)) => break,
                            Ok(None) if Instant::now() < deadline => {
                                std::thread::sleep(Duration::from_millis(10));
                            }
                            _ => {
                                let _ = child.kill();
                                let _ = child.wait();
                                break;
                            }
                        }
                    }
                }
                Served::Thread(handle) => {
                    let _ = handle.join();
                }
            }
        }
    }
}

impl<W: Send> ClusterBackend for ProcCluster<W> {
    type Worker = W;

    fn num_machines(&self) -> usize {
        self.workers.len()
    }

    fn network(&self) -> NetworkModel {
        self.network
    }

    fn workers(&self) -> &[W] {
        &self.workers
    }

    fn timeline(&self) -> &PhaseTimeline {
        &self.timeline
    }

    fn record(&mut self, label: &'static str, delta: ClusterMetrics) {
        self.timeline.record(label, delta);
    }

    /// Sequential master-side execution with per-machine timing — the same
    /// virtual-time rule as `SimCluster` in `ExecMode::Sequential`, so
    /// results and modeled metrics are bit-identical to that mode.
    fn par_step<R, F>(&mut self, label: &'static str, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut W) -> R + Sync,
    {
        let mut results = Vec::with_capacity(self.workers.len());
        let mut max = Duration::ZERO;
        let mut sum = Duration::ZERO;
        for (i, w) in self.workers.iter_mut().enumerate() {
            let start = Instant::now();
            results.push(f(i, w));
            let t = start.elapsed();
            max = max.max(t);
            sum += t;
        }
        self.record(
            label,
            ClusterMetrics {
                worker_compute: max,
                worker_busy: sum,
                phases: 1,
                ..Default::default()
            },
        );
        results
    }

    fn master<R, F>(&mut self, label: &'static str, f: F) -> R
    where
        F: FnOnce() -> R,
    {
        let start = Instant::now();
        let r = f();
        self.record(
            label,
            ClusterMetrics {
                master_compute: start.elapsed(),
                ..Default::default()
            },
        );
        r
    }

    /// Default modeled charge plus a physical gather: the byte volume is
    /// split across the live links and pulled over TCP, pattern-verified,
    /// and the wall-clock cost recorded as `measured_comm`.
    fn charge_upload(&mut self, label: &'static str, messages: u64, bytes: u64) {
        let comm_time = self.network.collective_time(messages, bytes);
        let l = self.links.len() as u64;
        let start = Instant::now();
        for i in 0..self.links.len() {
            let share = bytes / l + u64::from((i as u64) < bytes % l);
            self.pull_from(i, share, label);
        }
        let measured_comm = start.elapsed();
        self.record(
            label,
            ClusterMetrics {
                comm_time,
                measured_comm,
                messages,
                bytes_to_master: bytes,
                ..Default::default()
            },
        );
    }

    /// Default modeled charge plus a physical broadcast of
    /// `bytes_per_machine` to every live link (ACKed per frame).
    fn broadcast(&mut self, label: &'static str, bytes_per_machine: u64) {
        let l = self.num_machines() as u64;
        let total = bytes_per_machine * l;
        let comm_time = self.network.collective_time(l, total);
        let start = Instant::now();
        for i in 0..self.links.len() {
            self.push_to(i, bytes_per_machine);
        }
        let measured_comm = start.elapsed();
        self.record(
            label,
            ClusterMetrics {
                comm_time,
                measured_comm,
                messages: l,
                bytes_from_master: total,
                ..Default::default()
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::phase;

    #[test]
    fn pattern_gen_deterministic_and_chunking_invariant() {
        let mut a = PatternGen::new(42);
        let mut b = PatternGen::new(42);
        let mut one = vec![0u8; 64];
        a.fill(&mut one);
        // Same stream drawn in uneven chunks must match byte-for-byte.
        let mut parts = vec![0u8; 64];
        b.fill(&mut parts[..7]);
        b.fill(&mut parts[7..40]);
        b.fill(&mut parts[40..]);
        assert_eq!(one, parts);
        let mut c = PatternGen::new(43);
        let mut other = vec![0u8; 64];
        c.fill(&mut other);
        assert_ne!(one, other);
    }

    #[test]
    fn fault_parse() {
        assert_eq!(
            WorkerFault::parse("truncate-upload:3"),
            Some(WorkerFault::TruncateUpload { request: 3 })
        );
        assert_eq!(WorkerFault::parse("nonsense"), None);
        assert_eq!(WorkerFault::parse("truncate-upload:x"), None);
    }

    #[test]
    fn local_cluster_runs_generic_algorithm() {
        let shards = vec![vec![1u64, 2], vec![3], vec![4, 5, 6], vec![]];
        let mut cluster =
            ProcCluster::local(shards, NetworkModel::cluster_1gbps(), 7).unwrap();
        let partials = cluster.gather(
            phase::COVERAGE_UPLOAD,
            |_, shard: &mut Vec<u64>| shard.iter().sum::<u64>(),
            |_| crate::wire::u64_wire_size(),
        );
        let total: u64 = cluster.master(phase::SEED_SELECT, || partials.iter().sum());
        assert_eq!(total, 21);
        let m = cluster.timeline().get(phase::COVERAGE_UPLOAD);
        assert_eq!(m.bytes_to_master, 32);
        assert_eq!(m.messages, 4);
        // The gather physically crossed the sockets.
        assert!(m.measured_comm > Duration::ZERO);
        assert_eq!(cluster.link_errors(), 0);
    }

    #[test]
    fn broadcast_measured_and_modeled() {
        let mut cluster =
            ProcCluster::local(vec![0u64; 3], NetworkModel::cluster_1gbps(), 1).unwrap();
        cluster.broadcast(phase::SEED_BROADCAST, 40);
        let m = cluster.timeline().get(phase::SEED_BROADCAST);
        assert_eq!(m.bytes_from_master, 120);
        assert_eq!(m.messages, 3);
        assert!(m.comm_time > Duration::ZERO);
        assert!(m.measured_comm > Duration::ZERO);
    }

    #[test]
    fn matches_sequential_sim_metrics_shape() {
        use crate::runtime::{ExecMode, SimCluster};
        let mut sim = SimCluster::new(
            vec![10u64, 20, 30],
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        );
        let mut proc = ProcCluster::local(
            vec![10u64, 20, 30],
            NetworkModel::cluster_1gbps(),
            99,
        )
        .unwrap();
        let a = sim.gather(phase::COUNT_UPLOAD, |i, w| *w + i as u64, |_| 8);
        let b = proc.gather(phase::COUNT_UPLOAD, |i, w| *w + i as u64, |_| 8);
        assert_eq!(a, b);
        let ms = sim.timeline().get(phase::COUNT_UPLOAD);
        let mp = proc.timeline().get(phase::COUNT_UPLOAD);
        // Identical modeled traffic and comm pricing; only measured differs.
        assert_eq!(ms.messages, mp.messages);
        assert_eq!(ms.bytes_to_master, mp.bytes_to_master);
        assert_eq!(ms.comm_time, mp.comm_time);
        assert_eq!(ms.measured_comm, Duration::ZERO);
        assert!(mp.measured_comm > Duration::ZERO);
    }

    #[test]
    fn large_transfer_chunks() {
        // > CHUNK bytes forces multi-frame uploads and downloads.
        let mut cluster =
            ProcCluster::local(vec![0u64; 2], NetworkModel::zero(), 5).unwrap();
        let big = (CHUNK as u64) * 2 + 123;
        cluster.charge_upload(phase::DELTA_UPLOAD, 2, big * 2);
        assert_eq!(cluster.link_errors(), 0);
        cluster.broadcast(phase::SEED_BROADCAST, big);
        assert_eq!(cluster.link_errors(), 0);
        let m = cluster.metrics();
        assert_eq!(m.bytes_to_master, big * 2);
        assert_eq!(m.bytes_from_master, big * 2);
    }

    #[test]
    fn truncated_frame_kills_link_not_run() {
        // Machine 1 sends a truncated DATA frame on its first upload; the
        // link dies, the run keeps going, results stay correct.
        let faults = vec![None, Some(WorkerFault::TruncateUpload { request: 1 })];
        let mut cluster = ProcCluster::local_with_faults(
            vec![100u64, 200],
            NetworkModel::cluster_1gbps(),
            3,
            faults,
        )
        .unwrap();
        let first = cluster.gather(phase::COVERAGE_UPLOAD, |_, w| *w, |_| 64);
        assert_eq!(first, vec![100, 200]);
        assert_eq!(cluster.link_errors(), 1);
        assert_eq!(cluster.live_links(), 1);
        // Subsequent phases still work over the surviving link.
        let second = cluster.gather(phase::DELTA_UPLOAD, |_, w| *w + 1, |_| 32);
        assert_eq!(second, vec![101, 201]);
        cluster.broadcast(phase::SEED_BROADCAST, 16);
        assert_eq!(cluster.link_errors(), 1);
        let m = cluster.timeline().get(phase::DELTA_UPLOAD);
        assert_eq!(m.bytes_to_master, 64);
    }

    #[test]
    fn rejects_seed_mismatch_in_handshake() {
        // A worker whose HELLO advertises the wrong stream seed is refused
        // at construction: the cross-process RNG contract is load-bearing.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let bogus = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut body = Vec::new();
            body.extend_from_slice(&0u32.to_le_bytes());
            body.extend_from_slice(&0xbad_5eedu64.to_le_bytes());
            let _ = write_frame(&mut s, op::HELLO, &body);
            // Hold the socket open until the master decides.
            let _ = read_frame(&mut s);
        });
        let streams = accept_n(&listener, 1).unwrap();
        let err = match ProcCluster::assemble(
            vec![0u64],
            NetworkModel::zero(),
            1,
            streams,
            Vec::new(),
        ) {
            Ok(_) => panic!("seed mismatch accepted"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("seed mismatch"), "{err}");
        let _ = bogus.join();
    }
}
