//! Simulated master/worker cluster substrate.
//!
//! The paper evaluates on a 17-node Open-MPI cluster (1 Gbps switch) and an
//! 80-core MS-MPI server. Neither is available to this reproduction (the
//! benchmark host has a single CPU core), so this crate provides a
//! **deterministic simulated cluster** that preserves the quantities the
//! paper measures:
//!
//! * **Computation time** — every simulated machine *really executes* its
//!   partition of the work and is individually wall-clock timed. A parallel
//!   phase's elapsed time is the **maximum** over machines, exactly the rule
//!   the paper itself uses ("the total generation time is determined by the
//!   longest one", §III-A). Master-side work is timed separately and added
//!   serially.
//! * **Communication time** — worker↔master messages are *actually
//!   serialized* (see [`wire`]) so byte counts are exact, then priced
//!   through a configurable latency/bandwidth [`NetworkModel`]. The master's
//!   link is the bottleneck in a star topology: a gather of `ℓ` messages
//!   costs `latency + Σ bytes / bandwidth`.
//!
//! An optional [`ExecMode::Threads`] mode runs machines on real OS threads
//! for hosts that have cores; the accounted metrics are identical because
//! each machine is timed on its own thread.
//!
//! # Example
//!
//! ```
//! use dim_cluster::{ExecMode, NetworkModel, SimCluster};
//!
//! // Four machines each holding a shard of numbers; master sums the sums.
//! let shards: Vec<Vec<u64>> = vec![vec![1, 2], vec![3], vec![4, 5, 6], vec![]];
//! let mut cluster = SimCluster::new(shards, NetworkModel::cluster_1gbps(), ExecMode::Sequential);
//! let partials = cluster.gather(
//!     |_, shard| shard.iter().sum::<u64>(),
//!     |_| 8, // each machine uploads one u64
//! );
//! let total: u64 = cluster.master(|| partials.iter().sum());
//! assert_eq!(total, 21);
//! assert_eq!(cluster.metrics().bytes_to_master, 32);
//! ```

pub mod metrics;
pub mod network;
pub mod rng;
pub mod runtime;
pub mod wire;

pub use metrics::ClusterMetrics;
pub use network::NetworkModel;
pub use rng::stream_seed;
pub use runtime::{ExecMode, SimCluster};
