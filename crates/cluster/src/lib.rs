//! Pluggable master/worker cluster substrate.
//!
//! The paper evaluates on a 17-node Open-MPI cluster (1 Gbps switch) and an
//! 80-core MS-MPI server. Neither is available to this reproduction (the
//! benchmark host has a single CPU core), so this crate provides the
//! [`ClusterBackend`] execution contract — the `par_step` / `gather` /
//! `broadcast` / `master` phase model every distributed algorithm in the
//! workspace is written against — plus a **deterministic simulated
//! cluster** implementation, [`SimCluster`], that preserves the quantities
//! the paper measures:
//!
//! * **Computation time** — every simulated machine *really executes* its
//!   partition of the work and is individually wall-clock timed. A parallel
//!   phase's elapsed time is the **maximum** over machines, exactly the rule
//!   the paper itself uses ("the total generation time is determined by the
//!   longest one", §III-A). Master-side work is timed separately and added
//!   serially.
//! * **Communication time** — worker↔master messages are *actually
//!   serialized* (see [`wire`]) so byte counts are exact, then priced
//!   through a configurable latency/bandwidth [`NetworkModel`]. The master's
//!   link is the bottleneck in a star topology: a gather of `ℓ` messages
//!   costs `latency + Σ bytes / bandwidth`.
//! * **Phase attribution** — every phase carries a static label and metrics
//!   accumulate per label in a [`PhaseTimeline`], so stacked time
//!   breakdowns (paper Figs. 5/8) read straight off the run.
//!
//! [`SimCluster`] executes phases in one of three [`ExecMode`]s:
//! deterministic sequential (virtual time), bounded OS threads (capped at
//! the host's available parallelism), or the rayon pool.
//!
//! # Example
//!
//! ```
//! use dim_cluster::{phase, ClusterBackend, ExecMode, NetworkModel, SimCluster};
//!
//! // Four machines each holding a shard of numbers; master sums the sums.
//! let shards: Vec<Vec<u64>> = vec![vec![1, 2], vec![3], vec![4, 5, 6], vec![]];
//! let mut cluster = SimCluster::new(shards, NetworkModel::cluster_1gbps(), ExecMode::Sequential);
//! let partials = cluster.gather(
//!     phase::COUNT_UPLOAD,
//!     |_, shard| shard.iter().sum::<u64>(),
//!     |_| dim_cluster::wire::u64_wire_size(), // each machine uploads one u64
//! );
//! let total: u64 = cluster.master(phase::SEED_SELECT, || partials.iter().sum());
//! assert_eq!(total, 21);
//! assert_eq!(cluster.metrics().bytes_to_master, 32);
//! assert_eq!(cluster.timeline().get(phase::COUNT_UPLOAD).messages, 4);
//! ```

//!
//! Distributed phases are expressed as serializable [`ops::WorkerOp`] /
//! [`ops::WorkerReply`] messages executed through the [`OpCluster`] seam:
//! [`SimCluster`] interprets them in process, and with the `proc-backend`
//! feature [`tcp::ProcCluster`] ships the *identical* ops to
//! process-per-machine workers over TCP (workers own their graph
//! partition, RNG stream, and coverage shard), recording wall-clock
//! transfer time in [`ClusterMetrics::measured_comm`] next to the modeled
//! [`ClusterMetrics::comm_time`].

pub mod auth;
pub mod backend;
pub mod faults;
pub mod json;
pub mod metrics;
pub mod network;
pub mod ops;
#[cfg(feature = "proc-backend")]
pub mod rendezvous;
pub mod rng;
pub mod runtime;
#[cfg(feature = "proc-backend")]
pub mod tcp;
pub mod wire;

pub use auth::{cluster_token_digest, ct_eq, sha256, token_digest, Digest};
pub use backend::{phase, ClusterBackend};
pub use faults::{
    FaultEvent, FaultEventKind, FaultInjector, FaultPlan, LinkDecision, LinkFault, Partition,
};
pub use metrics::{ClusterMetrics, PhaseTimeline};
pub use network::NetworkModel;
pub use ops::{OpCluster, OpExecutor, SamplerSpec, WorkerOp, WorkerReply, WorkerStats};
#[cfg(feature = "proc-backend")]
pub use rendezvous::{
    connect_and_join, run_join_worker, Backoff, JoinCluster, JoinConfig, JoinOptions,
    JoinedSession, Rendezvous,
};
pub use rng::{rr_set_seed, stream_seed};
pub use runtime::{ExecMode, SimCluster};
#[cfg(feature = "proc-backend")]
pub use tcp::{ProcCluster, SessionEnd, WorkerFault};
pub use wire::{WireError, WireErrorKind};
