//! Serializable phase-op protocol between the algorithms and the backends.
//!
//! The paper's architecture keeps every machine's RR-set shard and
//! coverage labels *resident on that machine*; only thin typed messages —
//! "apply seed v", "report your sparse ⟨set, Δ⟩ deltas" — cross the wire
//! (Algorithm 1, §III-C). This module is that message vocabulary:
//!
//! * [`WorkerOp`] — everything a master ever asks a worker to do, from
//!   one-time setup ([`WorkerOp::LoadGraph`], [`WorkerOp::BuildShard`])
//!   through the per-phase algorithm steps ([`WorkerOp::SampleRr`],
//!   [`WorkerOp::ApplySeed`], [`WorkerOp::Validate`], …) to
//!   [`WorkerOp::Shutdown`].
//! * [`WorkerReply`] — the typed responses, with [`WorkerReply::wire_size`]
//!   defining each reply's *modeled* payload size (the quantity the paper
//!   measures: delta tuples and counts, not framing).
//! * [`OpExecutor`] — a worker that can answer ops against its resident
//!   state. `CoverageShard` and the algorithm workers in `dim-core`
//!   implement this.
//! * [`OpCluster`] — the backend contract for op execution. Crucially,
//!   [`crate::SimCluster`] implements it by interpreting the *same*
//!   [`WorkerOp`] values in process that the TCP backend serializes to
//!   worker processes — one code path, so backend equivalence holds by
//!   construction.
//!
//! Both message types have exact little-endian codecs here (next to the
//! payload codecs in [`crate::wire`]); the framing that carries them is the
//! transport's concern (`crate::tcp`).

use crate::backend::ClusterBackend;
use crate::runtime::SimCluster;
use crate::wire::{delta_wire_size, u64_wire_size, DeltaVec, WireError};

/// Which RR-set sampler a worker should instantiate over its graph.
///
/// Mirrors `dim-core`'s `SamplerKind` without depending on it (this crate
/// sits below the algorithms in the dependency order); `dim-core` provides
/// the conversions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplerSpec {
    /// Reverse BFS under independent cascade.
    StandardIc,
    /// Reverse walk under linear threshold.
    StandardLt,
    /// SUBSIM's geometric-jump sampler (IC distribution).
    Subsim,
}

impl SamplerSpec {
    /// The sampler's canonical wire tag (also the value persisted in
    /// `dim-store` snapshot headers).
    pub fn tag(self) -> u8 {
        match self {
            SamplerSpec::StandardIc => 0,
            SamplerSpec::StandardLt => 1,
            SamplerSpec::Subsim => 2,
        }
    }

    /// Inverse of [`SamplerSpec::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(SamplerSpec::StandardIc),
            1 => Some(SamplerSpec::StandardLt),
            2 => Some(SamplerSpec::Subsim),
            _ => None,
        }
    }
}

/// Aggregate shard statistics a worker reports on request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Number of elements (RR sets) resident in the shard.
    pub num_elements: u64,
    /// Σ over resident elements of their size.
    pub total_size: u64,
    /// Edges examined while sampling (the EPT mass), if the worker samples.
    pub edges_examined: u64,
}

/// One request from the master to a worker.
///
/// Setup ops (`LoadGraph`, `InitSampler`, `BuildShard`) install resident
/// state; phase ops drive the algorithms against it. Every op is answered
/// by exactly one [`WorkerReply`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkerOp {
    /// Install the graph from its `dim-graph` binary encoding. → `Ok`.
    LoadGraph {
        /// The graph's portable binary encoding.
        blob: Vec<u8>,
    },
    /// Construct an RR sampler + RNG stream over the loaded graph. → `Ok`.
    InitSampler {
        /// Which sampler to instantiate.
        spec: SamplerSpec,
    },
    /// Install a coverage shard with the given element lists. → `Ok`.
    BuildShard {
        /// Global number of sets (nodes) in the coverage instance.
        num_sets: u32,
        /// The shard's elements, each a list of set ids covering it.
        elements: Vec<Vec<u32>>,
    },
    /// Sample `count` RR sets into the resident shard. → `Ok`.
    SampleRr {
        /// How many RR sets this worker should add.
        count: u64,
    },
    /// Report initial per-set coverage of the whole shard. → `Deltas`.
    InitialCoverage,
    /// Report coverage of only elements added since the last report
    /// (§III-C incremental reporting). → `Deltas`.
    NewCoverage,
    /// Mark a chosen seed's elements covered. → `Deltas` (the sparse
    /// marginal decreases).
    ApplySeed {
        /// The selected set (node) id.
        set: u32,
    },
    /// Report how many resident elements are covered. → `Count`.
    CoveredCount,
    /// Report shard statistics. → `Stats`.
    Stats,
    /// Count resident elements covered by `seeds` without mutating the
    /// shard (OPIM-C / SSA validation). → `Count`.
    Validate {
        /// The candidate seed set.
        seeds: Vec<u32>,
    },
    /// Persist the resident RR shard as a `dim-store` snapshot shard file
    /// under `dir` (the worker writes its own shard — on the process/join
    /// backends this lands on the worker's machine). → `Ok`, or `Err` with
    /// the I/O failure. The master supplies every header field so the
    /// written snapshot is self-describing without the worker knowing the
    /// global run state.
    PersistShard {
        /// Directory the shard file is written into (created if missing).
        dir: String,
        /// Fingerprint of the graph the RR sets were sampled from.
        fingerprint: u64,
        /// The run's master seed (machine streams derive from it).
        seed: u64,
        /// Global θ — total RR sets across all shards.
        theta: u64,
        /// This worker's shard index.
        shard_id: u32,
        /// Total number of shards in the snapshot.
        shard_count: u32,
        /// Which sampler generated the RR sets.
        spec: SamplerSpec,
    },
    /// Apply an edge-delta batch to the resident graph and repair the
    /// resident RR shard incrementally: invalidate exactly the RR sets that
    /// visited a mutated node and re-sample them (with their original
    /// per-set RNG streams) on the mutated graph. → `Count` (number of sets
    /// repaired), or `Err`.
    ///
    /// When `persist_dir` is set the worker also writes its own `dim-store`
    /// delta shard (`DIMD` file) into that directory — like
    /// [`WorkerOp::PersistShard`], no shard bytes transit the master. The
    /// master supplies the chain provenance (base generation, pre/post
    /// graph fingerprints, run seed, θ); the worker contributes the batch
    /// bytes and its repaired sets.
    ApplyDelta {
        /// The encoded [`dim-graph` `DeltaBatch`] (canonical LE codec).
        batch: Vec<u8>,
        /// Directory for the worker-written delta shard; `None` skips
        /// persistence (in-memory repair only).
        persist_dir: Option<String>,
        /// Generation id of the base snapshot this delta chain extends.
        base_generation: u64,
        /// Fingerprint of the graph *after* this batch.
        fingerprint: u64,
        /// Fingerprint of the graph *before* this batch (chain linkage).
        parent_fingerprint: u64,
        /// The run's master seed (per-set streams derive from it).
        seed: u64,
        /// Global θ — total RR sets across all shards.
        theta: u64,
        /// Total number of shards in the snapshot.
        shard_count: u32,
        /// Which sampler generated (and re-generates) the RR sets.
        spec: SamplerSpec,
    },
    /// Exit cleanly. → `Ok` (process workers exit afterwards).
    Shutdown,
}

/// One worker response. Every [`WorkerOp`] produces exactly one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkerReply {
    /// Acknowledgement with no payload.
    Ok,
    /// Sparse ⟨set, Δ⟩ coverage tuples.
    Deltas(DeltaVec),
    /// A single counter.
    Count(u64),
    /// Shard statistics.
    Stats(WorkerStats),
    /// The op failed worker-side (unsupported op, bad state).
    Err(String),
}

// Op tags. Reply tags live in `WorkerReply::encode`.
const OP_LOAD_GRAPH: u8 = 0;
const OP_INIT_SAMPLER: u8 = 1;
const OP_BUILD_SHARD: u8 = 2;
const OP_SAMPLE_RR: u8 = 3;
const OP_INITIAL_COVERAGE: u8 = 4;
const OP_NEW_COVERAGE: u8 = 5;
const OP_APPLY_SEED: u8 = 6;
const OP_COVERED_COUNT: u8 = 7;
const OP_STATS: u8 = 8;
const OP_VALIDATE: u8 = 9;
const OP_SHUTDOWN: u8 = 10;
const OP_PERSIST_SHARD: u8 = 11;
const OP_APPLY_DELTA: u8 = 12;

const REPLY_OK: u8 = 0;
const REPLY_DELTAS: u8 = 1;
const REPLY_COUNT: u8 = 2;
const REPLY_STATS: u8 = 3;
const REPLY_ERR: u8 = 4;

/// Strict little-endian cursor over a byte slice. Every read is
/// length-checked; [`Reader::finish`] rejects trailing bytes, so a decode
/// accepts exactly the canonical encoding and nothing else. Shared with
/// the rendezvous handshake codecs (`crate::rendezvous`), the snapshot
/// codecs in `dim-store`, and the query codecs in `dim-serve`.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Starts a cursor at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        let (&b, rest) = self.buf.split_first()?;
        self.buf = rest;
        Some(b)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        let bytes = self.take(4)?;
        Some(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let bytes = self.take(8)?;
        Some(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    /// Reads `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Some(head)
    }

    /// Bytes not yet consumed. Decoders bounds-check length prefixes
    /// against this *before* allocating, so a hostile count can never
    /// trigger an oversized allocation.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Consumes the cursor, failing if any input remains — the canonical
    /// "no trailing bytes" check every strict decoder ends with.
    pub fn finish(self) -> Option<()> {
        self.buf.is_empty().then_some(())
    }
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

impl WorkerOp {
    /// Serializes the op to its canonical byte encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WorkerOp::LoadGraph { blob } => {
                out.push(OP_LOAD_GRAPH);
                put_u64(&mut out, blob.len() as u64);
                out.extend_from_slice(blob);
            }
            WorkerOp::InitSampler { spec } => {
                out.push(OP_INIT_SAMPLER);
                out.push(spec.tag());
            }
            WorkerOp::BuildShard { num_sets, elements } => {
                out.push(OP_BUILD_SHARD);
                put_u32(&mut out, *num_sets);
                put_u32(&mut out, elements.len() as u32);
                for element in elements {
                    put_u32(&mut out, element.len() as u32);
                    for &id in element {
                        put_u32(&mut out, id);
                    }
                }
            }
            WorkerOp::SampleRr { count } => {
                out.push(OP_SAMPLE_RR);
                put_u64(&mut out, *count);
            }
            WorkerOp::InitialCoverage => out.push(OP_INITIAL_COVERAGE),
            WorkerOp::NewCoverage => out.push(OP_NEW_COVERAGE),
            WorkerOp::ApplySeed { set } => {
                out.push(OP_APPLY_SEED);
                put_u32(&mut out, *set);
            }
            WorkerOp::CoveredCount => out.push(OP_COVERED_COUNT),
            WorkerOp::Stats => out.push(OP_STATS),
            WorkerOp::Validate { seeds } => {
                out.push(OP_VALIDATE);
                put_u32(&mut out, seeds.len() as u32);
                for &v in seeds {
                    put_u32(&mut out, v);
                }
            }
            WorkerOp::PersistShard {
                dir,
                fingerprint,
                seed,
                theta,
                shard_id,
                shard_count,
                spec,
            } => {
                out.push(OP_PERSIST_SHARD);
                put_u64(&mut out, *fingerprint);
                put_u64(&mut out, *seed);
                put_u64(&mut out, *theta);
                put_u32(&mut out, *shard_id);
                put_u32(&mut out, *shard_count);
                out.push(spec.tag());
                put_u32(&mut out, dir.len() as u32);
                out.extend_from_slice(dir.as_bytes());
            }
            WorkerOp::ApplyDelta {
                batch,
                persist_dir,
                base_generation,
                fingerprint,
                parent_fingerprint,
                seed,
                theta,
                shard_count,
                spec,
            } => {
                out.push(OP_APPLY_DELTA);
                put_u64(&mut out, *base_generation);
                put_u64(&mut out, *fingerprint);
                put_u64(&mut out, *parent_fingerprint);
                put_u64(&mut out, *seed);
                put_u64(&mut out, *theta);
                put_u32(&mut out, *shard_count);
                out.push(spec.tag());
                match persist_dir {
                    Some(dir) => {
                        out.push(1);
                        put_u32(&mut out, dir.len() as u32);
                        out.extend_from_slice(dir.as_bytes());
                    }
                    None => out.push(0),
                }
                put_u32(&mut out, batch.len() as u32);
                out.extend_from_slice(batch);
            }
            WorkerOp::Shutdown => out.push(OP_SHUTDOWN),
        }
        out
    }

    /// Deserializes an op. Returns `None` on any deviation from the
    /// canonical encoding (truncation, trailing bytes, bad tags,
    /// length/body mismatch).
    pub fn decode(bytes: &[u8]) -> Option<WorkerOp> {
        let mut r = Reader::new(bytes);
        let op = match r.u8()? {
            OP_LOAD_GRAPH => {
                let len = usize::try_from(r.u64()?).ok()?;
                WorkerOp::LoadGraph {
                    blob: r.take(len)?.to_vec(),
                }
            }
            OP_INIT_SAMPLER => WorkerOp::InitSampler {
                spec: SamplerSpec::from_tag(r.u8()?)?,
            },
            OP_BUILD_SHARD => {
                let num_sets = r.u32()?;
                let count = r.u32()? as usize;
                let mut elements = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    let len = r.u32()? as usize;
                    let mut element = Vec::with_capacity(len.min(1 << 20));
                    for _ in 0..len {
                        element.push(r.u32()?);
                    }
                    elements.push(element);
                }
                WorkerOp::BuildShard { num_sets, elements }
            }
            OP_SAMPLE_RR => WorkerOp::SampleRr { count: r.u64()? },
            OP_INITIAL_COVERAGE => WorkerOp::InitialCoverage,
            OP_NEW_COVERAGE => WorkerOp::NewCoverage,
            OP_APPLY_SEED => WorkerOp::ApplySeed { set: r.u32()? },
            OP_COVERED_COUNT => WorkerOp::CoveredCount,
            OP_STATS => WorkerOp::Stats,
            OP_VALIDATE => {
                let count = r.u32()? as usize;
                let mut seeds = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    seeds.push(r.u32()?);
                }
                WorkerOp::Validate { seeds }
            }
            OP_PERSIST_SHARD => {
                let fingerprint = r.u64()?;
                let seed = r.u64()?;
                let theta = r.u64()?;
                let shard_id = r.u32()?;
                let shard_count = r.u32()?;
                let spec = SamplerSpec::from_tag(r.u8()?)?;
                let len = r.u32()? as usize;
                let dir = String::from_utf8(r.take(len)?.to_vec()).ok()?;
                WorkerOp::PersistShard {
                    dir,
                    fingerprint,
                    seed,
                    theta,
                    shard_id,
                    shard_count,
                    spec,
                }
            }
            OP_APPLY_DELTA => {
                let base_generation = r.u64()?;
                let fingerprint = r.u64()?;
                let parent_fingerprint = r.u64()?;
                let seed = r.u64()?;
                let theta = r.u64()?;
                let shard_count = r.u32()?;
                let spec = SamplerSpec::from_tag(r.u8()?)?;
                let persist_dir = match r.u8()? {
                    0 => None,
                    1 => {
                        let len = r.u32()? as usize;
                        Some(String::from_utf8(r.take(len)?.to_vec()).ok()?)
                    }
                    _ => return None,
                };
                let len = r.u32()? as usize;
                let batch = r.take(len)?.to_vec();
                WorkerOp::ApplyDelta {
                    batch,
                    persist_dir,
                    base_generation,
                    fingerprint,
                    parent_fingerprint,
                    seed,
                    theta,
                    shard_count,
                    spec,
                }
            }
            OP_SHUTDOWN => WorkerOp::Shutdown,
            _ => return None,
        };
        r.finish()?;
        Some(op)
    }
}

impl WorkerReply {
    /// Serializes the reply to its canonical byte encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WorkerReply::Ok => out.push(REPLY_OK),
            WorkerReply::Deltas(deltas) => {
                out.push(REPLY_DELTAS);
                put_u32(&mut out, deltas.len() as u32);
                for &(v, d) in deltas {
                    put_u32(&mut out, v);
                    put_u32(&mut out, d);
                }
            }
            WorkerReply::Count(c) => {
                out.push(REPLY_COUNT);
                put_u64(&mut out, *c);
            }
            WorkerReply::Stats(s) => {
                out.push(REPLY_STATS);
                put_u64(&mut out, s.num_elements);
                put_u64(&mut out, s.total_size);
                put_u64(&mut out, s.edges_examined);
            }
            WorkerReply::Err(msg) => {
                out.push(REPLY_ERR);
                put_u32(&mut out, msg.len() as u32);
                out.extend_from_slice(msg.as_bytes());
            }
        }
        out
    }

    /// Deserializes a reply. Returns `None` on malformed input.
    pub fn decode(bytes: &[u8]) -> Option<WorkerReply> {
        let mut r = Reader::new(bytes);
        let reply = match r.u8()? {
            REPLY_OK => WorkerReply::Ok,
            REPLY_DELTAS => {
                let count = r.u32()? as usize;
                let mut deltas = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    let v = r.u32()?;
                    let d = r.u32()?;
                    deltas.push((v, d));
                }
                WorkerReply::Deltas(deltas)
            }
            REPLY_COUNT => WorkerReply::Count(r.u64()?),
            REPLY_STATS => WorkerReply::Stats(WorkerStats {
                num_elements: r.u64()?,
                total_size: r.u64()?,
                edges_examined: r.u64()?,
            }),
            REPLY_ERR => {
                let len = r.u32()? as usize;
                let msg = String::from_utf8(r.take(len)?.to_vec()).ok()?;
                WorkerReply::Err(msg)
            }
            _ => return None,
        };
        r.finish()?;
        Some(reply)
    }

    /// The *modeled* payload size of this reply — the byte count the
    /// paper's traffic accounting charges. Matches the sizes the
    /// closure-based gathers used: sparse deltas cost
    /// [`delta_wire_size`], counts cost one u64; acknowledgements and
    /// control metadata (stats, errors) are free, like MPI envelopes.
    pub fn wire_size(&self) -> u64 {
        match self {
            WorkerReply::Ok | WorkerReply::Err(_) => 0,
            WorkerReply::Deltas(d) => delta_wire_size(d.len()),
            WorkerReply::Count(_) => u64_wire_size(),
            WorkerReply::Stats(_) => 3 * u64_wire_size(),
        }
    }
}

/// A worker that answers [`WorkerOp`]s against its resident state.
///
/// Implementations hold whatever the op set touches — graph, sampler/RNG,
/// `CoverageShard` — and must answer every op they support with the reply
/// type documented on the op, returning [`WorkerReply::Err`] for ops they
/// do not support.
pub trait OpExecutor {
    /// Executes one op, mutating resident state as needed.
    fn execute(&mut self, op: &WorkerOp) -> WorkerReply;
}

/// A mutable borrow serves ops exactly like the owner. Lets a long-lived
/// worker (e.g. a join-mode `dim-worker` keeping its graph across
/// sessions) hand each session a borrow instead of giving up ownership.
impl<T: OpExecutor + ?Sized> OpExecutor for &mut T {
    fn execute(&mut self, op: &WorkerOp) -> WorkerReply {
        (**self).execute(op)
    }
}

/// A cluster backend that can execute [`WorkerOp`]s on its machines.
///
/// This is the seam the distributed algorithms actually use: each
/// gather/broadcast round becomes "build an op per machine, collect the
/// typed replies". [`crate::SimCluster`] interprets ops in process;
/// `crate::tcp::ProcCluster` serializes the identical values to worker
/// processes — so both backends run the same op sequence by construction.
pub trait OpCluster: ClusterBackend {
    /// Executes `op(i)` on every machine `i` and returns the replies in
    /// machine order, charging worker compute under `up_label`.
    ///
    /// No *modeled* traffic is charged here — callers decide whether a
    /// round is free control flow ([`OpCluster::control`]), an upload
    /// ([`OpCluster::op_gather`]), or a broadcast + upload
    /// ([`OpCluster::op_broadcast_gather`]). Backends that physically move
    /// bytes attribute the *measured* send time to `down_label` when given
    /// (the op carries broadcast payload) and receive time to `up_label`.
    ///
    /// A [`WorkerReply::Err`] from any machine aborts the round with a
    /// [`WireError`] naming that machine.
    fn exec_ops<F>(
        &mut self,
        down_label: Option<&'static str>,
        up_label: &'static str,
        op: F,
    ) -> Result<Vec<WorkerReply>, WireError>
    where
        F: Fn(usize) -> WorkerOp + Sync;

    /// Like [`OpCluster::exec_ops`] but *partial-failure aware*: returns a
    /// per-machine `Result` so one dead link does not discard the replies
    /// of the survivors. This is the seam the recovery layer
    /// (`dim_core::recover`) drives — on a single-machine loss it needs
    /// every surviving machine's reply to keep the round going.
    ///
    /// The default delegates to [`OpCluster::exec_ops`] and, on failure,
    /// reports the failing error for every machine (conservative: no
    /// survivor replies are available). Backends that can distinguish
    /// per-link outcomes override this.
    fn exec_ops_each<F>(
        &mut self,
        down_label: Option<&'static str>,
        up_label: &'static str,
        op: F,
    ) -> Vec<Result<WorkerReply, WireError>>
    where
        F: Fn(usize) -> WorkerOp + Sync,
    {
        let l = self.num_machines();
        match self.exec_ops(down_label, up_label, op) {
            Ok(replies) => replies.into_iter().map(Ok).collect(),
            Err(e) => (0..l).map(|_| Err(e.clone())).collect(),
        }
    }

    /// An op round with no modeled traffic: setup, sampling commands,
    /// stats — control flow the paper does not count as algorithm
    /// communication.
    fn control<F>(&mut self, label: &'static str, op: F) -> Result<Vec<WorkerReply>, WireError>
    where
        F: Fn(usize) -> WorkerOp + Sync,
    {
        self.exec_ops(None, label, op)
    }

    /// An op round whose replies are uploaded to the master: charges one
    /// tree collective of `Σ reply.wire_size()` bytes across ℓ messages
    /// under `label`, exactly like [`ClusterBackend::gather`].
    fn op_gather<F>(&mut self, label: &'static str, op: F) -> Result<Vec<WorkerReply>, WireError>
    where
        F: Fn(usize) -> WorkerOp + Sync,
    {
        let replies = self.exec_ops(None, label, op)?;
        let bytes: u64 = replies.iter().map(WorkerReply::wire_size).sum();
        self.charge_upload(label, replies.len() as u64, bytes);
        Ok(replies)
    }

    /// A master→workers broadcast of `down_bytes_per_machine` (the op's
    /// payload, e.g. an encoded seed id) followed by an upload of the
    /// replies. The broadcast is charged under `down_label` *before* the
    /// ops run, the upload under `up_label` after — preserving first-use
    /// label order in the timeline.
    fn op_broadcast_gather<F>(
        &mut self,
        down_label: &'static str,
        down_bytes_per_machine: u64,
        up_label: &'static str,
        op: F,
    ) -> Result<Vec<WorkerReply>, WireError>
    where
        F: Fn(usize) -> WorkerOp + Sync,
    {
        self.broadcast(down_label, down_bytes_per_machine);
        let replies = self.exec_ops(Some(down_label), up_label, op)?;
        let bytes: u64 = replies.iter().map(WorkerReply::wire_size).sum();
        self.charge_upload(up_label, replies.len() as u64, bytes);
        Ok(replies)
    }
}

/// [`SimCluster`] interprets ops in process: the same [`WorkerOp`] values
/// the TCP backend ships are handed straight to each worker's
/// [`OpExecutor::execute`], under the same virtual-time accounting as any
/// closure phase.
impl<W: Send + OpExecutor> OpCluster for SimCluster<W> {
    fn exec_ops<F>(
        &mut self,
        down_label: Option<&'static str>,
        up_label: &'static str,
        op: F,
    ) -> Result<Vec<WorkerReply>, WireError>
    where
        F: Fn(usize) -> WorkerOp + Sync,
    {
        // Fail-stop view over the partial-failure primitive: the first
        // per-machine error aborts the round.
        let mut out = Vec::with_capacity(self.num_machines());
        for reply in self.exec_ops_each(down_label, up_label, op) {
            out.push(reply?);
        }
        Ok(out)
    }

    fn exec_ops_each<F>(
        &mut self,
        _down_label: Option<&'static str>,
        up_label: &'static str,
        op: F,
    ) -> Vec<Result<WorkerReply, WireError>>
    where
        F: Fn(usize) -> WorkerOp + Sync,
    {
        // Chaos hook: when a fault injector is armed, this round's injected
        // delays are charged to `up_label` in virtual time, and killed
        // machines do not execute their op at all — exactly the observable
        // a real dead link has (no reply, typed link error).
        let killed = self.inject_round(up_label);
        let dead = |i: usize| killed.as_ref().is_some_and(|k| k[i]);
        let replies = self.par_step(up_label, |i, w| {
            if dead(i) {
                None
            } else {
                Some(w.execute(&op(i)))
            }
        });
        replies
            .into_iter()
            .enumerate()
            .map(|(i, reply)| match reply {
                None => Err(WireError::link(up_label, i)),
                Some(WorkerReply::Err(_)) => Err(WireError::malformed(up_label, i)),
                Some(reply) => Ok(reply),
            })
            .collect()
    }
}

/// Asserts every reply is [`WorkerReply::Ok`].
pub fn expect_ok(replies: &[WorkerReply], phase: &'static str) -> Result<(), WireError> {
    for (i, reply) in replies.iter().enumerate() {
        if !matches!(reply, WorkerReply::Ok) {
            return Err(WireError::malformed(phase, i));
        }
    }
    Ok(())
}

/// Extracts the [`WorkerReply::Count`] payload of every reply.
pub fn expect_counts(replies: &[WorkerReply], phase: &'static str) -> Result<Vec<u64>, WireError> {
    replies
        .iter()
        .enumerate()
        .map(|(i, reply)| match reply {
            WorkerReply::Count(c) => Ok(*c),
            _ => Err(WireError::malformed(phase, i)),
        })
        .collect()
}

/// Extracts the [`WorkerReply::Deltas`] payload of every reply.
pub fn expect_deltas(
    replies: Vec<WorkerReply>,
    phase: &'static str,
) -> Result<Vec<DeltaVec>, WireError> {
    replies
        .into_iter()
        .enumerate()
        .map(|(i, reply)| match reply {
            WorkerReply::Deltas(d) => Ok(d),
            _ => Err(WireError::malformed(phase, i)),
        })
        .collect()
}

/// Extracts the [`WorkerReply::Stats`] payload of every reply.
pub fn expect_stats(
    replies: &[WorkerReply],
    phase: &'static str,
) -> Result<Vec<WorkerStats>, WireError> {
    replies
        .iter()
        .enumerate()
        .map(|(i, reply)| match reply {
            WorkerReply::Stats(s) => Ok(*s),
            _ => Err(WireError::malformed(phase, i)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::phase;
    use crate::network::NetworkModel;
    use crate::runtime::ExecMode;

    fn all_ops() -> Vec<WorkerOp> {
        vec![
            WorkerOp::LoadGraph {
                blob: vec![1, 2, 3, 255],
            },
            WorkerOp::LoadGraph { blob: vec![] },
            WorkerOp::InitSampler {
                spec: SamplerSpec::StandardIc,
            },
            WorkerOp::InitSampler {
                spec: SamplerSpec::StandardLt,
            },
            WorkerOp::InitSampler {
                spec: SamplerSpec::Subsim,
            },
            WorkerOp::BuildShard {
                num_sets: 9,
                elements: vec![vec![0, 3, 8], vec![], vec![5]],
            },
            WorkerOp::SampleRr { count: u64::MAX },
            WorkerOp::InitialCoverage,
            WorkerOp::NewCoverage,
            WorkerOp::ApplySeed { set: 7 },
            WorkerOp::CoveredCount,
            WorkerOp::Stats,
            WorkerOp::Validate {
                seeds: vec![1, u32::MAX],
            },
            WorkerOp::PersistShard {
                dir: "/tmp/dim-snapshot".into(),
                fingerprint: 0xDEAD_BEEF_CAFE_F00D,
                seed: 42,
                theta: u64::MAX,
                shard_id: 3,
                shard_count: 4,
                spec: SamplerSpec::Subsim,
            },
            WorkerOp::PersistShard {
                dir: String::new(),
                fingerprint: 0,
                seed: 0,
                theta: 0,
                shard_id: 0,
                shard_count: 0,
                spec: SamplerSpec::StandardIc,
            },
            WorkerOp::ApplyDelta {
                batch: vec![7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
                persist_dir: Some("/tmp/dim-deltas".into()),
                base_generation: 3,
                fingerprint: 0xFEED_FACE_0123_4567,
                parent_fingerprint: 0xDEAD_BEEF_CAFE_F00D,
                seed: 29,
                theta: 10_000,
                shard_count: 4,
                spec: SamplerSpec::Subsim,
            },
            WorkerOp::ApplyDelta {
                batch: vec![],
                persist_dir: None,
                base_generation: 0,
                fingerprint: 0,
                parent_fingerprint: u64::MAX,
                seed: 0,
                theta: 0,
                shard_count: 0,
                spec: SamplerSpec::StandardIc,
            },
            WorkerOp::Shutdown,
        ]
    }

    fn all_replies() -> Vec<WorkerReply> {
        vec![
            WorkerReply::Ok,
            WorkerReply::Deltas(vec![(0, 1), (u32::MAX, 42)]),
            WorkerReply::Deltas(vec![]),
            WorkerReply::Count(u64::MAX),
            WorkerReply::Stats(WorkerStats {
                num_elements: 3,
                total_size: 17,
                edges_examined: 99,
            }),
            WorkerReply::Err("shard missing".into()),
        ]
    }

    #[test]
    fn op_roundtrip() {
        for op in all_ops() {
            let bytes = op.encode();
            assert_eq!(WorkerOp::decode(&bytes).as_ref(), Some(&op), "{op:?}");
        }
    }

    #[test]
    fn reply_roundtrip() {
        for reply in all_replies() {
            let bytes = reply.encode();
            assert_eq!(
                WorkerReply::decode(&bytes).as_ref(),
                Some(&reply),
                "{reply:?}"
            );
        }
    }

    #[test]
    fn rejects_truncated_and_trailing() {
        for op in all_ops() {
            let mut bytes = op.encode();
            bytes.push(0);
            assert!(WorkerOp::decode(&bytes).is_none(), "trailing: {op:?}");
            bytes.pop();
            if bytes.len() > 1 {
                assert!(
                    WorkerOp::decode(&bytes[..bytes.len() - 1]).is_none(),
                    "truncated: {op:?}"
                );
            }
        }
        for reply in all_replies() {
            let mut bytes = reply.encode();
            bytes.push(0);
            assert!(WorkerReply::decode(&bytes).is_none(), "trailing: {reply:?}");
        }
        assert!(WorkerOp::decode(&[]).is_none());
        assert!(WorkerReply::decode(&[]).is_none());
        assert!(WorkerOp::decode(&[200]).is_none());
        assert!(WorkerReply::decode(&[200]).is_none());
    }

    #[test]
    fn apply_delta_rejects_bad_dir_flag() {
        let op = WorkerOp::ApplyDelta {
            batch: vec![1, 2, 3],
            persist_dir: None,
            base_generation: 1,
            fingerprint: 2,
            parent_fingerprint: 3,
            seed: 4,
            theta: 5,
            shard_count: 6,
            spec: SamplerSpec::Subsim,
        };
        let mut bytes = op.encode();
        // The Option<persist_dir> flag byte sits right after the sampler
        // tag; anything other than 0/1 must be rejected.
        let flag_pos = 1 + 8 * 5 + 4 + 1;
        assert_eq!(bytes[flag_pos], 0);
        bytes[flag_pos] = 2;
        assert!(WorkerOp::decode(&bytes).is_none());
    }

    #[test]
    fn rejects_pathological_counts() {
        // A Validate header claiming u32::MAX seeds with a short body must
        // fail on the length check, not allocate or scan past the buffer.
        let mut bytes = vec![9u8]; // OP_VALIDATE
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        assert!(WorkerOp::decode(&bytes).is_none());

        let mut reply = vec![1u8]; // REPLY_DELTAS
        reply.extend_from_slice(&u32::MAX.to_le_bytes());
        reply.extend_from_slice(&[0u8; 8]);
        assert!(WorkerReply::decode(&reply).is_none());
    }

    #[test]
    fn rejects_invalid_utf8_err() {
        let mut bytes = vec![4u8]; // REPLY_ERR
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert!(WorkerReply::decode(&bytes).is_none());
    }

    #[test]
    fn reply_wire_sizes_match_closure_accounting() {
        assert_eq!(WorkerReply::Ok.wire_size(), 0);
        assert_eq!(WorkerReply::Err("x".into()).wire_size(), 0);
        assert_eq!(WorkerReply::Count(5).wire_size(), u64_wire_size());
        assert_eq!(
            WorkerReply::Deltas(vec![(1, 2), (3, 4)]).wire_size(),
            delta_wire_size(2)
        );
        assert_eq!(WorkerReply::Stats(WorkerStats::default()).wire_size(), 24);
    }

    /// A toy executor: `SampleRr` accumulates, `CoveredCount` reports, and
    /// everything else is unsupported.
    struct Tally(u64);

    impl OpExecutor for Tally {
        fn execute(&mut self, op: &WorkerOp) -> WorkerReply {
            match op {
                WorkerOp::SampleRr { count } => {
                    self.0 += count;
                    WorkerReply::Ok
                }
                WorkerOp::CoveredCount => WorkerReply::Count(self.0),
                _ => WorkerReply::Err("unsupported".into()),
            }
        }
    }

    #[test]
    fn sim_cluster_interprets_ops_in_process() {
        let mut cluster = SimCluster::new(
            vec![Tally(0), Tally(0), Tally(0)],
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        );
        let acks = cluster
            .control(phase::RR_SAMPLING, |i| WorkerOp::SampleRr {
                count: (i as u64 + 1) * 10,
            })
            .unwrap();
        expect_ok(&acks, phase::RR_SAMPLING).unwrap();
        // Control rounds model no traffic.
        assert_eq!(cluster.metrics().total_bytes(), 0);

        let counts = cluster
            .op_gather(phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount)
            .unwrap();
        let counts = expect_counts(&counts, phase::COUNT_UPLOAD).unwrap();
        assert_eq!(counts, vec![10, 20, 30]);
        let m = cluster.timeline().get(phase::COUNT_UPLOAD);
        assert_eq!(m.messages, 3);
        assert_eq!(m.bytes_to_master, 3 * u64_wire_size());
    }

    #[test]
    fn broadcast_gather_orders_labels_and_charges_both_directions() {
        let mut cluster = SimCluster::new(
            vec![Tally(4), Tally(6)],
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        );
        let replies = cluster
            .op_broadcast_gather(phase::SEED_BROADCAST, 8, phase::COUNT_UPLOAD, |_| {
                WorkerOp::CoveredCount
            })
            .unwrap();
        assert_eq!(expect_counts(&replies, phase::COUNT_UPLOAD).unwrap(), [4, 6]);
        let labels: Vec<_> = cluster.timeline().labels().collect();
        assert_eq!(labels, vec![phase::SEED_BROADCAST, phase::COUNT_UPLOAD]);
        assert_eq!(
            cluster.timeline().get(phase::SEED_BROADCAST).bytes_from_master,
            16
        );
        assert_eq!(
            cluster.timeline().get(phase::COUNT_UPLOAD).bytes_to_master,
            2 * u64_wire_size()
        );
    }

    #[test]
    fn chaos_kill_surfaces_link_error_with_survivor_replies() {
        use crate::faults::{FaultInjector, FaultPlan};
        use crate::wire::WireErrorKind;
        let mut cluster = SimCluster::new(
            vec![Tally(1), Tally(2), Tally(3)],
            NetworkModel::zero(),
            ExecMode::Sequential,
        )
        .with_faults(FaultInjector::new(FaultPlan::kill_machine(1, 0), 3));
        // Partial-failure view: survivors answer, the killed link is typed.
        let replies =
            cluster.exec_ops_each(None, phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount);
        assert_eq!(replies[0], Ok(WorkerReply::Count(1)));
        assert_eq!(replies[1].as_ref().unwrap_err().kind, WireErrorKind::Link);
        assert_eq!(replies[2], Ok(WorkerReply::Count(3)));
        // Fail-stop view over the same dead link aborts naming the machine.
        let err = cluster
            .control(phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount)
            .unwrap_err();
        assert_eq!(err.machine, Some(1));
        assert_eq!(err.kind, WireErrorKind::Link);
        let events = cluster.fault_injector().unwrap().events();
        assert!(!events.is_empty());
    }

    #[test]
    fn worker_err_aborts_round_naming_machine() {
        let mut cluster = SimCluster::new(
            vec![Tally(0), Tally(0)],
            NetworkModel::zero(),
            ExecMode::Sequential,
        );
        let err = cluster
            .control(phase::VALIDATION, |_| WorkerOp::Shutdown)
            .unwrap_err();
        assert_eq!(err.phase, phase::VALIDATION);
        assert_eq!(err.machine, Some(0));
    }

    #[test]
    fn expect_helpers_reject_mismatches() {
        let replies = vec![WorkerReply::Ok, WorkerReply::Count(1)];
        assert!(expect_ok(&replies, "x").is_err());
        assert!(expect_counts(&replies, "x").is_err());
        assert!(expect_deltas(replies.clone(), "x").is_err());
        assert_eq!(expect_stats(&replies, "x").unwrap_err().machine, Some(0));
    }
}
