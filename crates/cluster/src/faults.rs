//! Composable fault injection: the chaos layer of the cluster substrate.
//!
//! A [`FaultPlan`] describes, per link and per op round, what the network
//! does to a run: extra latency (fixed plus jittered), message loss (paid
//! as a deterministic retransmit delay), stalls, `partition_map`-style
//! partitions over round ranges, and permanent link kills. Every decision
//! is a pure function of `(chaos_seed, machine, round)` — the same
//! SplitMix64 discipline as [`crate::rng`] — so a plan replays the exact
//! same fault schedule on every backend and every run.
//!
//! The plan is *interpreted* by a [`FaultInjector`], which backends
//! consult once per machine per op round:
//!
//! * [`SimCluster`](crate::SimCluster) applies decisions in **virtual
//!   time** — injected delay is charged to the round's phase metrics, and
//!   a killed machine simply stops answering (its op is not executed).
//! * With the `chaos` feature, the TCP process backend applies the same
//!   decisions **for real**: stalls become socket-level sleeps, kills
//!   become mid-frame connection teardown (see `tcp::ChaosInjector`).
//!
//! Either way the injector records an ordered [`FaultEvent`] log, so two
//! runs from the same chaos seed can be asserted identical event for
//! event — the determinism contract `dim chaos` and the chaos CI job
//! rely on.

use std::time::Duration;

use bytes::{Buf, BufMut, BytesMut};

/// Parts-per-million denominator for the plan's probability knobs.
pub const PPM: u32 = 1_000_000;

/// Per-link fault behavior. All probabilities are in parts per million so
/// the codec stays integer-only (canonical bytes, no float comparison).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkFault {
    /// Machine whose master link this entry shapes.
    pub machine: u32,
    /// Fixed extra latency added to every round on this link (µs).
    pub extra_latency_us: u64,
    /// Uniform jitter in `[0, jitter_us]` added on top, drawn
    /// deterministically per round (µs).
    pub jitter_us: u64,
    /// Probability per round that the round's message is lost (ppm). A
    /// loss is paid as one deterministic retransmit delay.
    pub loss_prob_ppm: u32,
    /// Delay charged for each lost message (µs).
    pub loss_retry_us: u64,
    /// Probability per round that the link stalls (ppm).
    pub stall_prob_ppm: u32,
    /// Length of an injected stall (ms).
    pub stall_ms: u64,
    /// Kill the link permanently at this op round (0-based). `None`
    /// never kills.
    pub kill_at_round: Option<u64>,
}

/// A partition episode: during rounds `[from_round, to_round)` the named
/// machines are unreachable; each affected round pays `heal_us` of
/// reconnection delay (the schedule stays within timeouts, so partitions
/// slow rounds down without diverging results).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Partition {
    pub from_round: u64,
    pub to_round: u64,
    /// Extra delay per affected round while partitioned (µs).
    pub heal_us: u64,
    /// Machines cut off from the master during the episode.
    pub machines: Vec<u32>,
}

/// A complete, deterministic fault schedule for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed all probabilistic decisions derive from.
    pub chaos_seed: u64,
    pub link_faults: Vec<LinkFault>,
    pub partitions: Vec<Partition>,
}

/// What the injector decided for one `(machine, round)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkDecision {
    /// The round proceeds after `delay` of injected slowdown (possibly
    /// zero).
    Healthy { delay: Duration },
    /// The link is dead from this round on: the op must not be executed
    /// and the round must surface a typed link error for this machine.
    Killed,
}

/// One recorded injection, in decision order. Two injectors built from
/// the same plan produce identical event sequences — the determinism
/// test's observable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    pub round: u64,
    pub machine: u32,
    pub kind: FaultEventKind,
}

/// What was injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEventKind {
    /// Latency and/or jitter, total in µs.
    Delay { us: u64 },
    /// A lost message, paid as a retransmit delay in µs.
    Loss { retry_us: u64 },
    /// A stall of the given length in ms.
    Stall { ms: u64 },
    /// A partition episode delayed this round by `heal_us`.
    Partitioned { heal_us: u64 },
    /// The link died this round (reported once; later rounds are `Dead`).
    Kill,
    /// The link was already dead.
    Dead,
}

/// SplitMix64 finalizer over a mixed `(seed, machine, round, salt)` input
/// — same construction as [`crate::rng::stream_seed`], with a salt so the
/// jitter/loss/stall draws are independent streams.
fn chaos_mix(seed: u64, machine: u32, round: u64, salt: u64) -> u64 {
    let mut x = seed
        ^ (u64::from(machine) + 1).wrapping_mul(0x9E3779B97F4A7C15)
        ^ round.wrapping_add(1).wrapping_mul(0xD1B54A32D192ED03)
        ^ salt.wrapping_mul(0x2545F4914F6CDD1D);
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Draws a ppm-scale coin: true with probability `prob_ppm` / 10⁶.
fn ppm_roll(seed: u64, machine: u32, round: u64, salt: u64, prob_ppm: u32) -> bool {
    prob_ppm > 0 && (chaos_mix(seed, machine, round, salt) % u64::from(PPM)) < u64::from(prob_ppm)
}

/// Interprets a [`FaultPlan`] round by round, recording every injection.
///
/// Backends call [`FaultInjector::decide`] once per machine per op round
/// (in machine order) and [`FaultInjector::next_round`] after the round —
/// the decision for a `(machine, round)` pair is stateless apart from the
/// once-only `Kill` event, so the same plan yields the same schedule
/// regardless of which backend interprets it.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    round: u64,
    dead: Vec<bool>,
    events: Vec<FaultEvent>,
}

impl FaultInjector {
    /// Builds an injector for a cluster of `machines` machines.
    pub fn new(plan: FaultPlan, machines: usize) -> Self {
        FaultInjector {
            plan,
            round: 0,
            dead: vec![false; machines],
            events: Vec::new(),
        }
    }

    /// The op round the next [`FaultInjector::decide`] applies to.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The ordered injection log so far.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Machines whose links have been killed so far.
    pub fn killed(&self) -> Vec<usize> {
        self.dead
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| d.then_some(i))
            .collect()
    }

    /// Advances to the next op round.
    pub fn next_round(&mut self) {
        self.round += 1;
    }

    /// Decides what happens to `machine`'s link this round, recording the
    /// injected events.
    pub fn decide(&mut self, machine: usize) -> LinkDecision {
        let m = machine as u32;
        let round = self.round;
        if self.dead.get(machine).copied().unwrap_or(false) {
            self.push(round, m, FaultEventKind::Dead);
            return LinkDecision::Killed;
        }
        let seed = self.plan.chaos_seed;
        let mut delay_us = 0u64;
        let mut fault_of_machine = None;
        for f in &self.plan.link_faults {
            if f.machine == m {
                fault_of_machine = Some(f.clone());
                break;
            }
        }
        if let Some(f) = fault_of_machine {
            if f.kill_at_round.is_some_and(|at| round >= at) {
                self.dead[machine] = true;
                self.push(round, m, FaultEventKind::Kill);
                return LinkDecision::Killed;
            }
            let mut latency = f.extra_latency_us;
            if f.jitter_us > 0 {
                latency += chaos_mix(seed, m, round, 1) % (f.jitter_us + 1);
            }
            if latency > 0 {
                self.push(round, m, FaultEventKind::Delay { us: latency });
                delay_us += latency;
            }
            if ppm_roll(seed, m, round, 2, f.loss_prob_ppm) {
                self.push(round, m, FaultEventKind::Loss { retry_us: f.loss_retry_us });
                delay_us += f.loss_retry_us;
            }
            if ppm_roll(seed, m, round, 3, f.stall_prob_ppm) {
                self.push(round, m, FaultEventKind::Stall { ms: f.stall_ms });
                delay_us += f.stall_ms.saturating_mul(1_000);
            }
        }
        let partition_heals: Vec<u64> = self
            .plan
            .partitions
            .iter()
            .filter(|p| round >= p.from_round && round < p.to_round && p.machines.contains(&m))
            .map(|p| p.heal_us)
            .collect();
        for heal_us in partition_heals {
            self.push(round, m, FaultEventKind::Partitioned { heal_us });
            delay_us += heal_us;
        }
        LinkDecision::Healthy {
            delay: Duration::from_micros(delay_us),
        }
    }

    fn push(&mut self, round: u64, machine: u32, kind: FaultEventKind) {
        self.events.push(FaultEvent {
            round,
            machine,
            kind,
        });
    }
}

// ---------------------------------------------------------------------------
// Binary codec — strict little-endian, canonical (decode ∘ encode = id,
// re-encode of any decodable input reproduces it byte for byte).
// ---------------------------------------------------------------------------

const PLAN_MAGIC: u32 = 0x4443_4850; // "PHCD": plan header, chaos dim.
const PLAN_VERSION: u32 = 1;

impl FaultPlan {
    /// Serializes the plan.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u32_le(PLAN_MAGIC);
        buf.put_u32_le(PLAN_VERSION);
        buf.put_u64_le(self.chaos_seed);
        buf.put_u32_le(self.link_faults.len() as u32);
        for f in &self.link_faults {
            buf.put_u32_le(f.machine);
            buf.put_u64_le(f.extra_latency_us);
            buf.put_u64_le(f.jitter_us);
            buf.put_u32_le(f.loss_prob_ppm);
            buf.put_u64_le(f.loss_retry_us);
            buf.put_u32_le(f.stall_prob_ppm);
            buf.put_u64_le(f.stall_ms);
            match f.kill_at_round {
                Some(at) => {
                    buf.put_u8(1);
                    buf.put_u64_le(at);
                }
                None => buf.put_u8(0),
            }
        }
        buf.put_u32_le(self.partitions.len() as u32);
        for p in &self.partitions {
            buf.put_u64_le(p.from_round);
            buf.put_u64_le(p.to_round);
            buf.put_u64_le(p.heal_us);
            buf.put_u32_le(p.machines.len() as u32);
            for &m in &p.machines {
                buf.put_u32_le(m);
            }
        }
        buf.to_vec()
    }

    /// Deserializes a plan encoded by [`FaultPlan::encode`]. Strict:
    /// truncation, trailing bytes, bad magic/version, over-large counts,
    /// and non-canonical option tags are all `None`.
    pub fn decode(bytes: &[u8]) -> Option<FaultPlan> {
        let mut buf = bytes;
        if buf.remaining() < 4 + 4 + 8 + 4 {
            return None;
        }
        if buf.get_u32_le() != PLAN_MAGIC || buf.get_u32_le() != PLAN_VERSION {
            return None;
        }
        let chaos_seed = buf.get_u64_le();
        let n_faults = buf.get_u32_le() as usize;
        // Each link-fault record is ≥ 45 bytes: a hostile count cannot
        // out-claim the buffer.
        if n_faults > buf.remaining() / 45 {
            return None;
        }
        let mut link_faults = Vec::with_capacity(n_faults);
        for _ in 0..n_faults {
            if buf.remaining() < 45 {
                return None;
            }
            let machine = buf.get_u32_le();
            let extra_latency_us = buf.get_u64_le();
            let jitter_us = buf.get_u64_le();
            let loss_prob_ppm = buf.get_u32_le();
            let loss_retry_us = buf.get_u64_le();
            let stall_prob_ppm = buf.get_u32_le();
            let stall_ms = buf.get_u64_le();
            let kill_at_round = match buf.get_u8() {
                0 => None,
                1 => {
                    if buf.remaining() < 8 {
                        return None;
                    }
                    Some(buf.get_u64_le())
                }
                _ => return None,
            };
            if loss_prob_ppm > PPM || stall_prob_ppm > PPM {
                return None;
            }
            link_faults.push(LinkFault {
                machine,
                extra_latency_us,
                jitter_us,
                loss_prob_ppm,
                loss_retry_us,
                stall_prob_ppm,
                stall_ms,
                kill_at_round,
            });
        }
        if buf.remaining() < 4 {
            return None;
        }
        let n_parts = buf.get_u32_le() as usize;
        if n_parts > buf.remaining() / 28 {
            return None;
        }
        let mut partitions = Vec::with_capacity(n_parts);
        for _ in 0..n_parts {
            if buf.remaining() < 28 {
                return None;
            }
            let from_round = buf.get_u64_le();
            let to_round = buf.get_u64_le();
            let heal_us = buf.get_u64_le();
            let n_machines = buf.get_u32_le() as usize;
            if Some(true) != n_machines.checked_mul(4).map(|b| b <= buf.remaining()) {
                return None;
            }
            let machines = (0..n_machines).map(|_| buf.get_u32_le()).collect();
            partitions.push(Partition {
                from_round,
                to_round,
                heal_us,
                machines,
            });
        }
        if buf.remaining() > 0 {
            return None;
        }
        Some(FaultPlan {
            chaos_seed,
            link_faults,
            partitions,
        })
    }
}

// ---------------------------------------------------------------------------
// JSON codec — the `dim chaos --plan PLAN.json` surface. Hand-rolled like
// the rest of the workspace's JSON touchpoints (the binaries carry no
// serde); strict enough to reject anything structurally off.
use crate::json::Json;

impl FaultPlan {
    /// Parses a plan from the `dim chaos --plan` JSON shape. Unknown keys
    /// are rejected nowhere (forward compatible); missing keys default to
    /// zero / empty / `null`.
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        let root = Json::parse(text)?;
        if !matches!(root, Json::Obj(_)) {
            return Err("plan must be a JSON object".into());
        }
        let chaos_seed = root.u64_or("chaos_seed", 0)?;
        let mut link_faults = Vec::new();
        if let Some(Json::Arr(items)) = root.get("link_faults") {
            for item in items {
                let kill_at_round = match item.get("kill_at_round") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(v.as_u64("kill_at_round")?),
                };
                let fault = LinkFault {
                    machine: item.u32_or("machine", 0)?,
                    extra_latency_us: item.u64_or("extra_latency_us", 0)?,
                    jitter_us: item.u64_or("jitter_us", 0)?,
                    loss_prob_ppm: item.u32_or("loss_prob_ppm", 0)?,
                    loss_retry_us: item.u64_or("loss_retry_us", 0)?,
                    stall_prob_ppm: item.u32_or("stall_prob_ppm", 0)?,
                    stall_ms: item.u64_or("stall_ms", 0)?,
                    kill_at_round,
                };
                if fault.loss_prob_ppm > PPM || fault.stall_prob_ppm > PPM {
                    return Err("probabilities are parts-per-million (≤ 1000000)".into());
                }
                link_faults.push(fault);
            }
        }
        let mut partitions = Vec::new();
        if let Some(Json::Arr(items)) = root.get("partitions") {
            for item in items {
                let machines = match item.get("machines") {
                    None | Some(Json::Null) => Vec::new(),
                    Some(Json::Arr(ms)) => ms
                        .iter()
                        .map(|m| {
                            m.as_u64("machines[]").and_then(|v| {
                                u32::try_from(v)
                                    .map_err(|_| format!("machine id {v} does not fit in u32"))
                            })
                        })
                        .collect::<Result<_, _>>()?,
                    Some(other) => {
                        return Err(format!("machines: expected an array, got {other:?}"))
                    }
                };
                partitions.push(Partition {
                    from_round: item.u64_or("from_round", 0)?,
                    to_round: item.u64_or("to_round", 0)?,
                    heal_us: item.u64_or("heal_us", 0)?,
                    machines,
                });
            }
        }
        Ok(FaultPlan {
            chaos_seed,
            link_faults,
            partitions,
        })
    }

    /// Serializes the plan as `dim chaos --plan` JSON (one object, stable
    /// field order; `from_json ∘ to_json = id`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{{\"chaos_seed\":{},\"link_faults\":[", self.chaos_seed);
        for (i, f) in self.link_faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"machine\":{},\"extra_latency_us\":{},\"jitter_us\":{},\
                 \"loss_prob_ppm\":{},\"loss_retry_us\":{},\"stall_prob_ppm\":{},\
                 \"stall_ms\":{},\"kill_at_round\":",
                f.machine,
                f.extra_latency_us,
                f.jitter_us,
                f.loss_prob_ppm,
                f.loss_retry_us,
                f.stall_prob_ppm,
                f.stall_ms,
            );
            match f.kill_at_round {
                Some(at) => {
                    let _ = write!(out, "{at}");
                }
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push_str("],\"partitions\":[");
        for (i, p) in self.partitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"from_round\":{},\"to_round\":{},\"heal_us\":{},\"machines\":[",
                p.from_round, p.to_round, p.heal_us
            );
            for (j, m) in p.machines.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{m}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// A plan that kills `machine`'s link at op round `round` and does
    /// nothing else — the single-machine-loss schedule the equivalence
    /// tests replay.
    pub fn kill_machine(machine: u32, round: u64) -> FaultPlan {
        FaultPlan {
            chaos_seed: 0,
            link_faults: vec![LinkFault {
                machine,
                kill_at_round: Some(round),
                ..LinkFault::default()
            }],
            partitions: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan {
            chaos_seed: 0xC0FFEE,
            link_faults: vec![
                LinkFault {
                    machine: 0,
                    extra_latency_us: 150,
                    jitter_us: 40,
                    loss_prob_ppm: 250_000,
                    loss_retry_us: 900,
                    stall_prob_ppm: 100_000,
                    stall_ms: 3,
                    kill_at_round: None,
                },
                LinkFault {
                    machine: 2,
                    kill_at_round: Some(4),
                    ..LinkFault::default()
                },
            ],
            partitions: vec![Partition {
                from_round: 1,
                to_round: 3,
                heal_us: 500,
                machines: vec![1, 2],
            }],
        }
    }

    #[test]
    fn binary_codec_roundtrips() {
        let plan = sample_plan();
        let bytes = plan.encode();
        assert_eq!(FaultPlan::decode(&bytes).unwrap(), plan);
        let empty = FaultPlan::default();
        assert_eq!(FaultPlan::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn binary_codec_rejects_truncation_and_trailing() {
        let bytes = sample_plan().encode();
        for cut in 0..bytes.len() {
            assert!(FaultPlan::decode(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        let mut overlong = bytes.clone();
        overlong.push(0);
        assert!(FaultPlan::decode(&overlong).is_none());
    }

    #[test]
    fn binary_codec_rejects_bad_magic_version_and_counts() {
        let mut bytes = sample_plan().encode();
        bytes[0] ^= 0xFF;
        assert!(FaultPlan::decode(&bytes).is_none(), "bad magic");
        let mut bytes = sample_plan().encode();
        bytes[4] = 0xFF;
        assert!(FaultPlan::decode(&bytes).is_none(), "bad version");
        // A hostile link-fault count larger than the buffer can hold.
        let mut hostile = FaultPlan::default().encode();
        let at = 4 + 4 + 8;
        hostile[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(FaultPlan::decode(&hostile).is_none(), "hostile count");
    }

    #[test]
    fn json_roundtrips_and_defaults() {
        let plan = sample_plan();
        assert_eq!(FaultPlan::from_json(&plan.to_json()).unwrap(), plan);
        // Minimal plans parse with defaults.
        let min = FaultPlan::from_json(r#"{"chaos_seed": 9}"#).unwrap();
        assert_eq!(min.chaos_seed, 9);
        assert!(min.link_faults.is_empty() && min.partitions.is_empty());
        let kill = FaultPlan::from_json(
            r#"{"link_faults": [{"machine": 1, "kill_at_round": 3}]}"#,
        )
        .unwrap();
        assert_eq!(kill.link_faults[0].kill_at_round, Some(3));
        assert_eq!(kill.link_faults[0].loss_prob_ppm, 0);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(FaultPlan::from_json("").is_err());
        assert!(FaultPlan::from_json("[]").is_err());
        assert!(FaultPlan::from_json("{").is_err());
        assert!(FaultPlan::from_json(r#"{"chaos_seed": -1}"#).is_err());
        assert!(FaultPlan::from_json(r#"{"chaos_seed": 1} trailing"#).is_err());
        assert!(
            FaultPlan::from_json(r#"{"link_faults": [{"loss_prob_ppm": 2000000}]}"#).is_err(),
            "probability over 1e6 ppm"
        );
    }

    #[test]
    fn injector_is_deterministic_per_seed() {
        let plan = sample_plan();
        let run = |plan: &FaultPlan| {
            let mut inj = FaultInjector::new(plan.clone(), 4);
            let mut decisions = Vec::new();
            for _ in 0..8 {
                for m in 0..4 {
                    decisions.push(inj.decide(m));
                }
                inj.next_round();
            }
            (decisions, inj.events().to_vec())
        };
        let (d1, e1) = run(&plan);
        let (d2, e2) = run(&plan);
        assert_eq!(d1, d2);
        assert_eq!(e1, e2);
        assert!(!e1.is_empty());
        // A different chaos seed perturbs the probabilistic schedule.
        let mut other = plan.clone();
        other.chaos_seed ^= 1;
        let (_, e3) = run(&other);
        assert_ne!(e1, e3);
    }

    #[test]
    fn kill_is_permanent_and_reported_once() {
        let mut inj = FaultInjector::new(FaultPlan::kill_machine(1, 2), 3);
        for round in 0..5u64 {
            for m in 0..3 {
                let d = inj.decide(m);
                if m == 1 && round >= 2 {
                    assert_eq!(d, LinkDecision::Killed, "round {round}");
                } else {
                    assert!(matches!(d, LinkDecision::Healthy { .. }), "round {round} m {m}");
                }
            }
            inj.next_round();
        }
        let kills: Vec<_> = inj
            .events()
            .iter()
            .filter(|e| e.kind == FaultEventKind::Kill)
            .collect();
        assert_eq!(kills.len(), 1);
        assert_eq!((kills[0].round, kills[0].machine), (2, 1));
        assert_eq!(inj.killed(), vec![1]);
    }

    #[test]
    fn partition_delays_only_in_range() {
        let plan = FaultPlan {
            chaos_seed: 1,
            link_faults: Vec::new(),
            partitions: vec![Partition {
                from_round: 1,
                to_round: 2,
                heal_us: 700,
                machines: vec![0],
            }],
        };
        let mut inj = FaultInjector::new(plan, 2);
        for round in 0..3u64 {
            let d0 = inj.decide(0);
            let d1 = inj.decide(1);
            let expected = if round == 1 {
                Duration::from_micros(700)
            } else {
                Duration::ZERO
            };
            assert_eq!(d0, LinkDecision::Healthy { delay: expected }, "round {round}");
            assert_eq!(d1, LinkDecision::Healthy { delay: Duration::ZERO });
            inj.next_round();
        }
    }

    #[test]
    fn loss_rate_tracks_probability() {
        let plan = FaultPlan {
            chaos_seed: 77,
            link_faults: vec![LinkFault {
                machine: 0,
                loss_prob_ppm: PPM / 4,
                loss_retry_us: 10,
                ..LinkFault::default()
            }],
            partitions: Vec::new(),
        };
        let mut inj = FaultInjector::new(plan, 1);
        for _ in 0..4000 {
            inj.decide(0);
            inj.next_round();
        }
        let losses = inj
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultEventKind::Loss { .. }))
            .count();
        let rate = losses as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "loss rate {rate}");
    }
}
