//! The simulated cluster runtime.

use std::time::{Duration, Instant};

use crate::metrics::ClusterMetrics;
use crate::network::NetworkModel;

/// How simulated machines execute their parallel phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Machines run one after another on the calling thread; each is timed
    /// individually and the phase is charged the maximum. Deterministic and
    /// the right choice on hosts with few cores (virtual-time simulation).
    Sequential,
    /// Machines run on real OS threads (`std::thread::scope`). Accounting is
    /// identical — each machine is timed on its own thread — but wall-clock
    /// time actually shrinks on multi-core hosts.
    Threads,
}

/// A master/worker cluster of `ℓ` simulated machines, each owning a worker
/// state `W` (its shard of the data).
///
/// Phases:
/// * [`SimCluster::par_step`] — run a closure on every machine in parallel;
///   charges `max_i(elapsed_i)` of compute time.
/// * [`SimCluster::gather`] — `par_step` whose results are uploaded to the
///   master; additionally charges communication for `ℓ` messages.
/// * [`SimCluster::broadcast`] — charge a master→workers transfer.
/// * [`SimCluster::master`] — run and time serial master-side work.
pub struct SimCluster<W> {
    workers: Vec<W>,
    network: NetworkModel,
    mode: ExecMode,
    metrics: ClusterMetrics,
    /// Per-machine relative speed (1.0 = nominal). A machine with speed
    /// `s` is charged `elapsed / s` of virtual time — the knob for
    /// modeling heterogeneous clusters and stragglers, which the paper's
    /// balance analysis (Corollary 1) assumes away.
    speeds: Vec<f64>,
}

impl<W: Send> SimCluster<W> {
    /// Creates a cluster whose machine `i` owns `workers[i]`.
    ///
    /// # Panics
    /// Panics if `workers` is empty.
    pub fn new(workers: Vec<W>, network: NetworkModel, mode: ExecMode) -> Self {
        let speeds = vec![1.0; workers.len()];
        Self::with_speeds(workers, network, mode, speeds)
    }

    /// Like [`Self::new`] but with per-machine relative speeds: machine
    /// `i`'s measured work time is divided by `speeds[i]` when charged to
    /// the virtual clock (0.5 = half-speed straggler).
    ///
    /// # Panics
    /// Panics if `workers` is empty, lengths differ, or a speed is not
    /// strictly positive.
    pub fn with_speeds(
        workers: Vec<W>,
        network: NetworkModel,
        mode: ExecMode,
        speeds: Vec<f64>,
    ) -> Self {
        assert!(!workers.is_empty(), "cluster needs at least one machine");
        assert_eq!(workers.len(), speeds.len(), "one speed per machine");
        assert!(
            speeds.iter().all(|&s| s > 0.0 && s.is_finite()),
            "speeds must be positive"
        );
        SimCluster {
            workers,
            network,
            mode,
            metrics: ClusterMetrics::default(),
            speeds,
        }
    }

    /// Number of machines `ℓ`.
    pub fn num_machines(&self) -> usize {
        self.workers.len()
    }

    /// The network model pricing this cluster's messages.
    pub fn network(&self) -> NetworkModel {
        self.network
    }

    /// Accumulated metrics so far.
    pub fn metrics(&self) -> ClusterMetrics {
        self.metrics
    }

    /// Resets accumulated metrics to zero (worker state is untouched).
    pub fn reset_metrics(&mut self) {
        self.metrics = ClusterMetrics::default();
    }

    /// Immutable view of the worker states.
    pub fn workers(&self) -> &[W] {
        &self.workers
    }

    /// Consumes the cluster, returning the worker states.
    pub fn into_workers(self) -> Vec<W> {
        self.workers
    }

    /// Runs `f(machine_id, worker)` on every machine "in parallel" and
    /// returns the per-machine results in machine order. Charges the phase
    /// `max_i(elapsed_i)` of worker compute time.
    pub fn par_step<R, F>(&mut self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut W) -> R + Sync,
    {
        let (results, times) = match self.mode {
            ExecMode::Sequential => {
                let mut results = Vec::with_capacity(self.workers.len());
                let mut times = Vec::with_capacity(self.workers.len());
                for (i, w) in self.workers.iter_mut().enumerate() {
                    let start = Instant::now();
                    results.push(f(i, w));
                    times.push(start.elapsed());
                }
                (results, times)
            }
            ExecMode::Threads => {
                let f = &f;
                let mut out: Vec<Option<(R, Duration)>> =
                    self.workers.iter().map(|_| None).collect();
                std::thread::scope(|scope| {
                    for ((i, w), slot) in
                        self.workers.iter_mut().enumerate().zip(out.iter_mut())
                    {
                        scope.spawn(move || {
                            let start = Instant::now();
                            let r = f(i, w);
                            *slot = Some((r, start.elapsed()));
                        });
                    }
                });
                let mut results = Vec::with_capacity(out.len());
                let mut times = Vec::with_capacity(out.len());
                for item in out {
                    let (r, t) = item.expect("worker thread completed");
                    results.push(r);
                    times.push(t);
                }
                (results, times)
            }
        };
        // Scale each machine's measured time by its relative speed.
        let scaled: Vec<Duration> = times
            .iter()
            .zip(&self.speeds)
            .map(|(t, &s)| t.div_f64(s))
            .collect();
        let max = scaled.iter().copied().max().unwrap_or(Duration::ZERO);
        let sum: Duration = scaled.iter().sum();
        self.metrics.worker_compute += max;
        self.metrics.worker_busy += sum;
        self.metrics.phases += 1;
        results
    }

    /// [`Self::par_step`] followed by an upload of each machine's result to
    /// the master. `payload_bytes(result)` reports each message's wire size.
    pub fn gather<R, F, S>(&mut self, f: F, payload_bytes: S) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut W) -> R + Sync,
        S: Fn(&R) -> u64,
    {
        let results = self.par_step(f);
        let bytes: u64 = results.iter().map(&payload_bytes).sum();
        self.charge_upload(results.len() as u64, bytes);
        results
    }

    /// Charges a gather of `bytes` from `messages` workers to the master,
    /// priced as one tree collective (MPI_Gatherv).
    pub fn charge_upload(&mut self, messages: u64, bytes: u64) {
        self.metrics.comm_time += self.network.collective_time(messages, bytes);
        self.metrics.messages += messages;
        self.metrics.bytes_to_master += bytes;
    }

    /// Charges a broadcast of `bytes_per_machine` from the master to every
    /// machine, priced as one tree collective (MPI_Bcast; each tree level
    /// re-sends the payload, so the master link sees `ℓ` copies of it).
    pub fn broadcast(&mut self, bytes_per_machine: u64) {
        let l = self.workers.len() as u64;
        let total = bytes_per_machine * l;
        self.metrics.comm_time += self.network.collective_time(l, total);
        self.metrics.messages += l;
        self.metrics.bytes_from_master += total;
    }

    /// Runs serial master-side work, charging its elapsed time.
    pub fn master<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.metrics.master_compute += start.elapsed();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(l: usize) -> SimCluster<u64> {
        SimCluster::new((0..l as u64).collect(), NetworkModel::zero(), ExecMode::Sequential)
    }

    #[test]
    fn par_step_runs_all_machines_in_order() {
        let mut c = cluster(4);
        let ids = c.par_step(|i, w| {
            *w += 10;
            (i, *w)
        });
        assert_eq!(ids, vec![(0, 10), (1, 11), (2, 12), (3, 13)]);
        assert_eq!(c.metrics().phases, 1);
        assert_eq!(c.workers(), &[10, 11, 12, 13]);
    }

    #[test]
    fn threads_mode_matches_sequential_results() {
        let mut seq = cluster(4);
        let mut thr = SimCluster::new(
            (0..4u64).collect(),
            NetworkModel::zero(),
            ExecMode::Threads,
        );
        let a = seq.par_step(|i, w| *w * 2 + i as u64);
        let b = thr.par_step(|i, w| *w * 2 + i as u64);
        assert_eq!(a, b);
    }

    #[test]
    fn gather_accounts_traffic() {
        let mut c = SimCluster::new(
            vec![1u64; 8],
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        );
        c.gather(|_, w| *w, |_| 100);
        let m = c.metrics();
        assert_eq!(m.messages, 8);
        assert_eq!(m.bytes_to_master, 800);
        // Tree collective over 8 machines: ⌈log₂ 9⌉ = 4 latency hops.
        assert!(m.comm_time >= Duration::from_micros(200));
    }

    #[test]
    fn broadcast_accounts_traffic() {
        let mut c = SimCluster::new(
            vec![0u64; 5],
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        );
        c.broadcast(40);
        let m = c.metrics();
        assert_eq!(m.bytes_from_master, 200);
        assert_eq!(m.messages, 5);
    }

    #[test]
    fn master_time_accumulates() {
        let mut c = cluster(1);
        let v = c.master(|| {
            std::hint::black_box((0..10_000u64).sum::<u64>())
        });
        assert_eq!(v, 49_995_000);
        assert!(c.metrics().master_compute > Duration::ZERO);
    }

    #[test]
    fn busy_at_least_compute() {
        let mut c = cluster(3);
        c.par_step(|_, w| std::hint::black_box((0..50_000).fold(*w, |a, b| a ^ b)));
        let m = c.metrics();
        assert!(m.worker_busy >= m.worker_compute);
    }

    #[test]
    fn reset_clears_metrics() {
        let mut c = cluster(2);
        c.par_step(|_, _| ());
        c.reset_metrics();
        assert_eq!(c.metrics(), ClusterMetrics::default());
    }

    #[test]
    fn straggler_dominates_phase_time() {
        // Two machines doing identical work; machine 1 runs at 1/10 speed.
        let work = |_: usize, w: &mut u64| {
            *w = std::hint::black_box((0..200_000u64).fold(0, |a, b| a ^ b));
        };
        let mut even = SimCluster::new(vec![0u64; 2], NetworkModel::zero(), ExecMode::Sequential);
        even.par_step(work);
        let mut skew = SimCluster::with_speeds(
            vec![0u64; 2],
            NetworkModel::zero(),
            ExecMode::Sequential,
            vec![1.0, 0.1],
        );
        skew.par_step(work);
        // The straggler cluster's phase takes ~10x the even cluster's.
        let ratio = skew.metrics().worker_compute.as_secs_f64()
            / even.metrics().worker_compute.as_secs_f64();
        assert!(ratio > 3.0, "straggler should dominate (ratio {ratio})");
    }

    #[test]
    #[should_panic]
    fn rejects_speed_mismatch() {
        SimCluster::with_speeds(
            vec![0u64; 2],
            NetworkModel::zero(),
            ExecMode::Sequential,
            vec![1.0],
        );
    }

    #[test]
    #[should_panic]
    fn rejects_zero_speed() {
        SimCluster::with_speeds(
            vec![0u64; 1],
            NetworkModel::zero(),
            ExecMode::Sequential,
            vec![0.0],
        );
    }

    #[test]
    #[should_panic]
    fn rejects_empty_cluster() {
        SimCluster::<u64>::new(vec![], NetworkModel::zero(), ExecMode::Sequential);
    }
}
