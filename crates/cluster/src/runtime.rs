//! The simulated cluster runtime — the in-process [`ClusterBackend`].

use std::time::{Duration, Instant};

use crate::backend::ClusterBackend;
use crate::faults::{FaultInjector, LinkDecision};
use crate::metrics::{ClusterMetrics, PhaseTimeline};
use crate::network::NetworkModel;

/// How simulated machines execute their parallel phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Machines run one after another on the calling thread; each is timed
    /// individually and the phase is charged the maximum. Deterministic and
    /// the right choice on hosts with few cores (virtual-time simulation).
    Sequential,
    /// Machines run on real OS threads (`std::thread::scope`), capped at
    /// [`std::thread::available_parallelism`]: with ℓ machines on a c-core
    /// host, ⌈ℓ/c⌉ machines share each thread. Accounting is identical —
    /// each machine is timed on its own — but wall-clock time actually
    /// shrinks on multi-core hosts.
    Threads,
    /// Machines run as tasks on the global rayon pool — the right choice
    /// when phases are many and short (intra-machine Monte-Carlo work),
    /// since the pool's threads are reused across phases instead of being
    /// respawned.
    Rayon,
}

/// A master/worker cluster of `ℓ` simulated machines, each owning a worker
/// state `W` (its shard of the data).
///
/// This is the in-process implementation of [`ClusterBackend`]: phases
/// really execute (sequentially, on bounded OS threads, or on the rayon
/// pool per [`ExecMode`]), per-machine times feed a virtual clock
/// (`max` over machines per phase), and message bytes are priced through
/// the [`NetworkModel`]. All metrics accumulate in a phase-labeled
/// [`PhaseTimeline`].
pub struct SimCluster<W> {
    workers: Vec<W>,
    network: NetworkModel,
    mode: ExecMode,
    timeline: PhaseTimeline,
    /// Per-machine relative speed (1.0 = nominal). A machine with speed
    /// `s` is charged `elapsed / s` of virtual time — the knob for
    /// modeling heterogeneous clusters and stragglers, which the paper's
    /// balance analysis (Corollary 1) assumes away.
    speeds: Vec<f64>,
    /// Optional chaos layer: when set, every op round consults the
    /// injector (see [`crate::faults`]) — injected delay is charged to the
    /// round's phase in **virtual time** and killed machines stop
    /// answering (their ops surface as link errors instead of executing).
    faults: Option<FaultInjector>,
}

impl<W: Send> SimCluster<W> {
    /// Creates a cluster whose machine `i` owns `workers[i]`.
    ///
    /// # Panics
    /// Panics if `workers` is empty.
    pub fn new(workers: Vec<W>, network: NetworkModel, mode: ExecMode) -> Self {
        let speeds = vec![1.0; workers.len()];
        Self::with_speeds(workers, network, mode, speeds)
    }

    /// Like [`Self::new`] but with per-machine relative speeds: machine
    /// `i`'s measured work time is divided by `speeds[i]` when charged to
    /// the virtual clock (0.5 = half-speed straggler).
    ///
    /// # Panics
    /// Panics if `workers` is empty, lengths differ, or a speed is not
    /// strictly positive.
    pub fn with_speeds(
        workers: Vec<W>,
        network: NetworkModel,
        mode: ExecMode,
        speeds: Vec<f64>,
    ) -> Self {
        assert!(!workers.is_empty(), "cluster needs at least one machine");
        assert_eq!(workers.len(), speeds.len(), "one speed per machine");
        assert!(
            speeds.iter().all(|&s| s > 0.0 && s.is_finite()),
            "speeds must be positive"
        );
        SimCluster {
            workers,
            network,
            mode,
            timeline: PhaseTimeline::new(),
            speeds,
            faults: None,
        }
    }

    /// Arms the chaos layer: subsequent op rounds replay `injector`'s
    /// schedule in virtual time (see [`crate::faults`]).
    pub fn with_faults(mut self, injector: FaultInjector) -> Self {
        self.faults = Some(injector);
        self
    }

    /// Replaces (or clears) the armed fault injector.
    pub fn set_faults(&mut self, injector: Option<FaultInjector>) {
        self.faults = injector;
    }

    /// The armed injector, if any — its event log is the observable for
    /// determinism tests.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// Runs one chaos round against the armed injector, if any: decides
    /// every machine's link, charges the worst injected delay to `label`
    /// as communication time (the master waits for the slowest link in a
    /// star topology), advances the injector's round counter, and returns
    /// per-machine kill flags (`true` = this machine's link is dead and
    /// its op must not execute). `None` when no injector is armed.
    pub(crate) fn inject_round(&mut self, label: &'static str) -> Option<Vec<bool>> {
        let l = self.workers.len();
        let inj = self.faults.as_mut()?;
        let mut killed = vec![false; l];
        let mut worst = Duration::ZERO;
        for (i, flag) in killed.iter_mut().enumerate() {
            match inj.decide(i) {
                LinkDecision::Healthy { delay } => worst = worst.max(delay),
                LinkDecision::Killed => *flag = true,
            }
        }
        inj.next_round();
        if worst > Duration::ZERO {
            self.record(
                label,
                ClusterMetrics {
                    comm_time: worst,
                    ..Default::default()
                },
            );
        }
        Some(killed)
    }

    /// Resets accumulated metrics to an empty timeline (worker state is
    /// untouched).
    pub fn reset_metrics(&mut self) {
        self.timeline = PhaseTimeline::new();
    }

    /// Consumes the cluster, returning the worker states.
    pub fn into_workers(self) -> Vec<W> {
        self.workers
    }

    /// Executes one parallel phase in the configured [`ExecMode`],
    /// returning per-machine results and raw (unscaled) per-machine times.
    fn execute<R, F>(&mut self, f: F) -> (Vec<R>, Vec<Duration>)
    where
        R: Send,
        F: Fn(usize, &mut W) -> R + Sync,
    {
        match self.mode {
            ExecMode::Sequential => {
                let mut results = Vec::with_capacity(self.workers.len());
                let mut times = Vec::with_capacity(self.workers.len());
                for (i, w) in self.workers.iter_mut().enumerate() {
                    let start = Instant::now();
                    results.push(f(i, w));
                    times.push(start.elapsed());
                }
                (results, times)
            }
            ExecMode::Threads => {
                let f = &f;
                let l = self.workers.len();
                let cores = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                // Bound OS threads at the host's parallelism: chunk the ℓ
                // machines into ≤ cores contiguous runs, one thread each.
                let per = l.div_ceil(cores).max(1);
                let mut out: Vec<Option<(R, Duration)>> =
                    self.workers.iter().map(|_| None).collect();
                std::thread::scope(|scope| {
                    for (chunk_idx, (ws, slots)) in self
                        .workers
                        .chunks_mut(per)
                        .zip(out.chunks_mut(per))
                        .enumerate()
                    {
                        let base = chunk_idx * per;
                        scope.spawn(move || {
                            for (j, (w, slot)) in
                                ws.iter_mut().zip(slots.iter_mut()).enumerate()
                            {
                                let start = Instant::now();
                                let r = f(base + j, w);
                                *slot = Some((r, start.elapsed()));
                            }
                        });
                    }
                });
                let mut results = Vec::with_capacity(out.len());
                let mut times = Vec::with_capacity(out.len());
                for item in out {
                    let (r, t) = item.expect("worker thread completed");
                    results.push(r);
                    times.push(t);
                }
                (results, times)
            }
            ExecMode::Rayon => {
                use rayon::prelude::*;
                let pairs: Vec<(R, Duration)> = self
                    .workers
                    .par_iter_mut()
                    .enumerate()
                    .map(|(i, w)| {
                        let start = Instant::now();
                        let r = f(i, w);
                        (r, start.elapsed())
                    })
                    .collect();
                pairs.into_iter().unzip()
            }
        }
    }
}

impl<W: Send> ClusterBackend for SimCluster<W> {
    type Worker = W;

    fn num_machines(&self) -> usize {
        self.workers.len()
    }

    fn network(&self) -> NetworkModel {
        self.network
    }

    fn workers(&self) -> &[W] {
        &self.workers
    }

    fn timeline(&self) -> &PhaseTimeline {
        &self.timeline
    }

    fn record(&mut self, label: &'static str, delta: ClusterMetrics) {
        self.timeline.record(label, delta);
    }

    fn par_step<R, F>(&mut self, label: &'static str, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut W) -> R + Sync,
    {
        let (results, times) = self.execute(f);
        // Scale each machine's measured time by its relative speed.
        let scaled: Vec<Duration> = times
            .iter()
            .zip(&self.speeds)
            .map(|(t, &s)| t.div_f64(s))
            .collect();
        let max = scaled.iter().copied().max().unwrap_or(Duration::ZERO);
        let sum: Duration = scaled.iter().sum();
        self.record(
            label,
            ClusterMetrics {
                worker_compute: max,
                worker_busy: sum,
                phases: 1,
                ..Default::default()
            },
        );
        results
    }

    fn master<R, F>(&mut self, label: &'static str, f: F) -> R
    where
        F: FnOnce() -> R,
    {
        let start = Instant::now();
        let r = f();
        self.record(
            label,
            ClusterMetrics {
                master_compute: start.elapsed(),
                ..Default::default()
            },
        );
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::phase;

    const STEP: &str = "step";

    fn cluster(l: usize) -> SimCluster<u64> {
        SimCluster::new(
            (0..l as u64).collect(),
            NetworkModel::zero(),
            ExecMode::Sequential,
        )
    }

    #[test]
    fn par_step_runs_all_machines_in_order() {
        let mut c = cluster(4);
        let ids = c.par_step(STEP, |i, w| {
            *w += 10;
            (i, *w)
        });
        assert_eq!(ids, vec![(0, 10), (1, 11), (2, 12), (3, 13)]);
        assert_eq!(c.metrics().phases, 1);
        assert_eq!(c.timeline().get(STEP).phases, 1);
        assert_eq!(c.workers(), &[10, 11, 12, 13]);
    }

    #[test]
    fn all_modes_match_sequential_results() {
        let mut seq = cluster(4);
        let expected = seq.par_step(STEP, |i, w| *w * 2 + i as u64);
        for mode in [ExecMode::Threads, ExecMode::Rayon] {
            let mut c = SimCluster::new((0..4u64).collect(), NetworkModel::zero(), mode);
            let got = c.par_step(STEP, |i, w| *w * 2 + i as u64);
            assert_eq!(got, expected, "{mode:?}");
            assert_eq!(c.metrics().phases, 1, "{mode:?}");
        }
    }

    #[test]
    fn threads_mode_bounded_handles_more_machines_than_cores() {
        // 64 machines must complete correctly regardless of core count;
        // the bounded implementation shares threads when ℓ > cores.
        let mut c = SimCluster::new(
            (0..64u64).collect(),
            NetworkModel::zero(),
            ExecMode::Threads,
        );
        let got = c.par_step(STEP, |i, w| {
            *w += 1;
            i as u64 + *w
        });
        let expected: Vec<u64> = (0..64u64).map(|i| 2 * i + 1).collect();
        assert_eq!(got, expected);
        assert_eq!(c.workers().len(), 64);
        assert_eq!(c.workers()[63], 64);
    }

    #[test]
    fn gather_accounts_traffic() {
        let mut c = SimCluster::new(
            vec![1u64; 8],
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        );
        c.gather(phase::COUNT_UPLOAD, |_, w| *w, |_| 100);
        let m = c.metrics();
        assert_eq!(m.messages, 8);
        assert_eq!(m.bytes_to_master, 800);
        // Tree collective over 8 machines: ⌈log₂ 9⌉ = 4 latency hops.
        assert!(m.comm_time >= Duration::from_micros(200));
        // The phase's compute and comm live under the same label.
        let labeled = c.timeline().get(phase::COUNT_UPLOAD);
        assert_eq!(labeled.messages, 8);
        assert_eq!(labeled.phases, 1);
    }

    #[test]
    fn broadcast_accounts_traffic() {
        let mut c = SimCluster::new(
            vec![0u64; 5],
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        );
        c.broadcast(phase::SEED_BROADCAST, 40);
        let m = c.metrics();
        assert_eq!(m.bytes_from_master, 200);
        assert_eq!(m.messages, 5);
    }

    #[test]
    fn master_time_accumulates() {
        let mut c = cluster(1);
        let v = c.master(phase::SEED_SELECT, || {
            std::hint::black_box((0..10_000u64).sum::<u64>())
        });
        assert_eq!(v, 49_995_000);
        assert!(c.metrics().master_compute > Duration::ZERO);
        assert!(c.timeline().get(phase::SEED_SELECT).master_compute > Duration::ZERO);
    }

    #[test]
    fn busy_at_least_compute() {
        let mut c = cluster(3);
        c.par_step(STEP, |_, w| {
            std::hint::black_box((0..50_000).fold(*w, |a, b| a ^ b))
        });
        let m = c.metrics();
        assert!(m.worker_busy >= m.worker_compute);
    }

    #[test]
    fn reset_clears_metrics() {
        let mut c = cluster(2);
        c.par_step(STEP, |_, _| ());
        c.reset_metrics();
        assert_eq!(c.metrics(), ClusterMetrics::default());
        assert!(c.timeline().is_empty());
    }

    #[test]
    fn labels_accumulate_separately() {
        let mut c = cluster(2);
        c.par_step(phase::RR_SAMPLING, |_, _| ());
        c.par_step(phase::RR_SAMPLING, |_, _| ());
        c.gather(phase::DELTA_UPLOAD, |_, w| *w, |_| 12);
        assert_eq!(c.timeline().get(phase::RR_SAMPLING).phases, 2);
        assert_eq!(c.timeline().get(phase::DELTA_UPLOAD).phases, 1);
        assert_eq!(c.timeline().get(phase::DELTA_UPLOAD).bytes_to_master, 24);
        assert_eq!(c.metrics().phases, 3);
        let labels: Vec<_> = c.timeline().labels().collect();
        assert_eq!(labels, vec![phase::RR_SAMPLING, phase::DELTA_UPLOAD]);
    }

    #[test]
    fn straggler_dominates_phase_time() {
        // Two machines doing identical work; machine 1 runs at 1/10 speed.
        let work = |_: usize, w: &mut u64| {
            *w = std::hint::black_box((0..200_000u64).fold(0, |a, b| a ^ b));
        };
        let mut even = SimCluster::new(vec![0u64; 2], NetworkModel::zero(), ExecMode::Sequential);
        even.par_step(STEP, work);
        let mut skew = SimCluster::with_speeds(
            vec![0u64; 2],
            NetworkModel::zero(),
            ExecMode::Sequential,
            vec![1.0, 0.1],
        );
        skew.par_step(STEP, work);
        // The straggler cluster's phase takes ~10x the even cluster's.
        let ratio = skew.metrics().worker_compute.as_secs_f64()
            / even.metrics().worker_compute.as_secs_f64();
        assert!(ratio > 3.0, "straggler should dominate (ratio {ratio})");
    }

    #[test]
    #[should_panic]
    fn rejects_speed_mismatch() {
        SimCluster::with_speeds(
            vec![0u64; 2],
            NetworkModel::zero(),
            ExecMode::Sequential,
            vec![1.0],
        );
    }

    #[test]
    #[should_panic]
    fn rejects_zero_speed() {
        SimCluster::with_speeds(
            vec![0u64; 1],
            NetworkModel::zero(),
            ExecMode::Sequential,
            vec![0.0],
        );
    }

    #[test]
    #[should_panic]
    fn rejects_empty_cluster() {
        SimCluster::<u64>::new(vec![], NetworkModel::zero(), ExecMode::Sequential);
    }
}
