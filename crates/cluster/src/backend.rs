//! The pluggable cluster execution contract.
//!
//! Every distributed algorithm in this workspace (NewGreeDi, GreeDi,
//! DiIMM, distributed OPIM-C/SSA, the budgeted/targeted extensions) is
//! written against [`ClusterBackend`], not against a concrete runtime. The
//! trait captures the paper's master/worker programming model:
//!
//! * [`ClusterBackend::par_step`] — run a closure on every machine "in
//!   parallel" and charge the phase `max_i(elapsed_i)` of compute time;
//! * [`ClusterBackend::gather`] — a `par_step` whose per-machine results
//!   are uploaded to the master, charging one tree collective;
//! * [`ClusterBackend::broadcast`] — a master→workers transfer;
//! * [`ClusterBackend::master`] — timed serial master-side work;
//!
//! plus per-machine deterministic RNG streams (derived outside the trait
//! via [`crate::stream_seed`] — workers own their streams, so determinism
//! depends only on the seed/machine-id pair, never on how a backend
//! schedules the work).
//!
//! Every phase call takes a `&'static str` label (see [`phase`]); metrics
//! accumulate per label in a [`PhaseTimeline`], which experiment harnesses
//! read directly for stacked time breakdowns (paper Figs. 5/8).
//!
//! [`crate::SimCluster`] implements the trait with three execution
//! strategies ([`crate::ExecMode`]): deterministic sequential virtual-time
//! simulation, bounded OS threads, and a rayon pool. A future TCP/process
//! backend drops in at this seam with zero algorithm changes.

use crate::metrics::{ClusterMetrics, PhaseTimeline};
use crate::network::NetworkModel;

/// Canonical phase labels used by the distributed algorithms.
///
/// Labels are plain `&'static str`s, so algorithms may invent their own;
/// these constants keep the vocabulary consistent across crates and let
/// the bench harness pull out e.g. the RR-sampling bar of a stacked
/// breakdown without string drift.
pub mod phase {
    /// Distributed RR-set generation (DiIMM/SUBSIM/OPIM/SSA sampling).
    pub const RR_SAMPLING: &str = "rr-sampling";
    /// Initial upload of per-shard coverage counts to the master.
    pub const COVERAGE_UPLOAD: &str = "coverage-upload";
    /// Master-side greedy seed selection (bucket selector work).
    pub const SEED_SELECT: &str = "seed-select";
    /// Broadcast of a chosen seed (or seed set) to the workers.
    pub const SEED_BROADCAST: &str = "seed-broadcast";
    /// Sparse ⟨set, Δ⟩ coverage-delta upload after applying a seed.
    pub const DELTA_UPLOAD: &str = "delta-upload";
    /// Final per-shard covered-count upload.
    pub const COUNT_UPLOAD: &str = "count-upload";
    /// Validation-set coverage upload (OPIM-C / SSA bound checks).
    pub const VALIDATION: &str = "validation";
    /// Core-set candidate upload (GreeDi / RandGreeDi).
    pub const CORESET_UPLOAD: &str = "coreset-upload";
    /// Master-side core-set merge greedy (GreeDi / RandGreeDi).
    pub const CORESET_MERGE: &str = "coreset-merge";
    /// One-time worker setup (graph load, sampler init, shard build) and
    /// stats collection. Charges no modeled traffic: the paper's
    /// accounting starts after data placement.
    pub const SETUP: &str = "setup";
    /// Cluster rendezvous: bind → full membership (join-mode clusters).
    /// Like [`SETUP`], charges no modeled traffic — it measures the real
    /// wall-clock cost of assembling the cluster before the algorithms
    /// start.
    pub const RENDEZVOUS: &str = "rendezvous";
    /// Liveness probes on idle links (join-mode clusters). Real traffic
    /// only — heartbeats are not part of the paper's modeled algorithm
    /// cost.
    pub const HEARTBEAT: &str = "heartbeat";
    /// Persisting RR-sketch snapshot shards to disk (`dim sample` /
    /// `WorkerOp::PersistShard`). Like [`SETUP`], charges no modeled
    /// traffic — the shard never crosses the wire, each worker writes its
    /// own file.
    pub const STORE_SAVE: &str = "store_save";
    /// Loading RR-sketch snapshot shards from disk (`dim im --load-rr`,
    /// `dim serve`). Master-side wall clock; no modeled traffic.
    pub const STORE_LOAD: &str = "store_load";
    /// Applying a streamed edge batch and incrementally repairing the
    /// resident RR shards (`dim stream` / `WorkerOp::ApplyDelta`). The
    /// encoded batch is broadcast to every machine; repaired sets stay
    /// local (workers persist their own delta shards).
    pub const STREAM_APPLY: &str = "stream-apply";
}

/// A master/worker cluster of `ℓ` machines, each owning a worker state
/// `Self::Worker` (its shard of the data).
///
/// Implementations decide *how* phases execute (sequentially, on OS
/// threads, on a rayon pool, over TCP, …) and *how* virtual time is
/// accounted; algorithms only see the phase contract. All bookkeeping
/// funnels through [`ClusterBackend::record`], so an implementation gets a
/// consistent [`PhaseTimeline`] for free by storing one and merging deltas
/// into it.
pub trait ClusterBackend {
    /// Per-machine worker state (a data shard plus any sampler/RNG state).
    type Worker: Send;

    /// Number of machines `ℓ`.
    fn num_machines(&self) -> usize;

    /// The network model pricing this cluster's messages.
    fn network(&self) -> NetworkModel;

    /// Immutable view of the worker states, in machine order.
    fn workers(&self) -> &[Self::Worker];

    /// Phase-labeled metrics accumulated so far.
    fn timeline(&self) -> &PhaseTimeline;

    /// Merges a metrics delta into the phase labeled `label`.
    fn record(&mut self, label: &'static str, delta: ClusterMetrics);

    /// Runs `f(machine_id, worker)` on every machine "in parallel" and
    /// returns the per-machine results in machine order. Charges the phase
    /// `max_i(elapsed_i)` of worker compute time under `label`.
    fn par_step<R, F>(&mut self, label: &'static str, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut Self::Worker) -> R + Sync;

    /// Runs serial master-side work, charging its elapsed time under
    /// `label`.
    fn master<R, F>(&mut self, label: &'static str, f: F) -> R
    where
        F: FnOnce() -> R;

    /// Flat aggregate of the whole run — [`PhaseTimeline::total`].
    fn metrics(&self) -> ClusterMetrics {
        self.timeline().total()
    }

    /// [`ClusterBackend::par_step`] followed by an upload of each
    /// machine's result to the master. `payload_bytes(result)` reports
    /// each message's wire size; both compute and communication accrue
    /// under `label`.
    fn gather<R, F, S>(&mut self, label: &'static str, f: F, payload_bytes: S) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut Self::Worker) -> R + Sync,
        S: Fn(&R) -> u64,
    {
        let results = self.par_step(label, f);
        let bytes: u64 = results.iter().map(&payload_bytes).sum();
        self.charge_upload(label, results.len() as u64, bytes);
        results
    }

    /// Charges a gather of `bytes` from `messages` workers to the master,
    /// priced as one tree collective (MPI_Gatherv).
    fn charge_upload(&mut self, label: &'static str, messages: u64, bytes: u64) {
        let comm_time = self.network().collective_time(messages, bytes);
        self.record(
            label,
            ClusterMetrics {
                comm_time,
                messages,
                bytes_to_master: bytes,
                ..Default::default()
            },
        );
    }

    /// Charges a broadcast of `bytes_per_machine` from the master to every
    /// machine, priced as one tree collective (MPI_Bcast; each tree level
    /// re-sends the payload, so the master link sees `ℓ` copies of it).
    fn broadcast(&mut self, label: &'static str, bytes_per_machine: u64) {
        let l = self.num_machines() as u64;
        let total = bytes_per_machine * l;
        let comm_time = self.network().collective_time(l, total);
        self.record(
            label,
            ClusterMetrics {
                comm_time,
                messages: l,
                bytes_from_master: total,
                ..Default::default()
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{ExecMode, SimCluster};
    use std::time::Duration;

    // Exercise the provided methods through a generic function to prove
    // algorithms can be written against the trait alone.
    fn shard_sum<B: ClusterBackend<Worker = Vec<u64>>>(cluster: &mut B) -> u64 {
        let partials = cluster.gather(
            phase::COVERAGE_UPLOAD,
            |_, shard| shard.iter().sum::<u64>(),
            |_| crate::wire::u64_wire_size(),
        );
        cluster.master(phase::SEED_SELECT, || partials.iter().sum())
    }

    #[test]
    fn generic_algorithm_runs_on_sim_backend() {
        let shards = vec![vec![1u64, 2], vec![3], vec![4, 5, 6], vec![]];
        let mut cluster =
            SimCluster::new(shards, NetworkModel::cluster_1gbps(), ExecMode::Sequential);
        assert_eq!(shard_sum(&mut cluster), 21);
        let tl = cluster.timeline();
        assert_eq!(tl.get(phase::COVERAGE_UPLOAD).bytes_to_master, 32);
        assert_eq!(tl.get(phase::COVERAGE_UPLOAD).messages, 4);
        assert!(tl.get(phase::SEED_SELECT).master_compute >= Duration::ZERO);
        assert_eq!(cluster.metrics(), tl.total());
    }

    #[test]
    fn broadcast_records_under_its_label() {
        let mut cluster = SimCluster::new(
            vec![0u64; 5],
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        );
        cluster.broadcast(phase::SEED_BROADCAST, 40);
        let m = cluster.timeline().get(phase::SEED_BROADCAST);
        assert_eq!(m.bytes_from_master, 200);
        assert_eq!(m.messages, 5);
        assert!(m.comm_time > Duration::ZERO);
        // Nothing leaked into other labels.
        assert_eq!(cluster.timeline().len(), 1);
    }
}
