//! Accumulated timing and traffic metrics of a simulated cluster run.

use std::time::Duration;

/// Metrics accumulated by a [`crate::SimCluster`] across phases.
///
/// All durations are *virtual cluster time*: parallel worker phases
/// contribute their per-phase maximum, master sections and communication
/// contribute serially. `worker_busy` additionally tracks the *sum* of
/// worker time, so `worker_busy / worker_compute / ℓ` is the parallel
/// efficiency of the run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ClusterMetrics {
    /// Σ over phases of max-over-workers phase time.
    pub worker_compute: Duration,
    /// Σ over phases of Σ-over-workers phase time (total busy time).
    pub worker_busy: Duration,
    /// Master-side (serial) compute time.
    pub master_compute: Duration,
    /// Modeled network transfer time (priced by the [`crate::NetworkModel`]).
    pub comm_time: Duration,
    /// Total messages exchanged (both directions).
    pub messages: u64,
    /// Bytes uploaded from workers to the master.
    pub bytes_to_master: u64,
    /// Bytes broadcast/sent from the master to workers.
    pub bytes_from_master: u64,
    /// Number of parallel phases executed.
    pub phases: u64,
}

impl ClusterMetrics {
    /// Total virtual elapsed time of the run:
    /// parallel compute + master compute + communication.
    pub fn elapsed(&self) -> Duration {
        self.worker_compute + self.master_compute + self.comm_time
    }

    /// Compute-only portion (excludes communication).
    pub fn compute(&self) -> Duration {
        self.worker_compute + self.master_compute
    }

    /// Total bytes moved in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_to_master + self.bytes_from_master
    }

    /// Metric delta since `earlier` (for attributing phases: snapshot before,
    /// subtract after).
    pub fn since(&self, earlier: &ClusterMetrics) -> ClusterMetrics {
        ClusterMetrics {
            worker_compute: self.worker_compute - earlier.worker_compute,
            worker_busy: self.worker_busy - earlier.worker_busy,
            master_compute: self.master_compute - earlier.master_compute,
            comm_time: self.comm_time - earlier.comm_time,
            messages: self.messages - earlier.messages,
            bytes_to_master: self.bytes_to_master - earlier.bytes_to_master,
            bytes_from_master: self.bytes_from_master - earlier.bytes_from_master,
            phases: self.phases - earlier.phases,
        }
    }

    /// Merges another metrics block into this one (used when a run combines
    /// several clusters, e.g. ablations).
    pub fn merge(&mut self, other: &ClusterMetrics) {
        self.worker_compute += other.worker_compute;
        self.worker_busy += other.worker_busy;
        self.master_compute += other.master_compute;
        self.comm_time += other.comm_time;
        self.messages += other.messages;
        self.bytes_to_master += other.bytes_to_master;
        self.bytes_from_master += other.bytes_from_master;
        self.phases += other.phases;
    }
}

impl std::fmt::Display for ClusterMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "compute {:.3}s (master {:.3}s) comm {:.3}s ({} msgs, {} B up / {} B down)",
            self.worker_compute.as_secs_f64(),
            self.master_compute.as_secs_f64(),
            self.comm_time.as_secs_f64(),
            self.messages,
            self.bytes_to_master,
            self.bytes_from_master,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_sums_components() {
        let m = ClusterMetrics {
            worker_compute: Duration::from_secs(2),
            master_compute: Duration::from_secs(1),
            comm_time: Duration::from_millis(500),
            ..Default::default()
        };
        assert_eq!(m.elapsed(), Duration::from_millis(3500));
        assert_eq!(m.compute(), Duration::from_secs(3));
    }

    #[test]
    fn since_subtracts() {
        let a = ClusterMetrics {
            messages: 10,
            bytes_to_master: 100,
            phases: 2,
            ..Default::default()
        };
        let b = ClusterMetrics {
            messages: 25,
            bytes_to_master: 180,
            phases: 5,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.messages, 15);
        assert_eq!(d.bytes_to_master, 80);
        assert_eq!(d.phases, 3);
    }

    #[test]
    fn merge_adds() {
        let mut a = ClusterMetrics {
            messages: 1,
            ..Default::default()
        };
        a.merge(&ClusterMetrics {
            messages: 2,
            bytes_from_master: 7,
            ..Default::default()
        });
        assert_eq!(a.messages, 3);
        assert_eq!(a.bytes_from_master, 7);
        assert_eq!(a.total_bytes(), 7);
    }
}
