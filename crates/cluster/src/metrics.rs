//! Accumulated timing and traffic metrics of a simulated cluster run.

use std::time::Duration;

/// Metrics accumulated by a [`crate::SimCluster`] across phases.
///
/// All durations are *virtual cluster time*: parallel worker phases
/// contribute their per-phase maximum, master sections and communication
/// contribute serially. `worker_busy` additionally tracks the *sum* of
/// worker time, so `worker_busy / worker_compute / ℓ` is the parallel
/// efficiency of the run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ClusterMetrics {
    /// Σ over phases of max-over-workers phase time.
    pub worker_compute: Duration,
    /// Σ over phases of Σ-over-workers phase time (total busy time).
    pub worker_busy: Duration,
    /// Master-side (serial) compute time.
    pub master_compute: Duration,
    /// Modeled network transfer time (priced by the [`crate::NetworkModel`]).
    pub comm_time: Duration,
    /// Measured wall-clock transfer time, where the backend actually moves
    /// bytes (the process backend's TCP links). Zero for simulated backends,
    /// which only model communication.
    pub measured_comm: Duration,
    /// Total messages exchanged (both directions).
    pub messages: u64,
    /// Bytes uploaded from workers to the master.
    pub bytes_to_master: u64,
    /// Bytes broadcast/sent from the master to workers.
    pub bytes_from_master: u64,
    /// Number of parallel phases executed.
    pub phases: u64,
}

impl ClusterMetrics {
    /// Total virtual elapsed time of the run:
    /// parallel compute + master compute + communication.
    pub fn elapsed(&self) -> Duration {
        self.worker_compute + self.master_compute + self.comm_time
    }

    /// Compute-only portion (excludes communication).
    pub fn compute(&self) -> Duration {
        self.worker_compute + self.master_compute
    }

    /// Total bytes moved in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_to_master + self.bytes_from_master
    }

    /// Metric delta since `earlier` (for attributing phases: snapshot before,
    /// subtract after).
    pub fn since(&self, earlier: &ClusterMetrics) -> ClusterMetrics {
        ClusterMetrics {
            worker_compute: self.worker_compute - earlier.worker_compute,
            worker_busy: self.worker_busy - earlier.worker_busy,
            master_compute: self.master_compute - earlier.master_compute,
            comm_time: self.comm_time - earlier.comm_time,
            measured_comm: self.measured_comm - earlier.measured_comm,
            messages: self.messages - earlier.messages,
            bytes_to_master: self.bytes_to_master - earlier.bytes_to_master,
            bytes_from_master: self.bytes_from_master - earlier.bytes_from_master,
            phases: self.phases - earlier.phases,
        }
    }

    /// Merges another metrics block into this one (used when a run combines
    /// several clusters, e.g. ablations).
    pub fn merge(&mut self, other: &ClusterMetrics) {
        self.worker_compute += other.worker_compute;
        self.worker_busy += other.worker_busy;
        self.master_compute += other.master_compute;
        self.comm_time += other.comm_time;
        self.measured_comm += other.measured_comm;
        self.messages += other.messages;
        self.bytes_to_master += other.bytes_to_master;
        self.bytes_from_master += other.bytes_from_master;
        self.phases += other.phases;
    }
}

/// Phase-labeled metrics timeline of a cluster run.
///
/// Every phase executed through a [`crate::ClusterBackend`] carries a static
/// label (`"rr-sampling"`, `"coverage-upload"`, `"seed-select"`, …; see
/// [`crate::phase`]). The timeline accumulates one [`ClusterMetrics`] block
/// per label, in first-use order, so experiments can read stacked
/// breakdowns directly instead of snapshotting aggregates and subtracting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseTimeline {
    entries: Vec<(&'static str, ClusterMetrics)>,
}

impl PhaseTimeline {
    /// An empty timeline.
    pub fn new() -> Self {
        PhaseTimeline::default()
    }

    /// Merges `delta` into the entry labeled `label`, appending a new entry
    /// if the label has not been seen yet.
    pub fn record(&mut self, label: &'static str, delta: ClusterMetrics) {
        match self.entries.iter_mut().find(|(l, _)| *l == label) {
            Some((_, m)) => m.merge(&delta),
            None => self.entries.push((label, delta)),
        }
    }

    /// Accumulated metrics for `label` (zero if the label never ran).
    pub fn get(&self, label: &str) -> ClusterMetrics {
        self.entries
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, m)| *m)
            .unwrap_or_default()
    }

    /// Labels in first-use order.
    pub fn labels(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.iter().map(|(l, _)| *l)
    }

    /// `(label, metrics)` pairs in first-use order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &ClusterMetrics)> {
        self.entries.iter().map(|(l, m)| (*l, m))
    }

    /// Number of distinct labels recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of all per-label metrics — the flat aggregate view.
    pub fn total(&self) -> ClusterMetrics {
        let mut total = ClusterMetrics::default();
        for (_, m) in &self.entries {
            total.merge(m);
        }
        total
    }

    /// Merges another timeline into this one, label by label.
    pub fn merge(&mut self, other: &PhaseTimeline) {
        for (label, m) in other.iter() {
            self.record(label, *m);
        }
    }
}

impl std::fmt::Display for PhaseTimeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, (label, m)) in self.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{label:>18}: {m}")?;
        }
        Ok(())
    }
}

impl std::fmt::Display for ClusterMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "compute {:.3}s (master {:.3}s) comm {:.3}s ({} msgs, {} B up / {} B down)",
            self.worker_compute.as_secs_f64(),
            self.master_compute.as_secs_f64(),
            self.comm_time.as_secs_f64(),
            self.messages,
            self.bytes_to_master,
            self.bytes_from_master,
        )?;
        if !self.measured_comm.is_zero() {
            write!(f, " measured {:.6}s", self.measured_comm.as_secs_f64())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_sums_components() {
        let m = ClusterMetrics {
            worker_compute: Duration::from_secs(2),
            master_compute: Duration::from_secs(1),
            comm_time: Duration::from_millis(500),
            ..Default::default()
        };
        assert_eq!(m.elapsed(), Duration::from_millis(3500));
        assert_eq!(m.compute(), Duration::from_secs(3));
    }

    #[test]
    fn since_subtracts() {
        let a = ClusterMetrics {
            messages: 10,
            bytes_to_master: 100,
            phases: 2,
            ..Default::default()
        };
        let b = ClusterMetrics {
            messages: 25,
            bytes_to_master: 180,
            phases: 5,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.messages, 15);
        assert_eq!(d.bytes_to_master, 80);
        assert_eq!(d.phases, 3);
    }

    #[test]
    fn merge_adds() {
        let mut a = ClusterMetrics {
            messages: 1,
            ..Default::default()
        };
        a.merge(&ClusterMetrics {
            messages: 2,
            bytes_from_master: 7,
            ..Default::default()
        });
        assert_eq!(a.messages, 3);
        assert_eq!(a.bytes_from_master, 7);
        assert_eq!(a.total_bytes(), 7);
    }

    #[test]
    fn measured_comm_tracked_through_since_and_merge() {
        let mut a = ClusterMetrics {
            measured_comm: Duration::from_millis(3),
            ..Default::default()
        };
        a.merge(&ClusterMetrics {
            measured_comm: Duration::from_millis(4),
            ..Default::default()
        });
        assert_eq!(a.measured_comm, Duration::from_millis(7));
        let earlier = ClusterMetrics {
            measured_comm: Duration::from_millis(2),
            ..Default::default()
        };
        assert_eq!(a.since(&earlier).measured_comm, Duration::from_millis(5));
        assert!(a.to_string().contains("measured"));
        assert!(!ClusterMetrics::default().to_string().contains("measured"));
    }

    #[test]
    fn timeline_accumulates_per_label() {
        let mut tl = PhaseTimeline::new();
        tl.record(
            "rr-sampling",
            ClusterMetrics {
                worker_compute: Duration::from_secs(2),
                ..Default::default()
            },
        );
        tl.record(
            "coverage-upload",
            ClusterMetrics {
                messages: 4,
                bytes_to_master: 100,
                ..Default::default()
            },
        );
        tl.record(
            "rr-sampling",
            ClusterMetrics {
                worker_compute: Duration::from_secs(1),
                ..Default::default()
            },
        );
        assert_eq!(tl.len(), 2);
        assert_eq!(
            tl.get("rr-sampling").worker_compute,
            Duration::from_secs(3)
        );
        assert_eq!(tl.get("coverage-upload").messages, 4);
        assert_eq!(tl.get("never-ran"), ClusterMetrics::default());
        // First-use order is preserved.
        let labels: Vec<_> = tl.labels().collect();
        assert_eq!(labels, vec!["rr-sampling", "coverage-upload"]);
    }

    #[test]
    fn timeline_total_is_flat_aggregate() {
        let mut tl = PhaseTimeline::new();
        tl.record(
            "a",
            ClusterMetrics {
                messages: 3,
                bytes_to_master: 10,
                ..Default::default()
            },
        );
        tl.record(
            "b",
            ClusterMetrics {
                messages: 2,
                bytes_from_master: 5,
                ..Default::default()
            },
        );
        let total = tl.total();
        assert_eq!(total.messages, 5);
        assert_eq!(total.total_bytes(), 15);
    }

    #[test]
    fn timeline_merge_combines_label_wise() {
        let mut a = PhaseTimeline::new();
        a.record(
            "x",
            ClusterMetrics {
                messages: 1,
                ..Default::default()
            },
        );
        let mut b = PhaseTimeline::new();
        b.record(
            "x",
            ClusterMetrics {
                messages: 2,
                ..Default::default()
            },
        );
        b.record(
            "y",
            ClusterMetrics {
                phases: 1,
                ..Default::default()
            },
        );
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get("x").messages, 3);
        assert_eq!(a.get("y").phases, 1);
    }
}
