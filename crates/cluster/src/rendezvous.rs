//! Cluster rendezvous & membership for join-mode workers.
//!
//! The spawn path ([`crate::tcp::ProcCluster::spawn`]) launches its own
//! worker processes, so membership is trivial: the master knows exactly
//! who is coming. Real multi-host deployments invert that — operators
//! start `dim-worker --connect <addr> --join` on each host *first*, and
//! the master assembles its cluster from whoever registers. This module
//! provides that inversion:
//!
//! * **Codecs** for the v2 handshake and liveness frames ([`JoinHello`],
//!   [`Welcome`], [`Hello`], [`Heartbeat`], [`Reject`]) — fixed-size,
//!   little-endian, strict (trailing bytes are rejected), carrying a
//!   protocol-version byte and capability flags ([`caps`]) so future
//!   workers can be refused with a typed reason instead of desyncing.
//! * A [`MembershipTable`] — the pure registration state machine. It
//!   assigns machine-id slots, refuses duplicates and out-of-range
//!   requests with typed [`RejectReason`]s (surfaced as
//!   [`WireError`]s of kind `DuplicateId` / `IdOutOfRange`), and frees a
//!   slot again if its owner dies before the session completes assembly.
//! * [`Rendezvous`] — the master side: bind an advertised address
//!   ([`Rendezvous::bind_env`] reads `DIM_MASTER_BIND`), then
//!   [`Rendezvous::accept_session`] registers joiners until the expected
//!   cluster size ℓ is reached (or the join deadline expires), yielding a
//!   [`JoinCluster`]. Rejected joiners are logged and do not abort the
//!   assembly. The bind→full-membership latency is recorded under
//!   [`phase::RENDEZVOUS`] in the cluster's [`PhaseTimeline`].
//! * [`JoinCluster`] — a [`ClusterBackend`] + [`OpCluster`] whose
//!   membership came from registrations. It owns the links but **not**
//!   the worker processes: drop ends the *session* (workers go back to
//!   joining), and [`JoinCluster::heartbeat`] probes idle links,
//!   fail-stopping dead ones with the same typed [`WireError`] an
//!   op-round failure produces.
//! * The worker side: [`connect_and_join`] retries with jittered
//!   exponential backoff ([`Backoff`]) until a configurable deadline, and
//!   [`run_join_worker`] serves one full session; the `dim-worker` binary
//!   loops it, so a restarted (or merely surviving) worker re-registers
//!   for the *next* run against the same master process.
//!
//! # Sessions
//!
//! A session is one cluster lifetime: one `accept_session` call on the
//! master, one served op loop per worker. Session ids are per-master
//! counters starting at 1 (spawn-mode clusters use 0) and ride in every
//! WELCOME and HEARTBEAT, so a worker that lags a session behind cannot
//! be confused for a current member. Machine ids are *per session* — a
//! worker that requested "any slot" may get a different id next session,
//! and its WELCOME tells it which RNG stream to derive.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::backend::{phase, ClusterBackend};
use crate::metrics::{ClusterMetrics, PhaseTimeline};
use crate::network::NetworkModel;
use crate::ops::{put_u32, put_u64, OpCluster, OpExecutor, Reader, WorkerOp, WorkerReply};
use crate::rng::stream_seed;
use crate::tcp::{
    self, frame, handshake_timeout, protocol_err, read_frame, write_frame, ProcCluster,
    SessionEnd, WorkerFault,
};
use crate::wire::WireError;

/// Version byte carried by JOIN and HELLO. Version 1 was the implicit
/// pre-rendezvous handshake (bare HELLO, no version byte); v2 is the
/// JOIN/WELCOME/HELLO exchange this module implements. The master refuses
/// any other version with [`RejectReason::Version`].
pub const PROTOCOL_VERSION: u8 = 2;

/// Capability flags a worker advertises in its JOIN and HELLO.
///
/// All current workers implement the full op set, so every flag is set;
/// the byte exists so a future heterogeneous cluster (e.g. coverage-only
/// replay workers) can be refused or specialized with a typed reason
/// instead of failing mid-algorithm.
pub mod caps {
    /// Serves the coverage-oracle ops (`BuildShard`, `ApplySeed`, …).
    pub const COVERAGE: u8 = 1;
    /// Serves the IM sampling ops (`LoadGraph`, `InitSampler`, `SampleRr`).
    pub const IM: u8 = 1 << 1;
    /// Everything a current `dim-worker` serves.
    pub const ALL: u8 = COVERAGE | IM;
}

/// Wire value of "any free slot" in [`JoinHello::requested`].
const ANY_SLOT: u32 = u32::MAX;

/// First frame of the v2 handshake, worker → master (opcode JOIN).
///
/// `requested` pins a specific machine id (spawned workers request the id
/// they were launched with; operators can pin via `--machine-id`); `None`
/// asks for any free slot. `auth` is the SHA-256 digest of the cluster
/// token (`DIM_CLUSTER_TOKEN`), all-zeros when no token is configured —
/// an auth-requiring master refuses the zero digest like any other
/// mismatch ([`RejectReason::Unauthorized`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinHello {
    /// Protocol version the worker speaks (must be [`PROTOCOL_VERSION`]).
    pub version: u8,
    /// Capability flags ([`caps`]).
    pub caps: u8,
    /// Requested machine id, or `None` for any free slot.
    pub requested: Option<u32>,
    /// SHA-256 digest of the cluster token; all-zeros when tokenless.
    pub auth: crate::auth::Digest,
}

impl JoinHello {
    /// A v2, full-capability join asking for `requested`, presenting the
    /// `DIM_CLUSTER_TOKEN` digest when that variable is set.
    pub fn new(requested: Option<u32>) -> Self {
        JoinHello {
            version: PROTOCOL_VERSION,
            caps: caps::ALL,
            requested,
            auth: crate::auth::cluster_token_digest().unwrap_or([0; crate::auth::DIGEST_LEN]),
        }
    }

    /// [`JoinHello::new`] with an explicit token instead of the env var.
    pub fn with_token(requested: Option<u32>, token: &str) -> Self {
        JoinHello {
            auth: crate::auth::token_digest(token),
            ..JoinHello::new(requested)
        }
    }

    /// Serializes to the 38-byte wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(6 + crate::auth::DIGEST_LEN);
        out.push(self.version);
        out.push(self.caps);
        put_u32(&mut out, self.requested.unwrap_or(ANY_SLOT));
        out.extend_from_slice(&self.auth);
        out
    }

    /// Strict decode; `None` on truncation, trailing bytes, or garbage.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let mut r = Reader::new(buf);
        let version = r.u8()?;
        let caps = r.u8()?;
        let requested = match r.u32()? {
            ANY_SLOT => None,
            id => Some(id),
        };
        let mut auth = [0u8; crate::auth::DIGEST_LEN];
        auth.copy_from_slice(r.take(crate::auth::DIGEST_LEN)?);
        r.finish()?;
        Some(JoinHello {
            version,
            caps,
            requested,
            auth,
        })
    }
}

/// Master's acceptance, master → worker (opcode WELCOME).
///
/// Tells the worker everything it needs to be a member: which session it
/// joined, which machine-id slot it holds, the cluster size ℓ, and the
/// master seed from which it must derive its RNG stream
/// ([`stream_seed`]`(master_seed, machine_id)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Welcome {
    /// Session this membership is valid for.
    pub session: u64,
    /// The slot the worker was assigned.
    pub machine_id: u32,
    /// Expected cluster size ℓ of the session.
    pub cluster_size: u32,
    /// Seed all per-machine streams derive from.
    pub master_seed: u64,
}

impl Welcome {
    /// Serializes to the 24-byte wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        put_u64(&mut out, self.session);
        put_u32(&mut out, self.machine_id);
        put_u32(&mut out, self.cluster_size);
        put_u64(&mut out, self.master_seed);
        out
    }

    /// Strict decode; `None` on truncation, trailing bytes, or garbage.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let mut r = Reader::new(buf);
        let welcome = Welcome {
            session: r.u64()?,
            machine_id: r.u32()?,
            cluster_size: r.u32()?,
            master_seed: r.u64()?,
        };
        r.finish()?;
        Some(welcome)
    }
}

/// Final frame of the handshake, worker → master (opcode HELLO).
///
/// Confirms the worker accepted its WELCOME and advertises the stream
/// seed it actually derived. The master cross-checks it against
/// [`stream_seed`] — the cross-process RNG contract is load-bearing for
/// backend equivalence, so a divergent worker is refused
/// ([`RejectReason::SeedMismatch`]) before it can compute anything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Protocol version (must match the JOIN's).
    pub version: u8,
    /// Capability flags ([`caps`]).
    pub caps: u8,
    /// The machine id the worker believes it holds.
    pub machine_id: u32,
    /// The RNG stream seed the worker derived.
    pub stream_seed: u64,
}

impl Hello {
    /// Serializes to the 14-byte wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(14);
        out.push(self.version);
        out.push(self.caps);
        put_u32(&mut out, self.machine_id);
        put_u64(&mut out, self.stream_seed);
        out
    }

    /// Strict decode; `None` on truncation, trailing bytes, or garbage.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let mut r = Reader::new(buf);
        let hello = Hello {
            version: r.u8()?,
            caps: r.u8()?,
            machine_id: r.u32()?,
            stream_seed: r.u64()?,
        };
        r.finish()?;
        Some(hello)
    }
}

/// Liveness probe, master → worker, echoed back verbatim (opcode
/// HEARTBEAT). The session/seq pair makes every probe distinguishable, so
/// a stale echo (from a previous probe or session) fails the comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Heartbeat {
    /// Session the probe belongs to.
    pub session: u64,
    /// Monotone per-cluster probe counter.
    pub seq: u64,
}

impl Heartbeat {
    /// Serializes to the 16-byte wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        put_u64(&mut out, self.session);
        put_u64(&mut out, self.seq);
        out
    }

    /// Strict decode; `None` on truncation, trailing bytes, or garbage.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let mut r = Reader::new(buf);
        let hb = Heartbeat {
            session: r.u64()?,
            seq: r.u64()?,
        };
        r.finish()?;
        Some(hb)
    }
}

/// Why the master refused a registration (body of a REJECT frame).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The JOIN's protocol version is not [`PROTOCOL_VERSION`].
    Version,
    /// The requested machine id is ≥ the session's cluster size ℓ.
    OutOfRange,
    /// Another live worker already holds the requested machine id.
    Duplicate,
    /// Every slot of the session is taken. Retryable: the *next* session
    /// may have room (or need this worker again).
    SessionFull,
    /// The HELLO's stream seed does not match
    /// [`stream_seed`]`(master_seed, machine_id)`.
    SeedMismatch,
    /// The master requires a cluster token (`DIM_CLUSTER_TOKEN`) and the
    /// JOIN's auth digest did not match it.
    Unauthorized,
}

impl RejectReason {
    fn code(self) -> u8 {
        match self {
            RejectReason::Version => 1,
            RejectReason::OutOfRange => 2,
            RejectReason::Duplicate => 3,
            RejectReason::SessionFull => 4,
            RejectReason::SeedMismatch => 5,
            RejectReason::Unauthorized => 6,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            1 => RejectReason::Version,
            2 => RejectReason::OutOfRange,
            3 => RejectReason::Duplicate,
            4 => RejectReason::SessionFull,
            5 => RejectReason::SeedMismatch,
            6 => RejectReason::Unauthorized,
            _ => return None,
        })
    }

    /// Human-readable reason, used in worker-side error messages.
    pub fn describe(self) -> &'static str {
        match self {
            RejectReason::Version => "unsupported protocol version",
            RejectReason::OutOfRange => "requested machine id out of range",
            RejectReason::Duplicate => "requested machine id already registered",
            RejectReason::SessionFull => "session membership already full",
            RejectReason::SeedMismatch => "stream seed mismatch",
            RejectReason::Unauthorized => "cluster token mismatch (set DIM_CLUSTER_TOKEN)",
        }
    }

    /// Whether a rejected worker should keep retrying. Only
    /// [`RejectReason::SessionFull`] is transient — everything else means
    /// this worker, as configured, can never join this master.
    pub fn retryable(self) -> bool {
        matches!(self, RejectReason::SessionFull)
    }

    /// The typed [`WireError`] this reason surfaces as on the master,
    /// attributed to `requested` where a machine id is meaningful.
    pub fn wire_error(self, requested: Option<u32>) -> WireError {
        let machine = requested.map(|id| id as usize);
        match self {
            RejectReason::Duplicate => {
                WireError::duplicate_id(phase::RENDEZVOUS, machine.unwrap_or(0))
            }
            RejectReason::OutOfRange => {
                WireError::id_out_of_range(phase::RENDEZVOUS, machine.unwrap_or(0))
            }
            RejectReason::SessionFull => WireError::session_full(phase::RENDEZVOUS),
            RejectReason::Version | RejectReason::SeedMismatch | RejectReason::Unauthorized => {
                WireError {
                    phase: phase::RENDEZVOUS,
                    machine,
                    kind: crate::wire::WireErrorKind::Malformed,
                }
            }
        }
    }
}

/// Master's refusal, master → worker (opcode REJECT).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reject {
    /// Why the registration was refused.
    pub reason: RejectReason,
}

impl Reject {
    /// Serializes to the 1-byte wire form.
    pub fn encode(&self) -> Vec<u8> {
        vec![self.reason.code()]
    }

    /// Strict decode; `None` on truncation, trailing bytes, or an unknown
    /// reason code.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let mut r = Reader::new(buf);
        let reason = RejectReason::from_code(r.u8()?)?;
        r.finish()?;
        Some(Reject { reason })
    }
}

/// The registration state machine for one session: which of the ℓ
/// machine-id slots are taken.
///
/// Pure state — no sockets — so registration policy (duplicates,
/// out-of-range ids, fullness, any-slot assignment) is testable without a
/// network. Both the spawn path ([`crate::tcp::ProcCluster::spawn`]) and
/// the join path ([`Rendezvous::accept_session`]) drive their handshakes
/// through one of these.
#[derive(Clone, Debug)]
pub struct MembershipTable {
    taken: Vec<bool>,
}

impl MembershipTable {
    /// An empty table with `expected` slots (the session's ℓ).
    pub fn new(expected: usize) -> Self {
        assert!(expected > 0, "cluster needs at least one machine");
        MembershipTable {
            taken: vec![false; expected],
        }
    }

    /// The session's expected cluster size ℓ.
    pub fn expected(&self) -> usize {
        self.taken.len()
    }

    /// How many slots are currently registered.
    pub fn joined(&self) -> usize {
        self.taken.iter().filter(|&&t| t).count()
    }

    /// Whether every slot is registered (membership complete).
    pub fn is_full(&self) -> bool {
        self.taken.iter().all(|&t| t)
    }

    /// Registers a joiner, returning its assigned machine id.
    ///
    /// A specific request gets exactly that slot or a typed refusal
    /// ([`RejectReason::OutOfRange`], [`RejectReason::Duplicate`]); an
    /// any-slot request gets the lowest free slot or
    /// [`RejectReason::SessionFull`]. A wrong protocol version is refused
    /// before any slot logic runs.
    pub fn register(&mut self, join: &JoinHello) -> Result<u32, RejectReason> {
        if join.version != PROTOCOL_VERSION {
            return Err(RejectReason::Version);
        }
        match join.requested {
            Some(id) => {
                let slot = self
                    .taken
                    .get_mut(id as usize)
                    .ok_or(RejectReason::OutOfRange)?;
                if *slot {
                    return Err(RejectReason::Duplicate);
                }
                *slot = true;
                Ok(id)
            }
            None => {
                let id = self
                    .taken
                    .iter()
                    .position(|&t| !t)
                    .ok_or(RejectReason::SessionFull)?;
                self.taken[id] = true;
                Ok(id as u32)
            }
        }
    }

    /// Frees a slot whose owner failed after WELCOME but before the
    /// session completed assembly, so a replacement can register.
    pub fn release(&mut self, id: u32) {
        if let Some(slot) = self.taken.get_mut(id as usize) {
            *slot = false;
        }
    }
}

/// What went wrong during a handshake.
#[derive(Debug)]
pub enum HandshakeError {
    /// Transport failure (connect, read, write, timeout).
    Io(io::Error),
    /// Protocol violation, typed per [`WireError`] (master side).
    Wire(WireError),
    /// The master sent REJECT (worker side).
    Rejected(RejectReason),
}

impl HandshakeError {
    /// Whether a join-mode worker should back off and retry. Transport
    /// failures are transient (the master may not be up yet, or is busy
    /// running a session); so is [`RejectReason::SessionFull`]. Protocol
    /// violations and the other reject reasons are configuration errors
    /// that retrying cannot fix.
    pub fn retryable(&self) -> bool {
        match self {
            HandshakeError::Io(e) => !matches!(
                e.kind(),
                io::ErrorKind::InvalidData | io::ErrorKind::InvalidInput
            ),
            HandshakeError::Wire(_) => false,
            HandshakeError::Rejected(reason) => reason.retryable(),
        }
    }

    /// Flattens into an [`io::Error`] for callers on `io::Result` paths.
    pub fn into_io(self) -> io::Error {
        match self {
            HandshakeError::Io(e) => e,
            HandshakeError::Wire(e) => io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
            HandshakeError::Rejected(reason) => io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("master rejected registration: {}", reason.describe()),
            ),
        }
    }
}

impl std::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandshakeError::Io(e) => write!(f, "handshake I/O error: {e}"),
            HandshakeError::Wire(e) => write!(f, "handshake protocol error: {e}"),
            HandshakeError::Rejected(reason) => {
                write!(f, "registration rejected: {}", reason.describe())
            }
        }
    }
}

impl std::error::Error for HandshakeError {}

impl From<io::Error> for HandshakeError {
    fn from(e: io::Error) -> Self {
        HandshakeError::Io(e)
    }
}

/// Master side of the v2 handshake on one accepted connection.
///
/// Reads JOIN, registers it in `table`, answers WELCOME (or REJECT with a
/// typed reason), reads the confirming HELLO, and cross-checks its stream
/// seed against [`stream_seed`]`(master_seed, id)`. Any failure after the
/// slot was assigned releases it, so a crashed joiner does not leak a
/// slot. Every read is bounded by [`handshake_timeout`].
///
/// When `DIM_CLUSTER_TOKEN` is set in the master's environment, the
/// JOIN's auth digest must match it (constant-time) or the joiner is
/// refused with [`RejectReason::Unauthorized`] before any slot is
/// assigned.
pub fn master_handshake(
    stream: &mut TcpStream,
    table: &mut MembershipTable,
    session: u64,
    master_seed: u64,
) -> Result<u32, HandshakeError> {
    master_handshake_with(
        stream,
        table,
        session,
        master_seed,
        crate::auth::cluster_token_digest().as_ref(),
    )
}

/// [`master_handshake`] with an explicit required-token digest instead of
/// the `DIM_CLUSTER_TOKEN` environment variable (`None` = open port).
pub fn master_handshake_with(
    stream: &mut TcpStream,
    table: &mut MembershipTable,
    session: u64,
    master_seed: u64,
    required: Option<&crate::auth::Digest>,
) -> Result<u32, HandshakeError> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(handshake_timeout()))?;
    let (opcode, body) = read_frame(stream)?;
    if opcode != frame::JOIN {
        return Err(HandshakeError::Io(protocol_err(&format!(
            "expected JOIN, got opcode {opcode}"
        ))));
    }
    let join = JoinHello::decode(&body).ok_or_else(|| {
        HandshakeError::Wire(WireError {
            phase: phase::RENDEZVOUS,
            machine: None,
            kind: crate::wire::WireErrorKind::Malformed,
        })
    })?;
    if let Some(expected) = required {
        if !crate::auth::verify_digest(&join.auth, expected) {
            let reason = RejectReason::Unauthorized;
            let _ = write_frame(stream, frame::REJECT, &Reject { reason }.encode());
            return Err(HandshakeError::Wire(reason.wire_error(join.requested)));
        }
    }
    let id = match table.register(&join) {
        Ok(id) => id,
        Err(reason) => {
            let _ = write_frame(stream, frame::REJECT, &Reject { reason }.encode());
            return Err(HandshakeError::Wire(reason.wire_error(join.requested)));
        }
    };
    // The slot is assigned; from here every failure must release it.
    confirm_member(stream, table, session, master_seed, id).map_err(|e| {
        table.release(id);
        e
    })
}

/// WELCOME + HELLO verification half of [`master_handshake`].
fn confirm_member(
    stream: &mut TcpStream,
    table: &MembershipTable,
    session: u64,
    master_seed: u64,
    id: u32,
) -> Result<u32, HandshakeError> {
    let welcome = Welcome {
        session,
        machine_id: id,
        cluster_size: table.expected() as u32,
        master_seed,
    };
    write_frame(stream, frame::WELCOME, &welcome.encode())?;
    let (opcode, body) = read_frame(stream)?;
    if opcode != frame::HELLO {
        return Err(HandshakeError::Io(protocol_err(&format!(
            "expected HELLO, got opcode {opcode}"
        ))));
    }
    let hello = Hello::decode(&body).ok_or_else(|| {
        HandshakeError::Wire(WireError::malformed(phase::RENDEZVOUS, id as usize))
    })?;
    let expected_seed = stream_seed(master_seed, id as usize);
    if hello.version != PROTOCOL_VERSION
        || hello.machine_id != id
        || hello.stream_seed != expected_seed
    {
        let reject = Reject {
            reason: RejectReason::SeedMismatch,
        };
        let _ = write_frame(stream, frame::REJECT, &reject.encode());
        return Err(HandshakeError::Io(protocol_err(&format!(
            "stream seed mismatch from machine {id} (cross-process RNG contract)"
        ))));
    }
    Ok(id)
}

/// Worker side of the v2 handshake on a connected stream.
///
/// Sends JOIN, waits for WELCOME (or REJECT), verifies the assignment
/// against the request, and confirms with a HELLO carrying the derived
/// stream seed. On success the stream's read timeout is cleared — the
/// serve loop blocks indefinitely between ops by design.
pub fn join_handshake(
    stream: &mut TcpStream,
    join: JoinHello,
) -> Result<Welcome, HandshakeError> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(handshake_timeout()))?;
    write_frame(stream, frame::JOIN, &join.encode())?;
    let (opcode, body) = read_frame(stream)?;
    let welcome = match opcode {
        frame::WELCOME => Welcome::decode(&body)
            .ok_or_else(|| HandshakeError::Io(protocol_err("malformed WELCOME")))?,
        frame::REJECT => {
            let reason = Reject::decode(&body)
                .map(|r| r.reason)
                .ok_or_else(|| HandshakeError::Io(protocol_err("malformed REJECT")))?;
            return Err(HandshakeError::Rejected(reason));
        }
        other => {
            return Err(HandshakeError::Io(protocol_err(&format!(
                "expected WELCOME or REJECT, got opcode {other}"
            ))))
        }
    };
    if let Some(requested) = join.requested {
        if welcome.machine_id != requested {
            return Err(HandshakeError::Io(protocol_err(&format!(
                "WELCOME assigned machine {} but {requested} was requested",
                welcome.machine_id
            ))));
        }
    }
    if welcome.machine_id >= welcome.cluster_size {
        return Err(HandshakeError::Io(protocol_err(
            "WELCOME machine id out of range of its own cluster size",
        )));
    }
    let hello = Hello {
        version: PROTOCOL_VERSION,
        caps: join.caps,
        machine_id: welcome.machine_id,
        stream_seed: stream_seed(welcome.master_seed, welcome.machine_id as usize),
    };
    write_frame(stream, frame::HELLO, &hello.encode())?;
    stream.set_read_timeout(None)?;
    Ok(welcome)
}

/// Master-side rendezvous knobs.
#[derive(Clone, Copy, Debug)]
pub struct JoinConfig {
    /// Expected cluster size ℓ — a session assembles exactly this many
    /// workers.
    pub expected: usize,
    /// How long [`Rendezvous::accept_session`] waits for full membership
    /// before giving up.
    pub join_timeout: Duration,
    /// How long a [`JoinCluster::heartbeat`] echo may take before the
    /// link fail-stops.
    pub heartbeat_timeout: Duration,
}

impl JoinConfig {
    /// A config for `expected` machines with env-derived timeouts:
    /// `DIM_JOIN_TIMEOUT_SECS` (default 30 s) and
    /// `DIM_HEARTBEAT_TIMEOUT_SECS` (default 5 s).
    pub fn new(expected: usize) -> Self {
        JoinConfig {
            expected,
            join_timeout: default_join_timeout(),
            heartbeat_timeout: tcp::default_heartbeat_timeout(),
        }
    }
}

/// The master's join deadline: `DIM_JOIN_TIMEOUT_SECS` (whole seconds) or
/// 30 s.
pub fn default_join_timeout() -> Duration {
    std::env::var("DIM_JOIN_TIMEOUT_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .filter(|&secs| secs > 0)
        .map(Duration::from_secs)
        .unwrap_or(Duration::from_secs(30))
}

/// The master side of join-mode clustering: a bound listener that
/// assembles sessions from registering workers.
///
/// One `Rendezvous` outlives its sessions — after a [`JoinCluster`] is
/// dropped (ending its session), call [`Rendezvous::accept_session`]
/// again and surviving or restarted workers re-register for the next run.
pub struct Rendezvous {
    listener: TcpListener,
    config: JoinConfig,
    next_session: u64,
}

impl Rendezvous {
    /// Binds `addr` and prepares to accept joiners.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: JoinConfig) -> io::Result<Self> {
        assert!(config.expected > 0, "cluster needs at least one machine");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Rendezvous {
            listener,
            config,
            next_session: 1,
        })
    }

    /// [`Rendezvous::bind`] on the advertised address from
    /// `DIM_MASTER_BIND` (default `127.0.0.1:0`). Multi-host deployments
    /// set e.g. `DIM_MASTER_BIND=0.0.0.0:7070`.
    pub fn bind_env(config: JoinConfig) -> io::Result<Self> {
        Self::bind(tcp::master_bind_addr().as_str(), config)
    }

    /// The bound address workers should `--connect` to.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The id the next [`Rendezvous::accept_session`] will use.
    pub fn next_session(&self) -> u64 {
        self.next_session
    }

    /// Assembles one session: accepts and handshakes joiners until all ℓ
    /// slots are registered, then returns the [`JoinCluster`].
    ///
    /// Rejected or failed joiners are logged and do not abort assembly —
    /// their slot (if any) is released for a replacement. If membership
    /// is still incomplete after the join timeout, errors `TimedOut`
    /// naming how many workers had joined. The bind→membership latency is
    /// recorded under [`phase::RENDEZVOUS`] in the cluster's timeline and
    /// is also available as [`JoinCluster::rendezvous_latency`].
    pub fn accept_session(
        &mut self,
        network: NetworkModel,
        master_seed: u64,
    ) -> io::Result<JoinCluster> {
        let session = self.next_session;
        self.next_session += 1;
        let start = Instant::now();
        let deadline = start + self.config.join_timeout;
        let mut table = MembershipTable::new(self.config.expected);
        let mut slots: Vec<Option<TcpStream>> =
            (0..self.config.expected).map(|_| None).collect();
        while !table.is_full() {
            match self.listener.accept() {
                Ok((mut stream, peer)) => {
                    stream.set_nonblocking(false)?;
                    match master_handshake(&mut stream, &mut table, session, master_seed) {
                        Ok(id) => slots[id as usize] = Some(stream),
                        Err(e) => {
                            eprintln!(
                                "dim master: refused joiner {peer} for session {session}: {e}"
                            );
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!(
                                "rendezvous timed out: {} of {} workers joined session {session}",
                                table.joined(),
                                table.expected()
                            ),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
        let latency = start.elapsed();
        let streams = slots
            .into_iter()
            .map(|s| s.expect("full membership table implies a stream per slot"))
            .collect();
        let mut inner = ProcCluster::from_streams(
            streams,
            Vec::new(),
            network,
            master_seed,
            session,
            self.config.heartbeat_timeout,
        )?;
        inner.record(
            phase::RENDEZVOUS,
            ClusterMetrics {
                master_compute: latency,
                phases: 1,
                ..Default::default()
            },
        );
        Ok(JoinCluster {
            inner,
            rendezvous_latency: latency,
        })
    }
}

/// A cluster whose membership was assembled from registrations
/// ([`Rendezvous::accept_session`]) instead of spawning.
///
/// Runs the identical op protocol as [`ProcCluster`] — algorithms cannot
/// tell the backends apart, which is what makes join-mode results
/// byte-identical to spawn-mode and sequential runs. The difference is
/// ownership: a `JoinCluster` owns only the *links*. Dropping it sends
/// the Shutdown op, which ends the session; the worker processes survive
/// and re-register with the same [`Rendezvous`] for the next session.
pub struct JoinCluster {
    inner: ProcCluster,
    rendezvous_latency: Duration,
}

impl std::fmt::Debug for JoinCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinCluster")
            .field("session", &self.session_id())
            .field("machines", &self.num_machines())
            .field("live_links", &self.live_links())
            .field("rendezvous_latency", &self.rendezvous_latency)
            .finish()
    }
}

impl JoinCluster {
    /// The session id this membership is valid for.
    pub fn session_id(&self) -> u64 {
        self.inner.session_id()
    }

    /// Wall-clock time from `accept_session` start to full membership
    /// (also recorded under [`phase::RENDEZVOUS`] in the timeline).
    pub fn rendezvous_latency(&self) -> Duration {
        self.rendezvous_latency
    }

    /// The master seed the worker streams were derived from.
    pub fn master_seed(&self) -> u64 {
        self.inner.master_seed()
    }

    /// Number of link faults observed so far (dead links stay dead).
    pub fn link_errors(&self) -> u64 {
        self.inner.link_errors()
    }

    /// Number of links still alive.
    pub fn live_links(&self) -> usize {
        self.inner.live_links()
    }

    /// Probes every live link and fail-stops dead ones — see
    /// [`ProcCluster::heartbeat`].
    pub fn heartbeat(&mut self) -> Result<(), WireError> {
        self.inner.heartbeat()
    }

    /// Arms (or clears) the socket-level chaos injector — see
    /// [`ProcCluster::set_chaos`].
    #[cfg(feature = "chaos")]
    pub fn set_chaos(&mut self, injector: Option<crate::faults::FaultInjector>) {
        self.inner.set_chaos(injector);
    }

    /// The armed chaos injector, if any — see
    /// [`ProcCluster::chaos_injector`].
    #[cfg(feature = "chaos")]
    pub fn chaos_injector(&self) -> Option<&crate::faults::FaultInjector> {
        self.inner.chaos_injector()
    }
}

impl ClusterBackend for JoinCluster {
    type Worker = ();

    fn num_machines(&self) -> usize {
        self.inner.num_machines()
    }

    fn network(&self) -> NetworkModel {
        self.inner.network()
    }

    fn workers(&self) -> &[()] {
        self.inner.workers()
    }

    fn timeline(&self) -> &PhaseTimeline {
        self.inner.timeline()
    }

    fn record(&mut self, label: &'static str, delta: ClusterMetrics) {
        self.inner.record(label, delta);
    }

    fn par_step<R, F>(&mut self, label: &'static str, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut ()) -> R + Sync,
    {
        self.inner.par_step(label, f)
    }

    fn master<R, F>(&mut self, label: &'static str, f: F) -> R
    where
        F: FnOnce() -> R,
    {
        self.inner.master(label, f)
    }
}

impl OpCluster for JoinCluster {
    fn exec_ops<F>(
        &mut self,
        down_label: Option<&'static str>,
        up_label: &'static str,
        op: F,
    ) -> Result<Vec<WorkerReply>, WireError>
    where
        F: Fn(usize) -> WorkerOp + Sync,
    {
        self.inner.exec_ops(down_label, up_label, op)
    }

    fn exec_ops_each<F>(
        &mut self,
        down_label: Option<&'static str>,
        up_label: &'static str,
        op: F,
    ) -> Vec<Result<WorkerReply, WireError>>
    where
        F: Fn(usize) -> WorkerOp + Sync,
    {
        self.inner.exec_ops_each(down_label, up_label, op)
    }
}

/// Worker-side join knobs.
#[derive(Clone, Copy, Debug)]
pub struct JoinOptions {
    /// Pin a specific machine id, or `None` for any free slot.
    pub requested: Option<u32>,
    /// Capability flags to advertise ([`caps`]).
    pub caps: u8,
    /// Give up joining after this long (`None` = retry forever). The
    /// `dim-worker` binary seeds this from `DIM_JOIN_DEADLINE_SECS` /
    /// `--join-deadline`.
    pub deadline: Option<Duration>,
}

impl JoinOptions {
    /// Any slot, full capabilities, deadline from
    /// `DIM_JOIN_DEADLINE_SECS` if set (else retry forever).
    pub fn new() -> Self {
        JoinOptions {
            requested: None,
            caps: caps::ALL,
            deadline: join_deadline_env(),
        }
    }
}

impl Default for JoinOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// The worker's optional join deadline: `DIM_JOIN_DEADLINE_SECS` (whole
/// seconds), unset = retry forever.
pub fn join_deadline_env() -> Option<Duration> {
    std::env::var("DIM_JOIN_DEADLINE_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .filter(|&secs| secs > 0)
        .map(Duration::from_secs)
}

/// Jittered exponential backoff for join retries.
///
/// Delays double from 50 ms up to a 2 s cap, each drawn uniformly from
/// `[base/2, base]` so a fleet of workers restarted together does not
/// hammer the master in lockstep. The jitter source is a tiny splitmix64
/// stream seeded per worker — deterministic given the seed, which keeps
/// tests reproducible.
#[derive(Clone, Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    state: u64,
}

impl Backoff {
    /// A fresh schedule whose jitter stream is derived from `seed`.
    pub fn new(seed: u64) -> Self {
        Backoff {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next delay to sleep: jittered from the current base, which
    /// then doubles (capped).
    pub fn next_delay(&mut self) -> Duration {
        // splitmix64 step.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let base_ns = self.base.as_nanos() as u64;
        let jittered = base_ns / 2 + z % (base_ns / 2 + 1);
        let delay = Duration::from_nanos(jittered);
        self.base = (self.base * 2).min(self.cap);
        delay
    }
}

/// Connects to `addr` and completes the join handshake, retrying
/// transient failures (master not up yet, session full, dropped
/// connections) with jittered exponential backoff until the deadline in
/// `opts` (if any) expires. Fatal rejections — version or capability
/// mismatch, duplicate or out-of-range id — surface immediately.
pub fn connect_and_join(
    addr: &str,
    opts: &JoinOptions,
) -> io::Result<(TcpStream, Welcome)> {
    let deadline = opts.deadline.map(|d| Instant::now() + d);
    let mut backoff = Backoff::new(
        u64::from(opts.requested.unwrap_or(ANY_SLOT)) ^ u64::from(std::process::id()),
    );
    loop {
        let attempt = (|| -> Result<(TcpStream, Welcome), HandshakeError> {
            let mut stream = connect_with_timeout(addr)?;
            let welcome = join_handshake(&mut stream, JoinHello::new(opts.requested))?;
            Ok((stream, welcome))
        })();
        let err = match attempt {
            Ok(joined) => return Ok(joined),
            Err(e) => e,
        };
        if !err.retryable() {
            return Err(err.into_io());
        }
        let delay = backoff.next_delay();
        if let Some(deadline) = deadline {
            if Instant::now() + delay >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("join deadline expired; last error: {err}"),
                ));
            }
        }
        std::thread::sleep(delay);
    }
}

/// Resolves `addr` and connects with the shared [`handshake_timeout`].
fn connect_with_timeout(addr: &str) -> io::Result<TcpStream> {
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::AddrNotAvailable, "address resolved to nothing"))?;
    TcpStream::connect_timeout(&sock, handshake_timeout())
}

/// How one joined session went, from the worker's side.
#[derive(Debug)]
pub struct JoinedSession {
    /// The membership the worker held.
    pub welcome: Welcome,
    /// Whether the master ended the session with a Shutdown op or by
    /// disconnecting.
    pub end: SessionEnd,
}

/// Joins a master at `addr` and serves one full session.
///
/// `setup(&welcome)` builds (or re-binds) the op executor once membership
/// is known — a join-mode `dim-worker` passes a closure that resets its
/// long-lived host state to the session's machine id and master seed and
/// returns `&mut host`, keeping an already-loaded graph across sessions.
/// Returns when the master ends the session; the binary loops this to
/// re-register for the next run.
pub fn run_join_worker<E, F>(
    addr: &str,
    opts: &JoinOptions,
    fault: Option<WorkerFault>,
    setup: F,
) -> io::Result<JoinedSession>
where
    E: OpExecutor,
    F: FnOnce(&Welcome) -> E,
{
    let (stream, welcome) = connect_and_join(addr, opts)?;
    let mut executor = setup(&welcome);
    let end = tcp::serve_session(stream, welcome.machine_id, &mut executor, fault)?;
    Ok(JoinedSession { welcome, end })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{expect_counts, OpCluster};
    use crate::wire::WireErrorKind;

    #[test]
    fn codec_roundtrips() {
        for requested in [None, Some(0), Some(7), Some(u32::MAX - 1)] {
            let join = JoinHello::with_token(requested, "hunter2");
            let bytes = join.encode();
            assert_eq!(bytes.len(), 38);
            assert_eq!(JoinHello::decode(&bytes), Some(join));
        }
        let welcome = Welcome {
            session: 3,
            machine_id: 1,
            cluster_size: 4,
            master_seed: 0xDEAD_BEEF,
        };
        assert_eq!(welcome.encode().len(), 24);
        assert_eq!(Welcome::decode(&welcome.encode()), Some(welcome));
        let hello = Hello {
            version: PROTOCOL_VERSION,
            caps: caps::ALL,
            machine_id: 2,
            stream_seed: 99,
        };
        assert_eq!(hello.encode().len(), 14);
        assert_eq!(Hello::decode(&hello.encode()), Some(hello));
        let hb = Heartbeat { session: 1, seq: 42 };
        assert_eq!(hb.encode().len(), 16);
        assert_eq!(Heartbeat::decode(&hb.encode()), Some(hb));
        for reason in [
            RejectReason::Version,
            RejectReason::OutOfRange,
            RejectReason::Duplicate,
            RejectReason::SessionFull,
            RejectReason::SeedMismatch,
            RejectReason::Unauthorized,
        ] {
            let reject = Reject { reason };
            assert_eq!(Reject::decode(&reject.encode()), Some(reject));
        }
    }

    #[test]
    fn codecs_reject_truncation_and_trailing_bytes() {
        let join = JoinHello::new(Some(1)).encode();
        assert!(JoinHello::decode(&join[..join.len() - 1]).is_none());
        let mut long = join.clone();
        long.push(0);
        assert!(JoinHello::decode(&long).is_none());
        let welcome = Welcome {
            session: 1,
            machine_id: 0,
            cluster_size: 1,
            master_seed: 2,
        }
        .encode();
        assert!(Welcome::decode(&welcome[..23]).is_none());
        assert!(Hello::decode(&[]).is_none());
        assert!(Heartbeat::decode(&[0u8; 15]).is_none());
        // Unknown reject reason codes are refused, not mapped arbitrarily.
        assert!(Reject::decode(&[0]).is_none());
        assert!(Reject::decode(&[7]).is_none());
        assert!(Reject::decode(&[1, 0]).is_none());
    }

    /// Satellite contract: a token-requiring master refuses a joiner with
    /// the wrong (or absent) token with a typed, non-retryable
    /// [`RejectReason::Unauthorized`] before assigning a slot, and admits
    /// a correctly-tokened joiner into the same table.
    #[test]
    fn token_requiring_master_rejects_wrong_token_joiner() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let required = crate::auth::token_digest("cluster-secret");
        let master = std::thread::spawn(move || {
            let mut table = MembershipTable::new(2);
            let mut outcomes = Vec::new();
            for _ in 0..3 {
                let (mut stream, _) = listener.accept().unwrap();
                outcomes.push(master_handshake_with(
                    &mut stream,
                    &mut table,
                    1,
                    42,
                    Some(&required),
                ));
            }
            (outcomes, table.joined())
        });
        // Wrong token, then no token at all: both must be refused with the
        // typed reason on the worker side too.
        for join in [
            JoinHello::with_token(None, "not-the-secret"),
            JoinHello {
                auth: [0; crate::auth::DIGEST_LEN],
                ..JoinHello::new(None)
            },
        ] {
            let mut stream = TcpStream::connect(addr).unwrap();
            let err = join_handshake(&mut stream, join).unwrap_err();
            match err {
                HandshakeError::Rejected(reason) => {
                    assert_eq!(reason, RejectReason::Unauthorized);
                    assert!(!reason.retryable());
                    assert!(reason.describe().contains("token"));
                }
                other => panic!("expected Unauthorized rejection, got {other}"),
            }
        }
        // The right token joins fine afterwards.
        let mut stream = TcpStream::connect(addr).unwrap();
        let welcome =
            join_handshake(&mut stream, JoinHello::with_token(None, "cluster-secret")).unwrap();
        assert_eq!(welcome.session, 1);
        let (outcomes, joined) = master.join().unwrap();
        assert!(matches!(
            &outcomes[0],
            Err(HandshakeError::Wire(e)) if e.kind == WireErrorKind::Malformed
        ));
        assert!(matches!(&outcomes[1], Err(HandshakeError::Wire(_))));
        assert_eq!(*outcomes[2].as_ref().unwrap(), welcome.machine_id);
        // Unauthorized joiners never held a slot.
        assert_eq!(joined, 1);
    }

    #[test]
    fn membership_assigns_requested_and_free_slots() {
        let mut table = MembershipTable::new(3);
        assert_eq!(table.register(&JoinHello::new(Some(2))), Ok(2));
        assert_eq!(table.register(&JoinHello::new(None)), Ok(0));
        assert_eq!(table.register(&JoinHello::new(None)), Ok(1));
        assert!(table.is_full());
        assert_eq!(table.joined(), 3);
    }

    #[test]
    fn membership_rejects_duplicate_id_with_typed_error() {
        let mut table = MembershipTable::new(2);
        assert_eq!(table.register(&JoinHello::new(Some(1))), Ok(1));
        let reason = table.register(&JoinHello::new(Some(1))).unwrap_err();
        assert_eq!(reason, RejectReason::Duplicate);
        assert!(!reason.retryable());
        let err = reason.wire_error(Some(1));
        assert_eq!(err.kind, WireErrorKind::DuplicateId);
        assert_eq!(err.machine, Some(1));
        assert_eq!(err.phase, phase::RENDEZVOUS);
        assert!(err.to_string().contains("duplicate"), "{err}");
        // The slot's original owner is unaffected.
        assert_eq!(table.joined(), 1);
    }

    #[test]
    fn membership_rejects_out_of_range_id_with_typed_error() {
        let mut table = MembershipTable::new(2);
        let reason = table.register(&JoinHello::new(Some(2))).unwrap_err();
        assert_eq!(reason, RejectReason::OutOfRange);
        assert!(!reason.retryable());
        let err = reason.wire_error(Some(2));
        assert_eq!(err.kind, WireErrorKind::IdOutOfRange);
        assert_eq!(err.machine, Some(2));
        assert_eq!(table.joined(), 0);
    }

    #[test]
    fn membership_session_full_is_retryable() {
        let mut table = MembershipTable::new(1);
        assert_eq!(table.register(&JoinHello::new(None)), Ok(0));
        let reason = table.register(&JoinHello::new(None)).unwrap_err();
        assert_eq!(reason, RejectReason::SessionFull);
        assert!(reason.retryable());
        assert_eq!(reason.wire_error(None).kind, WireErrorKind::SessionFull);
    }

    #[test]
    fn membership_rejects_wrong_version_and_releases_slots() {
        let mut table = MembershipTable::new(2);
        let old = JoinHello {
            version: 1,
            ..JoinHello::new(Some(0))
        };
        assert_eq!(table.register(&old).unwrap_err(), RejectReason::Version);
        assert_eq!(table.register(&JoinHello::new(Some(0))), Ok(0));
        table.release(0);
        assert_eq!(table.joined(), 0);
        assert_eq!(table.register(&JoinHello::new(Some(0))), Ok(0));
    }

    #[test]
    fn backoff_jitters_within_bounds_and_doubles() {
        let mut backoff = Backoff::new(7);
        let mut base = Duration::from_millis(50);
        for _ in 0..8 {
            let d = backoff.next_delay();
            assert!(d >= base / 2 && d <= base, "{d:?} outside [{:?}, {base:?}]", base / 2);
            base = (base * 2).min(Duration::from_secs(2));
        }
        // Deterministic given the seed; different seeds diverge.
        let a: Vec<_> = (0..4).map(|_| Backoff::new(1).next_delay()).collect();
        assert!(a.iter().all(|&d| d == a[0]));
        let mut b1 = Backoff::new(1);
        let mut b2 = Backoff::new(2);
        assert_ne!(b1.next_delay(), b2.next_delay());
    }

    /// Toy resident executor counting SampleRr totals, as in tcp.rs tests.
    struct Tally(u64);

    impl OpExecutor for Tally {
        fn execute(&mut self, op: &WorkerOp) -> WorkerReply {
            match op {
                WorkerOp::SampleRr { count } => {
                    self.0 += count;
                    WorkerReply::Ok
                }
                WorkerOp::CoveredCount => WorkerReply::Count(self.0),
                _ => WorkerReply::Err("unsupported".into()),
            }
        }
    }

    fn test_config(expected: usize) -> JoinConfig {
        JoinConfig {
            expected,
            join_timeout: Duration::from_secs(10),
            heartbeat_timeout: Duration::from_secs(5),
        }
    }

    #[test]
    fn join_workers_assemble_serve_and_reregister_next_session() {
        let mut rdv = Rendezvous::bind("127.0.0.1:0", test_config(2)).unwrap();
        let addr = rdv.local_addr().unwrap().to_string();
        // Pre-started workers that serve TWO sessions each, keeping their
        // executor alive across sessions (the host-reuse contract).
        let handles: Vec<_> = (0..2u32)
            .map(|id| {
                let addr = addr.clone();
                std::thread::spawn(move || -> io::Result<Vec<(u64, u32, SessionEnd)>> {
                    let mut tally = Tally(0);
                    // Pin the slot so resident state stays attached to the
                    // same machine id across sessions.
                    let opts = JoinOptions {
                        requested: Some(id),
                        caps: caps::ALL,
                        deadline: Some(Duration::from_secs(10)),
                    };
                    let mut served = Vec::new();
                    for _ in 0..2 {
                        let session =
                            run_join_worker(&addr, &opts, None, |_welcome| &mut tally)?;
                        served.push((
                            session.welcome.session,
                            session.welcome.machine_id,
                            session.end,
                        ));
                    }
                    Ok(served)
                })
            })
            .collect();

        for expected_session in [1u64, 2] {
            let mut cluster = rdv
                .accept_session(NetworkModel::cluster_1gbps(), 42)
                .unwrap();
            assert_eq!(cluster.session_id(), expected_session);
            assert_eq!(cluster.num_machines(), 2);
            // Rendezvous latency landed in the timeline as a setup phase.
            let m = cluster.timeline().get(phase::RENDEZVOUS);
            assert_eq!(m.phases, 1);
            assert_eq!(m.bytes_to_master + m.bytes_from_master, 0);
            assert_eq!(m.master_compute, cluster.rendezvous_latency());
            cluster.heartbeat().unwrap();
            cluster
                .control(phase::RR_SAMPLING, |i| WorkerOp::SampleRr {
                    count: i as u64 + 1,
                })
                .unwrap();
            let counts = cluster
                .op_gather(phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount)
                .unwrap();
            let counts = expect_counts(&counts, phase::COUNT_UPLOAD).unwrap();
            // Session 2 reuses the workers' resident state: tallies from
            // session 1 persist, so totals double.
            let scale = expected_session;
            assert_eq!(counts, vec![scale, 2 * scale]);
            // Drop ends the session; workers loop back to joining.
        }
        for handle in handles {
            let served = handle.join().unwrap().unwrap();
            assert_eq!(served.len(), 2);
            for (session, _, end) in served {
                assert!(session == 1 || session == 2);
                assert_eq!(end, SessionEnd::Shutdown);
            }
        }
    }

    #[test]
    fn duplicate_registration_is_refused_but_session_still_assembles() {
        let mut rdv = Rendezvous::bind("127.0.0.1:0", test_config(1)).unwrap();
        let addr = rdv.local_addr().unwrap().to_string();
        // Two workers race for machine id 0; the loser gets REJECT
        // Duplicate (fatal), the winner serves. Assembly must survive the
        // refusal.
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut tally = Tally(0);
                    let opts = JoinOptions {
                        requested: Some(0),
                        caps: caps::ALL,
                        deadline: Some(Duration::from_secs(10)),
                    };
                    run_join_worker(&addr, &opts, None, |_| &mut tally).map(|s| s.end)
                })
            })
            .collect();
        let cluster = rdv
            .accept_session(NetworkModel::cluster_1gbps(), 9)
            .unwrap();
        assert_eq!(cluster.num_machines(), 1);
        drop(cluster);
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let ok = results.iter().filter(|r| r.is_ok()).count();
        let rejected = results
            .iter()
            .filter(|r| {
                r.as_ref().is_err_and(|e| {
                    e.to_string().contains("already registered")
                })
            })
            .count();
        // Exactly one worker served; if the loser arrived before assembly
        // finished it was told "already registered", otherwise it timed
        // out against a master that stopped accepting.
        assert_eq!(ok, 1, "{results:?}");
        assert!(rejected <= 1);
    }

    #[test]
    fn dead_worker_fails_heartbeat_with_typed_error_naming_machine() {
        let mut config = test_config(1);
        config.heartbeat_timeout = Duration::from_millis(200);
        let mut rdv = Rendezvous::bind("127.0.0.1:0", config).unwrap();
        let addr = rdv.local_addr().unwrap().to_string();
        // A worker that registers, then dies without serving anything.
        let vanish = std::thread::spawn(move || {
            let opts = JoinOptions {
                requested: Some(0),
                caps: caps::ALL,
                deadline: Some(Duration::from_secs(10)),
            };
            let (stream, welcome) = connect_and_join(&addr, &opts).unwrap();
            drop(stream);
            welcome.machine_id
        });
        let mut cluster = rdv
            .accept_session(NetworkModel::cluster_1gbps(), 5)
            .unwrap();
        assert_eq!(vanish.join().unwrap(), 0);
        let err = loop {
            // The first probe can still see buffered bytes race the FIN;
            // a dead socket fails within a couple of probes.
            match cluster.heartbeat() {
                Ok(()) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err.phase, phase::HEARTBEAT);
        assert_eq!(err.machine, Some(0));
        assert!(err.to_string().contains("machine 0"), "{err}");
        assert_eq!(cluster.live_links(), 0);
        assert_eq!(cluster.link_errors(), 1);
    }

    #[test]
    fn rendezvous_times_out_naming_partial_membership() {
        let mut config = test_config(2);
        config.join_timeout = Duration::from_millis(300);
        let mut rdv = Rendezvous::bind("127.0.0.1:0", config).unwrap();
        let addr = rdv.local_addr().unwrap().to_string();
        // Only one of the two expected workers ever joins.
        let lone = std::thread::spawn(move || {
            let opts = JoinOptions {
                requested: Some(0),
                caps: caps::ALL,
                deadline: Some(Duration::from_secs(10)),
            };
            let mut tally = Tally(0);
            run_join_worker(&addr, &opts, None, |_| &mut tally)
        });
        let err = rdv
            .accept_session(NetworkModel::cluster_1gbps(), 1)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(err.to_string().contains("1 of 2"), "{err}");
        drop(rdv);
        // The joined worker sees the master hang up — a clean session end.
        let session = lone.join().unwrap().unwrap();
        assert_eq!(session.end, SessionEnd::Disconnected);
    }

    #[test]
    fn join_deadline_expires_against_absent_master() {
        // Bind-then-drop guarantees nothing listens on the port.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let opts = JoinOptions {
            requested: None,
            caps: caps::ALL,
            deadline: Some(Duration::from_millis(150)),
        };
        let start = Instant::now();
        let err = connect_and_join(&addr, &opts).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(err.to_string().contains("join deadline"), "{err}");
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}
