//! Shared token-auth primitives for every authenticated port.
//!
//! Both authenticated surfaces — the serve port's AUTH frame
//! (`dim_serve::auth`) and the rendezvous JOIN handshake
//! ([`crate::rendezvous`], gated by `DIM_CLUSTER_TOKEN`) — verify the
//! same way: the wire carries a fixed 32-byte SHA-256 digest of the
//! secret, never the secret itself, and the verifier compares digests in
//! constant time so a byte-wise early exit cannot leak prefix matches.
//!
//! SHA-256 is implemented here (FIPS 180-4, ~60 lines) because the
//! offline build environment has no registry access; the test vectors
//! below pin the implementation to the published digests.

/// Length of every token digest on the wire.
pub const DIGEST_LEN: usize = 32;

/// A 32-byte SHA-256 digest.
pub type Digest = [u8; DIGEST_LEN];

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 of `data` (FIPS 180-4).
pub fn sha256(data: &[u8]) -> Digest {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    // Padded message: data · 0x80 · zeros · bit-length (big-endian u64),
    // total a multiple of 64 bytes.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (t, word) in block.chunks_exact(4).enumerate() {
            w[t] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for t in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *slot = slot.wrapping_add(v);
        }
    }
    let mut out = [0u8; DIGEST_LEN];
    for (chunk, word) in out.chunks_exact_mut(4).zip(h) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// The digest a bearer of `token` presents on the wire.
pub fn token_digest(token: &str) -> Digest {
    sha256(token.as_bytes())
}

/// Constant-time equality: the comparison touches every byte of both
/// inputs regardless of where they first differ, so response timing does
/// not leak how long a matching prefix was. (Length mismatch returns
/// early — lengths are public: every digest is [`DIGEST_LEN`] bytes.)
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Verifies a presented digest against the expected one, constant-time.
pub fn verify_digest(presented: &Digest, expected: &Digest) -> bool {
    ct_eq(presented, expected)
}

/// The cluster-wide rendezvous token from `DIM_CLUSTER_TOKEN`, as the
/// digest the JOIN handshake carries and checks. `None` (unset or empty)
/// means the rendezvous port accepts unauthenticated joiners — the
/// pre-auth behavior.
pub fn cluster_token_digest() -> Option<Digest> {
    match std::env::var("DIM_CLUSTER_TOKEN") {
        Ok(token) if !token.is_empty() => Some(token_digest(&token)),
        _ => None,
    }
}

/// Parses a 64-hex-char digest (the `token_sha256` form in tenant
/// configs, so operators never store plaintext tokens on disk).
pub fn parse_hex_digest(hex: &str) -> Option<Digest> {
    let hex = hex.trim();
    if hex.len() != DIGEST_LEN * 2 || !hex.is_ascii() {
        return None;
    }
    let nibble = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    let bytes = hex.as_bytes();
    let mut out = [0u8; DIGEST_LEN];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = nibble(bytes[2 * i])? << 4 | nibble(bytes[2 * i + 1])?;
    }
    Some(out)
}

/// Renders a digest as lowercase hex (the `token_sha256` config form).
pub fn digest_hex(digest: &Digest) -> String {
    let mut out = String::with_capacity(DIGEST_LEN * 2);
    for b in digest {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 / NIST test vectors.
    #[test]
    fn sha256_matches_published_vectors() {
        assert_eq!(
            digest_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            digest_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            digest_hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Multi-block input (length > 64 exercises the second block path).
        let long = vec![b'a'; 1_000];
        assert_eq!(
            digest_hex(&sha256(&long)),
            "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3"
        );
    }

    #[test]
    fn hex_roundtrip_and_rejection() {
        let d = token_digest("swordfish");
        assert_eq!(parse_hex_digest(&digest_hex(&d)), Some(d));
        assert_eq!(parse_hex_digest("abc"), None);
        assert_eq!(parse_hex_digest(&"g".repeat(64)), None);
        // Uppercase hex is accepted.
        assert_eq!(parse_hex_digest(&digest_hex(&d).to_uppercase()), Some(d));
    }

    #[test]
    fn ct_eq_semantics() {
        assert!(ct_eq(b"same bytes", b"same bytes"));
        assert!(!ct_eq(b"same bytes", b"same bytez"));
        assert!(!ct_eq(b"short", b"longer input"));
        assert!(ct_eq(b"", b""));
        let a = token_digest("a");
        let b = token_digest("b");
        assert!(verify_digest(&a, &a));
        assert!(!verify_digest(&a, &b));
    }
}
