//! Deterministic per-machine random-stream derivation.

/// Derives the RNG seed for machine `machine_id` from the run's master seed.
///
/// Every stochastic distributed component in the workspace seeds machine
/// `i`'s RNG with `stream_seed(master, i)`, which makes results
/// (a) reproducible for a fixed `(master_seed, ℓ)` regardless of execution
/// order, and (b) statistically independent across machines.
pub fn stream_seed(master_seed: u64, machine_id: usize) -> u64 {
    // SplitMix64 over a mixed input; mirrors dim-graph's splitmix64 (kept
    // local so this crate stays dependency-free at the bottom of the stack).
    let mut x = master_seed ^ (machine_id as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Derives the RNG seed for one RR set from its machine's stream seed and
/// the set's per-machine index.
///
/// Seeding every RR set independently (instead of drawing all sets from one
/// sequential machine stream) is what makes incremental repair exact: after
/// an edge batch, re-sampling only the invalidated sets with their original
/// per-set seeds on the mutated graph produces the same bytes as a full
/// re-sample of that graph — untouched sets replay identically, repaired
/// sets are re-drawn from their own streams.
pub fn rr_set_seed(machine_seed: u64, set_index: u64) -> u64 {
    // Same SplitMix64 finalizer as `stream_seed`, over a differently mixed
    // input so the per-set family never collides with the machine family.
    let mut x = machine_seed ^ (set_index.wrapping_add(1)).wrapping_mul(0xD1B54A32D192ED03);
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_across_machines() {
        let seeds: Vec<u64> = (0..64).map(|i| stream_seed(42, i)).collect();
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn distinct_across_master_seeds() {
        assert_ne!(stream_seed(1, 0), stream_seed(2, 0));
    }

    #[test]
    fn deterministic() {
        assert_eq!(stream_seed(7, 3), stream_seed(7, 3));
    }

    #[test]
    fn set_seeds_distinct_and_deterministic() {
        let seeds: Vec<u64> = (0..256).map(|j| rr_set_seed(stream_seed(42, 3), j)).collect();
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len());
        assert_eq!(rr_set_seed(9, 17), rr_set_seed(9, 17));
        assert_ne!(rr_set_seed(1, 0), rr_set_seed(2, 0));
        // The per-set family must not collide with the machine family for
        // small indices (they feed the same PRNG type).
        for j in 0..64u64 {
            assert_ne!(rr_set_seed(7, j), stream_seed(7, j as usize));
        }
    }

    #[test]
    fn bits_well_spread() {
        // Crude avalanche check: consecutive machine ids flip ~half the bits.
        let mut total = 0u32;
        for i in 0..100 {
            total += (stream_seed(9, i) ^ stream_seed(9, i + 1)).count_ones();
        }
        let avg = total as f64 / 100.0;
        assert!((avg - 32.0).abs() < 6.0, "avg flipped bits {avg}");
    }
}
