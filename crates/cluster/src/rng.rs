//! Deterministic per-machine random-stream derivation.

/// Derives the RNG seed for machine `machine_id` from the run's master seed.
///
/// Every stochastic distributed component in the workspace seeds machine
/// `i`'s RNG with `stream_seed(master, i)`, which makes results
/// (a) reproducible for a fixed `(master_seed, ℓ)` regardless of execution
/// order, and (b) statistically independent across machines.
pub fn stream_seed(master_seed: u64, machine_id: usize) -> u64 {
    // SplitMix64 over a mixed input; mirrors dim-graph's splitmix64 (kept
    // local so this crate stays dependency-free at the bottom of the stack).
    let mut x = master_seed ^ (machine_id as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_across_machines() {
        let seeds: Vec<u64> = (0..64).map(|i| stream_seed(42, i)).collect();
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn distinct_across_master_seeds() {
        assert_ne!(stream_seed(1, 0), stream_seed(2, 0));
    }

    #[test]
    fn deterministic() {
        assert_eq!(stream_seed(7, 3), stream_seed(7, 3));
    }

    #[test]
    fn bits_well_spread() {
        // Crude avalanche check: consecutive machine ids flip ~half the bits.
        let mut total = 0u32;
        for i in 0..100 {
            total += (stream_seed(9, i) ^ stream_seed(9, i + 1)).count_ones();
        }
        let avg = total as f64 / 100.0;
        assert!((avg - 32.0).abs() < 6.0, "avg flipped bits {avg}");
    }
}
