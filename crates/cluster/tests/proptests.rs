//! Property-based tests for the cluster substrate.

use std::time::Duration;

use dim_cluster::{phase, stream_seed, wire, ClusterBackend, ExecMode, NetworkModel, SimCluster};
use proptest::prelude::*;

proptest! {
    /// Wire codec round-trips arbitrary delta vectors, and the advertised
    /// size formula matches the actual encoding.
    #[test]
    fn delta_roundtrip(deltas in prop::collection::vec((any::<u32>(), any::<u32>()), 0..300)) {
        let bytes = wire::encode_deltas(&deltas);
        prop_assert_eq!(bytes.len() as u64, wire::delta_wire_size(deltas.len()));
        prop_assert_eq!(wire::decode_deltas(&bytes).unwrap(), deltas.clone());
        let mut visited = Vec::new();
        wire::for_each_delta(&bytes, |v, d| visited.push((v, d))).unwrap();
        prop_assert_eq!(visited, deltas);
    }

    /// Id codec round-trips.
    #[test]
    fn ids_roundtrip(ids in prop::collection::vec(any::<u32>(), 0..300)) {
        let bytes = wire::encode_ids(&ids);
        prop_assert_eq!(bytes.len() as u64, wire::ids_wire_size(ids.len()));
        prop_assert_eq!(wire::decode_ids(&bytes).unwrap(), ids);
    }

    /// Truncating an encoded message is always detected.
    #[test]
    fn truncation_detected(deltas in prop::collection::vec((any::<u32>(), any::<u32>()), 1..50),
                           cut in 1usize..8) {
        let bytes = wire::encode_deltas(&deltas);
        let cut = cut.min(bytes.len());
        prop_assert!(wire::decode_deltas(&bytes[..bytes.len() - cut]).is_none());
    }

    /// Transfer time is monotone in bytes and messages.
    #[test]
    fn transfer_monotone(b1 in 0u64..1_000_000, b2 in 0u64..1_000_000,
                         m1 in 1u64..64, m2 in 1u64..64) {
        let net = NetworkModel::cluster_1gbps();
        let (lo_b, hi_b) = (b1.min(b2), b1.max(b2));
        let (lo_m, hi_m) = (m1.min(m2), m1.max(m2));
        prop_assert!(net.transfer_time(lo_m, lo_b) <= net.transfer_time(hi_m, hi_b));
        prop_assert!(net.collective_time(lo_m, lo_b) <= net.collective_time(hi_m, hi_b));
        // Collectives never cost more than point-to-point fan-in.
        prop_assert!(net.collective_time(hi_m, hi_b) <= net.transfer_time(hi_m, hi_b));
    }

    /// Stream seeds are collision-free over realistic machine ranges and
    /// differ across master seeds.
    #[test]
    fn stream_seeds_unique(master in any::<u64>()) {
        let seeds: Vec<u64> = (0..128).map(|i| stream_seed(master, i)).collect();
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        prop_assert_eq!(unique.len(), seeds.len());
        prop_assert_ne!(stream_seed(master, 0), stream_seed(master.wrapping_add(1), 0));
    }

    /// par_step visits every machine exactly once, in machine order, in
    /// every execution mode; gather accounts exactly the advertised bytes,
    /// and the phase timeline attributes them to the gather's label.
    #[test]
    fn cluster_accounting(l in 1usize..12, payload in 0u64..10_000) {
        for mode in [ExecMode::Sequential, ExecMode::Threads, ExecMode::Rayon] {
            let mut c = SimCluster::new(
                vec![0u64; l],
                NetworkModel::cluster_1gbps(),
                mode,
            );
            let ids = c.gather(phase::COUNT_UPLOAD, |i, w| { *w += 1; i }, |_| payload);
            prop_assert_eq!(ids, (0..l).collect::<Vec<_>>());
            prop_assert!(c.workers().iter().all(|&w| w == 1));
            let m = c.metrics();
            prop_assert_eq!(m.messages, l as u64);
            prop_assert_eq!(m.bytes_to_master, payload * l as u64);
            prop_assert_eq!(m.phases, 1);
            prop_assert!(m.worker_busy >= m.worker_compute);
            // The flat aggregate equals the single labeled entry.
            prop_assert_eq!(c.timeline().get(phase::COUNT_UPLOAD), m);
            prop_assert_eq!(c.timeline().len(), 1);
        }
    }

    /// Mutating any single byte of an encoded frame never panics the
    /// decoders: they return the original, a different valid vector, or
    /// None — never abort. (Guards the checked_mul length arithmetic:
    /// a corrupted count header must not overflow into a bogus match.)
    #[test]
    fn mutation_never_panics(deltas in prop::collection::vec((any::<u32>(), any::<u32>()), 0..100),
                             pos in 0usize..1024, bit in 0u8..8) {
        let mut bytes = wire::encode_deltas(&deltas);
        let pos = pos % bytes.len().max(1);
        if pos < bytes.len() {
            bytes[pos] ^= 1 << bit;
        }
        if let Some(decoded) = wire::decode_deltas(&bytes) {
            // A valid decode must be consistent with the mutated header.
            prop_assert_eq!(bytes.len(), 4 + 8 * decoded.len());
        }
        let _ = wire::for_each_delta(&bytes, |_, _| {});
        let _ = wire::decode_ids(&bytes);
    }

    /// Arbitrary (count, body) combinations — including counts whose byte
    /// size overflows 32 bits — are rejected without panicking.
    #[test]
    fn pathological_counts_rejected(count in any::<u32>(), body in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut bytes = Vec::with_capacity(4 + body.len());
        bytes.extend_from_slice(&count.to_le_bytes());
        bytes.extend_from_slice(&body);
        if let Some(decoded) = wire::decode_deltas(&bytes) {
            prop_assert_eq!(decoded.len(), count as usize);
            prop_assert_eq!(body.len(), 8 * count as usize);
        }
        if let Some(ids) = wire::decode_ids(&bytes) {
            prop_assert_eq!(ids.len(), count as usize);
            prop_assert_eq!(body.len(), 4 * count as usize);
        }
    }

    /// Metrics algebra: since() of merge() restores the original.
    #[test]
    fn metrics_algebra(msgs in 0u64..1000, bytes in 0u64..100_000, phases in 0u64..50) {
        let a = dim_cluster::ClusterMetrics {
            messages: msgs,
            bytes_to_master: bytes,
            phases,
            comm_time: Duration::from_micros(msgs),
            ..Default::default()
        };
        let mut b = a;
        b.merge(&a);
        prop_assert_eq!(b.since(&a), a);
    }
}

/// Loopback resilience: a two-machine process-backend cluster survives a
/// worker that truncates a frame mid-upload — the dead link is recorded,
/// the algorithm result is untouched, and later phases still complete.
#[cfg(feature = "proc-backend")]
#[test]
fn proc_cluster_survives_truncated_frame() {
    use dim_cluster::tcp::{ProcCluster, WorkerFault};

    let mut cluster = ProcCluster::local_with_faults(
        vec![10u64, 20u64],
        NetworkModel::cluster_1gbps(),
        7,
        vec![None, Some(WorkerFault::TruncateUpload { request: 1 })],
    )
    .expect("loopback cluster");

    // First gather trips machine 1's truncation fault.
    let sums = cluster.gather(phase::COUNT_UPLOAD, |_, w| *w, |_| 64);
    assert_eq!(sums, vec![10, 20], "worker state is master-side; results hold");
    assert_eq!(cluster.link_errors(), 1);
    assert_eq!(cluster.live_links(), 1);

    // Later phases keep working over the surviving link.
    cluster.broadcast(phase::SEED_BROADCAST, 128);
    let again = cluster.gather(phase::DELTA_UPLOAD, |_, w| *w + 1, |_| 32);
    assert_eq!(again, vec![11, 21]);
    assert_eq!(cluster.link_errors(), 1, "no new faults after the first");
}
