//! Property-based tests for the cluster substrate.

use std::time::Duration;

use dim_cluster::{
    phase, stream_seed, wire, ClusterBackend, ExecMode, NetworkModel, SamplerSpec, SimCluster,
    WorkerOp, WorkerReply, WorkerStats,
};
use proptest::prelude::*;

/// Generator over the full [`WorkerOp`] vocabulary.
fn any_worker_op() -> impl Strategy<Value = WorkerOp> {
    let ids = prop::collection::vec(any::<u32>(), 0..40);
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..200).prop_map(|blob| WorkerOp::LoadGraph { blob }),
        prop_oneof![
            Just(SamplerSpec::StandardIc),
            Just(SamplerSpec::StandardLt),
            Just(SamplerSpec::Subsim),
        ]
        .prop_map(|spec| WorkerOp::InitSampler { spec }),
        (any::<u32>(), prop::collection::vec(ids.clone(), 0..20))
            .prop_map(|(num_sets, elements)| WorkerOp::BuildShard { num_sets, elements }),
        any::<u64>().prop_map(|count| WorkerOp::SampleRr { count }),
        Just(WorkerOp::InitialCoverage),
        Just(WorkerOp::NewCoverage),
        any::<u32>().prop_map(|set| WorkerOp::ApplySeed { set }),
        Just(WorkerOp::CoveredCount),
        Just(WorkerOp::Stats),
        ids.prop_map(|seeds| WorkerOp::Validate { seeds }),
        (
            "[ -~]{0,60}",
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            prop_oneof![
                Just(SamplerSpec::StandardIc),
                Just(SamplerSpec::StandardLt),
                Just(SamplerSpec::Subsim),
            ],
        )
            .prop_map(
                |(dir, fingerprint, seed, theta, shard_id, shard_count, spec)| {
                    WorkerOp::PersistShard {
                        dir,
                        fingerprint,
                        seed,
                        theta,
                        shard_id,
                        shard_count,
                        spec,
                    }
                },
            ),
        Just(WorkerOp::Shutdown),
    ]
}

/// Generator over the full [`WorkerReply`] vocabulary.
fn any_worker_reply() -> impl Strategy<Value = WorkerReply> {
    prop_oneof![
        Just(WorkerReply::Ok),
        prop::collection::vec((any::<u32>(), any::<u32>()), 0..60)
            .prop_map(WorkerReply::Deltas),
        any::<u64>().prop_map(WorkerReply::Count),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(n, s, e)| {
            WorkerReply::Stats(WorkerStats {
                num_elements: n,
                total_size: s,
                edges_examined: e,
            })
        }),
        "[ -~]{0,40}".prop_map(WorkerReply::Err),
    ]
}

proptest! {
    /// Wire codec round-trips arbitrary delta vectors, and the advertised
    /// size formula matches the actual encoding.
    #[test]
    fn delta_roundtrip(deltas in prop::collection::vec((any::<u32>(), any::<u32>()), 0..300)) {
        let bytes = wire::encode_deltas(&deltas);
        prop_assert_eq!(bytes.len() as u64, wire::delta_wire_size(deltas.len()));
        prop_assert_eq!(wire::decode_deltas(&bytes).unwrap(), deltas.clone());
        let mut visited = Vec::new();
        wire::for_each_delta(&bytes, |v, d| visited.push((v, d))).unwrap();
        prop_assert_eq!(visited, deltas);
    }

    /// Id codec round-trips.
    #[test]
    fn ids_roundtrip(ids in prop::collection::vec(any::<u32>(), 0..300)) {
        let bytes = wire::encode_ids(&ids);
        prop_assert_eq!(bytes.len() as u64, wire::ids_wire_size(ids.len()));
        prop_assert_eq!(wire::decode_ids(&bytes).unwrap(), ids);
    }

    /// Truncating an encoded message is always detected.
    #[test]
    fn truncation_detected(deltas in prop::collection::vec((any::<u32>(), any::<u32>()), 1..50),
                           cut in 1usize..8) {
        let bytes = wire::encode_deltas(&deltas);
        let cut = cut.min(bytes.len());
        prop_assert!(wire::decode_deltas(&bytes[..bytes.len() - cut]).is_none());
    }

    /// Transfer time is monotone in bytes and messages.
    #[test]
    fn transfer_monotone(b1 in 0u64..1_000_000, b2 in 0u64..1_000_000,
                         m1 in 1u64..64, m2 in 1u64..64) {
        let net = NetworkModel::cluster_1gbps();
        let (lo_b, hi_b) = (b1.min(b2), b1.max(b2));
        let (lo_m, hi_m) = (m1.min(m2), m1.max(m2));
        prop_assert!(net.transfer_time(lo_m, lo_b) <= net.transfer_time(hi_m, hi_b));
        prop_assert!(net.collective_time(lo_m, lo_b) <= net.collective_time(hi_m, hi_b));
        // Collectives never cost more than point-to-point fan-in.
        prop_assert!(net.collective_time(hi_m, hi_b) <= net.transfer_time(hi_m, hi_b));
    }

    /// Stream seeds are collision-free over realistic machine ranges and
    /// differ across master seeds.
    #[test]
    fn stream_seeds_unique(master in any::<u64>()) {
        let seeds: Vec<u64> = (0..128).map(|i| stream_seed(master, i)).collect();
        let unique: std::collections::HashSet<_> = seeds.iter().collect();
        prop_assert_eq!(unique.len(), seeds.len());
        prop_assert_ne!(stream_seed(master, 0), stream_seed(master.wrapping_add(1), 0));
    }

    /// par_step visits every machine exactly once, in machine order, in
    /// every execution mode; gather accounts exactly the advertised bytes,
    /// and the phase timeline attributes them to the gather's label.
    #[test]
    fn cluster_accounting(l in 1usize..12, payload in 0u64..10_000) {
        for mode in [ExecMode::Sequential, ExecMode::Threads, ExecMode::Rayon] {
            let mut c = SimCluster::new(
                vec![0u64; l],
                NetworkModel::cluster_1gbps(),
                mode,
            );
            let ids = c.gather(phase::COUNT_UPLOAD, |i, w| { *w += 1; i }, |_| payload);
            prop_assert_eq!(ids, (0..l).collect::<Vec<_>>());
            prop_assert!(c.workers().iter().all(|&w| w == 1));
            let m = c.metrics();
            prop_assert_eq!(m.messages, l as u64);
            prop_assert_eq!(m.bytes_to_master, payload * l as u64);
            prop_assert_eq!(m.phases, 1);
            prop_assert!(m.worker_busy >= m.worker_compute);
            // The flat aggregate equals the single labeled entry.
            prop_assert_eq!(c.timeline().get(phase::COUNT_UPLOAD), m);
            prop_assert_eq!(c.timeline().len(), 1);
        }
    }

    /// Mutating any single byte of an encoded frame never panics the
    /// decoders: they return the original, a different valid vector, or
    /// None — never abort. (Guards the checked_mul length arithmetic:
    /// a corrupted count header must not overflow into a bogus match.)
    #[test]
    fn mutation_never_panics(deltas in prop::collection::vec((any::<u32>(), any::<u32>()), 0..100),
                             pos in 0usize..1024, bit in 0u8..8) {
        let mut bytes = wire::encode_deltas(&deltas);
        let pos = pos % bytes.len().max(1);
        if pos < bytes.len() {
            bytes[pos] ^= 1 << bit;
        }
        if let Some(decoded) = wire::decode_deltas(&bytes) {
            // A valid decode must be consistent with the mutated header.
            prop_assert_eq!(bytes.len(), 4 + 8 * decoded.len());
        }
        let _ = wire::for_each_delta(&bytes, |_, _| {});
        let _ = wire::decode_ids(&bytes);
    }

    /// Arbitrary (count, body) combinations — including counts whose byte
    /// size overflows 32 bits — are rejected without panicking.
    #[test]
    fn pathological_counts_rejected(count in any::<u32>(), body in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut bytes = Vec::with_capacity(4 + body.len());
        bytes.extend_from_slice(&count.to_le_bytes());
        bytes.extend_from_slice(&body);
        if let Some(decoded) = wire::decode_deltas(&bytes) {
            prop_assert_eq!(decoded.len(), count as usize);
            prop_assert_eq!(body.len(), 8 * count as usize);
        }
        if let Some(ids) = wire::decode_ids(&bytes) {
            prop_assert_eq!(ids.len(), count as usize);
            prop_assert_eq!(body.len(), 4 * count as usize);
        }
    }

    /// Every op round-trips through its canonical byte encoding.
    #[test]
    fn worker_op_roundtrip(op in any_worker_op()) {
        let bytes = op.encode();
        prop_assert_eq!(WorkerOp::decode(&bytes), Some(op));
    }

    /// Every reply round-trips, and the advertised wire size matches the
    /// payload accounting rules (deltas/counts cost bytes, envelopes are
    /// free).
    #[test]
    fn worker_reply_roundtrip(reply in any_worker_reply()) {
        let bytes = reply.encode();
        prop_assert_eq!(WorkerReply::decode(&bytes), Some(reply.clone()));
        let expected = match &reply {
            WorkerReply::Ok | WorkerReply::Err(_) => 0,
            WorkerReply::Deltas(d) => wire::delta_wire_size(d.len()),
            WorkerReply::Count(_) => wire::u64_wire_size(),
            WorkerReply::Stats(_) => 24,
        };
        prop_assert_eq!(reply.wire_size(), expected);
    }

    /// Truncating an encoded op or reply anywhere is always detected.
    #[test]
    fn op_truncation_detected(op in any_worker_op(), cut in 1usize..16) {
        let bytes = op.encode();
        let cut = cut.min(bytes.len());
        prop_assert_eq!(WorkerOp::decode(&bytes[..bytes.len() - cut]), None);
    }

    /// Flipping any single bit of an encoded op/reply never panics the
    /// decoder: it yields a (possibly different) valid value or `None`,
    /// and never a bogus allocation from corrupted length headers.
    #[test]
    fn op_mutation_never_panics(op in any_worker_op(), pos in any::<prop::sample::Index>(), bit in 0u8..8) {
        let mut bytes = op.encode();
        let pos = pos.index(bytes.len());
        bytes[pos] ^= 1 << bit;
        if let Some(decoded) = WorkerOp::decode(&bytes) {
            // A successful decode must re-encode to the same bytes: the
            // codec admits no non-canonical encodings.
            prop_assert_eq!(decoded.encode(), bytes);
        }
    }

    /// Same single-bit-flip robustness for replies.
    #[test]
    fn reply_mutation_never_panics(reply in any_worker_reply(), pos in any::<prop::sample::Index>(), bit in 0u8..8) {
        let mut bytes = reply.encode();
        let pos = pos.index(bytes.len());
        bytes[pos] ^= 1 << bit;
        if let Some(decoded) = WorkerReply::decode(&bytes) {
            prop_assert_eq!(decoded.encode(), bytes);
        }
    }

    /// Metrics algebra: since() of merge() restores the original.
    #[test]
    fn metrics_algebra(msgs in 0u64..1000, bytes in 0u64..100_000, phases in 0u64..50) {
        let a = dim_cluster::ClusterMetrics {
            messages: msgs,
            bytes_to_master: bytes,
            phases,
            comm_time: Duration::from_micros(msgs),
            ..Default::default()
        };
        let mut b = a;
        b.merge(&a);
        prop_assert_eq!(b.since(&a), a);
    }
}

/// Property tests for the v2 rendezvous handshake and liveness codecs
/// (JOIN / WELCOME / HELLO / HEARTBEAT / REJECT): every frame round-trips
/// its canonical fixed-size encoding, truncation and trailing bytes are
/// always detected (the decoders are strict), and single-bit corruption
/// never panics — it yields `None` or another value that re-encodes to
/// exactly the mutated bytes (no non-canonical encodings).
#[cfg(feature = "proc-backend")]
mod rendezvous_codecs {
    use dim_cluster::rendezvous::{
        Heartbeat, Hello, JoinHello, Reject, RejectReason, Welcome,
    };
    use proptest::prelude::*;

    fn any_reason() -> impl Strategy<Value = RejectReason> {
        prop_oneof![
            Just(RejectReason::Version),
            Just(RejectReason::OutOfRange),
            Just(RejectReason::Duplicate),
            Just(RejectReason::SessionFull),
            Just(RejectReason::SeedMismatch),
            Just(RejectReason::Unauthorized),
        ]
    }

    fn any_digest() -> impl Strategy<Value = [u8; 32]> {
        any::<[u8; 32]>()
    }

    /// `u32::MAX` is the wire value of "any slot", so `Some(u32::MAX)` is
    /// not representable — the generator mirrors the codec's domain.
    fn any_requested() -> impl Strategy<Value = Option<u32>> {
        prop::option::of(0u32..u32::MAX)
    }

    /// Checks strictness on one encoding: every truncation prefix fails,
    /// and so does one trailing byte.
    fn assert_strict<T: std::fmt::Debug>(
        bytes: &[u8],
        decode: impl Fn(&[u8]) -> Option<T>,
    ) -> Result<(), TestCaseError> {
        for cut in 1..=bytes.len() {
            prop_assert!(
                decode(&bytes[..bytes.len() - cut]).is_none(),
                "truncated by {cut} must not decode"
            );
        }
        let mut padded = bytes.to_vec();
        padded.push(0);
        prop_assert!(decode(&padded).is_none(), "trailing byte must not decode");
        Ok(())
    }

    proptest! {
        /// JOIN round-trips, including the any-slot sentinel.
        #[test]
        fn join_hello_roundtrip(version in any::<u8>(), caps in any::<u8>(),
                                requested in any_requested(), auth in any_digest()) {
            let join = JoinHello { version, caps, requested, auth };
            let bytes = join.encode();
            prop_assert_eq!(bytes.len(), 38);
            prop_assert_eq!(JoinHello::decode(&bytes), Some(join));
            assert_strict(&bytes, JoinHello::decode)?;
        }

        /// WELCOME round-trips.
        #[test]
        fn welcome_roundtrip(session in any::<u64>(), machine_id in any::<u32>(),
                             cluster_size in any::<u32>(), master_seed in any::<u64>()) {
            let welcome = Welcome { session, machine_id, cluster_size, master_seed };
            let bytes = welcome.encode();
            prop_assert_eq!(bytes.len(), 24);
            prop_assert_eq!(Welcome::decode(&bytes), Some(welcome));
            assert_strict(&bytes, Welcome::decode)?;
        }

        /// HELLO round-trips.
        #[test]
        fn hello_roundtrip(version in any::<u8>(), caps in any::<u8>(),
                           machine_id in any::<u32>(), stream_seed in any::<u64>()) {
            let hello = Hello { version, caps, machine_id, stream_seed };
            let bytes = hello.encode();
            prop_assert_eq!(bytes.len(), 14);
            prop_assert_eq!(Hello::decode(&bytes), Some(hello));
            assert_strict(&bytes, Hello::decode)?;
        }

        /// HEARTBEAT round-trips.
        #[test]
        fn heartbeat_roundtrip(session in any::<u64>(), seq in any::<u64>()) {
            let hb = Heartbeat { session, seq };
            let bytes = hb.encode();
            prop_assert_eq!(bytes.len(), 16);
            prop_assert_eq!(Heartbeat::decode(&bytes), Some(hb));
            assert_strict(&bytes, Heartbeat::decode)?;
        }

        /// REJECT round-trips every reason code.
        #[test]
        fn reject_roundtrip(reason in any_reason()) {
            let reject = Reject { reason };
            let bytes = reject.encode();
            prop_assert_eq!(bytes.len(), 1);
            prop_assert_eq!(Reject::decode(&bytes), Some(reject));
            assert_strict(&bytes, Reject::decode)?;
        }

        /// Single-bit corruption of any handshake frame never panics and
        /// never produces a non-canonical decode.
        #[test]
        fn handshake_mutation_never_panics(
            join in (any::<u8>(), any::<u8>(), any_requested(), any_digest())
                .prop_map(|(version, caps, requested, auth)| JoinHello {
                    version, caps, requested, auth,
                }),
            welcome in (any::<u64>(), any::<u32>(), any::<u32>(), any::<u64>())
                .prop_map(|(session, machine_id, cluster_size, master_seed)| Welcome {
                    session, machine_id, cluster_size, master_seed,
                }),
            reason in any_reason(),
            pos in any::<prop::sample::Index>(),
            bit in 0u8..8,
        ) {
            let mut join_bytes = join.encode();
            let p = pos.index(join_bytes.len());
            join_bytes[p] ^= 1 << bit;
            if let Some(decoded) = JoinHello::decode(&join_bytes) {
                prop_assert_eq!(decoded.encode(), join_bytes);
            }
            let mut welcome_bytes = welcome.encode();
            let p = pos.index(welcome_bytes.len());
            welcome_bytes[p] ^= 1 << bit;
            if let Some(decoded) = Welcome::decode(&welcome_bytes) {
                prop_assert_eq!(decoded.encode(), welcome_bytes);
            }
            let mut reject_bytes = Reject { reason }.encode();
            let p = pos.index(reject_bytes.len());
            reject_bytes[p] ^= 1 << bit;
            if let Some(decoded) = Reject::decode(&reject_bytes) {
                prop_assert_eq!(decoded.encode(), reject_bytes);
            }
        }
    }
}

/// Loopback fail-stop: state is resident in the worker endpoints, so a
/// worker that truncates an upload frame kills its link, the round fails
/// with a typed error naming the machine, and later rounds refuse to run
/// without that machine's shard.
#[cfg(feature = "proc-backend")]
#[test]
fn proc_cluster_fail_stops_on_truncated_frame() {
    use dim_cluster::tcp::{ProcCluster, WorkerFault};
    use dim_cluster::{OpCluster, OpExecutor, WireErrorKind, WorkerOp, WorkerReply};

    /// Minimal resident state: `SampleRr` accumulates, `CoveredCount`
    /// reports the tally.
    struct Tally(u64);

    impl OpExecutor for Tally {
        fn execute(&mut self, op: &WorkerOp) -> WorkerReply {
            match op {
                WorkerOp::SampleRr { count } => {
                    self.0 += count;
                    WorkerReply::Ok
                }
                WorkerOp::CoveredCount => WorkerReply::Count(self.0),
                _ => WorkerReply::Err("unsupported".into()),
            }
        }
    }

    let mut cluster = ProcCluster::local_with_faults(
        2,
        NetworkModel::cluster_1gbps(),
        7,
        |i| Tally(10 * (i as u64 + 1)),
        vec![None, Some(WorkerFault::TruncateUpload { request: 2 })],
    )
    .expect("loopback cluster");

    // The first op round completes on both links.
    let replies = cluster
        .control(phase::RR_SAMPLING, |_| WorkerOp::SampleRr { count: 5 })
        .expect("clean first round");
    assert_eq!(replies, vec![WorkerReply::Ok, WorkerReply::Ok]);

    // The second round trips machine 1's truncation fault mid-upload.
    let err = cluster
        .op_gather(phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount)
        .unwrap_err();
    assert_eq!(err.phase, phase::COUNT_UPLOAD);
    assert_eq!(err.machine, Some(1));
    assert_eq!(cluster.link_errors(), 1);
    assert_eq!(cluster.live_links(), 1);

    // The dead machine's shard is unreachable, so every later round is a
    // typed link error — no silent partial answers.
    let err = cluster
        .op_gather(phase::DELTA_UPLOAD, |_| WorkerOp::CoveredCount)
        .unwrap_err();
    assert_eq!(err.kind, WireErrorKind::Link);
    assert_eq!(err.machine, Some(1));
    assert_eq!(cluster.link_errors(), 1, "no new faults after the first");
}

/// Property tests for the chaos layer: the [`dim_cluster::FaultPlan`]
/// binary codec is canonical and hostile-input safe, the JSON form
/// round-trips, and a plan's chaos seed fully determines the injected
/// event sequence — the contract that makes `dim chaos` replays and the
/// recovery acceptance runs reproducible.
mod fault_plans {
    use dim_cluster::{
        phase, ExecMode, FaultInjector, FaultPlan, LinkFault, NetworkModel, OpCluster, OpExecutor,
        Partition, SimCluster, WorkerOp, WorkerReply,
    };
    use proptest::prelude::*;

    /// Probabilities are ppm-scale: the codec rejects anything above 10⁶.
    fn any_link_fault() -> impl Strategy<Value = LinkFault> {
        (
            0u32..16,
            0u64..1_000_000,
            0u64..1_000_000,
            0u32..=1_000_000,
            0u64..1_000_000,
            0u32..=1_000_000,
            0u64..10_000,
            prop::option::of(any::<u64>()),
        )
            .prop_map(
                |(
                    machine,
                    extra_latency_us,
                    jitter_us,
                    loss_prob_ppm,
                    loss_retry_us,
                    stall_prob_ppm,
                    stall_ms,
                    kill_at_round,
                )| LinkFault {
                    machine,
                    extra_latency_us,
                    jitter_us,
                    loss_prob_ppm,
                    loss_retry_us,
                    stall_prob_ppm,
                    stall_ms,
                    kill_at_round,
                },
            )
    }

    fn any_partition() -> impl Strategy<Value = Partition> {
        (
            0u64..64,
            0u64..64,
            0u64..1_000_000,
            prop::collection::vec(0u32..16, 0..8),
        )
            .prop_map(|(from_round, to_round, heal_us, machines)| Partition {
                from_round,
                to_round,
                heal_us,
                machines,
            })
    }

    fn any_fault_plan() -> impl Strategy<Value = FaultPlan> {
        (
            any::<u64>(),
            prop::collection::vec(any_link_fault(), 0..12),
            prop::collection::vec(any_partition(), 0..6),
        )
            .prop_map(|(chaos_seed, link_faults, partitions)| FaultPlan {
                chaos_seed,
                link_faults,
                partitions,
            })
    }

    /// Minimal resident op state so a [`SimCluster`] can run real op
    /// rounds under an armed injector.
    struct Tally(u64);

    impl OpExecutor for Tally {
        fn execute(&mut self, op: &WorkerOp) -> WorkerReply {
            match op {
                WorkerOp::SampleRr { count } => {
                    self.0 += count;
                    WorkerReply::Ok
                }
                WorkerOp::CoveredCount => WorkerReply::Count(self.0),
                _ => WorkerReply::Err("unsupported".into()),
            }
        }
    }

    proptest! {
        /// Binary codec round-trips every well-formed plan.
        #[test]
        fn plan_roundtrip(plan in any_fault_plan()) {
            let bytes = plan.encode();
            prop_assert_eq!(FaultPlan::decode(&bytes), Some(plan));
        }

        /// The `dim chaos --plan` JSON form round-trips too.
        #[test]
        fn plan_json_roundtrip(plan in any_fault_plan()) {
            let text = plan.to_json();
            prop_assert_eq!(FaultPlan::from_json(&text), Ok(plan));
        }

        /// Truncating an encoded plan anywhere is always detected.
        #[test]
        fn plan_truncation_detected(plan in any_fault_plan(), cut in 1usize..64) {
            let bytes = plan.encode();
            let cut = cut.min(bytes.len());
            prop_assert_eq!(FaultPlan::decode(&bytes[..bytes.len() - cut]), None);
            // And so is a trailing byte: the codec is strict.
            let mut padded = bytes;
            padded.push(0);
            prop_assert_eq!(FaultPlan::decode(&padded), None);
        }

        /// Flipping any single bit of an encoded plan never panics the
        /// decoder, and anything that still decodes re-encodes to exactly
        /// the mutated bytes — the codec admits no non-canonical forms
        /// (this is what protects the count headers from hostile
        /// allocations).
        #[test]
        fn plan_mutation_never_panics(plan in any_fault_plan(),
                                      pos in any::<prop::sample::Index>(),
                                      bit in 0u8..8) {
            let mut bytes = plan.encode();
            let pos = pos.index(bytes.len());
            bytes[pos] ^= 1 << bit;
            if let Some(decoded) = FaultPlan::decode(&bytes) {
                prop_assert_eq!(decoded.encode(), bytes);
            }
        }

        /// The chaos seed fully determines the schedule: two injectors
        /// built from the same plan emit byte-identical event logs when
        /// driven through the same op rounds on a [`SimCluster`] —
        /// independent of execution mode, which is exactly why a replayed
        /// `dim chaos` plan reproduces a production incident.
        #[test]
        fn same_chaos_seed_same_event_sequence(chaos_seed in any::<u64>(),
                                               rounds in 1usize..6,
                                               machines in 2usize..6) {
            // Kill-free, high-probability schedule: every round injects
            // on most links, so log equality is never vacuous.
            let plan = FaultPlan {
                chaos_seed,
                link_faults: (0..machines as u32)
                    .map(|m| LinkFault {
                        machine: m,
                        extra_latency_us: 200,
                        jitter_us: 100,
                        loss_prob_ppm: 500_000,
                        loss_retry_us: 700,
                        stall_prob_ppm: 300_000,
                        stall_ms: 1,
                        ..LinkFault::default()
                    })
                    .collect(),
                partitions: vec![Partition {
                    from_round: 1,
                    to_round: 3,
                    heal_us: 400,
                    machines: vec![0],
                }],
            };
            let mut logs = Vec::new();
            for mode in [ExecMode::Sequential, ExecMode::Rayon] {
                let workers: Vec<Tally> = (0..machines).map(|i| Tally(i as u64)).collect();
                let mut cluster =
                    SimCluster::new(workers, NetworkModel::cluster_1gbps(), mode)
                        .with_faults(FaultInjector::new(plan.clone(), machines));
                for _ in 0..rounds {
                    let replies = cluster
                        .control(phase::RR_SAMPLING, |_| WorkerOp::SampleRr { count: 3 })
                        .expect("kill-free plan fails no round");
                    prop_assert_eq!(replies.len(), machines);
                }
                let inj = cluster.fault_injector().expect("injector stays armed");
                prop_assert_eq!(inj.round(), rounds as u64);
                prop_assert!(!inj.events().is_empty(), "no events fired");
                logs.push(inj.events().to_vec());
            }
            prop_assert_eq!(&logs[0], &logs[1], "same plan, different schedule");
        }
    }
}
