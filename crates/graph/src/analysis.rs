//! Descriptive statistics over graphs (Table III columns).

use crate::csr::Graph;

/// Summary statistics of a graph, used by the Table III reproduction and by
/// examples to describe their workloads.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Average degree `m / n`.
    pub avg_degree: f64,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Number of nodes with no incoming edges.
    pub sources: usize,
    /// Number of nodes with no outgoing edges.
    pub sinks: usize,
    /// True when for every edge `(u,v)` the reverse `(v,u)` exists too.
    pub symmetric: bool,
}

impl GraphStats {
    /// Computes statistics in a single pass over the adjacency arrays.
    pub fn compute(g: &Graph) -> Self {
        let mut max_in = 0;
        let mut max_out = 0;
        let mut sources = 0;
        let mut sinks = 0;
        let mut symmetric = true;
        for u in g.nodes() {
            let din = g.in_degree(u);
            let dout = g.out_degree(u);
            max_in = max_in.max(din);
            max_out = max_out.max(dout);
            if din == 0 {
                sources += 1;
            }
            if dout == 0 {
                sinks += 1;
            }
            if symmetric {
                symmetric = g
                    .out_neighbors(u)
                    .iter()
                    .all(|&v| g.out_neighbors(v).binary_search(&u).is_ok());
            }
        }
        GraphStats {
            nodes: g.num_nodes(),
            edges: g.num_edges(),
            avg_degree: if g.num_nodes() == 0 {
                0.0
            } else {
                g.num_edges() as f64 / g.num_nodes() as f64
            },
            max_in_degree: max_in,
            max_out_degree: max_out,
            sources,
            sinks,
            symmetric,
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} avg_deg={:.1} max_in={} max_out={} {}",
            self.nodes,
            self.edges,
            self.avg_degree,
            self.max_in_degree,
            self.max_out_degree,
            if self.symmetric { "undirected" } else { "directed" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, WeightModel};

    #[test]
    fn stats_of_path() {
        // 0 -> 1 -> 2
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let s = GraphStats::compute(&b.build(WeightModel::WeightedCascade));
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 2);
        assert_eq!(s.sources, 1);
        assert_eq!(s.sinks, 1);
        assert!(!s.symmetric);
        assert!((s.avg_degree - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn detects_symmetry() {
        let mut b = GraphBuilder::new(2);
        b.add_undirected_edge(0, 1);
        let s = GraphStats::compute(&b.build(WeightModel::WeightedCascade));
        assert!(s.symmetric);
    }

    #[test]
    fn display_contains_counts() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let s = GraphStats::compute(&b.build(WeightModel::WeightedCascade));
        let text = s.to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("m=1"));
    }
}

/// Standard PageRank via power iteration: rank flows along out-edges, so
/// nodes with many important in-links score high (authority).
///
/// `damping` is the usual teleport factor (0.85 classically); iteration
/// stops after `max_iters` or when the L1 change drops below `tol`.
pub fn pagerank(g: &Graph, damping: f64, max_iters: usize, tol: f64) -> Vec<f64> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..max_iters {
        // Dangling mass (nodes without out-edges) is spread uniformly.
        let dangling: f64 = g
            .nodes()
            .filter(|&u| g.out_degree(u) == 0)
            .map(|u| rank[u as usize])
            .sum();
        let base = (1.0 - damping) * uniform + damping * dangling * uniform;
        next.fill(base);
        for u in g.nodes() {
            let d = g.out_degree(u);
            if d == 0 {
                continue;
            }
            let share = damping * rank[u as usize] / d as f64;
            for &v in g.out_neighbors(u) {
                next[v as usize] += share;
            }
        }
        let delta: f64 = rank
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < tol {
            break;
        }
    }
    rank
}

/// Influence PageRank: PageRank computed on the *transposed* graph, so
/// rank flows along in-edges and nodes that can *reach* many others score
/// high. This is the orientation the PageRank seeding heuristic for
/// influence maximization needs — standard PageRank measures being
/// influenced, not influencing.
pub fn influence_pagerank(g: &Graph, damping: f64, max_iters: usize, tol: f64) -> Vec<f64> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..max_iters {
        let dangling: f64 = g
            .nodes()
            .filter(|&u| g.in_degree(u) == 0)
            .map(|u| rank[u as usize])
            .sum();
        let base = (1.0 - damping) * uniform + damping * dangling * uniform;
        next.fill(base);
        for v in g.nodes() {
            let d = g.in_degree(v);
            if d == 0 {
                continue;
            }
            let share = damping * rank[v as usize] / d as f64;
            for &u in g.in_neighbors(v) {
                next[u as usize] += share;
            }
        }
        let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < tol {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod pagerank_tests {
    use super::*;
    use crate::{GraphBuilder, WeightModel};

    #[test]
    fn sums_to_one() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.add_edge(3, 0);
        let g = b.build(WeightModel::WeightedCascade);
        let pr = pagerank(&g, 0.85, 100, 1e-12);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "Σ = {total}");
    }

    #[test]
    fn hub_target_ranks_highest() {
        // Everyone points at node 4.
        let mut b = GraphBuilder::new(5);
        for u in 0..4 {
            b.add_edge(u, 4);
        }
        let g = b.build(WeightModel::WeightedCascade);
        let pr = pagerank(&g, 0.85, 100, 1e-12);
        let best = (0..5).max_by(|&a, &b| pr[a].total_cmp(&pr[b])).unwrap();
        assert_eq!(best, 4);
    }

    #[test]
    fn influence_pagerank_ranks_sources() {
        // Everyone points at node 4: standard PR crowns 4, influence PR
        // crowns the pointers.
        let mut b = GraphBuilder::new(5);
        for u in 0..4 {
            b.add_edge(u, 4);
        }
        let g = b.build(WeightModel::WeightedCascade);
        let ipr = influence_pagerank(&g, 0.85, 100, 1e-12);
        let worst = (0..5).min_by(|&a, &b| ipr[a].total_cmp(&ipr[b])).unwrap();
        assert_eq!(worst, 4, "the sink influences nobody");
        assert!(ipr[0] > ipr[4]);
    }

    #[test]
    fn influence_pagerank_sums_to_one() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let g = b.build(WeightModel::WeightedCascade);
        let total: f64 = influence_pagerank(&g, 0.85, 100, 1e-12).iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn symmetric_cycle_uniform() {
        let mut b = GraphBuilder::new(4);
        for u in 0..4u32 {
            b.add_edge(u, (u + 1) % 4);
        }
        let g = b.build(WeightModel::WeightedCascade);
        let pr = pagerank(&g, 0.85, 200, 1e-14);
        for &r in &pr {
            assert!((r - 0.25).abs() < 1e-9);
        }
    }
}
