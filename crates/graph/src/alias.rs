//! Walker alias method for O(1) sampling from a discrete distribution.
//!
//! Used by the Chung-Lu generator (sampling edge endpoints proportional to
//! node weights) and by the LT reverse random walk (sampling an in-neighbor
//! with probability proportional to the edge weight) when a node is visited
//! many times.

use rand::Rng;

/// Precomputed alias table over `0..len` with probabilities proportional to
/// the weights supplied at construction.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights. Weights need not be
    /// normalized. O(len) construction.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/NaN value, or sums
    /// to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table over empty support");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must be positive and finite (sum = {total})"
        );
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0, "negative weight {w}");
                w * scale
            })
            .collect();
        let mut alias = vec![0u32; n];
        // Partition indices into under- and over-full buckets.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are exactly 1 up to rounding.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no outcomes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index in O(1).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    #[test]
    fn uniform_weights_uniform_samples() {
        let t = AliasTable::new(&[1.0, 1.0, 1.0, 1.0]);
        let mut rng = Pcg64::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "counts {counts:?}");
        }
    }

    #[test]
    fn skewed_weights_respected() {
        let t = AliasTable::new(&[9.0, 1.0]);
        let mut rng = Pcg64::seed_from_u64(2);
        let hits = (0..50_000).filter(|_| t.sample(&mut rng) == 0).count();
        let frac = hits as f64 / 50_000.0;
        assert!((frac - 0.9).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn zero_weight_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0]);
        let mut rng = Pcg64::seed_from_u64(3);
        for _ in 0..10_000 {
            assert_eq!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn singleton() {
        let t = AliasTable::new(&[42.0]);
        let mut rng = Pcg64::seed_from_u64(4);
        assert_eq!(t.sample(&mut rng), 0);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic]
    fn rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn rejects_empty() {
        AliasTable::new(&[]);
    }
}
