//! Watts–Strogatz small-world graphs.

use rand::{Rng, SeedableRng};
use rand_pcg::Pcg64;

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::weights::WeightModel;

/// Generates an undirected (symmetrized) Watts–Strogatz small-world graph:
/// a ring lattice where each node connects to its `k` nearest neighbors
/// (`k/2` on each side), with each edge rewired to a random endpoint with
/// probability `beta`.
///
/// Useful as a low-skew contrast workload to the power-law generators: RIS
/// behaves very differently when no hubs exist.
///
/// # Panics
/// Panics if `k` is odd, `k == 0`, `n ≤ k`, or `beta ∉ [0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, model: WeightModel, seed: u64) -> Graph {
    assert!(k > 0 && k.is_multiple_of(2), "k must be positive and even, got {k}");
    assert!(n > k, "need n > k");
    assert!((0.0..=1.0).contains(&beta), "beta out of [0,1]: {beta}");
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut edges = std::collections::HashSet::with_capacity(n * k / 2);
    for u in 0..n {
        for j in 1..=k / 2 {
            let v = (u + j) % n;
            let (mut a, mut b) = (u as u32, v as u32);
            if rng.gen::<f64>() < beta {
                // Rewire the far endpoint to a uniform random node avoiding
                // self-loops; duplicates are skipped below.
                b = rng.gen_range(0..n as u32);
                if a == b {
                    continue;
                }
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            edges.insert((a, b));
        }
    }
    let mut builder = GraphBuilder::with_capacity(n, edges.len() * 2);
    for (a, b) in edges {
        builder.add_undirected_edge(a, b);
    }
    builder.build(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_when_beta_zero() {
        let g = watts_strogatz(20, 4, 0.0, WeightModel::WeightedCascade, 1);
        assert_eq!(g.num_nodes(), 20);
        // Pure ring lattice: every node has degree exactly k.
        for u in g.nodes() {
            assert_eq!(g.out_degree(u), 4);
        }
    }

    #[test]
    fn rewiring_changes_structure() {
        let a = watts_strogatz(200, 6, 0.0, WeightModel::WeightedCascade, 2);
        let b = watts_strogatz(200, 6, 0.5, WeightModel::WeightedCascade, 2);
        assert_ne!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn symmetric() {
        let g = watts_strogatz(100, 4, 0.3, WeightModel::WeightedCascade, 3);
        for (u, v, _) in g.edges() {
            assert!(g.out_neighbors(v).contains(&u));
        }
    }

    #[test]
    #[should_panic]
    fn rejects_odd_k() {
        watts_strogatz(10, 3, 0.1, WeightModel::WeightedCascade, 1);
    }
}
