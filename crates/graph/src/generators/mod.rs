//! Synthetic social-network generators.
//!
//! Real OSN snapshots (the SNAP datasets in the paper's Table III) cannot be
//! redistributed with this repository, so the benchmark harness generates
//! graphs whose size, directedness, and degree skew match each dataset's
//! published statistics — see [`profiles`]. The individual generators are
//! also part of the public API for users building their own workloads.

pub mod barabasi_albert;
pub mod chung_lu;
pub mod erdos_renyi;
pub mod profiles;
pub mod watts_strogatz;

pub use barabasi_albert::barabasi_albert;
pub use chung_lu::{chung_lu_directed, chung_lu_undirected};
pub use erdos_renyi::erdos_renyi;
pub use profiles::DatasetProfile;
pub use watts_strogatz::watts_strogatz;
