//! Chung-Lu random graphs with power-law expected degrees.
//!
//! The Chung-Lu model draws edges with probability proportional to the
//! product of endpoint weights, matching an arbitrary expected degree
//! sequence. We use the standard `m`-edge sampling formulation: draw `m`
//! edges with the source chosen ∝ out-weight and the target ∝ in-weight
//! via alias tables, deduplicating. This is how large directed social graphs
//! (Google+, LiveJournal, Twitter in Table III) are approximated at
//! configurable scale.

use rand::SeedableRng;
use rand_pcg::Pcg64;

use crate::alias::AliasTable;
use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::weights::WeightModel;

/// Power-law weight sequence `w_i = c · (i + i0)^(−1/(γ−1))` scaled so that
/// the weights sum to `target_sum`. Exponent `γ` is the degree-distribution
/// exponent (2 < γ ≤ 3 for social networks).
pub fn power_law_weights(n: usize, gamma: f64, target_sum: f64) -> Vec<f64> {
    assert!(gamma > 2.0, "power-law exponent must exceed 2, got {gamma}");
    let alpha = 1.0 / (gamma - 1.0);
    let mut w: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
    let sum: f64 = w.iter().sum();
    let scale = target_sum / sum;
    for x in &mut w {
        *x *= scale;
    }
    w
}

/// Generates a directed Chung-Lu graph with `n` nodes and (approximately,
/// after dedup) `m` edges. Out-weights and in-weights both follow a power
/// law with exponent `gamma`, but the in-weight sequence is assigned to a
/// *rotated* node order so hubs of the two directions only partially
/// coincide — mirroring follower graphs where popular accounts are not
/// necessarily prolific followers.
pub fn chung_lu_directed(
    n: usize,
    m: usize,
    gamma: f64,
    model: WeightModel,
    seed: u64,
) -> Graph {
    assert!(n >= 2);
    let w_out = power_law_weights(n, gamma, m as f64);
    let mut w_in = w_out.clone();
    w_in.rotate_right(n / 3);
    sample_edges(n, m, &w_out, &w_in, false, model, seed)
}

/// Generates an undirected (symmetrized) Chung-Lu graph: each sampled edge
/// is inserted in both directions. `m` counts *undirected* edges; the CSR
/// graph ends up with about `2·m` directed edges.
pub fn chung_lu_undirected(
    n: usize,
    m: usize,
    gamma: f64,
    model: WeightModel,
    seed: u64,
) -> Graph {
    assert!(n >= 2);
    let w = power_law_weights(n, gamma, m as f64);
    sample_edges(n, m, &w, &w, true, model, seed)
}

fn sample_edges(
    n: usize,
    m: usize,
    w_out: &[f64],
    w_in: &[f64],
    symmetric: bool,
    model: WeightModel,
    seed: u64,
) -> Graph {
    let src_table = AliasTable::new(w_out);
    let dst_table = AliasTable::new(w_in);
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut builder = GraphBuilder::with_capacity(n, if symmetric { 2 * m } else { m });
    let mut produced = 0usize;
    let mut attempts = 0usize;
    // Bound attempts: heavy dedup on tiny dense graphs must not spin forever.
    let max_attempts = 20 * m + 1000;
    while produced < m && attempts < max_attempts {
        attempts += 1;
        let u = src_table.sample(&mut rng) as u32;
        let v = dst_table.sample(&mut rng) as u32;
        if u == v {
            continue;
        }
        let key = if symmetric { (u.min(v), u.max(v)) } else { (u, v) };
        if seen.insert(key) {
            if symmetric {
                builder.add_undirected_edge(u, v);
            } else {
                builder.add_edge(u, v);
            }
            produced += 1;
        }
    }
    builder.build(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_target() {
        let w = power_law_weights(1000, 2.5, 5000.0);
        let sum: f64 = w.iter().sum();
        assert!((sum - 5000.0).abs() < 1e-6);
        // Decreasing sequence.
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
    }

    #[test]
    fn directed_edge_count_close() {
        let g = chung_lu_directed(2000, 10_000, 2.3, WeightModel::WeightedCascade, 3);
        assert_eq!(g.num_nodes(), 2000);
        assert!(
            g.num_edges() >= 9_000,
            "dedup removed too many edges: {}",
            g.num_edges()
        );
    }

    #[test]
    fn undirected_symmetric() {
        let g = chung_lu_undirected(500, 2000, 2.5, WeightModel::WeightedCascade, 4);
        for (u, v, _) in g.edges() {
            assert!(g.out_neighbors(v).contains(&u));
        }
    }

    #[test]
    fn power_law_tail_present() {
        let g = chung_lu_directed(5000, 50_000, 2.2, WeightModel::WeightedCascade, 5);
        let max_in = g.nodes().map(|v| g.in_degree(v)).max().unwrap();
        let avg_in = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(
            max_in as f64 > 10.0 * avg_in,
            "expected heavy tail: max {max_in}, avg {avg_in}"
        );
    }

    #[test]
    fn deterministic() {
        let a = chung_lu_directed(300, 1500, 2.5, WeightModel::WeightedCascade, 6);
        let b = chung_lu_directed(300, 1500, 2.5, WeightModel::WeightedCascade, 6);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn rejects_small_gamma() {
        power_law_weights(10, 1.5, 10.0);
    }
}
