//! Erdős–Rényi G(n, m) random graphs.

use rand::{Rng, SeedableRng};
use rand_pcg::Pcg64;

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::weights::WeightModel;

/// Generates a directed G(n, m) graph: `m` edges sampled uniformly among all
/// ordered pairs, without self-loops. Duplicates are resampled, so the
/// result has exactly `m` distinct edges as long as `m ≤ n·(n−1)`.
///
/// # Panics
/// Panics if `n < 2` or `m > n·(n−1)`.
pub fn erdos_renyi(n: usize, m: usize, model: WeightModel, seed: u64) -> Graph {
    assert!(n >= 2, "need at least two nodes");
    let max_edges = n * (n - 1);
    assert!(m <= max_edges, "m = {m} exceeds n(n-1) = {max_edges}");
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut builder = GraphBuilder::with_capacity(n, m);
    while seen.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v && seen.insert((u, v)) {
            builder.add_edge(u, v);
        }
    }
    builder.build(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count() {
        let g = erdos_renyi(100, 500, WeightModel::WeightedCascade, 7);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 500);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = erdos_renyi(50, 200, WeightModel::Uniform(0.1), 42);
        let b = erdos_renyi(50, 200, WeightModel::Uniform(0.1), 42);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn different_seed_differs() {
        let a = erdos_renyi(50, 200, WeightModel::Uniform(0.1), 1);
        let b = erdos_renyi(50, 200, WeightModel::Uniform(0.1), 2);
        assert_ne!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn dense_saturation() {
        // m = n(n-1): complete directed graph must terminate.
        let g = erdos_renyi(6, 30, WeightModel::Uniform(0.5), 3);
        assert_eq!(g.num_edges(), 30);
    }
}
