//! Barabási–Albert preferential attachment.

use rand::{Rng, SeedableRng};
use rand_pcg::Pcg64;

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::weights::WeightModel;

/// Generates an undirected (symmetrized) Barabási–Albert graph: starts from
/// a clique of `m_attach + 1` nodes, then each new node attaches to
/// `m_attach` existing nodes chosen proportionally to their current degree.
///
/// The result has a power-law degree tail (exponent ≈ 3), the hallmark of
/// friendship graphs such as the Facebook dataset in Table III.
///
/// # Panics
/// Panics if `m_attach == 0` or `n ≤ m_attach`.
pub fn barabasi_albert(n: usize, m_attach: usize, model: WeightModel, seed: u64) -> Graph {
    assert!(m_attach >= 1, "attachment count must be positive");
    assert!(n > m_attach, "need n > m_attach");
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, 2 * n * m_attach);
    // `targets` holds one entry per edge endpoint; sampling uniformly from it
    // is sampling proportional to degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m_attach);

    let seed_nodes = m_attach + 1;
    for u in 0..seed_nodes as u32 {
        for v in 0..u {
            builder.add_undirected_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    let mut picked = Vec::with_capacity(m_attach);
    for u in seed_nodes as u32..n as u32 {
        picked.clear();
        // Rejection-sample m_attach distinct targets.
        while picked.len() < m_attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            builder.add_undirected_edge(u, t);
            endpoints.push(u);
            endpoints.push(t);
        }
    }
    builder.build(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_and_edge_counts() {
        let n = 500;
        let m = 4;
        let g = barabasi_albert(n, m, WeightModel::WeightedCascade, 11);
        assert_eq!(g.num_nodes(), n);
        // Undirected edges: clique m(m+1)/2 plus m per subsequent node;
        // each stored twice (directed both ways).
        let expected = 2 * (m * (m + 1) / 2 + (n - m - 1) * m);
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn symmetric() {
        let g = barabasi_albert(200, 3, WeightModel::WeightedCascade, 5);
        for (u, v, _) in g.edges() {
            assert!(
                g.out_neighbors(v).contains(&u),
                "missing reverse of ({u},{v})"
            );
        }
    }

    #[test]
    fn has_skewed_degrees() {
        let g = barabasi_albert(2000, 3, WeightModel::WeightedCascade, 1);
        let max_deg = g.nodes().map(|u| g.out_degree(u)).max().unwrap();
        let avg = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(
            max_deg as f64 > 5.0 * avg,
            "max {max_deg} should exceed 5x avg {avg}"
        );
    }

    #[test]
    fn deterministic() {
        let a = barabasi_albert(100, 2, WeightModel::WeightedCascade, 9);
        let b = barabasi_albert(100, 2, WeightModel::WeightedCascade, 9);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }
}
