//! Dataset profiles substituting for the paper's SNAP datasets (Table III).
//!
//! | Paper dataset | #nodes | #edges | Type       | Avg degree |
//! |---------------|--------|--------|------------|------------|
//! | Facebook      | 4.0K   | 88.2K  | Undirected | 43.7       |
//! | Google+       | 107.6K | 13.7M  | Directed   | 254.1      |
//! | LiveJournal   | 4.8M   | 69.0M  | Directed   | 28.5       |
//! | Twitter       | 41.7M  | 1.5G   | Directed   | 70.5       |
//!
//! We cannot ship the real dumps, so each profile is a synthetic generator
//! matched to the dataset's node count, average degree, directedness, and a
//! heavy power-law tail. A `scale` factor shrinks node counts uniformly
//! (preserving average degree) so experiments stay tractable on small hosts;
//! the benchmark harness records the scale used. Speedup ratios — the
//! quantity the paper reports — are insensitive to the scale because every
//! machine count runs the identical workload.

use crate::csr::Graph;
use crate::generators::{barabasi_albert, chung_lu_directed};
use crate::weights::WeightModel;

/// One of the four dataset shapes evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetProfile {
    /// Facebook friendship circles: 4K nodes, avg degree 43.7, undirected.
    Facebook,
    /// Google+ shares: 107.6K nodes, avg degree 254.1, directed.
    GooglePlus,
    /// LiveJournal follows: 4.8M nodes, avg degree 28.5, directed.
    LiveJournal,
    /// Twitter follows: 41.7M nodes, avg degree 70.5, directed.
    Twitter,
}

impl DatasetProfile {
    /// All four profiles in the order the paper tabulates them.
    pub const ALL: [DatasetProfile; 4] = [
        DatasetProfile::Facebook,
        DatasetProfile::GooglePlus,
        DatasetProfile::LiveJournal,
        DatasetProfile::Twitter,
    ];

    /// Canonical lowercase name used by the benchmark harness and CLI.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetProfile::Facebook => "facebook",
            DatasetProfile::GooglePlus => "googleplus",
            DatasetProfile::LiveJournal => "livejournal",
            DatasetProfile::Twitter => "twitter",
        }
    }

    /// Parses a profile name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "facebook" | "fb" => Some(DatasetProfile::Facebook),
            "googleplus" | "google+" | "gp" => Some(DatasetProfile::GooglePlus),
            "livejournal" | "lj" => Some(DatasetProfile::LiveJournal),
            "twitter" | "tw" => Some(DatasetProfile::Twitter),
            _ => None,
        }
    }

    /// The real dataset's node count.
    pub fn full_nodes(&self) -> usize {
        match self {
            DatasetProfile::Facebook => 4_039,
            DatasetProfile::GooglePlus => 107_614,
            DatasetProfile::LiveJournal => 4_847_571,
            DatasetProfile::Twitter => 41_652_230,
        }
    }

    /// The real dataset's average degree (#directed-edges / #nodes for
    /// directed graphs; 2·#edges/#nodes for Facebook, matching Table III).
    pub fn avg_degree(&self) -> f64 {
        match self {
            DatasetProfile::Facebook => 43.7,
            DatasetProfile::GooglePlus => 254.1,
            DatasetProfile::LiveJournal => 28.5,
            DatasetProfile::Twitter => 70.5,
        }
    }

    /// Whether the real dataset is directed.
    pub fn directed(&self) -> bool {
        !matches!(self, DatasetProfile::Facebook)
    }

    /// Power-law exponent used for the directed profiles' degree sequences.
    fn gamma(&self) -> f64 {
        match self {
            // Follower graphs are heavily skewed.
            DatasetProfile::Twitter => 2.2,
            DatasetProfile::GooglePlus => 2.3,
            DatasetProfile::LiveJournal => 2.5,
            DatasetProfile::Facebook => 3.0, // BA exponent; unused directly
        }
    }

    /// Node count after applying `scale ∈ (0, 1]`.
    pub fn scaled_nodes(&self, scale: f64) -> usize {
        assert!(scale > 0.0 && scale <= 1.0, "scale out of (0,1]: {scale}");
        ((self.full_nodes() as f64 * scale).round() as usize).max(64)
    }

    /// Generates the profile graph at the given scale with the paper's
    /// weighted-cascade probabilities.
    pub fn generate(&self, scale: f64, seed: u64) -> Graph {
        self.generate_with(scale, WeightModel::WeightedCascade, seed)
    }

    /// Generates the profile graph with an explicit weight model.
    pub fn generate_with(&self, scale: f64, model: WeightModel, seed: u64) -> Graph {
        let n = self.scaled_nodes(scale);
        match self {
            DatasetProfile::Facebook => {
                // Undirected BA with attachment chosen to hit avg degree
                // ~43.7 (each attachment contributes 2 to total degree).
                let m_attach = ((self.avg_degree() / 2.0).round() as usize).min(n - 1);
                barabasi_albert(n, m_attach.max(1), model, seed)
            }
            _ => {
                let m = (n as f64 * self.avg_degree()).round() as usize;
                let max_m = n * (n - 1) / 2;
                chung_lu_directed(n, m.min(max_m), self.gamma(), model, seed)
            }
        }
    }
}

impl std::fmt::Display for DatasetProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for p in DatasetProfile::ALL {
            assert_eq!(DatasetProfile::parse(p.name()), Some(p));
        }
        assert_eq!(DatasetProfile::parse("nope"), None);
    }

    #[test]
    fn facebook_full_scale_matches_table3() {
        let g = DatasetProfile::Facebook.generate(1.0, 1);
        assert_eq!(g.num_nodes(), 4_039);
        let avg = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(
            (avg - 43.7).abs() < 3.0,
            "facebook avg degree {avg} should be near 43.7"
        );
    }

    #[test]
    fn scaled_profiles_match_avg_degree() {
        for p in [DatasetProfile::GooglePlus, DatasetProfile::LiveJournal] {
            let g = p.generate(0.01, 2);
            let avg = g.num_edges() as f64 / g.num_nodes() as f64;
            // Dedup in Chung-Lu loses a few percent of edges on small graphs.
            assert!(
                avg > 0.5 * p.avg_degree() && avg < 1.2 * p.avg_degree(),
                "{p}: avg degree {avg} vs target {}",
                p.avg_degree()
            );
        }
    }

    #[test]
    fn scaled_nodes_floor() {
        assert!(DatasetProfile::Facebook.scaled_nodes(1e-9) >= 64);
    }

    #[test]
    fn deterministic() {
        let a = DatasetProfile::Twitter.generate(0.0005, 7);
        let b = DatasetProfile::Twitter.generate(0.0005, 7);
        assert_eq!(a.num_edges(), b.num_edges());
    }
}
