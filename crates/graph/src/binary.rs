//! Compact binary graph format for fast load/save.
//!
//! Text edge lists parse at tens of MB/s; the paper's Twitter graph has
//! 1.5G edges, for which a binary CSR dump (magic `DIMG`, little-endian)
//! loads at memory-copy speed. Only the forward CSR is stored; the reverse
//! adjacency is rebuilt on load (a linear counting pass, deterministic).
//!
//! Layout:
//! ```text
//! "DIMG" | u32 version | u64 n | u64 m
//! u64 out_offsets[n+1] | u32 out_targets[m] | f32 out_probs[m]
//! ```

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::error::GraphError;
use crate::weights::WeightModel;

const MAGIC: &[u8; 4] = b"DIMG";
const VERSION: u32 = 1;

/// Writes the graph in binary CSR form.
pub fn write_binary<W: Write>(graph: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(graph.num_nodes() as u64).to_le_bytes())?;
    w.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    // Offsets derived from per-node degrees (the CSR arrays themselves are
    // private to the graph; degrees reconstruct them exactly).
    let mut offset = 0u64;
    w.write_all(&offset.to_le_bytes())?;
    for u in graph.nodes() {
        offset += graph.out_degree(u) as u64;
        w.write_all(&offset.to_le_bytes())?;
    }
    for u in graph.nodes() {
        for &v in graph.out_neighbors(u) {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    for u in graph.nodes() {
        for &p in graph.out_probs(u) {
            w.write_all(&p.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a graph written by [`write_binary`].
pub fn read_binary<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("bad magic {magic:?}, expected DIMG"),
        });
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("unsupported version {version}"),
        });
    }
    let n = read_u64(&mut r)? as usize;
    let m = read_u64(&mut r)? as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(&mut r)? as usize);
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&m) {
        return Err(GraphError::Parse {
            line: 0,
            message: "corrupt offset array".into(),
        });
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(GraphError::Parse {
            line: 0,
            message: "non-monotone offsets".into(),
        });
    }
    let mut targets = vec![0u32; m];
    read_u32_slice(&mut r, &mut targets)?;
    if targets.iter().any(|&v| v as usize >= n) {
        return Err(GraphError::Parse {
            line: 0,
            message: "edge target out of range".into(),
        });
    }
    let mut probs = vec![0f32; m];
    read_f32_slice(&mut r, &mut probs)?;
    if probs.iter().any(|&p| !(0.0..=1.0).contains(&p)) {
        return Err(GraphError::Parse {
            line: 0,
            message: "probability out of [0,1]".into(),
        });
    }

    // Rebuild through the builder (constructs the reverse CSR for us).
    let mut b = GraphBuilder::with_capacity(n, m);
    for u in 0..n {
        for i in offsets[u]..offsets[u + 1] {
            b.add_weighted_edge(u as u32, targets[i], probs[i]);
        }
    }
    Ok(b.build(WeightModel::WeightedCascade))
}

/// Writes to a file path.
pub fn write_binary_file<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<(), GraphError> {
    write_binary(graph, std::fs::File::create(path)?)
}

/// Reads from a file path.
pub fn read_binary_file<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    read_binary(std::fs::File::open(path)?)
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, GraphError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, GraphError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_u32_slice<R: Read>(r: &mut R, out: &mut [u32]) -> Result<(), GraphError> {
    let mut buf = [0u8; 4];
    for slot in out {
        r.read_exact(&mut buf)?;
        *slot = u32::from_le_bytes(buf);
    }
    Ok(())
}

fn read_f32_slice<R: Read>(r: &mut R, out: &mut [f32]) -> Result<(), GraphError> {
    let mut buf = [0u8; 4];
    for slot in out {
        r.read_exact(&mut buf)?;
        *slot = f32::from_le_bytes(buf);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;

    #[test]
    fn roundtrip() {
        let g = erdos_renyi(200, 1000, WeightModel::WeightedCascade, 3);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g.num_nodes(), g2.num_nodes());
        assert_eq!(g.num_edges(), g2.num_edges());
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
        // Reverse adjacency reconstructed identically.
        for v in g.nodes() {
            assert_eq!(g.in_neighbors(v), g2.in_neighbors(v));
            assert_eq!(g.in_probs(v), g2.in_probs(v));
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_binary(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn rejects_truncation() {
        let g = erdos_renyi(50, 200, WeightModel::WeightedCascade, 4);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        for cut in [5, 20, buf.len() / 2, buf.len() - 3] {
            assert!(read_binary(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_out_of_range_target() {
        let g = erdos_renyi(10, 20, WeightModel::WeightedCascade, 5);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Corrupt one target to an out-of-range id. Targets start after
        // magic(4) + version(4) + n(8) + m(8) + offsets((n+1)*8).
        let targets_start = 24 + 11 * 8;
        buf[targets_start..targets_start + 4].copy_from_slice(&999u32.to_le_bytes());
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = erdos_renyi(30, 100, WeightModel::Uniform(0.2), 6);
        let path = std::env::temp_dir().join(format!("dim-binary-{}.dimg", std::process::id()));
        write_binary_file(&g, &path).unwrap();
        let g2 = read_binary_file(&path).unwrap();
        assert_eq!(g.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_graph_roundtrip() {
        let b = GraphBuilder::new(3);
        let g = b.build(WeightModel::WeightedCascade);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g2.num_nodes(), 3);
        assert_eq!(g2.num_edges(), 0);
    }
}
