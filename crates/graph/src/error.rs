//! Error type for graph construction and IO.

use std::fmt;

/// Errors produced while parsing or constructing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// Underlying IO failure while reading or writing an edge list.
    Io(std::io::Error),
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of what failed.
        message: String,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "io error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::Parse {
            line: 3,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = GraphError::InvalidParameter("n must be > 0".into());
        assert!(e.to_string().contains("n must be"));
    }

    #[test]
    fn io_source_preserved() {
        use std::error::Error;
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = GraphError::from(inner);
        assert!(e.source().is_some());
    }
}
