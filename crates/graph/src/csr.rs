//! Immutable CSR graph with forward and reverse adjacency.

use crate::NodeId;

/// A directed graph in compressed-sparse-row form.
///
/// Both directions are materialized: forward adjacency drives Monte-Carlo
/// forward simulation of diffusion, reverse adjacency drives reverse
/// influence sampling. Each stored edge carries its propagation probability
/// `p(u,v)` in `[0, 1]`.
///
/// The structure is immutable once built; construct it through
/// [`crate::GraphBuilder`].
#[derive(Clone, Debug)]
pub struct Graph {
    n: usize,
    m: usize,
    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    out_probs: Vec<f32>,
    in_offsets: Vec<usize>,
    in_sources: Vec<NodeId>,
    in_probs: Vec<f32>,
    /// Cumulative in-probability per node, `Σ_{u ∈ N_v^in} p(u,v)`, needed by
    /// the LT reverse random walk (stop probability `1 − Σ p`).
    in_prob_sums: Vec<f32>,
}

impl Graph {
    /// Assembles a graph from raw CSR arrays. Intended for
    /// [`crate::GraphBuilder`]; invariants are checked with debug assertions.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_csr(
        n: usize,
        out_offsets: Vec<usize>,
        out_targets: Vec<NodeId>,
        out_probs: Vec<f32>,
        in_offsets: Vec<usize>,
        in_sources: Vec<NodeId>,
        in_probs: Vec<f32>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), n + 1);
        debug_assert_eq!(in_offsets.len(), n + 1);
        debug_assert_eq!(out_targets.len(), out_probs.len());
        debug_assert_eq!(in_sources.len(), in_probs.len());
        debug_assert_eq!(out_targets.len(), in_sources.len());
        let m = out_targets.len();
        let in_prob_sums = (0..n)
            .map(|v| in_probs[in_offsets[v]..in_offsets[v + 1]].iter().sum())
            .collect();
        Graph {
            n,
            m,
            out_offsets,
            out_targets,
            out_probs,
            in_offsets,
            in_sources,
            in_probs,
            in_prob_sums,
        }
    }

    /// Number of nodes `n = |V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of directed edges `m = |E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        let u = u as usize;
        self.out_offsets[u + 1] - self.out_offsets[u]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.in_offsets[v + 1] - self.in_offsets[v]
    }

    /// Targets of `u`'s outgoing edges.
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.out_targets[self.out_offsets[u]..self.out_offsets[u + 1]]
    }

    /// Propagation probabilities aligned with [`Self::out_neighbors`].
    #[inline]
    pub fn out_probs(&self, u: NodeId) -> &[f32] {
        let u = u as usize;
        &self.out_probs[self.out_offsets[u]..self.out_offsets[u + 1]]
    }

    /// Sources of `v`'s incoming edges.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.in_sources[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Propagation probabilities aligned with [`Self::in_neighbors`].
    #[inline]
    pub fn in_probs(&self, v: NodeId) -> &[f32] {
        let v = v as usize;
        &self.in_probs[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// `Σ_{u ∈ N_v^in} p(u,v)` — the LT activation mass entering `v`.
    #[inline]
    pub fn in_prob_sum(&self, v: NodeId) -> f32 {
        self.in_prob_sums[v as usize]
    }

    /// Iterates over all directed edges as `(u, v, p)` triples in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f32)> + '_ {
        (0..self.n as NodeId).flat_map(move |u| {
            self.out_neighbors(u)
                .iter()
                .zip(self.out_probs(u))
                .map(move |(&v, &p)| (u, v, p))
        })
    }

    /// Iterates over node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.n as NodeId
    }

    /// Returns true when the LT precondition `Σ_{u∈N_v^in} p(u,v) ≤ 1` holds
    /// for every node (with a small tolerance for `f32` accumulation).
    pub fn satisfies_lt_constraint(&self) -> bool {
        self.in_prob_sums.iter().all(|&s| s <= 1.0 + 1e-4)
    }

    /// Estimated resident memory of the adjacency arrays, in bytes.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.out_offsets.len() + self.in_offsets.len()) * size_of::<usize>()
            + (self.out_targets.len() + self.in_sources.len()) * size_of::<NodeId>()
            + (self.out_probs.len() + self.in_probs.len() + self.in_prob_sums.len())
                * size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use crate::{GraphBuilder, WeightModel};

    fn diamond() -> crate::Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        b.build(WeightModel::WeightedCascade)
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        let mut in3 = g.in_neighbors(3).to_vec();
        in3.sort_unstable();
        assert_eq!(in3, vec![1, 2]);
    }

    #[test]
    fn weighted_cascade_probs() {
        let g = diamond();
        // indeg(1) = 1 so p(0,1) = 1; indeg(3) = 2 so p(·,3) = 0.5.
        assert_eq!(g.in_probs(1), &[1.0]);
        assert_eq!(g.in_probs(3), &[0.5, 0.5]);
        assert!((g.in_prob_sum(3) - 1.0).abs() < 1e-6);
        assert!(g.satisfies_lt_constraint());
    }

    #[test]
    fn forward_reverse_consistency() {
        let g = diamond();
        let mut fwd: Vec<(u32, u32)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        let mut rev: Vec<(u32, u32)> = g
            .nodes()
            .flat_map(|v| g.in_neighbors(v).iter().map(move |&u| (u, v)))
            .collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn edge_probability_alignment() {
        let g = diamond();
        for (u, v, p) in g.edges() {
            let idx = g.in_neighbors(v).iter().position(|&x| x == u).unwrap();
            assert_eq!(g.in_probs(v)[idx], p);
        }
    }

    #[test]
    fn memory_accounting_positive() {
        let g = diamond();
        assert!(g.memory_bytes() > 0);
    }
}
