//! Directed, weighted graph substrate for influence maximization.
//!
//! This crate provides the graph representation shared by every other crate
//! in the workspace:
//!
//! * [`Graph`] — an immutable compressed-sparse-row (CSR) graph storing both
//!   forward (out-edge) and reverse (in-edge) adjacency together with a
//!   propagation probability per edge. Reverse adjacency is first-class
//!   because reverse influence sampling (RIS) traverses incoming edges.
//! * [`GraphBuilder`] — the mutable builder used by parsers and generators.
//! * [`delta`] — edge-stream mutations ([`EdgeOp`] / [`DeltaBatch`]) and the
//!   [`DeltaGraph`] overlay that replays them into a fresh CSR.
//! * [`WeightModel`] — the standard ways of assigning propagation
//!   probabilities (weighted-cascade `1/indeg`, uniform, trivalency).
//! * [`generators`] — synthetic social-network generators plus the dataset
//!   profiles substituting for the SNAP datasets of the paper (Table III).
//! * [`io`] — plain-text edge-list reading and writing.
//!
//! # Example
//!
//! ```
//! use dim_graph::{GraphBuilder, WeightModel};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1);
//! b.add_edge(0, 2);
//! b.add_edge(2, 3);
//! let g = b.build(WeightModel::WeightedCascade);
//! assert_eq!(g.num_nodes(), 4);
//! assert_eq!(g.num_edges(), 3);
//! // Weighted cascade: p(u,v) = 1 / indeg(v).
//! assert_eq!(g.in_probs(3), &[1.0]);
//! ```

pub mod alias;
pub mod analysis;
pub mod binary;
pub mod builder;
pub mod csr;
pub mod delta;
pub mod error;
pub mod generators;
pub mod io;
pub mod scc;
pub mod weights;

pub use analysis::GraphStats;
pub use builder::GraphBuilder;
pub use csr::Graph;
pub use delta::{apply_batch, DeltaBatch, DeltaError, DeltaGraph, EdgeOp};
pub use error::GraphError;
pub use generators::profiles::DatasetProfile;
pub use weights::WeightModel;

/// Node identifier. Graphs in this workspace are limited to `u32::MAX`
/// nodes, which keeps adjacency arrays compact (the paper's largest dataset,
/// Twitter, has 41.7M nodes — well within range).
pub type NodeId = u32;
