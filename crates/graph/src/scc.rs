//! Strongly connected components (iterative Tarjan).
//!
//! Influence spread is reachability in live-edge subgraphs, so the SCC
//! structure of the full graph upper-bounds what any seed can reach and
//! explains spread plateaus (a giant SCC saturates). Used by examples and
//! sanity checks; exposed because it is generally useful for workload
//! analysis.

use crate::csr::Graph;

/// SCC decomposition result.
#[derive(Clone, Debug)]
pub struct SccResult {
    /// Component id per node (ids are reverse-topological: an edge
    /// `u → v` across components satisfies `comp[u] ≥ comp[v]`).
    pub component: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl SccResult {
    /// Size of each component.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.component {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Size of the largest component.
    pub fn largest(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }
}

/// Computes SCCs with an iterative Tarjan (explicit stack; safe on deep
/// graphs where recursion would overflow).
pub fn strongly_connected_components(g: &Graph) -> SccResult {
    let n = g.num_nodes();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut component = vec![0u32; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut count = 0usize;

    // Work stack frames: (node, next out-neighbor position to examine).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if index[start as usize] != UNVISITED {
            continue;
        }
        frames.push((start, 0));
        index[start as usize] = next_index;
        lowlink[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let nbrs = g.out_neighbors(v);
            if *pos < nbrs.len() {
                let w = nbrs[*pos];
                *pos += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] =
                        lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v roots a component: pop it off the Tarjan stack.
                    loop {
                        let w = stack.pop().expect("stack holds the component");
                        on_stack[w as usize] = false;
                        component[w as usize] = count as u32;
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
            }
        }
    }
    SccResult { component, count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, WeightModel};

    fn graph(edges: &[(u32, u32)], n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build(WeightModel::Uniform(0.5))
    }

    #[test]
    fn dag_every_node_own_component() {
        let g = graph(&[(0, 1), (1, 2), (0, 2)], 3);
        let r = strongly_connected_components(&g);
        assert_eq!(r.count, 3);
        assert_eq!(r.largest(), 1);
    }

    #[test]
    fn cycle_is_one_component() {
        let g = graph(&[(0, 1), (1, 2), (2, 0)], 3);
        let r = strongly_connected_components(&g);
        assert_eq!(r.count, 1);
        assert_eq!(r.largest(), 3);
    }

    #[test]
    fn two_cycles_with_bridge() {
        // 0↔1 → 2↔3
        let g = graph(&[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)], 4);
        let r = strongly_connected_components(&g);
        assert_eq!(r.count, 2);
        assert_eq!(r.component[0], r.component[1]);
        assert_eq!(r.component[2], r.component[3]);
        assert_ne!(r.component[0], r.component[2]);
        // Reverse-topological: edge (1 → 2) goes to a lower component id.
        assert!(r.component[1] > r.component[2]);
        assert_eq!(r.sizes(), vec![2, 2]);
    }

    #[test]
    fn isolated_nodes() {
        let g = graph(&[(0, 1)], 5);
        let r = strongly_connected_components(&g);
        assert_eq!(r.count, 5);
    }

    #[test]
    fn deep_chain_no_overflow() {
        // 50k-node path: a recursive Tarjan would blow the stack.
        let n = 50_000;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let g = graph(&edges, n);
        let r = strongly_connected_components(&g);
        assert_eq!(r.count, n);
    }

    #[test]
    fn symmetric_graph_components_match_weak_connectivity() {
        let mut b = GraphBuilder::new(6);
        b.add_undirected_edge(0, 1);
        b.add_undirected_edge(1, 2);
        b.add_undirected_edge(4, 5);
        let g = b.build(WeightModel::WeightedCascade);
        let r = strongly_connected_components(&g);
        // {0,1,2}, {3}, {4,5}
        assert_eq!(r.count, 3);
        let mut sizes = r.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
    }
}
