//! Edge-stream deltas over the frozen CSR [`Graph`].
//!
//! Real social graphs mutate constantly while the CSR representation is
//! immutable by design. This module bridges the two: an [`EdgeOp`] is one
//! mutation (insert / delete / reweight of a directed edge), a
//! [`DeltaBatch`] is a sequence-numbered group of ops with a canonical
//! little-endian codec (so batches can live in `dim-store` delta shards and
//! travel the cluster wire), and [`DeltaGraph`] is an overlay that stacks
//! batches on a base graph and materializes a new CSR [`Graph`] on demand.
//!
//! Mutations never add nodes: every op must reference nodes `< n`. This
//! keeps all per-node state in the samplers and coverage shards (visit
//! trackers, epoch flags, SUBSIM's per-node jump precompute) valid across a
//! batch, which is what makes incremental RR-set repair sound.
//!
//! Semantics (documented, deterministic):
//! * `Insert` on an existing edge overwrites its weight.
//! * `Delete` / `Reweight` on a missing edge is a no-op.
//! * Ops within a batch apply in order; later ops win.

use std::collections::BTreeMap;
use std::fmt;

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::weights::WeightModel;
use crate::NodeId;

/// One edge mutation in a stream batch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EdgeOp {
    /// Add edge `u → v` with propagation probability `p` (overwrites the
    /// weight if the edge already exists).
    Insert { u: NodeId, v: NodeId, p: f32 },
    /// Remove edge `u → v` (no-op if absent).
    Delete { u: NodeId, v: NodeId },
    /// Change the probability of existing edge `u → v` to `p` (no-op if
    /// absent).
    Reweight { u: NodeId, v: NodeId, p: f32 },
}

const TAG_INSERT: u8 = 0;
const TAG_DELETE: u8 = 1;
const TAG_REWEIGHT: u8 = 2;

impl EdgeOp {
    /// The edge's target node — the only node whose in-neighborhood this op
    /// changes, hence the unit of RR-set invalidation.
    pub fn target(&self) -> NodeId {
        match *self {
            EdgeOp::Insert { v, .. } | EdgeOp::Delete { v, .. } | EdgeOp::Reweight { v, .. } => v,
        }
    }

    /// The edge's source node.
    pub fn source(&self) -> NodeId {
        match *self {
            EdgeOp::Insert { u, .. } | EdgeOp::Delete { u, .. } | EdgeOp::Reweight { u, .. } => u,
        }
    }
}

/// A sequence-numbered batch of edge mutations.
///
/// `seq` orders batches within a delta chain: batch `s` applies on top of
/// the state produced by batch `s − 1`. The store layer persists `seq` in
/// every delta shard and validates chain order at load time.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaBatch {
    /// Position of this batch in the edit stream (0-based).
    pub seq: u64,
    /// Mutations, applied in order.
    pub ops: Vec<EdgeOp>,
}

/// Errors from decoding or validating a delta batch.
#[derive(Debug)]
pub enum DeltaError {
    /// The encoded bytes are malformed (bad tag, truncation, trailing
    /// bytes, pathological counts).
    Corrupt(String),
    /// An op is semantically invalid for the target graph (node out of
    /// range, self-loop, probability outside `[0, 1]`).
    Invalid(String),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Corrupt(m) => write!(f, "corrupt delta batch: {m}"),
            DeltaError::Invalid(m) => write!(f, "invalid edge op: {m}"),
        }
    }
}

impl std::error::Error for DeltaError {}

fn corrupt(msg: impl Into<String>) -> DeltaError {
    DeltaError::Corrupt(msg.into())
}

/// Strict little-endian reader over a byte slice (mirrors the cluster wire
/// codecs: every truncation or trailing byte is an error, never a panic).
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DeltaError> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DeltaError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DeltaError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DeltaError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, DeltaError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn finish(self) -> Result<(), DeltaError> {
        if self.remaining() != 0 {
            return Err(corrupt(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

impl DeltaBatch {
    /// Creates a batch; convenience for tests and the CLI.
    pub fn new(seq: u64, ops: Vec<EdgeOp>) -> Self {
        DeltaBatch { seq, ops }
    }

    /// Validates every op against a graph with `num_nodes` nodes: node ids
    /// in range, no self-loops, probabilities within `[0, 1]` and finite.
    /// Streams never add nodes — that is what keeps per-node sampler state
    /// valid across an applied batch.
    pub fn validate(&self, num_nodes: usize) -> Result<(), DeltaError> {
        for (i, op) in self.ops.iter().enumerate() {
            let (u, v) = (op.source(), op.target());
            if u as usize >= num_nodes || v as usize >= num_nodes {
                return Err(DeltaError::Invalid(format!(
                    "op {i}: edge ({u}, {v}) references a node ≥ {num_nodes}"
                )));
            }
            if u == v {
                return Err(DeltaError::Invalid(format!("op {i}: self-loop on {u}")));
            }
            if let EdgeOp::Insert { p, .. } | EdgeOp::Reweight { p, .. } = *op {
                if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                    return Err(DeltaError::Invalid(format!(
                        "op {i}: probability {p} outside [0, 1]"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Nodes whose in-neighborhood this batch mutates, sorted and deduped.
    /// An RR set must be invalidated iff it contains one of these nodes:
    /// reverse traversal only draws randomness while scanning a visited
    /// node's in-list, so a set that never visited a touched node replays
    /// byte-identically on the mutated graph.
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.ops.iter().map(|op| op.target()).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Canonical little-endian encoding: `seq` (u64), op count (u32), then
    /// per op a tag byte (`0`=Insert, `1`=Delete, `2`=Reweight), `u` (u32),
    /// `v` (u32), and for Insert/Reweight the probability (f32 LE bits).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.ops.len() * 13);
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(self.ops.len() as u32).to_le_bytes());
        for op in &self.ops {
            match *op {
                EdgeOp::Insert { u, v, p } => {
                    out.push(TAG_INSERT);
                    out.extend_from_slice(&u.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                    out.extend_from_slice(&p.to_le_bytes());
                }
                EdgeOp::Delete { u, v } => {
                    out.push(TAG_DELETE);
                    out.extend_from_slice(&u.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
                EdgeOp::Reweight { u, v, p } => {
                    out.push(TAG_REWEIGHT);
                    out.extend_from_slice(&u.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                    out.extend_from_slice(&p.to_le_bytes());
                }
            }
        }
        out
    }

    /// Strict decode of [`DeltaBatch::encode`]'s format. Bad tags,
    /// truncation, pathological counts, and trailing bytes are all
    /// [`DeltaError::Corrupt`] — never a panic or over-allocation.
    pub fn decode(bytes: &[u8]) -> Result<Self, DeltaError> {
        let mut r = Reader::new(bytes);
        let seq = r.u64()?;
        let count = r.u32()? as usize;
        // Each op is at least 9 bytes; bound the allocation by what the
        // buffer could actually hold.
        if count > r.remaining() / 9 {
            return Err(corrupt(format!(
                "op count {count} exceeds {} remaining bytes",
                r.remaining()
            )));
        }
        let mut ops = Vec::with_capacity(count);
        for _ in 0..count {
            let tag = r.u8()?;
            let u = r.u32()?;
            let v = r.u32()?;
            let op = match tag {
                TAG_INSERT => EdgeOp::Insert { u, v, p: r.f32()? },
                TAG_DELETE => EdgeOp::Delete { u, v },
                TAG_REWEIGHT => EdgeOp::Reweight { u, v, p: r.f32()? },
                t => return Err(corrupt(format!("unknown edge-op tag {t}"))),
            };
            ops.push(op);
        }
        r.finish()?;
        Ok(DeltaBatch { seq, ops })
    }
}

/// Mutable overlay over a frozen base [`Graph`].
///
/// Holds the base plus the accumulated edge state from every applied batch,
/// and materializes a fresh CSR [`Graph`] on demand. The overlay itself is
/// cheap to mutate (a `BTreeMap` keyed by `(u, v)`); materialization pays
/// the full CSR rebuild, which the stream pipeline does once per batch.
pub struct DeltaGraph<'g> {
    base: &'g Graph,
    /// Full current edge state: `(u, v) → p`. Seeded lazily from the base's
    /// edges on the first mutation.
    edges: BTreeMap<(NodeId, NodeId), f32>,
    next_seq: u64,
}

impl<'g> DeltaGraph<'g> {
    /// Creates an overlay with no pending mutations (next expected batch
    /// sequence number 0).
    pub fn new(base: &'g Graph) -> Self {
        let edges = base.edges().map(|(u, v, p)| ((u, v), p)).collect();
        DeltaGraph {
            base,
            edges,
            next_seq: 0,
        }
    }

    /// Overlay resuming an existing chain: the next batch must carry
    /// `next_seq`.
    pub fn resuming(base: &'g Graph, next_seq: u64) -> Self {
        let mut dg = DeltaGraph::new(base);
        dg.next_seq = next_seq;
        dg
    }

    /// The base graph the overlay was created from.
    pub fn base(&self) -> &'g Graph {
        self.base
    }

    /// Sequence number the next applied batch must carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Current edge count (base edges ± applied mutations).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Applies a batch: validates it, checks its sequence number continues
    /// the chain, and folds its ops into the overlay in order.
    pub fn apply(&mut self, batch: &DeltaBatch) -> Result<(), DeltaError> {
        if batch.seq != self.next_seq {
            return Err(DeltaError::Invalid(format!(
                "batch seq {} does not continue chain (expected {})",
                batch.seq, self.next_seq
            )));
        }
        batch.validate(self.base.num_nodes())?;
        for op in &batch.ops {
            match *op {
                EdgeOp::Insert { u, v, p } => {
                    self.edges.insert((u, v), p);
                }
                EdgeOp::Delete { u, v } => {
                    self.edges.remove(&(u, v));
                }
                EdgeOp::Reweight { u, v, p } => {
                    if let Some(w) = self.edges.get_mut(&(u, v)) {
                        *w = p;
                    }
                }
            }
        }
        self.next_seq += 1;
        Ok(())
    }

    /// Materializes the current overlay state as a fresh CSR [`Graph`] with
    /// the same node count as the base. Deterministic: edges are emitted in
    /// `(u, v)` order regardless of mutation history.
    pub fn materialize(&self) -> Graph {
        let mut b = GraphBuilder::with_capacity(self.base.num_nodes(), self.edges.len());
        for (&(u, v), &p) in &self.edges {
            b.add_weighted_edge(u, v, p);
        }
        // Every edge carries an explicit weight, so the model is never
        // consulted; WeightedCascade is just the conventional placeholder.
        b.build(WeightModel::WeightedCascade)
    }
}

/// Applies `batch` to `base` and materializes the mutated graph in one
/// step — the common "one batch at a time" path in workers and tests.
pub fn apply_batch(base: &Graph, batch: &DeltaBatch) -> Result<Graph, DeltaError> {
    let mut dg = DeltaGraph::resuming(base, batch.seq);
    dg.apply(batch)?;
    Ok(dg.materialize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;

    fn base() -> Graph {
        let mut b = GraphBuilder::new(5);
        b.add_weighted_edge(0, 1, 0.5);
        b.add_weighted_edge(1, 2, 0.25);
        b.add_weighted_edge(2, 3, 0.75);
        b.add_weighted_edge(3, 4, 1.0);
        b.build(WeightModel::WeightedCascade)
    }

    fn sample_batch() -> DeltaBatch {
        DeltaBatch::new(
            0,
            vec![
                EdgeOp::Insert { u: 0, v: 3, p: 0.5 },
                EdgeOp::Delete { u: 1, v: 2 },
                EdgeOp::Reweight { u: 2, v: 3, p: 0.1 },
            ],
        )
    }

    #[test]
    fn codec_roundtrip() {
        let b = sample_batch();
        let bytes = b.encode();
        assert_eq!(DeltaBatch::decode(&bytes).unwrap(), b);
        let empty = DeltaBatch::new(7, vec![]);
        assert_eq!(DeltaBatch::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn decode_rejects_truncation_and_trailing() {
        let bytes = sample_batch().encode();
        for cut in 0..bytes.len() {
            assert!(
                DeltaBatch::decode(&bytes[..cut]).is_err(),
                "accepted truncation at {cut}"
            );
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(DeltaBatch::decode(&long).is_err(), "accepted trailing byte");
    }

    #[test]
    fn decode_rejects_bad_tag_and_pathological_count() {
        let mut bytes = sample_batch().encode();
        bytes[12] = 9; // first op tag
        assert!(matches!(
            DeltaBatch::decode(&bytes).unwrap_err(),
            DeltaError::Corrupt(_)
        ));
        // Huge declared count with a tiny body must not allocate or panic.
        let mut tiny = Vec::new();
        tiny.extend_from_slice(&0u64.to_le_bytes());
        tiny.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(DeltaBatch::decode(&tiny).is_err());
    }

    #[test]
    fn validate_rejects_out_of_range_self_loop_bad_p() {
        let oob = DeltaBatch::new(0, vec![EdgeOp::Delete { u: 0, v: 9 }]);
        assert!(oob.validate(5).is_err());
        let self_loop = DeltaBatch::new(0, vec![EdgeOp::Insert { u: 2, v: 2, p: 0.5 }]);
        assert!(self_loop.validate(5).is_err());
        let bad_p = DeltaBatch::new(0, vec![EdgeOp::Insert { u: 0, v: 1, p: 1.5 }]);
        assert!(bad_p.validate(5).is_err());
        let nan_p = DeltaBatch::new(
            0,
            vec![EdgeOp::Reweight {
                u: 0,
                v: 1,
                p: f32::NAN,
            }],
        );
        assert!(nan_p.validate(5).is_err());
        assert!(sample_batch().validate(5).is_ok());
    }

    #[test]
    fn touched_nodes_sorted_deduped() {
        let b = DeltaBatch::new(
            0,
            vec![
                EdgeOp::Insert { u: 0, v: 3, p: 0.5 },
                EdgeOp::Delete { u: 1, v: 3 },
                EdgeOp::Reweight { u: 4, v: 1, p: 0.2 },
            ],
        );
        assert_eq!(b.touched_nodes(), vec![1, 3]);
    }

    #[test]
    fn apply_semantics() {
        let g = base();
        let mutated = apply_batch(&g, &sample_batch()).unwrap();
        assert_eq!(mutated.num_nodes(), 5);
        // Insert added (0,3); delete removed (1,2); reweight changed (2,3).
        assert_eq!(mutated.num_edges(), 4);
        assert_eq!(mutated.out_neighbors(0), &[1, 3]);
        assert!(mutated.out_neighbors(1).is_empty());
        assert_eq!(mutated.out_probs(2), &[0.1]);
        // Untouched edge survives byte-identically.
        assert_eq!(mutated.out_probs(3), &[1.0]);
    }

    #[test]
    fn insert_overwrites_and_missing_edge_ops_are_noops() {
        let g = base();
        let batch = DeltaBatch::new(
            0,
            vec![
                EdgeOp::Insert { u: 0, v: 1, p: 0.9 }, // overwrite existing
                EdgeOp::Delete { u: 0, v: 4 },         // absent: no-op
                EdgeOp::Reweight { u: 0, v: 2, p: 0.3 }, // absent: no-op
            ],
        );
        let mutated = apply_batch(&g, &batch).unwrap();
        assert_eq!(mutated.num_edges(), 4);
        assert_eq!(mutated.out_probs(0), &[0.9]);
        assert!(!mutated.out_neighbors(0).contains(&2));
    }

    #[test]
    fn chain_seq_enforced_and_composition_matches_one_shot() {
        let g = base();
        let b0 = DeltaBatch::new(0, vec![EdgeOp::Insert { u: 0, v: 3, p: 0.5 }]);
        let b1 = DeltaBatch::new(1, vec![EdgeOp::Delete { u: 0, v: 3 }]);
        let mut dg = DeltaGraph::new(&g);
        assert!(dg.apply(&b1).is_err(), "out-of-order batch accepted");
        dg.apply(&b0).unwrap();
        dg.apply(&b1).unwrap();
        assert_eq!(dg.next_seq(), 2);
        let chained = dg.materialize();
        // Insert-then-delete composes back to the base graph.
        let direct = base();
        assert_eq!(chained.num_edges(), direct.num_edges());
        for v in 0..5u32 {
            assert_eq!(chained.out_neighbors(v), direct.out_neighbors(v));
            assert_eq!(chained.out_probs(v), direct.out_probs(v));
        }
    }

    #[test]
    fn materialize_deterministic_on_larger_graph() {
        let g = erdos_renyi(200, 900, WeightModel::WeightedCascade, 5);
        let batch = DeltaBatch::new(
            0,
            vec![
                EdgeOp::Insert {
                    u: 7,
                    v: 150,
                    p: 0.4,
                },
                EdgeOp::Delete { u: 3, v: 11 },
                EdgeOp::Reweight {
                    u: 100,
                    v: 5,
                    p: 0.6,
                },
            ],
        );
        let a = apply_batch(&g, &batch).unwrap();
        let b = apply_batch(&g, &batch).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
        for v in 0..200u32 {
            assert_eq!(a.in_neighbors(v), b.in_neighbors(v));
            assert_eq!(a.in_probs(v), b.in_probs(v));
        }
        // Identity batch reproduces the base CSR exactly.
        let id = apply_batch(&g, &DeltaBatch::new(0, vec![])).unwrap();
        assert_eq!(id.num_edges(), g.num_edges());
        for v in 0..200u32 {
            assert_eq!(id.in_neighbors(v), g.in_neighbors(v));
            assert_eq!(id.in_probs(v), g.in_probs(v));
            assert_eq!(id.out_neighbors(v), g.out_neighbors(v));
        }
    }
}
