//! Mutable graph builder producing CSR [`Graph`]s.

use crate::csr::Graph;
use crate::weights::WeightModel;
use crate::NodeId;

/// Accumulates directed edges and materializes an immutable [`Graph`].
///
/// Duplicate edges are removed at build time (keeping the first occurrence's
/// explicit weight, if any). Self-loops are dropped: a node trivially
/// "influences" itself in every diffusion model, so self-loops carry no
/// information and would only distort weighted-cascade probabilities.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    /// `(u, v, explicit probability or NaN)` triples.
    edges: Vec<(NodeId, NodeId, f32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with at least `n` nodes. Adding an edge
    /// touching a larger node id grows the node count automatically.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder pre-sized for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Current node count.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges added so far (before dedup).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a directed edge whose probability will be assigned by the
    /// [`WeightModel`] at build time.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.push(u, v, f32::NAN);
    }

    /// Adds a directed edge with an explicit propagation probability,
    /// overriding the weight model for this edge.
    ///
    /// # Panics
    /// Panics if `p` is not within `[0, 1]`.
    pub fn add_weighted_edge(&mut self, u: NodeId, v: NodeId, p: f32) {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
        self.push(u, v, p);
    }

    /// Adds both `(u,v)` and `(v,u)`, for undirected source data
    /// (e.g. the Facebook friendship dataset in Table III).
    pub fn add_undirected_edge(&mut self, u: NodeId, v: NodeId) {
        self.add_edge(u, v);
        self.add_edge(v, u);
    }

    fn push(&mut self, u: NodeId, v: NodeId, p: f32) {
        if u == v {
            return;
        }
        let hi = u.max(v) as usize + 1;
        if hi > self.n {
            self.n = hi;
        }
        self.edges.push((u, v, p));
    }

    /// Builds the immutable CSR graph, assigning each edge without an
    /// explicit probability according to `model`.
    pub fn build(mut self, model: WeightModel) -> Graph {
        let n = self.n;
        // Sort by (u, v) then dedup so CSR rows come out ordered. `sort_by`
        // (stable) keeps the first occurrence of duplicate (u, v) pairs,
        // preserving its explicit weight.
        self.edges.sort_by_key(|e| (e.0, e.1));
        self.edges.dedup_by_key(|e| (e.0, e.1));
        let m = self.edges.len();

        let mut in_deg = vec![0usize; n];
        let mut out_offsets = vec![0usize; n + 1];
        for &(u, v, _) in &self.edges {
            out_offsets[u as usize + 1] += 1;
            in_deg[v as usize] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }

        let mut out_targets = Vec::with_capacity(m);
        let mut out_probs = Vec::with_capacity(m);
        for (i, &(u, v, p)) in self.edges.iter().enumerate() {
            debug_assert!(i >= out_offsets[u as usize]);
            let prob = if p.is_nan() {
                model.probability(u, v, in_deg[v as usize], i)
            } else {
                p
            };
            out_targets.push(v);
            out_probs.push(prob);
        }

        // Transpose into reverse CSR.
        let mut in_offsets = vec![0usize; n + 1];
        for &v in &out_targets {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![0 as NodeId; m];
        let mut in_probs = vec![0f32; m];
        for u in 0..n {
            for idx in out_offsets[u]..out_offsets[u + 1] {
                let v = out_targets[idx] as usize;
                let slot = cursor[v];
                in_sources[slot] = u as NodeId;
                in_probs[slot] = out_probs[idx];
                cursor[v] += 1;
            }
        }

        Graph::from_csr(
            n,
            out_offsets,
            out_targets,
            out_probs,
            in_offsets,
            in_sources,
            in_probs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keeps_first_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 0.7);
        b.add_weighted_edge(0, 1, 0.2);
        let g = b.build(WeightModel::WeightedCascade);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.out_probs(0), &[0.7]);
    }

    #[test]
    fn self_loops_dropped() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(1, 1);
        b.add_edge(0, 1);
        let g = b.build(WeightModel::Uniform(0.1));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn grows_node_count() {
        let mut b = GraphBuilder::new(0);
        b.add_edge(5, 9);
        let g = b.build(WeightModel::Uniform(0.5));
        assert_eq!(g.num_nodes(), 10);
    }

    #[test]
    fn undirected_adds_both_directions() {
        let mut b = GraphBuilder::new(2);
        b.add_undirected_edge(0, 1);
        let g = b.build(WeightModel::WeightedCascade);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_neighbors(1), &[0]);
    }

    #[test]
    fn explicit_weight_survives_wc_model() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 2, 0.9);
        b.add_edge(1, 2);
        let g = b.build(WeightModel::WeightedCascade);
        // Edge (0,2) keeps 0.9; edge (1,2) gets 1/indeg(2) = 0.5.
        let probs: Vec<(u32, f32)> = g
            .in_neighbors(2)
            .iter()
            .copied()
            .zip(g.in_probs(2).iter().copied())
            .collect();
        assert!(probs.contains(&(0, 0.9)));
        assert!(probs.contains(&(1, 0.5)));
    }

    #[test]
    #[should_panic]
    fn rejects_bad_probability() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 1.5);
    }
}
