//! Plain-text edge-list reading and writing.
//!
//! The format is the SNAP convention used by the paper's datasets: one edge
//! per line, `u v` or `u v p`, `#`-prefixed comment lines ignored. This lets
//! the benchmark harness consume real SNAP dumps when available while the
//! synthetic profiles cover the default case.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::error::GraphError;
use crate::weights::WeightModel;

/// Parses an edge list from any reader.
///
/// * Lines starting with `#` or `%` are comments.
/// * Each data line is `u v` (weight from `model`) or `u v p` (explicit).
/// * `directed = false` inserts both orientations of each edge.
pub fn read_edge_list<R: Read>(
    reader: R,
    directed: bool,
    model: WeightModel,
) -> Result<Graph, GraphError> {
    let reader = BufReader::new(reader);
    let mut builder = GraphBuilder::new(0);
    let mut line_buf = String::new();
    let mut reader = reader;
    let mut line_no = 0usize;
    loop {
        line_buf.clear();
        if reader.read_line(&mut line_buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = line_buf.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let u: u32 = parse_field(it.next(), line_no, "source")?;
        let v: u32 = parse_field(it.next(), line_no, "target")?;
        match it.next() {
            None => {
                if directed {
                    builder.add_edge(u, v);
                } else {
                    builder.add_undirected_edge(u, v);
                }
            }
            Some(ps) => {
                let p: f32 = ps.parse().map_err(|_| GraphError::Parse {
                    line: line_no,
                    message: format!("bad probability {ps:?}"),
                })?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(GraphError::Parse {
                        line: line_no,
                        message: format!("probability {p} out of [0,1]"),
                    });
                }
                builder.add_weighted_edge(u, v, p);
                if !directed {
                    builder.add_weighted_edge(v, u, p);
                }
            }
        }
    }
    Ok(builder.build(model))
}

fn parse_field(field: Option<&str>, line: usize, what: &str) -> Result<u32, GraphError> {
    let s = field.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what} node id"),
    })?;
    s.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("bad {what} node id {s:?}"),
    })
}

/// Reads an edge-list file (see [`read_edge_list`]).
pub fn read_edge_list_file<P: AsRef<Path>>(
    path: P,
    directed: bool,
    model: WeightModel,
) -> Result<Graph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file, directed, model)
}

/// Writes the graph as a `u v p` edge list (always directed — the reverse
/// orientation of an undirected input was materialized at build time).
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# nodes {} edges {}", graph.num_nodes(), graph.num_edges())?;
    for (u, v, p) in graph.edges() {
        writeln!(w, "{u} {v} {p}")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_weights() {
        let text = "# comment\n0 1\n1 2 0.25\n\n% other comment\n2 0\n";
        let g = read_edge_list(text.as_bytes(), true, WeightModel::Uniform(0.5)).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_probs(0), &[0.5]); // model weight
        assert_eq!(g.out_probs(1), &[0.25]); // explicit weight
    }

    #[test]
    fn undirected_doubles_edges() {
        let g = read_edge_list("0 1\n1 2\n".as_bytes(), false, WeightModel::WeightedCascade)
            .unwrap();
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn rejects_garbage() {
        let err = read_edge_list("0 x\n".as_bytes(), true, WeightModel::Trivalency).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn rejects_out_of_range_probability() {
        let err =
            read_edge_list("0 1 1.5\n".as_bytes(), true, WeightModel::Trivalency).unwrap_err();
        assert!(err.to_string().contains("out of [0,1]"));
    }

    #[test]
    fn roundtrip() {
        let g = read_edge_list("0 1 0.5\n1 2 0.125\n".as_bytes(), true, WeightModel::Trivalency)
            .unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), true, WeightModel::Trivalency).unwrap();
        assert_eq!(g.num_nodes(), g2.num_nodes());
        assert_eq!(g.num_edges(), g2.num_edges());
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }
}
