//! Propagation-probability assignment models.

use crate::NodeId;

/// How propagation probabilities `p(u,v)` are assigned to edges that were
/// added without an explicit weight.
///
/// The paper's experiments use the *weighted cascade* setting: "we set the
/// propagation probability `p_{u,v}` of each edge to the reciprocal of `v`'s
/// in-degree" (§IV-A), which also guarantees the LT constraint
/// `Σ_{u∈N_v^in} p(u,v) ≤ 1`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WeightModel {
    /// `p(u,v) = 1 / indeg(v)` — the paper's default (a.k.a. WC model).
    WeightedCascade,
    /// Every edge gets the same probability `p`.
    Uniform(f64),
    /// The trivalency model: each edge draws one of `{0.1, 0.01, 0.001}`
    /// deterministically by a hash of its position, reproducing the common
    /// TRIVALENCY benchmark setting without needing a shared RNG.
    Trivalency,
}

impl WeightModel {
    /// Probability for the edge `(u, v)` where `v` has in-degree `indeg_v`
    /// and the edge is the `edge_index`-th edge in insertion order (used
    /// only by [`WeightModel::Trivalency`] as a deterministic selector).
    #[inline]
    pub fn probability(&self, u: NodeId, v: NodeId, indeg_v: usize, edge_index: usize) -> f32 {
        match *self {
            WeightModel::WeightedCascade => {
                debug_assert!(indeg_v > 0);
                1.0 / indeg_v as f32
            }
            WeightModel::Uniform(p) => p as f32,
            WeightModel::Trivalency => {
                const CHOICES: [f32; 3] = [0.1, 0.01, 0.001];
                // Cheap deterministic mix of the edge identity.
                let h = splitmix64(
                    (u as u64) << 40 ^ (v as u64) << 16 ^ edge_index as u64,
                );
                CHOICES[(h % 3) as usize]
            }
        }
    }
}

/// SplitMix64 — tiny, high-quality 64-bit mixer. Used across the workspace
/// for deriving deterministic per-entity values (trivalency choices,
/// per-machine RNG streams).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_cascade_reciprocal() {
        let m = WeightModel::WeightedCascade;
        assert_eq!(m.probability(0, 1, 4, 0), 0.25);
        assert_eq!(m.probability(7, 3, 1, 9), 1.0);
    }

    #[test]
    fn uniform_constant() {
        let m = WeightModel::Uniform(0.05);
        assert!((m.probability(0, 1, 100, 0) - 0.05).abs() < 1e-9);
    }

    #[test]
    fn trivalency_in_choice_set() {
        let m = WeightModel::Trivalency;
        for i in 0..100u64 {
            let p = m.probability(i as u32, (i * 7) as u32, 3, i as usize);
            assert!([0.1, 0.01, 0.001].contains(&p));
        }
    }

    #[test]
    fn trivalency_deterministic() {
        let m = WeightModel::Trivalency;
        assert_eq!(m.probability(3, 4, 2, 5), m.probability(3, 4, 2, 5));
    }

    #[test]
    fn splitmix_differs() {
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
