//! Property-based tests for the graph substrate.

use dim_graph::{GraphBuilder, GraphStats, WeightModel};
use proptest::prelude::*;

/// Arbitrary edge list over up to 64 nodes.
fn edges_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..64, 0u32..64), 0..200)
}

proptest! {
    /// Forward and reverse CSR views always describe the same edge set.
    #[test]
    fn forward_reverse_transpose(edges in edges_strategy()) {
        let mut b = GraphBuilder::new(64);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build(WeightModel::Uniform(0.5));
        let mut fwd: Vec<(u32, u32)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        let mut rev: Vec<(u32, u32)> = g
            .nodes()
            .flat_map(|v| g.in_neighbors(v).iter().map(move |&u| (u, v)))
            .collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        prop_assert_eq!(fwd, rev);
    }

    /// Degree sums both equal the edge count.
    #[test]
    fn degree_sums_equal_m(edges in edges_strategy()) {
        let mut b = GraphBuilder::new(64);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build(WeightModel::Uniform(0.1));
        let out_sum: usize = g.nodes().map(|u| g.out_degree(u)).sum();
        let in_sum: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());
    }

    /// Weighted cascade always satisfies the LT constraint with equality on
    /// nodes that have in-neighbors: Σ p(u,v) = 1.
    #[test]
    fn weighted_cascade_sums_to_one(edges in edges_strategy()) {
        let mut b = GraphBuilder::new(64);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build(WeightModel::WeightedCascade);
        prop_assert!(g.satisfies_lt_constraint());
        for v in g.nodes() {
            if g.in_degree(v) > 0 {
                prop_assert!((g.in_prob_sum(v) - 1.0).abs() < 1e-4);
            }
        }
    }

    /// Building is idempotent on the deduplicated edge set: rebuilding from
    /// the built graph's edges yields the same graph.
    #[test]
    fn rebuild_fixed_point(edges in edges_strategy()) {
        let mut b = GraphBuilder::new(64);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build(WeightModel::WeightedCascade);
        let mut b2 = GraphBuilder::new(g.num_nodes());
        for (u, v, p) in g.edges() {
            b2.add_weighted_edge(u, v, p);
        }
        let g2 = b2.build(WeightModel::WeightedCascade);
        prop_assert_eq!(g.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
    }

    /// Stats never contradict the graph.
    #[test]
    fn stats_consistent(edges in edges_strategy()) {
        let mut b = GraphBuilder::new(64);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build(WeightModel::Uniform(0.2));
        let s = GraphStats::compute(&g);
        prop_assert_eq!(s.nodes, g.num_nodes());
        prop_assert_eq!(s.edges, g.num_edges());
        prop_assert!(s.max_in_degree <= g.num_edges());
        prop_assert!(s.sources <= s.nodes);
    }

    /// Edge-list IO round-trips arbitrary graphs exactly (probabilities are
    /// printed in full f32 precision).
    #[test]
    fn io_roundtrip(edges in edges_strategy()) {
        let mut b = GraphBuilder::new(64);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build(WeightModel::Trivalency);
        let mut buf = Vec::new();
        dim_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = dim_graph::io::read_edge_list(
            buf.as_slice(), true, WeightModel::Trivalency).unwrap();
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        prop_assert_eq!(g.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
    }
}
