//! Forward Monte-Carlo simulation of diffusion processes.
//!
//! Used to evaluate the true influence spread `σ(S)` of seed sets returned
//! by the optimization algorithms (the paper evaluates seed quality this
//! way; Kempe et al. introduced the estimator).

use rand::{Rng, SeedableRng};
use rand_pcg::Pcg64;
use rayon::prelude::*;

use dim_graph::Graph;

use crate::model::DiffusionModel;
use crate::visit::VisitTracker;

/// Reusable scratch buffers for repeated simulations on one graph.
pub struct SimScratch {
    visited: VisitTracker,
    frontier: Vec<u32>,
    /// LT only: accumulated incoming weight per touched node.
    lt_weight: Vec<f32>,
    /// LT only: lazily drawn threshold per touched node.
    lt_threshold: Vec<f32>,
    /// LT only: epoch stamps validating `lt_weight` / `lt_threshold`.
    lt_stamp: VisitTracker,
}

impl SimScratch {
    /// Allocates scratch for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        SimScratch {
            visited: VisitTracker::new(n),
            frontier: Vec::new(),
            lt_weight: vec![0.0; n],
            lt_threshold: vec![0.0; n],
            lt_stamp: VisitTracker::new(n),
        }
    }
}

/// Runs one forward simulation and returns the number of activated nodes.
pub fn simulate<R: Rng>(
    graph: &Graph,
    model: DiffusionModel,
    seeds: &[u32],
    rng: &mut R,
    scratch: &mut SimScratch,
) -> usize {
    match model {
        DiffusionModel::IndependentCascade => simulate_ic(graph, seeds, rng, scratch),
        DiffusionModel::LinearThreshold => simulate_lt(graph, seeds, rng, scratch),
    }
}

/// One IC cascade: BFS over out-edges, each edge fires once with `p(u,v)`.
pub fn simulate_ic<R: Rng>(
    graph: &Graph,
    seeds: &[u32],
    rng: &mut R,
    scratch: &mut SimScratch,
) -> usize {
    let visited = &mut scratch.visited;
    let frontier = &mut scratch.frontier;
    visited.clear();
    frontier.clear();
    for &s in seeds {
        if visited.mark(s) {
            frontier.push(s);
        }
    }
    let mut head = 0;
    while head < frontier.len() {
        let u = frontier[head];
        head += 1;
        let nbrs = graph.out_neighbors(u);
        let probs = graph.out_probs(u);
        for (&v, &p) in nbrs.iter().zip(probs) {
            if !visited.is_marked(v) && rng.gen::<f32>() < p {
                visited.mark(v);
                frontier.push(v);
            }
        }
    }
    frontier.len()
}

/// One LT cascade: thresholds are drawn lazily the first time a node
/// receives incoming weight; a node activates when accumulated weight
/// reaches its threshold.
pub fn simulate_lt<R: Rng>(
    graph: &Graph,
    seeds: &[u32],
    rng: &mut R,
    scratch: &mut SimScratch,
) -> usize {
    let visited = &mut scratch.visited;
    let frontier = &mut scratch.frontier;
    let weight = &mut scratch.lt_weight;
    let threshold = &mut scratch.lt_threshold;
    let stamp = &mut scratch.lt_stamp;
    visited.clear();
    stamp.clear();
    frontier.clear();
    for &s in seeds {
        if visited.mark(s) {
            frontier.push(s);
        }
    }
    let mut head = 0;
    while head < frontier.len() {
        let u = frontier[head];
        head += 1;
        let nbrs = graph.out_neighbors(u);
        let probs = graph.out_probs(u);
        for (&v, &p) in nbrs.iter().zip(probs) {
            if visited.is_marked(v) {
                continue;
            }
            let vi = v as usize;
            if stamp.mark(v) {
                weight[vi] = 0.0;
                // λ_v ∈ (0,1]: a node with threshold exactly 0 would
                // self-activate; drawing in (0,1] matches Pr[λ ≤ w] = w.
                threshold[vi] = 1.0 - rng.gen::<f32>();
            }
            weight[vi] += p;
            if weight[vi] >= threshold[vi] {
                visited.mark(v);
                frontier.push(v);
            }
        }
    }
    frontier.len()
}

/// Monte-Carlo estimate of the influence spread `σ(S)` using
/// `num_samples` independent cascades, parallelized across rayon workers.
///
/// Deterministic for a fixed `(seed, num_samples)` regardless of thread
/// count: samples are partitioned into fixed chunks, each with a derived
/// RNG stream.
pub fn estimate_spread(
    graph: &Graph,
    model: DiffusionModel,
    seeds: &[u32],
    num_samples: usize,
    seed: u64,
) -> f64 {
    if num_samples == 0 {
        return 0.0;
    }
    const CHUNK: usize = 256;
    let chunks: Vec<(usize, usize)> = (0..num_samples)
        .step_by(CHUNK)
        .map(|start| (start, CHUNK.min(num_samples - start)))
        .collect();
    let total: u64 = chunks
        .par_iter()
        .map(|&(start, len)| {
            let mut rng = Pcg64::seed_from_u64(seed ^ (start as u64).wrapping_mul(0x9E3779B97F4A7C15));
            let mut scratch = SimScratch::new(graph.num_nodes());
            let mut acc = 0u64;
            for _ in 0..len {
                acc += simulate(graph, model, seeds, &mut rng, &mut scratch) as u64;
            }
            acc
        })
        .sum();
    total as f64 / num_samples as f64
}

/// A Monte-Carlo spread estimate with uncertainty.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpreadEstimate {
    /// Sample mean of the cascade sizes.
    pub mean: f64,
    /// Standard error of the mean (`s / √N`).
    pub std_error: f64,
    /// Number of cascades simulated.
    pub samples: usize,
}

impl SpreadEstimate {
    /// Two-sided confidence interval at `z` standard errors (1.96 ≈ 95%).
    pub fn confidence_interval(&self, z: f64) -> (f64, f64) {
        (
            self.mean - z * self.std_error,
            self.mean + z * self.std_error,
        )
    }
}

/// [`estimate_spread`] with uncertainty quantification: returns the mean
/// cascade size together with its standard error, so callers can decide
/// whether `num_samples` sufficed instead of guessing.
pub fn estimate_spread_ci(
    graph: &Graph,
    model: DiffusionModel,
    seeds: &[u32],
    num_samples: usize,
    seed: u64,
) -> SpreadEstimate {
    if num_samples == 0 {
        return SpreadEstimate {
            mean: 0.0,
            std_error: 0.0,
            samples: 0,
        };
    }
    const CHUNK: usize = 256;
    let chunks: Vec<(usize, usize)> = (0..num_samples)
        .step_by(CHUNK)
        .map(|start| (start, CHUNK.min(num_samples - start)))
        .collect();
    // (Σx, Σx²) per chunk; merged exactly, so the result is deterministic
    // and identical to a sequential pass.
    let (sum, sum_sq): (u64, u128) = chunks
        .par_iter()
        .map(|&(start, len)| {
            let mut rng =
                Pcg64::seed_from_u64(seed ^ (start as u64).wrapping_mul(0x9E3779B97F4A7C15));
            let mut scratch = SimScratch::new(graph.num_nodes());
            let mut s = 0u64;
            let mut s2 = 0u128;
            for _ in 0..len {
                let x = simulate(graph, model, seeds, &mut rng, &mut scratch) as u64;
                s += x;
                s2 += (x as u128) * (x as u128);
            }
            (s, s2)
        })
        .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
    let n = num_samples as f64;
    let mean = sum as f64 / n;
    let variance = ((sum_sq as f64) / n - mean * mean).max(0.0) * n / (n - 1.0).max(1.0);
    SpreadEstimate {
        mean,
        std_error: (variance / n).sqrt(),
        samples: num_samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_graph::{GraphBuilder, WeightModel};

    /// The Fig. 1 example graph: v1→v2 (1.0), v1→v3 (1.0), v1→v4 (0.4),
    /// v2→v4 (0.3), v3→v4 (0.2). Node ids are shifted down by one.
    pub(crate) fn fig1() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 1.0);
        b.add_weighted_edge(0, 2, 1.0);
        b.add_weighted_edge(0, 3, 0.4);
        b.add_weighted_edge(1, 3, 0.3);
        b.add_weighted_edge(2, 3, 0.2);
        b.build(WeightModel::WeightedCascade)
    }

    #[test]
    fn example1_ic_spread() {
        // Paper Example 1: σ({v1}) = 3.664 under IC.
        let g = fig1();
        let est = estimate_spread(&g, DiffusionModel::IndependentCascade, &[0], 200_000, 42);
        assert!((est - 3.664).abs() < 0.01, "estimate {est}");
    }

    #[test]
    fn example1_lt_spread() {
        // Paper Example 1: σ({v1}) = 3.9 under LT.
        let g = fig1();
        let est = estimate_spread(&g, DiffusionModel::LinearThreshold, &[0], 200_000, 43);
        assert!((est - 3.9).abs() < 0.01, "estimate {est}");
    }

    #[test]
    fn spread_at_least_seed_count() {
        let g = fig1();
        for model in [
            DiffusionModel::IndependentCascade,
            DiffusionModel::LinearThreshold,
        ] {
            let est = estimate_spread(&g, model, &[1, 2], 2_000, 1);
            assert!(est >= 2.0);
            assert!(est <= g.num_nodes() as f64);
        }
    }

    #[test]
    fn duplicate_seeds_ignored() {
        let g = fig1();
        let mut rng = Pcg64::seed_from_u64(5);
        let mut scratch = SimScratch::new(4);
        let n = simulate_ic(&g, &[0, 0, 0], &mut rng, &mut scratch);
        assert!(n >= 3, "v1 deterministically activates v2 and v3");
    }

    #[test]
    fn empty_seed_set_spreads_nothing() {
        let g = fig1();
        assert_eq!(
            estimate_spread(&g, DiffusionModel::IndependentCascade, &[], 100, 2),
            0.0
        );
    }

    #[test]
    fn deterministic_estimates() {
        let g = fig1();
        let a = estimate_spread(&g, DiffusionModel::LinearThreshold, &[0], 5_000, 9);
        let b = estimate_spread(&g, DiffusionModel::LinearThreshold, &[0], 5_000, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn ci_estimate_consistent_with_plain() {
        let g = fig1();
        let model = DiffusionModel::IndependentCascade;
        let plain = estimate_spread(&g, model, &[0], 20_000, 7);
        let ci = estimate_spread_ci(&g, model, &[0], 20_000, 7);
        assert_eq!(ci.mean, plain, "same RNG streams, same mean");
        assert!(ci.std_error > 0.0);
        let (lo, hi) = ci.confidence_interval(3.0);
        assert!(lo <= 3.664 && 3.664 <= hi, "true spread inside 3σ: [{lo}, {hi}]");
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let g = fig1();
        let model = DiffusionModel::LinearThreshold;
        let small = estimate_spread_ci(&g, model, &[0], 1_000, 9);
        let large = estimate_spread_ci(&g, model, &[0], 16_000, 9);
        assert!(large.std_error < small.std_error);
        assert_eq!(small.samples, 1_000);
    }

    #[test]
    fn ci_zero_variance_for_deterministic_cascade() {
        let g = fig1();
        // Seeding everything activates exactly 4 nodes every time.
        let ci = estimate_spread_ci(
            &g,
            DiffusionModel::IndependentCascade,
            &[0, 1, 2, 3],
            500,
            1,
        );
        assert_eq!(ci.mean, 4.0);
        assert_eq!(ci.std_error, 0.0);
    }

    #[test]
    fn all_seeds_full_spread() {
        let g = fig1();
        let est = estimate_spread(&g, DiffusionModel::IndependentCascade, &[0, 1, 2, 3], 100, 3);
        assert_eq!(est, 4.0);
    }
}
