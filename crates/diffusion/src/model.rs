//! The diffusion models of Kempe, Kleinberg, and Tardos (KDD'03).

/// Which stochastic diffusion process governs influence propagation.
///
/// Both models associate each edge `⟨u,v⟩` with a propagation probability
/// `p(u,v)`; they differ in how an inactive node becomes activated (§II-A):
///
/// * **Independent cascade** — when `u` first activates, it gets a single
///   chance to activate each out-neighbor `v`, succeeding with `p(u,v)`.
/// * **Linear threshold** — `v` draws a uniform threshold `λ_v ∈ [0,1]`
///   once; `v` activates as soon as `Σ_{u ∈ A_v^in} p(u,v) ≥ λ_v`, where
///   `A_v^in` are `v`'s activated in-neighbors. Requires
///   `Σ_{u∈N_v^in} p(u,v) ≤ 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DiffusionModel {
    /// Independent cascade (IC).
    IndependentCascade,
    /// Linear threshold (LT).
    LinearThreshold,
}

impl DiffusionModel {
    /// Short lowercase name (`"ic"` / `"lt"`), used by the CLI harness.
    pub fn name(&self) -> &'static str {
        match self {
            DiffusionModel::IndependentCascade => "ic",
            DiffusionModel::LinearThreshold => "lt",
        }
    }

    /// Parses `"ic"` / `"lt"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "ic" | "independentcascade" | "independent-cascade" => {
                Some(DiffusionModel::IndependentCascade)
            }
            "lt" | "linearthreshold" | "linear-threshold" => {
                Some(DiffusionModel::LinearThreshold)
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for DiffusionModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for m in [
            DiffusionModel::IndependentCascade,
            DiffusionModel::LinearThreshold,
        ] {
            assert_eq!(DiffusionModel::parse(m.name()), Some(m));
        }
        assert_eq!(DiffusionModel::parse("voter"), None);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(DiffusionModel::IndependentCascade.to_string(), "ic");
        assert_eq!(DiffusionModel::LinearThreshold.to_string(), "lt");
    }
}
