//! Diffusion models and reverse influence sampling (RIS).
//!
//! Implements the substrate of §II–III of the paper:
//!
//! * [`model::DiffusionModel`] — the independent cascade (IC) and linear
//!   threshold (LT) models of Kempe et al.
//! * [`forward`] — forward Monte-Carlo simulation of a diffusion from a
//!   seed set, and the parallel spread estimator `σ̂(S)`.
//! * [`exact`] — exact influence spread by live-edge enumeration on tiny
//!   graphs (used to validate Example 1 and the approximation guarantees).
//! * [`rr`] — random reverse-reachable (RR) set generation (Definition 1):
//!   stochastic reverse BFS for IC, reverse random walk for LT, and the
//!   SUBSIM geometric-jump sampler of Guo et al. (SIGMOD'20).
//! * [`rrstore`] — pooled storage for millions of RR sets plus the inverted
//!   node→RR-set index that seed selection consumes.
//! * [`triggering`] — the general triggering model (the setting of the
//!   paper's Lemma 3) with IC/LT as instances, a generic forward simulator,
//!   and a generic RR sampler.
//!
//! # Example: estimating influence spread
//!
//! ```
//! use dim_diffusion::forward::estimate_spread;
//! use dim_diffusion::model::DiffusionModel;
//! use dim_graph::{GraphBuilder, WeightModel};
//!
//! let mut b = GraphBuilder::new(3);
//! b.add_weighted_edge(0, 1, 1.0);
//! b.add_weighted_edge(1, 2, 1.0);
//! let g = b.build(WeightModel::WeightedCascade);
//! // Deterministic chain: seeding node 0 activates everyone.
//! let s = estimate_spread(&g, DiffusionModel::IndependentCascade, &[0], 1000, 7);
//! assert!((s - 3.0).abs() < 1e-9);
//! ```

pub mod exact;
pub mod forward;
pub mod model;
pub mod rr;
pub mod rrstore;
pub mod triggering;
pub mod visit;

pub use model::DiffusionModel;
pub use rr::{IcRrSampler, LtRrSampler, RrSampler, SubsimRrSampler};
pub use rrstore::{InvertedIndex, RrStore};
