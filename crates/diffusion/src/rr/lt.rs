//! LT RR sets via reverse random walk (§III-A of the paper).

use rand::Rng;

use dim_graph::Graph;

use crate::rr::RrSampler;
use crate::visit::VisitTracker;

/// The LT sampler: a random walk from the root following incoming edges.
/// At node `u` the walk stops with probability `1 − Σ_{u'∈N_u^in} p(u',u)`;
/// otherwise it moves to in-neighbor `u'` with probability `p(u',u)`.
/// Revisiting a node ends the walk (the live-edge path has closed a cycle).
pub struct LtRrSampler<'g> {
    graph: &'g Graph,
    /// Per node: `Some(p)` when all in-probabilities equal `p` (the
    /// weighted-cascade case), enabling O(1) neighbor selection instead of
    /// an O(indeg) cumulative scan.
    uniform: Vec<Option<f32>>,
}

impl<'g> LtRrSampler<'g> {
    /// Creates a sampler over `graph`, precomputing the uniform-probability
    /// fast path per node.
    pub fn new(graph: &'g Graph) -> Self {
        let uniform = graph
            .nodes()
            .map(|v| {
                let probs = graph.in_probs(v);
                match probs.split_first() {
                    None => None,
                    Some((&first, rest)) => {
                        if rest.iter().all(|&p| p == first) {
                            Some(first)
                        } else {
                            None
                        }
                    }
                }
            })
            .collect();
        LtRrSampler { graph, uniform }
    }
}

impl RrSampler for LtRrSampler<'_> {
    fn graph(&self) -> &Graph {
        self.graph
    }

    fn sample_rooted<R: Rng>(
        &self,
        root: u32,
        rng: &mut R,
        out: &mut Vec<u32>,
        visited: &mut VisitTracker,
    ) -> u64 {
        out.clear();
        visited.clear();
        visited.mark(root);
        out.push(root);
        let mut work = 0u64;
        let mut u = root;
        loop {
            let sources = self.graph.in_neighbors(u);
            if sources.is_empty() {
                break;
            }
            let total = self.graph.in_prob_sum(u);
            // One uniform draw decides both stop-vs-continue and, scaled,
            // which in-neighbor to walk to.
            let x = rng.gen::<f32>();
            if x >= total {
                break; // stopped at u with probability 1 − Σ p
            }
            work += 1;
            let next = match self.uniform[u as usize] {
                Some(p) => {
                    // All probabilities equal: x / p indexes the neighbor.
                    let idx = ((x / p) as usize).min(sources.len() - 1);
                    sources[idx]
                }
                None => {
                    // Cumulative scan over the in-probability vector.
                    let probs = self.graph.in_probs(u);
                    work += probs.len() as u64;
                    let mut acc = 0f32;
                    let mut chosen = sources[sources.len() - 1];
                    for (&w_node, &p) in sources.iter().zip(probs) {
                        acc += p;
                        if x < acc {
                            chosen = w_node;
                            break;
                        }
                    }
                    chosen
                }
            };
            if !visited.mark(next) {
                break; // walk closed a cycle
            }
            out.push(next);
            u = next;
        }
        work.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    use dim_graph::{GraphBuilder, WeightModel};

    fn fig1() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 1.0);
        b.add_weighted_edge(0, 2, 1.0);
        b.add_weighted_edge(0, 3, 0.4);
        b.add_weighted_edge(1, 3, 0.3);
        b.add_weighted_edge(2, 3, 0.2);
        b.build(WeightModel::WeightedCascade)
    }

    #[test]
    fn walk_is_a_path() {
        let g = fig1();
        let s = LtRrSampler::new(&g);
        let mut rng = Pcg64::seed_from_u64(1);
        let mut out = Vec::new();
        let mut visited = VisitTracker::new(4);
        for _ in 0..500 {
            s.sample(&mut rng, &mut out, &mut visited);
            // Path property: consecutive nodes are connected by an edge
            // from later to earlier (walk follows in-edges).
            for w in out.windows(2) {
                assert!(g.in_neighbors(w[0]).contains(&w[1]));
            }
            let mut sorted = out.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), out.len(), "no duplicates");
        }
    }

    /// Paper Example 2 (LT): rooted at v4, the RR set {v1, v3, v4} can only
    /// arise via the walk v4 → v3 → v1, with probability p(v3,v4) = 0.2.
    #[test]
    fn example2_lt_probability() {
        let g = fig1();
        let s = LtRrSampler::new(&g);
        let mut rng = Pcg64::seed_from_u64(2);
        let mut out = Vec::new();
        let mut visited = VisitTracker::new(4);
        let trials = 200_000;
        let mut hits = 0usize;
        for _ in 0..trials {
            s.sample_rooted(3, &mut rng, &mut out, &mut visited);
            if out == vec![3, 2, 0] {
                hits += 1;
            }
        }
        let freq = hits as f64 / trials as f64;
        assert!((freq - 0.2).abs() < 0.005, "frequency {freq}");
    }

    /// Lemma 1 under LT: n · Pr[{v1} ∈ R] = σ({v1}) = 3.9.
    #[test]
    fn lemma1_lt() {
        let g = fig1();
        let s = LtRrSampler::new(&g);
        let mut rng = Pcg64::seed_from_u64(3);
        let mut out = Vec::new();
        let mut visited = VisitTracker::new(4);
        let trials = 300_000;
        let mut hits = 0usize;
        for _ in 0..trials {
            s.sample(&mut rng, &mut out, &mut visited);
            if out.contains(&0) {
                hits += 1;
            }
        }
        let est = 4.0 * hits as f64 / trials as f64;
        assert!((est - 3.9).abs() < 0.02, "RIS {est}");
    }

    #[test]
    fn stop_probability_respected() {
        // Root v4 has Σ p = 0.9, so the walk leaves v4 with prob 0.9 and
        // |R| = 1 with probability 0.1.
        let g = fig1();
        let s = LtRrSampler::new(&g);
        let mut rng = Pcg64::seed_from_u64(4);
        let mut out = Vec::new();
        let mut visited = VisitTracker::new(4);
        let trials = 200_000;
        let singletons = (0..trials)
            .filter(|_| {
                s.sample_rooted(3, &mut rng, &mut out, &mut visited);
                out.len() == 1
            })
            .count();
        let freq = singletons as f64 / trials as f64;
        assert!((freq - 0.1).abs() < 0.005, "singleton frequency {freq}");
    }

    #[test]
    fn nonuniform_weights_use_scan_path() {
        // v4's in-probabilities {0.4, 0.3, 0.2} are non-uniform; verify the
        // scan picks neighbors with the right marginal: P[walk to v1] = 0.4.
        let g = fig1();
        let s = LtRrSampler::new(&g);
        assert!(s.uniform[3].is_none());
        let mut rng = Pcg64::seed_from_u64(5);
        let mut out = Vec::new();
        let mut visited = VisitTracker::new(4);
        let trials = 200_000;
        let mut to_v1 = 0usize;
        for _ in 0..trials {
            s.sample_rooted(3, &mut rng, &mut out, &mut visited);
            if out.len() >= 2 && out[1] == 0 {
                to_v1 += 1;
            }
        }
        let freq = to_v1 as f64 / trials as f64;
        assert!((freq - 0.4).abs() < 0.005, "P[v4→v1] = {freq}");
    }

    #[test]
    fn uniform_fast_path_detected() {
        // Weighted cascade makes every node's in-probabilities uniform.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        let g = b.build(WeightModel::WeightedCascade);
        let s = LtRrSampler::new(&g);
        assert_eq!(s.uniform[2], Some(0.5));
        assert_eq!(s.uniform[0], None, "no in-edges");
    }
}
