//! IC RR sets via stochastic reverse BFS (§III-A of the paper).

use rand::Rng;

use dim_graph::Graph;

use crate::rr::RrSampler;
use crate::visit::VisitTracker;

/// The standard IC sampler: breadth-first search from the root following
/// *incoming* edges, traversing each edge `⟨u', u⟩` with probability
/// `p(u', u)`.
pub struct IcRrSampler<'g> {
    graph: &'g Graph,
}

impl<'g> IcRrSampler<'g> {
    /// Creates a sampler over `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        IcRrSampler { graph }
    }
}

impl RrSampler for IcRrSampler<'_> {
    fn graph(&self) -> &Graph {
        self.graph
    }

    fn sample_rooted<R: Rng>(
        &self,
        root: u32,
        rng: &mut R,
        out: &mut Vec<u32>,
        visited: &mut VisitTracker,
    ) -> u64 {
        out.clear();
        visited.clear();
        visited.mark(root);
        out.push(root);
        let mut edges = 0u64;
        // `out` doubles as the BFS queue: every traversed node is in R.
        let mut head = 0;
        while head < out.len() {
            let u = out[head];
            head += 1;
            let sources = self.graph.in_neighbors(u);
            let probs = self.graph.in_probs(u);
            edges += sources.len() as u64;
            for (&w, &p) in sources.iter().zip(probs) {
                // Each live-edge coin is independent; flipping it is only
                // observable when the source is not yet in R.
                if !visited.is_marked(w) && rng.gen::<f32>() < p {
                    visited.mark(w);
                    out.push(w);
                }
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    use dim_graph::{GraphBuilder, WeightModel};

    fn fig1() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 1.0);
        b.add_weighted_edge(0, 2, 1.0);
        b.add_weighted_edge(0, 3, 0.4);
        b.add_weighted_edge(1, 3, 0.3);
        b.add_weighted_edge(2, 3, 0.2);
        b.build(WeightModel::WeightedCascade)
    }

    #[test]
    fn contains_root() {
        let g = fig1();
        let s = IcRrSampler::new(&g);
        let mut rng = Pcg64::seed_from_u64(1);
        let mut out = Vec::new();
        let mut visited = VisitTracker::new(4);
        for root in 0..4 {
            s.sample_rooted(root, &mut rng, &mut out, &mut visited);
            assert!(out.contains(&root));
        }
    }

    #[test]
    fn no_duplicates() {
        let g = fig1();
        let s = IcRrSampler::new(&g);
        let mut rng = Pcg64::seed_from_u64(2);
        let mut out = Vec::new();
        let mut visited = VisitTracker::new(4);
        for _ in 0..500 {
            s.sample(&mut rng, &mut out, &mut visited);
            let mut sorted = out.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), out.len());
        }
    }

    #[test]
    fn deterministic_edges_always_traversed() {
        // Root v2 (id 1): its only in-edge v1→v2 has p = 1, so R = {v2, v1}.
        let g = fig1();
        let s = IcRrSampler::new(&g);
        let mut rng = Pcg64::seed_from_u64(3);
        let mut out = Vec::new();
        let mut visited = VisitTracker::new(4);
        for _ in 0..50 {
            s.sample_rooted(1, &mut rng, &mut out, &mut visited);
            let mut sorted = out.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1]);
        }
    }

    /// Paper Example 2: rooted at v4 under IC, the RR set {v1, v3, v4}
    /// "may be constructed by traversing nodes v1 and v3 through edges
    /// ⟨v1,v4⟩ and ⟨v3,v4⟩ (with probability 0.2 × 0.4 × (1 − 0.3) =
    /// 0.056)". That is the probability of one construction; the same set
    /// also arises when ⟨v1,v4⟩ fails but v1 is reached through v3's
    /// deterministic in-edge: 0.6 × 0.7 × 0.2 × 1.0 = 0.084. Total 0.14.
    #[test]
    fn example2_probability() {
        let g = fig1();
        let s = IcRrSampler::new(&g);
        let mut rng = Pcg64::seed_from_u64(4);
        let mut out = Vec::new();
        let mut visited = VisitTracker::new(4);
        let trials = 400_000;
        let mut hits = 0usize;
        for _ in 0..trials {
            s.sample_rooted(3, &mut rng, &mut out, &mut visited);
            let mut sorted = out.clone();
            sorted.sort_unstable();
            if sorted == vec![0, 2, 3] {
                hits += 1;
            }
        }
        let freq = hits as f64 / trials as f64;
        assert!((freq - 0.14).abs() < 0.004, "frequency {freq}");
    }

    /// Lemma 1 statistical check: Pr[{v} ∩ R ≠ ∅] = σ({v}) / n.
    #[test]
    fn lemma1_single_node() {
        let g = fig1();
        let s = IcRrSampler::new(&g);
        let mut rng = Pcg64::seed_from_u64(5);
        let mut out = Vec::new();
        let mut visited = VisitTracker::new(4);
        let trials = 300_000;
        let mut hits = 0usize;
        for _ in 0..trials {
            s.sample(&mut rng, &mut out, &mut visited);
            if out.contains(&0) {
                hits += 1;
            }
        }
        let est = 4.0 * hits as f64 / trials as f64;
        let exact =
            crate::exact::exact_spread(&g, crate::DiffusionModel::IndependentCascade, &[0]);
        assert!((est - exact).abs() < 0.02, "RIS {est} vs exact {exact}");
    }

    #[test]
    fn edge_work_counted() {
        let g = fig1();
        let s = IcRrSampler::new(&g);
        let mut rng = Pcg64::seed_from_u64(6);
        let mut out = Vec::new();
        let mut visited = VisitTracker::new(4);
        // Root v4 examines its three in-edges at minimum.
        let w = s.sample_rooted(3, &mut rng, &mut out, &mut visited);
        assert!(w >= 3);
    }
}
