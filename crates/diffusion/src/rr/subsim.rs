//! SUBSIM: subset sampling with geometric jumps (Guo et al., SIGMOD'20).
//!
//! The paper's Fig. 7 evaluates a distributed implementation of SUBSIM.
//! SUBSIM draws the *same* IC RR-set distribution as the reverse BFS but
//! skips over failed in-edges: when a node's in-probabilities are all equal
//! to `p` (true for every node under the weighted-cascade setting), the gap
//! between consecutive successful edges is geometric with parameter `p`, so
//! the expected work per node drops from `O(indeg)` to `O(p · indeg + 1)`.
//! Nodes with non-uniform in-probabilities fall back to per-edge coin flips.
//!
//! Jumps are the *default* on high-degree nodes, but they are not free: a
//! geometric draw costs two transcendental ops (`ln`, division) versus one
//! multiply-compare per coin, so on low-degree nodes the scalar coin loop
//! wins even though it touches every edge. The constructor therefore
//! applies a degree-threshold cutover per node: jumps when the expected
//! coin work `d` exceeds [`JUMP_ALPHA`] times the expected jump work
//! `p·d + 1`, i.e. when `d ≥ JUMP_ALPHA / (1 − p)` — on weighted-cascade
//! graphs (`p = 1/d`) that is every node with in-degree above ≈`JUMP_ALPHA`.

use rand::Rng;

use dim_graph::Graph;

use crate::rr::RrSampler;
use crate::visit::VisitTracker;

/// Cost ratio of a geometric draw to a coin flip: a node uses jumps only
/// when `indeg ≥ JUMP_ALPHA / (1 − p)`, so the expected number of jumps
/// (`≈ p·d + 1`) is at least `JUMP_ALPHA` times cheaper than `d` coins.
const JUMP_ALPHA: f64 = 4.0;

/// Geometric-jump IC RR-set sampler.
pub struct SubsimRrSampler<'g> {
    graph: &'g Graph,
    /// Per node: `Some(ln(1 − p))` when all in-probabilities equal `p < 1`
    /// *and* the degree clears the [`JUMP_ALPHA`] cutover; `Some(0.0)`
    /// encodes `p = 1` (every edge succeeds, no RNG at all); `None` means
    /// per-edge coin flips (non-uniform probabilities, or a degree too low
    /// for jumps to pay).
    jump_ln_q: Vec<Option<f64>>,
}

impl<'g> SubsimRrSampler<'g> {
    /// Creates a sampler over `graph`, precomputing the per-node path
    /// choice (jump / all-live / coins).
    pub fn new(graph: &'g Graph) -> Self {
        let jump_ln_q = graph
            .nodes()
            .map(|v| {
                let probs = graph.in_probs(v);
                let (&first, rest) = probs.split_first()?;
                if rest.iter().all(|&p| p == first) {
                    if first >= 1.0 {
                        Some(0.0)
                    } else if probs.len() as f64 >= JUMP_ALPHA / (1.0 - first as f64) {
                        Some((1.0 - first as f64).ln())
                    } else {
                        // Uniform but low-degree: coins are cheaper.
                        None
                    }
                } else {
                    None
                }
            })
            .collect();
        SubsimRrSampler { graph, jump_ln_q }
    }

    /// Processes `u`'s in-edges via geometric jumps; pushes newly reached
    /// sources onto `out`. Returns the work performed (number of jumps).
    #[inline]
    fn jump_scan<R: Rng>(
        &self,
        sources: &[u32],
        ln_q: f64,
        rng: &mut R,
        out: &mut Vec<u32>,
        visited: &mut VisitTracker,
    ) -> u64 {
        let d = sources.len();
        if ln_q == 0.0 {
            // p = 1: every in-edge is live.
            for &w in sources {
                if visited.mark(w) {
                    out.push(w);
                }
            }
            return d as u64;
        }
        let mut work = 0u64;
        // First success index ~ floor(ln U / ln(1−p)); subsequent gaps i.i.d.
        let mut i = geometric_skip(rng, ln_q);
        while i < d {
            work += 1;
            let w = sources[i];
            if visited.mark(w) {
                out.push(w);
            }
            i += 1 + geometric_skip(rng, ln_q);
        }
        work.max(1)
    }
}

/// Number of failures before the next success: `floor(ln U / ln(1−p))` with
/// `U` uniform in `(0,1]`.
#[inline]
fn geometric_skip<R: Rng>(rng: &mut R, ln_q: f64) -> usize {
    // 1 − gen::<f64>() ∈ (0, 1] avoids ln(0).
    let u = 1.0 - rng.gen::<f64>();
    let skip = (u.ln() / ln_q).floor();
    if skip >= usize::MAX as f64 {
        usize::MAX
    } else {
        skip as usize
    }
}

impl RrSampler for SubsimRrSampler<'_> {
    fn graph(&self) -> &Graph {
        self.graph
    }

    fn sample_rooted<R: Rng>(
        &self,
        root: u32,
        rng: &mut R,
        out: &mut Vec<u32>,
        visited: &mut VisitTracker,
    ) -> u64 {
        out.clear();
        visited.clear();
        visited.mark(root);
        out.push(root);
        let mut work = 0u64;
        let mut head = 0;
        while head < out.len() {
            let u = out[head];
            head += 1;
            let sources = self.graph.in_neighbors(u);
            if sources.is_empty() {
                continue;
            }
            match self.jump_ln_q[u as usize] {
                Some(ln_q) => {
                    work += self.jump_scan(sources, ln_q, rng, out, visited);
                }
                None => {
                    // Coin path: ordinary per-edge flips. Already-visited
                    // sources skip the draw entirely — their coin is
                    // unobservable, so dropping it leaves the joint law of
                    // observables unchanged.
                    let probs = self.graph.in_probs(u);
                    work += sources.len() as u64;
                    for (&w, &p) in sources.iter().zip(probs) {
                        if !visited.is_marked(w) && rng.gen::<f32>() < p {
                            visited.mark(w);
                            out.push(w);
                        }
                    }
                }
            }
        }
        work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    use dim_graph::{GraphBuilder, WeightModel};

    use crate::rr::ic::IcRrSampler;

    fn star(deg: usize) -> Graph {
        // deg spokes all pointing at hub `deg`.
        let mut b = GraphBuilder::new(deg + 1);
        for i in 0..deg as u32 {
            b.add_edge(i, deg as u32);
        }
        b.build(WeightModel::WeightedCascade)
    }

    #[test]
    fn matches_bfs_distribution_on_star() {
        // Hub in-degree d with p = 1/d: |R ∩ spokes| ~ Binomial(d, 1/d).
        let g = star(20);
        let sub = SubsimRrSampler::new(&g);
        let bfs = IcRrSampler::new(&g);
        let mut rng_a = Pcg64::seed_from_u64(1);
        let mut rng_b = Pcg64::seed_from_u64(2);
        let mut out = Vec::new();
        let mut visited = VisitTracker::new(21);
        let trials = 100_000;
        let mut mean_sub = 0f64;
        let mut mean_bfs = 0f64;
        for _ in 0..trials {
            sub.sample_rooted(20, &mut rng_a, &mut out, &mut visited);
            mean_sub += out.len() as f64;
            bfs.sample_rooted(20, &mut rng_b, &mut out, &mut visited);
            mean_bfs += out.len() as f64;
        }
        mean_sub /= trials as f64;
        mean_bfs /= trials as f64;
        // Both should estimate 1 + d·(1/d) = 2.
        assert!((mean_sub - 2.0).abs() < 0.02, "subsim mean {mean_sub}");
        assert!((mean_sub - mean_bfs).abs() < 0.03, "{mean_sub} vs {mean_bfs}");
    }

    #[test]
    fn does_less_work_than_bfs_on_hubs() {
        let g = star(1000);
        let sub = SubsimRrSampler::new(&g);
        let bfs = IcRrSampler::new(&g);
        let mut rng = Pcg64::seed_from_u64(3);
        let mut out = Vec::new();
        let mut visited = VisitTracker::new(1001);
        let mut w_sub = 0u64;
        let mut w_bfs = 0u64;
        for _ in 0..200 {
            w_sub += sub.sample_rooted(1000, &mut rng, &mut out, &mut visited);
            w_bfs += bfs.sample_rooted(1000, &mut rng, &mut out, &mut visited);
        }
        assert!(
            w_sub * 10 < w_bfs,
            "subsim work {w_sub} should be ≪ bfs work {w_bfs}"
        );
    }

    #[test]
    fn probability_one_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 2, 1.0);
        b.add_weighted_edge(1, 2, 1.0);
        let g = b.build(WeightModel::WeightedCascade);
        let sub = SubsimRrSampler::new(&g);
        let mut rng = Pcg64::seed_from_u64(4);
        let mut out = Vec::new();
        let mut visited = VisitTracker::new(3);
        sub.sample_rooted(2, &mut rng, &mut out, &mut visited);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn nonuniform_fallback_correct() {
        // Fig. 1 graph has non-uniform in-probs at v4: SUBSIM must still
        // match the exact RIS estimate of σ({v1}) = 3.664.
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 1.0);
        b.add_weighted_edge(0, 2, 1.0);
        b.add_weighted_edge(0, 3, 0.4);
        b.add_weighted_edge(1, 3, 0.3);
        b.add_weighted_edge(2, 3, 0.2);
        let g = b.build(WeightModel::WeightedCascade);
        let sub = SubsimRrSampler::new(&g);
        assert!(sub.jump_ln_q[3].is_none());
        let mut rng = Pcg64::seed_from_u64(5);
        let mut out = Vec::new();
        let mut visited = VisitTracker::new(4);
        let trials = 300_000;
        let mut hits = 0usize;
        for _ in 0..trials {
            sub.sample(&mut rng, &mut out, &mut visited);
            if out.contains(&0) {
                hits += 1;
            }
        }
        let est = 4.0 * hits as f64 / trials as f64;
        assert!((est - 3.664).abs() < 0.02, "RIS estimate {est}");
    }

    #[test]
    fn cutover_picks_jumps_only_on_high_degree() {
        // Hub in-degree 20, p = 0.05: 20 ≥ 4/(0.95) → jumps.
        let g = star(20);
        let sub = SubsimRrSampler::new(&g);
        assert!(sub.jump_ln_q[20].is_some());
        // Hub in-degree 3, p = 1/3: 3 < 4/(2/3) = 6 → coins, even though
        // the in-probabilities are perfectly uniform.
        let g = star(3);
        let sub = SubsimRrSampler::new(&g);
        assert!(sub.jump_ln_q[3].is_none());
        // Spokes have no in-edges at all: `None` via the empty-probs path.
        assert!(sub.jump_ln_q[0].is_none());
    }

    #[test]
    fn probability_one_ignores_cutover() {
        // p = 1 needs no RNG regardless of degree: all-live path.
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 2, 1.0);
        b.add_weighted_edge(1, 2, 1.0);
        let g = b.build(WeightModel::WeightedCascade);
        let sub = SubsimRrSampler::new(&g);
        assert_eq!(sub.jump_ln_q[2], Some(0.0));
    }

    /// Mixed-degree fixture: a 200-node double ring (in-degree 2, p = 1/2
    /// → coin path) where most nodes also point at hub 0 (in-degree 199
    /// → jump path), weighted-cascade probabilities.
    fn mixed_fixture() -> Graph {
        let n = 200u32;
        let mut b = GraphBuilder::new(n as usize);
        for i in 0..n {
            b.add_edge(i, (i + 1) % n);
            b.add_edge(i, (i + 2) % n);
            // Hub spokes, skipping sources whose ring edge already lands
            // on 0 (no parallel edges).
            if (1..=197).contains(&i) {
                b.add_edge(i, 0);
            }
        }
        b.build(WeightModel::WeightedCascade)
    }

    #[test]
    fn size_distribution_matches_ic_sampler() {
        // Kolmogorov–Smirnov two-sample test on RR-set sizes drawn by the
        // jump sampler (cutover active: the fixture exercises both paths)
        // versus the reverse-BFS sampler. Same distribution ⇒ the statistic
        // stays under the α = 0.001 critical value.
        let g = mixed_fixture();
        let sub = SubsimRrSampler::new(&g);
        let bfs = IcRrSampler::new(&g);
        assert!(sub.jump_ln_q[0].is_some(), "hub must take the jump path");
        assert!(sub.jump_ln_q[1].is_none(), "ring nodes take the coin path");
        let trials = 8000usize;
        let mut rng_a = Pcg64::seed_from_u64(11);
        let mut rng_b = Pcg64::seed_from_u64(12);
        let mut out = Vec::new();
        let mut visited = VisitTracker::new(200);
        let max_size = 200usize;
        let mut hist_a = vec![0u32; max_size + 1];
        let mut hist_b = vec![0u32; max_size + 1];
        for _ in 0..trials {
            sub.sample(&mut rng_a, &mut out, &mut visited);
            hist_a[out.len().min(max_size)] += 1;
            bfs.sample(&mut rng_b, &mut out, &mut visited);
            hist_b[out.len().min(max_size)] += 1;
        }
        let mut cum_a = 0f64;
        let mut cum_b = 0f64;
        let mut ks = 0f64;
        for s in 0..=max_size {
            cum_a += hist_a[s] as f64 / trials as f64;
            cum_b += hist_b[s] as f64 / trials as f64;
            ks = ks.max((cum_a - cum_b).abs());
        }
        // Two-sample critical value c(α)·sqrt(2/n), c(0.001) ≈ 1.95.
        let crit = 1.95 * (2.0 / trials as f64).sqrt();
        assert!(ks < crit, "KS statistic {ks:.4} ≥ critical {crit:.4}");
    }

    #[test]
    fn geometric_skip_mean() {
        // skip ~ Geometric(p): E[skip] = (1−p)/p. For p = 0.25: 3.
        let p = 0.25f64;
        let ln_q = (1.0 - p).ln();
        let mut rng = Pcg64::seed_from_u64(6);
        let trials = 200_000;
        let mean: f64 = (0..trials)
            .map(|_| geometric_skip(&mut rng, ln_q) as f64)
            .sum::<f64>()
            / trials as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean skip {mean}");
    }
}
