//! Epoch-stamped visit tracking.
//!
//! RR-set generation and forward simulation both need a "visited" flag per
//! node that resets between samples. Clearing a boolean array per sample
//! would cost O(n) each time; instead we stamp entries with the current
//! epoch and bump the epoch to reset in O(1).

/// O(1)-resettable visited-set over node ids `0..n`.
#[derive(Clone, Debug)]
pub struct VisitTracker {
    stamp: Vec<u32>,
    epoch: u32,
}

impl VisitTracker {
    /// Creates a tracker for `n` nodes, all unvisited.
    pub fn new(n: usize) -> Self {
        VisitTracker {
            stamp: vec![0; n],
            epoch: 0,
        }
    }

    /// Number of tracked slots.
    pub fn len(&self) -> usize {
        self.stamp.len()
    }

    /// True when the tracker covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.stamp.is_empty()
    }

    /// Forgets all marks in O(1) (amortized; a full clear happens once every
    /// `u32::MAX` epochs to avoid stale stamps surviving wraparound).
    #[inline]
    pub fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Marks `v` visited. Returns `true` if it was previously unvisited.
    #[inline]
    pub fn mark(&mut self, v: u32) -> bool {
        let slot = &mut self.stamp[v as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// True when `v` has been marked since the last [`Self::clear`].
    #[inline]
    pub fn is_marked(&self, v: u32) -> bool {
        self.stamp[v as usize] == self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_query() {
        let mut t = VisitTracker::new(4);
        t.clear();
        assert!(!t.is_marked(2));
        assert!(t.mark(2));
        assert!(t.is_marked(2));
        assert!(!t.mark(2), "second mark reports already-visited");
    }

    #[test]
    fn clear_resets_in_o1() {
        let mut t = VisitTracker::new(3);
        t.clear();
        t.mark(0);
        t.mark(1);
        t.clear();
        assert!(!t.is_marked(0));
        assert!(!t.is_marked(1));
    }

    #[test]
    fn fresh_tracker_unmarked_after_first_clear() {
        let mut t = VisitTracker::new(2);
        t.clear();
        assert!(!t.is_marked(0));
        assert!(!t.is_marked(1));
    }

    #[test]
    fn many_epochs_stay_correct() {
        let mut t = VisitTracker::new(1);
        for _ in 0..10_000 {
            t.clear();
            assert!(!t.is_marked(0));
            t.mark(0);
            assert!(t.is_marked(0));
        }
    }
}
