//! The general triggering model (Kempe et al., KDD'03).
//!
//! Lemma 3 of the paper is stated "under the triggering model, which
//! generalizes both the IC and LT models": every node `v` independently
//! samples a *triggering set* `T_v ⊆ N_v^in`; `v` activates as soon as an
//! active in-neighbor lies in `T_v`. Equivalently, the live-edge graph
//! keeps exactly the edges `⟨u, v⟩` with `u ∈ T_v`, and influence is
//! reachability from the seeds.
//!
//! * IC: each in-neighbor joins `T_v` independently with `p(u,v)`.
//! * LT: at most one in-neighbor joins, `u` with probability `p(u,v)`.
//!
//! This module provides the model as a first-class abstraction —
//! [`TriggeringDistribution`] — with a forward simulator and an RR-set
//! sampler that work for *any* instance, plus the IC/LT instances used to
//! cross-validate against the specialized code paths.

use rand::Rng;

use dim_graph::Graph;

use crate::rr::RrSampler;
use crate::visit::VisitTracker;

/// A per-node distribution over triggering sets.
///
/// `sample_into` must push the *indices into `graph.in_neighbors(v)`* of
/// the chosen in-neighbors (not node ids); this keeps implementations
/// allocation-free and lets callers map indices to ids or probabilities.
pub trait TriggeringDistribution: Sync {
    /// Samples `T_v` for node `v`, pushing in-neighbor indices into `out`
    /// (cleared by the caller). Returns the work performed (≈ RNG draws).
    fn sample_into<R: Rng>(&self, graph: &Graph, v: u32, rng: &mut R, out: &mut Vec<u32>)
        -> u64;
}

/// IC as a triggering distribution: independent inclusion per in-edge.
pub struct IcTriggering;

impl TriggeringDistribution for IcTriggering {
    fn sample_into<R: Rng>(
        &self,
        graph: &Graph,
        v: u32,
        rng: &mut R,
        out: &mut Vec<u32>,
    ) -> u64 {
        let probs = graph.in_probs(v);
        for (i, &p) in probs.iter().enumerate() {
            if rng.gen::<f32>() < p {
                out.push(i as u32);
            }
        }
        probs.len() as u64
    }
}

/// LT as a triggering distribution: at most one in-neighbor, `u` with
/// probability `p(u,v)` (none with `1 − Σ p`).
pub struct LtTriggering;

impl TriggeringDistribution for LtTriggering {
    fn sample_into<R: Rng>(
        &self,
        graph: &Graph,
        v: u32,
        rng: &mut R,
        out: &mut Vec<u32>,
    ) -> u64 {
        let probs = graph.in_probs(v);
        if probs.is_empty() {
            return 1;
        }
        let x = rng.gen::<f32>();
        let mut acc = 0f32;
        for (i, &p) in probs.iter().enumerate() {
            acc += p;
            if x < acc {
                out.push(i as u32);
                break;
            }
        }
        probs.len() as u64
    }
}

/// Forward simulation under an arbitrary triggering distribution:
/// triggering sets are sampled lazily the first time a node is exposed,
/// then membership decides activation. Returns the number activated.
pub fn simulate_triggering<D: TriggeringDistribution, R: Rng>(
    graph: &Graph,
    dist: &D,
    seeds: &[u32],
    rng: &mut R,
    scratch: &mut TriggeringScratch,
) -> usize {
    let TriggeringScratch {
        visited,
        exposed,
        triggering,
        frontier,
        buf,
    } = scratch;
    visited.clear();
    exposed.clear();
    frontier.clear();
    for &s in seeds {
        if visited.mark(s) {
            frontier.push(s);
        }
    }
    let mut head = 0;
    while head < frontier.len() {
        let u = frontier[head];
        head += 1;
        for &v in graph.out_neighbors(u) {
            if visited.is_marked(v) {
                continue;
            }
            if exposed.mark(v) {
                buf.clear();
                dist.sample_into(graph, v, rng, buf);
                // Store T_v as node ids for O(|T_v|) membership checks.
                let t = &mut triggering[v as usize];
                t.clear();
                t.extend(buf.iter().map(|&i| graph.in_neighbors(v)[i as usize]));
            }
            if triggering[v as usize].contains(&u) {
                visited.mark(v);
                frontier.push(v);
            }
        }
    }
    frontier.len()
}

/// Reusable buffers for [`simulate_triggering`].
pub struct TriggeringScratch {
    visited: VisitTracker,
    exposed: VisitTracker,
    triggering: Vec<Vec<u32>>,
    frontier: Vec<u32>,
    buf: Vec<u32>,
}

impl TriggeringScratch {
    /// Allocates scratch for `n` nodes.
    pub fn new(n: usize) -> Self {
        TriggeringScratch {
            visited: VisitTracker::new(n),
            exposed: VisitTracker::new(n),
            triggering: vec![Vec::new(); n],
            frontier: Vec::new(),
            buf: Vec::new(),
        }
    }
}

/// Generic RR-set sampler for any triggering distribution: reverse BFS
/// where leaving node `u` traverses exactly `u`'s sampled triggering set.
pub struct TriggeringRrSampler<'g, D> {
    graph: &'g Graph,
    dist: D,
}

impl<'g, D: TriggeringDistribution> TriggeringRrSampler<'g, D> {
    /// Creates a sampler over `graph` with distribution `dist`.
    pub fn new(graph: &'g Graph, dist: D) -> Self {
        TriggeringRrSampler { graph, dist }
    }
}

impl<D: TriggeringDistribution> RrSampler for TriggeringRrSampler<'_, D> {
    fn graph(&self) -> &Graph {
        self.graph
    }

    fn sample_rooted<R: Rng>(
        &self,
        root: u32,
        rng: &mut R,
        out: &mut Vec<u32>,
        visited: &mut VisitTracker,
    ) -> u64 {
        out.clear();
        visited.clear();
        visited.mark(root);
        out.push(root);
        let mut work = 0u64;
        let mut head = 0;
        let mut tset = Vec::new();
        while head < out.len() {
            let u = out[head];
            head += 1;
            tset.clear();
            work += self.dist.sample_into(self.graph, u, rng, &mut tset);
            let sources = self.graph.in_neighbors(u);
            for &idx in &tset {
                let w = sources[idx as usize];
                if visited.mark(w) {
                    out.push(w);
                }
            }
        }
        work.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    use dim_graph::{GraphBuilder, WeightModel};

    use crate::exact::exact_spread;
    use crate::model::DiffusionModel;
    use crate::rr::estimate_eps;

    fn fig1() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 1.0);
        b.add_weighted_edge(0, 2, 1.0);
        b.add_weighted_edge(0, 3, 0.4);
        b.add_weighted_edge(1, 3, 0.3);
        b.add_weighted_edge(2, 3, 0.2);
        b.build(WeightModel::WeightedCascade)
    }

    /// Triggering-model forward simulation with the IC instance matches
    /// the exact IC spread of Example 1 (σ({v1}) = 3.664).
    #[test]
    fn triggering_ic_matches_exact() {
        let g = fig1();
        let mut rng = Pcg64::seed_from_u64(1);
        let mut scratch = TriggeringScratch::new(4);
        let trials = 200_000;
        let total: usize = (0..trials)
            .map(|_| simulate_triggering(&g, &IcTriggering, &[0], &mut rng, &mut scratch))
            .sum();
        let est = total as f64 / trials as f64;
        assert!((est - 3.664).abs() < 0.01, "estimate {est}");
    }

    /// Same for LT (σ({v1}) = 3.9).
    #[test]
    fn triggering_lt_matches_exact() {
        let g = fig1();
        let mut rng = Pcg64::seed_from_u64(2);
        let mut scratch = TriggeringScratch::new(4);
        let trials = 200_000;
        let total: usize = (0..trials)
            .map(|_| simulate_triggering(&g, &LtTriggering, &[0], &mut rng, &mut scratch))
            .sum();
        let est = total as f64 / trials as f64;
        assert!((est - 3.9).abs() < 0.01, "estimate {est}");
    }

    /// The generic triggering RR sampler draws the same distribution as
    /// the specialized IC sampler: Lemma 1 check against the exact spread.
    #[test]
    fn triggering_rr_sampler_ic_lemma1() {
        let g = fig1();
        let sampler = TriggeringRrSampler::new(&g, IcTriggering);
        let mut rng = Pcg64::seed_from_u64(3);
        let mut out = Vec::new();
        let mut visited = VisitTracker::new(4);
        let trials = 300_000;
        let mut hits = 0usize;
        for _ in 0..trials {
            sampler.sample(&mut rng, &mut out, &mut visited);
            if out.contains(&0) {
                hits += 1;
            }
        }
        let est = 4.0 * hits as f64 / trials as f64;
        let exact = exact_spread(&g, DiffusionModel::IndependentCascade, &[0]);
        assert!((est - exact).abs() < 0.02, "RIS {est} vs exact {exact}");
    }

    /// Lemma 3 under the general triggering model: EPS equals the average
    /// single-node spread, for the LT instance.
    #[test]
    fn lemma3_triggering_lt() {
        let g = fig1();
        let exact_avg: f64 = (0..4)
            .map(|v| exact_spread(&g, DiffusionModel::LinearThreshold, &[v]))
            .sum::<f64>()
            / 4.0;
        let sampler = TriggeringRrSampler::new(&g, LtTriggering);
        let mut rng = Pcg64::seed_from_u64(4);
        let eps = estimate_eps(&sampler, 200_000, &mut rng);
        assert!(
            (eps - exact_avg).abs() < 0.02,
            "EPS {eps} vs exact {exact_avg}"
        );
    }

    /// The LT triggering instance picks at most one in-neighbor.
    #[test]
    fn lt_triggering_at_most_one() {
        let g = fig1();
        let mut rng = Pcg64::seed_from_u64(5);
        let mut out = Vec::new();
        for _ in 0..1000 {
            out.clear();
            LtTriggering.sample_into(&g, 3, &mut rng, &mut out);
            assert!(out.len() <= 1);
        }
    }

    /// Deterministic edges always end up in the IC triggering set.
    #[test]
    fn ic_triggering_includes_certain_edges() {
        let g = fig1();
        let mut rng = Pcg64::seed_from_u64(6);
        let mut out = Vec::new();
        for _ in 0..100 {
            out.clear();
            IcTriggering.sample_into(&g, 1, &mut rng, &mut out);
            assert_eq!(out, vec![0], "p = 1 edge always triggers");
        }
    }
}
