//! Exact influence spread by live-edge enumeration (tiny graphs only).
//!
//! Kempe et al. showed both IC and LT are equivalent to reachability in a
//! random *live-edge* graph: under IC every edge is independently live with
//! `p(u,v)`; under LT every node keeps at most one incoming live edge, edge
//! `⟨u,v⟩` with probability `p(u,v)` and none with `1 − Σ p`. Enumerating
//! all live-edge outcomes gives the exact spread — #P-hard in general, so
//! this module is gated to tiny instances and exists to validate the
//! estimators and the end-to-end approximation guarantees.

use dim_graph::Graph;

use crate::model::DiffusionModel;

/// Hard cap on enumerated outcomes (2^edges for IC, Π(indeg+1) for LT).
const MAX_OUTCOMES: u64 = 1 << 22;

/// All live-edge outcomes of a model on a graph, with their probabilities.
///
/// Build once, then evaluate [`LiveEdgeEnsemble::spread`] for many seed sets
/// (e.g. brute-force optimal seed search).
pub struct LiveEdgeEnsemble {
    n: usize,
    /// `(probability, forward adjacency lists)` per outcome.
    outcomes: Vec<(f64, Vec<Vec<u32>>)>,
}

impl LiveEdgeEnsemble {
    /// Enumerates the model's live-edge distribution.
    ///
    /// # Panics
    /// Panics when the outcome count exceeds an internal cap (the graph is
    /// too large for exact computation).
    pub fn build(graph: &Graph, model: DiffusionModel) -> Self {
        match model {
            DiffusionModel::IndependentCascade => Self::build_ic(graph),
            DiffusionModel::LinearThreshold => Self::build_lt(graph),
        }
    }

    fn build_ic(graph: &Graph) -> Self {
        let m = graph.num_edges();
        assert!(
            m < 63 && (1u64 << m) <= MAX_OUTCOMES,
            "graph too large for exact IC enumeration ({m} edges)"
        );
        let edges: Vec<(u32, u32, f64)> = graph
            .edges()
            .map(|(u, v, p)| (u, v, p as f64))
            .collect();
        let mut outcomes = Vec::with_capacity(1 << m);
        for mask in 0u64..(1 << m) {
            let mut prob = 1.0;
            let mut adj = vec![Vec::new(); graph.num_nodes()];
            for (i, &(u, v, p)) in edges.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    prob *= p;
                    adj[u as usize].push(v);
                } else {
                    prob *= 1.0 - p;
                }
            }
            if prob > 0.0 {
                outcomes.push((prob, adj));
            }
        }
        LiveEdgeEnsemble {
            n: graph.num_nodes(),
            outcomes,
        }
    }

    fn build_lt(graph: &Graph) -> Self {
        let n = graph.num_nodes();
        let count = graph
            .nodes()
            .map(|v| graph.in_degree(v) as u64 + 1)
            .try_fold(1u64, u64::checked_mul)
            .filter(|&c| c <= MAX_OUTCOMES);
        assert!(
            count.is_some(),
            "graph too large for exact LT enumeration"
        );
        let mut outcomes = Vec::new();
        // Depth-first product over per-node incoming-edge choices.
        fn recurse(
            graph: &Graph,
            v: u32,
            prob: f64,
            adj: &mut Vec<Vec<u32>>,
            out: &mut Vec<(f64, Vec<Vec<u32>>)>,
        ) {
            if prob == 0.0 {
                return;
            }
            if v as usize == graph.num_nodes() {
                out.push((prob, adj.clone()));
                return;
            }
            let sources = graph.in_neighbors(v);
            let probs = graph.in_probs(v);
            let total: f64 = probs.iter().map(|&p| p as f64).sum();
            // Option: no live in-edge.
            recurse(graph, v + 1, prob * (1.0 - total).max(0.0), adj, out);
            // Option: exactly one live in-edge ⟨u, v⟩.
            for (&u, &p) in sources.iter().zip(probs) {
                adj[u as usize].push(v);
                recurse(graph, v + 1, prob * p as f64, adj, out);
                adj[u as usize].pop();
            }
        }
        let mut adj = vec![Vec::new(); n];
        recurse(graph, 0, 1.0, &mut adj, &mut outcomes);
        LiveEdgeEnsemble { n, outcomes }
    }

    /// Exact expected number of nodes reachable from `seeds`.
    pub fn spread(&self, seeds: &[u32]) -> f64 {
        let mut total = 0.0;
        let mut visited = vec![false; self.n];
        let mut stack = Vec::new();
        for (prob, adj) in &self.outcomes {
            visited.fill(false);
            stack.clear();
            let mut count = 0usize;
            for &s in seeds {
                if !visited[s as usize] {
                    visited[s as usize] = true;
                    count += 1;
                    stack.push(s);
                }
            }
            while let Some(u) = stack.pop() {
                for &v in &adj[u as usize] {
                    if !visited[v as usize] {
                        visited[v as usize] = true;
                        count += 1;
                        stack.push(v);
                    }
                }
            }
            total += prob * count as f64;
        }
        total
    }

    /// Number of enumerated outcomes (after pruning zero-probability ones).
    pub fn num_outcomes(&self) -> usize {
        self.outcomes.len()
    }
}

/// Exact spread `σ(S)` of `seeds` under `model`. Convenience wrapper that
/// builds a throwaway [`LiveEdgeEnsemble`].
pub fn exact_spread(graph: &Graph, model: DiffusionModel, seeds: &[u32]) -> f64 {
    LiveEdgeEnsemble::build(graph, model).spread(seeds)
}

/// Brute-force optimal size-`k` seed set by exhaustive search. Returns
/// `(best seeds, OPT)`. Exponential — test-sized graphs only.
pub fn exact_opt(graph: &Graph, model: DiffusionModel, k: usize) -> (Vec<u32>, f64) {
    let ensemble = LiveEdgeEnsemble::build(graph, model);
    let n = graph.num_nodes();
    assert!(k <= n, "k = {k} exceeds n = {n}");
    let mut best: (Vec<u32>, f64) = (Vec::new(), -1.0);
    let mut subset: Vec<u32> = Vec::with_capacity(k);
    fn recurse(
        ensemble: &LiveEdgeEnsemble,
        n: usize,
        k: usize,
        start: u32,
        subset: &mut Vec<u32>,
        best: &mut (Vec<u32>, f64),
    ) {
        if subset.len() == k {
            let s = ensemble.spread(subset);
            if s > best.1 {
                *best = (subset.clone(), s);
            }
            return;
        }
        let remaining = k - subset.len();
        for v in start..=(n as u32 - remaining as u32) {
            subset.push(v);
            recurse(ensemble, n, k, v + 1, subset, best);
            subset.pop();
        }
    }
    recurse(&ensemble, n, k, 0, &mut subset, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_graph::{GraphBuilder, WeightModel};

    fn fig1() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 1.0);
        b.add_weighted_edge(0, 2, 1.0);
        b.add_weighted_edge(0, 3, 0.4);
        b.add_weighted_edge(1, 3, 0.3);
        b.add_weighted_edge(2, 3, 0.2);
        b.build(WeightModel::WeightedCascade)
    }

    #[test]
    fn example1_exact_ic() {
        // Paper Example 1: σ({v1}) = 0.4·4 + 0.264·4 + 0.336·3 = 3.664.
        let s = exact_spread(&fig1(), DiffusionModel::IndependentCascade, &[0]);
        assert!((s - 3.664).abs() < 1e-6, "exact IC spread {s}");
    }

    #[test]
    fn example1_exact_lt() {
        // Paper Example 1: σ({v1}) = 0.4·4 + 0.5·4 + 0.1·3 = 3.9.
        let s = exact_spread(&fig1(), DiffusionModel::LinearThreshold, &[0]);
        assert!((s - 3.9).abs() < 1e-6, "exact LT spread {s}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        for model in [
            DiffusionModel::IndependentCascade,
            DiffusionModel::LinearThreshold,
        ] {
            let e = LiveEdgeEnsemble::build(&fig1(), model);
            let total: f64 = e.outcomes.iter().map(|(p, _)| p).sum();
            assert!((total - 1.0).abs() < 1e-9, "{model}: Σp = {total}");
        }
    }

    #[test]
    fn monotone_in_seeds() {
        let e = LiveEdgeEnsemble::build(&fig1(), DiffusionModel::IndependentCascade);
        assert!(e.spread(&[0, 1]) >= e.spread(&[0]));
        assert!(e.spread(&[0, 1, 2, 3]) >= e.spread(&[0, 1]));
    }

    #[test]
    fn full_seed_set_covers_everything() {
        for model in [
            DiffusionModel::IndependentCascade,
            DiffusionModel::LinearThreshold,
        ] {
            let s = exact_spread(&fig1(), model, &[0, 1, 2, 3]);
            assert!((s - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn opt_picks_root() {
        let (seeds, opt) = exact_opt(&fig1(), DiffusionModel::IndependentCascade, 1);
        assert_eq!(seeds, vec![0]);
        assert!((opt - 3.664).abs() < 1e-6);
    }

    #[test]
    fn opt_two_seeds() {
        let (seeds, opt) = exact_opt(&fig1(), DiffusionModel::LinearThreshold, 2);
        // {v1, v4} guarantees all four nodes: v1 activates v2, v3 always.
        assert_eq!(seeds, vec![0, 3]);
        assert!((opt - 4.0).abs() < 1e-9);
    }

    #[test]
    fn matches_monte_carlo() {
        let g = fig1();
        let exact = exact_spread(&g, DiffusionModel::IndependentCascade, &[1, 2]);
        let mc = crate::forward::estimate_spread(
            &g,
            DiffusionModel::IndependentCascade,
            &[1, 2],
            100_000,
            11,
        );
        assert!((exact - mc).abs() < 0.02, "exact {exact} vs mc {mc}");
    }
}
