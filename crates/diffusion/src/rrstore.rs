//! Pooled RR-set storage and the inverted node→RR-set index.
//!
//! Each machine in the distributed algorithms owns one [`RrStore`] holding
//! its locally generated RR sets (`R_i` in the paper's notation). Sets are
//! stored back-to-back in one pool, so millions of small sets cost two flat
//! allocations instead of millions. Seed selection additionally needs the
//! transpose — for a node `v`, the ids `I_i(v)` of local RR sets containing
//! `v` — provided by [`InvertedIndex`].

/// Append-only pooled storage of RR sets.
#[derive(Clone, Debug, Default)]
pub struct RrStore {
    offsets: Vec<usize>,
    pool: Vec<u32>,
}

impl RrStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        RrStore {
            offsets: vec![0],
            pool: Vec::new(),
        }
    }

    /// Creates an empty store pre-sized for `sets` RR sets of average size
    /// `avg_size`.
    pub fn with_capacity(sets: usize, avg_size: usize) -> Self {
        let mut offsets = Vec::with_capacity(sets + 1);
        offsets.push(0);
        RrStore {
            offsets,
            pool: Vec::with_capacity(sets * avg_size),
        }
    }

    /// Appends one RR set; returns its id within this store.
    ///
    /// # Panics
    /// Panics instead of silently truncating the returned id when the
    /// store already holds `u32::MAX` RR sets (same bound as
    /// `PooledSets::push`).
    pub fn push(&mut self, rr: &[u32]) -> u32 {
        let id = self.num_sets();
        assert!(
            id <= u32::MAX as usize,
            "RrStore: RR-set id would exceed u32::MAX (2^32 sets stored)"
        );
        self.pool.extend_from_slice(rr);
        self.offsets.push(self.pool.len());
        id as u32
    }

    /// Number of stored RR sets (`|R_i|`).
    pub fn num_sets(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when no sets are stored.
    pub fn is_empty(&self) -> bool {
        self.num_sets() == 0
    }

    /// The `id`-th RR set.
    pub fn get(&self, id: usize) -> &[u32] {
        &self.pool[self.offsets[id]..self.offsets[id + 1]]
    }

    /// Total number of node occurrences, `Σ_R |R|` — the quantity that
    /// bounds NewGreeDi's per-machine time (§III-D) and Table IV's
    /// "total size" column.
    pub fn total_size(&self) -> usize {
        self.pool.len()
    }

    /// Iterates the stored sets in id order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        self.offsets
            .windows(2)
            .map(move |w| &self.pool[w[0]..w[1]])
    }

    /// Builds the node→RR-set-ids transpose for nodes `0..n`.
    pub fn invert(&self, n: usize) -> InvertedIndex {
        let mut counts = vec![0usize; n + 1];
        for &v in &self.pool {
            counts[v as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut cursor = counts.clone();
        let mut rr_ids = vec![0u32; self.pool.len()];
        for id in 0..self.num_sets() {
            for &v in self.get(id) {
                rr_ids[cursor[v as usize]] = id as u32;
                cursor[v as usize] += 1;
            }
        }
        InvertedIndex {
            offsets: counts,
            rr_ids,
        }
    }
}

/// Transpose of an [`RrStore`]: for each node, the ids of the RR sets that
/// contain it (`I_i(v)` in the paper). RR ids within a node's list are in
/// increasing order.
#[derive(Clone, Debug)]
pub struct InvertedIndex {
    offsets: Vec<usize>,
    rr_ids: Vec<u32>,
}

impl InvertedIndex {
    /// Ids of RR sets containing `v`.
    pub fn sets_covering(&self, v: u32) -> &[u32] {
        &self.rr_ids[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Number of RR sets containing `v` — `v`'s initial coverage `Δ(v)`.
    pub fn coverage(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Number of indexed nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example3_store() -> RrStore {
        // Fig. 2 of the paper: R1={v1,v2}, R2={v2,v3,v4}, R3={v1,v3},
        // R4={v2,v5}, R5={v1}, R6={v4,v5}. Node ids shifted down by one.
        let mut s = RrStore::new();
        s.push(&[0, 1]);
        s.push(&[1, 2, 3]);
        s.push(&[0, 2]);
        s.push(&[1, 4]);
        s.push(&[0]);
        s.push(&[3, 4]);
        s
    }

    #[test]
    fn push_and_get() {
        let s = example3_store();
        assert_eq!(s.num_sets(), 6);
        assert_eq!(s.get(1), &[1, 2, 3]);
        assert_eq!(s.get(4), &[0]);
        assert_eq!(s.total_size(), 12);
        assert!(!s.is_empty());
    }

    #[test]
    fn iter_matches_get() {
        let s = example3_store();
        let via_iter: Vec<Vec<u32>> = s.iter().map(|r| r.to_vec()).collect();
        let via_get: Vec<Vec<u32>> = (0..s.num_sets()).map(|i| s.get(i).to_vec()).collect();
        assert_eq!(via_iter, via_get);
    }

    #[test]
    fn inverted_index_example3() {
        // Paper Example 3: node v1 covers RR sets R1, R3, R5.
        let s = example3_store();
        let idx = s.invert(5);
        assert_eq!(idx.sets_covering(0), &[0, 2, 4]);
        assert_eq!(idx.coverage(0), 3);
        assert_eq!(idx.coverage(1), 3); // v2 ∈ R1, R2, R4
        assert_eq!(idx.sets_covering(3), &[1, 5]);
        assert_eq!(idx.num_nodes(), 5);
    }

    #[test]
    fn invert_counts_total() {
        let s = example3_store();
        let idx = s.invert(5);
        let total: usize = (0..5).map(|v| idx.coverage(v as u32)).sum();
        assert_eq!(total, s.total_size());
    }

    #[test]
    fn empty_store() {
        let s = RrStore::new();
        assert!(s.is_empty());
        assert_eq!(s.total_size(), 0);
        let idx = s.invert(3);
        assert_eq!(idx.coverage(0), 0);
        assert_eq!(idx.sets_covering(2), &[] as &[u32]);
    }

    #[test]
    fn node_absent_from_all_sets() {
        let mut s = RrStore::new();
        s.push(&[0]);
        let idx = s.invert(4);
        assert_eq!(idx.coverage(3), 0);
    }
}
