//! Property-based tests for diffusion and RR sampling.

use dim_diffusion::exact::{exact_spread, LiveEdgeEnsemble};
use dim_diffusion::forward::estimate_spread;
use dim_diffusion::rr::{sample_batch, AnySampler};
use dim_diffusion::visit::VisitTracker;
use dim_diffusion::{DiffusionModel, RrSampler, RrStore};
use dim_graph::{Graph, GraphBuilder, WeightModel};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_pcg::Pcg64;

/// Tiny random weighted digraphs (≤ 6 nodes, ≤ 8 edges) small enough for
/// exact live-edge enumeration under both models.
fn tiny_graph() -> impl Strategy<Value = Graph> {
    prop::collection::vec((0u32..6, 0u32..6, 0.05f32..0.95), 1..8).prop_map(|edges| {
        let mut b = GraphBuilder::new(6);
        // Scale probabilities down per target so the LT constraint holds.
        let mut seen_targets: Vec<u32> = edges.iter().map(|e| e.1).collect();
        seen_targets.sort_unstable();
        for &(u, v, p) in &edges {
            let indeg = seen_targets.iter().filter(|&&t| t == v).count() as f32;
            b.add_weighted_edge(u, v, (p / indeg).min(1.0));
        }
        b.build(WeightModel::WeightedCascade)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma 1 property: the RIS estimate of σ({v}) converges to the exact
    /// live-edge value under both models.
    #[test]
    fn lemma1_matches_exact(g in tiny_graph(), root in 0u32..6, seed in 0u64..1000) {
        for model in [DiffusionModel::IndependentCascade, DiffusionModel::LinearThreshold] {
            let n = g.num_nodes();
            let exact = exact_spread(&g, model, &[root]);
            let sampler = AnySampler::for_model(&g, model);
            let mut rng = Pcg64::seed_from_u64(seed);
            let mut out = Vec::new();
            let mut visited = VisitTracker::new(n);
            let trials = 30_000;
            let mut hits = 0usize;
            for _ in 0..trials {
                sampler.sample(&mut rng, &mut out, &mut visited);
                if out.contains(&root) {
                    hits += 1;
                }
            }
            let est = n as f64 * hits as f64 / trials as f64;
            prop_assert!(
                (est - exact).abs() < 0.15 + 0.05 * exact,
                "{model}: RIS {est} vs exact {exact}"
            );
        }
    }

    /// Forward Monte-Carlo matches exact spread on tiny graphs, both models.
    #[test]
    fn forward_mc_matches_exact(g in tiny_graph(), seed in 0u64..1000) {
        let seeds = [0u32, 3];
        for model in [DiffusionModel::IndependentCascade, DiffusionModel::LinearThreshold] {
            let exact = exact_spread(&g, model, &seeds);
            let mc = estimate_spread(&g, model, &seeds, 30_000, seed);
            prop_assert!(
                (mc - exact).abs() < 0.15 + 0.05 * exact,
                "{model}: MC {mc} vs exact {exact}"
            );
        }
    }

    /// Spread is monotone in the seed set (exact evaluation).
    #[test]
    fn spread_monotone(g in tiny_graph()) {
        for model in [DiffusionModel::IndependentCascade, DiffusionModel::LinearThreshold] {
            let e = LiveEdgeEnsemble::build(&g, model);
            let mut prev = 0.0;
            let mut seeds: Vec<u32> = Vec::new();
            for v in 0..6u32 {
                seeds.push(v);
                let s = e.spread(&seeds);
                prop_assert!(s >= prev - 1e-9, "{model}: spread dropped {prev} -> {s}");
                prev = s;
            }
            prop_assert!((prev - 6.0).abs() < 1e-9, "all seeds cover everything");
        }
    }

    /// Spread is submodular in the exact evaluation: adding a node helps a
    /// subset at least as much as a superset.
    #[test]
    fn spread_submodular(g in tiny_graph(), extra in 0u32..6) {
        for model in [DiffusionModel::IndependentCascade, DiffusionModel::LinearThreshold] {
            let e = LiveEdgeEnsemble::build(&g, model);
            let small = vec![0u32];
            let big = vec![0u32, 1, 2];
            if big.contains(&extra) || small.contains(&extra) {
                continue;
            }
            let gain_small = e.spread(&[0, extra]) - e.spread(&small);
            let mut big_plus = big.clone();
            big_plus.push(extra);
            let gain_big = e.spread(&big_plus) - e.spread(&big);
            prop_assert!(
                gain_small >= gain_big - 1e-9,
                "{model}: submodularity violated ({gain_small} < {gain_big})"
            );
        }
    }

    /// Every RR set contains its root, has no duplicates, and all three
    /// samplers respect node-id bounds.
    #[test]
    fn rr_sets_well_formed(g in tiny_graph(), seed in 0u64..1000) {
        let samplers = [
            AnySampler::for_model(&g, DiffusionModel::IndependentCascade),
            AnySampler::for_model(&g, DiffusionModel::LinearThreshold),
            AnySampler::subsim(&g),
        ];
        for sampler in &samplers {
            let mut store = RrStore::new();
            let mut rng = Pcg64::seed_from_u64(seed);
            sample_batch(sampler, 200, &mut rng, &mut store);
            for rr in store.iter() {
                prop_assert!(!rr.is_empty());
                prop_assert!(rr.iter().all(|&v| (v as usize) < g.num_nodes()));
                let mut sorted = rr.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), rr.len());
            }
        }
    }

    /// The inverted index agrees with a direct scan of the store.
    #[test]
    fn inverted_index_consistent(g in tiny_graph(), seed in 0u64..1000) {
        let sampler = AnySampler::for_model(&g, DiffusionModel::IndependentCascade);
        let mut store = RrStore::new();
        let mut rng = Pcg64::seed_from_u64(seed);
        sample_batch(&sampler, 300, &mut rng, &mut store);
        let idx = store.invert(g.num_nodes());
        for v in 0..g.num_nodes() as u32 {
            let direct: Vec<u32> = (0..store.num_sets() as u32)
                .filter(|&i| store.get(i as usize).contains(&v))
                .collect();
            prop_assert_eq!(idx.sets_covering(v), direct.as_slice());
        }
    }
}
