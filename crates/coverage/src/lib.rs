//! Maximum coverage, centralized and distributed.
//!
//! Influence maximization reduces to maximum coverage over RR sets
//! (Lemma 1 of the paper): pick `k` *sets* (nodes) covering the most
//! *elements* (RR sets). This crate implements that optimization layer:
//!
//! * [`PooledSets`] — flat pooled storage of u32 lists, the common currency
//!   of instances and shards.
//! * [`CoverageProblem`] — a global set-element instance, with builders from
//!   arbitrary set lists or a graph's neighborhoods (the paper's §IV-C
//!   workload), and exact brute-force optimum for tiny instances.
//! * [`BucketSelector`] — the paper's coverage-bucketed vector `D` with lazy
//!   updates (Algorithm 1, lines 5–13): amortized-linear greedy selection.
//! * [`greedy`] — centralized algorithms: bucket greedy, CELF lazy greedy,
//!   and a naive per-round rescan oracle.
//! * [`mod@newgreedi`] — **NewGreeDi** (Algorithm 1): element-distributed greedy
//!   generic over any [`dim_cluster::ClusterBackend`], returning *exactly* the
//!   centralized greedy solution (Lemma 2), with sparse-delta map/reduce
//!   updates.
//! * [`greedi`] — the set-distributed composable core-sets baselines GreeDi
//!   (Mirzasoleiman et al.) and RandGreeDi (Barbosa et al.), used by
//!   Fig. 10's comparison.
//! * [`budgeted`] — cost-aware (budgeted) maximum coverage with the same
//!   element-distributed messaging, supporting the budgeted-IM application
//!   the paper's conclusion names.
//! * [`query`] — read-only influence queries over frozen shards
//!   ([`QueryCursor`]): seed-set spread and constrained top-k, the
//!   substrate of `dim serve`.
//! * [`scratch`] — epoch-stamped reusable flag buffers ([`scratch::EpochFlags`])
//!   that replace per-call `vec![false; n]` allocations on the hot paths.
//!
//! # Example
//!
//! ```
//! use dim_coverage::{CoverageProblem, greedy};
//!
//! // Paper Fig. 2: six RR sets over five nodes; {v1, v2} covers all six.
//! let problem = CoverageProblem::from_element_records(5, [
//!     &[0u32][..], &[1, 2], &[0, 2], &[1, 4], &[0], &[1, 3],
//! ]);
//! let mut shard = problem.single_shard();
//! let result = greedy::bucket_greedy(&mut shard, 2);
//! let mut seeds = result.seeds.clone();
//! seeds.sort_unstable();
//! assert_eq!(seeds, vec![0, 1]);
//! assert_eq!(result.covered, 6);
//! ```

pub mod budgeted;
pub mod greedi;
pub mod greedy;
pub mod newgreedi;
pub mod pooled;
pub mod problem;
pub mod query;
pub mod scratch;
pub mod selector;
pub mod shard;

pub use greedy::GreedyResult;
pub use budgeted::{budgeted_greedy, newgreedi_budgeted, BudgetedResult};
pub use newgreedi::{
    newgreedi, newgreedi_incremental, newgreedi_until, newgreedi_with, NewGreediResult,
};
pub use pooled::PooledSets;
pub use problem::CoverageProblem;
pub use query::{constrained_greedy, seed_set_coverage, SketchCursors};
pub use selector::BucketSelector;
pub use shard::{execute_coverage_op, CoverageShard, QueryCursor};
