//! Per-machine element shard for element-distributed maximum coverage.

use dim_cluster::{OpExecutor, WorkerOp, WorkerReply, WorkerStats};

use crate::pooled::PooledSets;

/// One machine's shard of the elements in an element-distributed maximum
/// coverage instance (the machine's RR sets `R_i` in the paper).
///
/// Each stored *element record* lists the ids of the sets covering that
/// element (for an RR set, the nodes it contains). The shard maintains:
///
/// * the transpose index `I_i(set) → local element ids` used by the map
///   stage (Algorithm 1, line 16),
/// * per-element `covered` labels (lines 2, 17, 21).
///
/// Elements may keep being appended (DiIMM adds RR sets across iterations);
/// call [`CoverageShard::prepare`] before each selection round to rebuild
/// the index and relabel everything uncovered.
#[derive(Clone, Debug)]
pub struct CoverageShard {
    num_sets: usize,
    elements: PooledSets,
    /// Transpose: set id → local element ids. Rebuilt by `prepare`.
    index: PooledSets,
    /// Number of elements the index was built over (staleness detector).
    indexed_elements: usize,
    covered: Vec<bool>,
    covered_count: usize,
    /// Elements already reported through [`Self::take_new_coverage`].
    reported_elements: usize,
    /// Dense per-set counter reused by the delta-aggregation hot paths
    /// (always all-zero between calls).
    scratch_counts: Vec<u32>,
    /// Sets touched in `scratch_counts` during the current aggregation.
    scratch_touched: Vec<u32>,
}

impl CoverageShard {
    /// Creates an empty shard over a universe of `num_sets` sets.
    pub fn new(num_sets: usize) -> Self {
        CoverageShard {
            num_sets,
            elements: PooledSets::new(),
            index: PooledSets::new(),
            indexed_elements: 0,
            covered: Vec::new(),
            covered_count: 0,
            reported_elements: 0,
            scratch_counts: vec![0; num_sets],
            scratch_touched: Vec::new(),
        }
    }

    /// Creates a shard pre-populated with element records.
    pub fn from_records<'a>(
        num_sets: usize,
        records: impl IntoIterator<Item = &'a [u32]>,
    ) -> Self {
        let mut shard = CoverageShard::new(num_sets);
        for r in records {
            shard.push_element(r);
        }
        shard.prepare();
        shard
    }

    /// Appends one element record (the sets covering it). Invalidates the
    /// index until the next [`Self::prepare`].
    pub fn push_element(&mut self, covering_sets: &[u32]) {
        debug_assert!(covering_sets
            .iter()
            .all(|&s| (s as usize) < self.num_sets));
        self.elements.push(covering_sets);
    }

    /// Number of local elements (`|R_i|`).
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// Size of the set universe.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Σ over local elements of record length (`Σ_{R∈R_i} |R|`).
    pub fn total_size(&self) -> usize {
        self.elements.total_size()
    }

    /// Rebuilds the transpose index and labels every element *uncovered*
    /// (Algorithm 1, lines 1–3). Must be called before a selection round
    /// and after any `push_element`.
    pub fn prepare(&mut self) {
        self.index = self.elements.transpose(self.num_sets);
        self.indexed_elements = self.elements.len();
        self.covered.clear();
        self.covered.resize(self.elements.len(), false);
        self.covered_count = 0;
    }

    /// True when the index is stale (elements were added since `prepare`).
    pub fn needs_prepare(&self) -> bool {
        self.indexed_elements != self.elements.len()
    }

    /// This machine's coverage contribution from elements appended since
    /// the last call, as sparse `(set, count)` tuples in increasing set
    /// order. The paper's §III-C traffic optimization: across repeated
    /// NewGreeDi invocations (DiIMM adds RR sets between them), a machine
    /// need only report the marginals over its *newly generated* elements
    /// and let the master accumulate.
    pub fn take_new_coverage(&mut self) -> Vec<(u32, u32)> {
        for e in self.reported_elements..self.elements.len() {
            for &v in self.elements.get(e) {
                if self.scratch_counts[v as usize] == 0 {
                    self.scratch_touched.push(v);
                }
                self.scratch_counts[v as usize] += 1;
            }
        }
        self.reported_elements = self.elements.len();
        self.drain_scratch()
    }

    /// Converts the dense scratch counters into sorted sparse tuples and
    /// zeroes them for the next aggregation.
    fn drain_scratch(&mut self) -> Vec<(u32, u32)> {
        self.scratch_touched.sort_unstable();
        let out: Vec<(u32, u32)> = self
            .scratch_touched
            .iter()
            .map(|&v| (v, self.scratch_counts[v as usize]))
            .collect();
        for &v in &self.scratch_touched {
            self.scratch_counts[v as usize] = 0;
        }
        self.scratch_touched.clear();
        out
    }

    /// This machine's initial coverage of every set: `Δ_i(v)` for all `v`
    /// with nonzero local coverage, as sparse `(set, count)` tuples in
    /// increasing set order (Algorithm 1, line 3).
    pub fn initial_coverage(&self) -> Vec<(u32, u32)> {
        assert!(!self.needs_prepare(), "call prepare() first");
        (0..self.num_sets as u32)
            .filter_map(|s| {
                let c = self.index.get(s as usize).len();
                (c > 0).then_some((s, c as u32))
            })
            .collect()
    }

    /// The map stage for a newly selected seed `u` (Algorithm 1,
    /// lines 14–21): labels every uncovered local element containing `u` as
    /// covered, and returns the sparse marginal decrements
    /// `⟨v, Δ_i(v)⟩` for every affected set `v`, in increasing set order.
    pub fn apply_seed(&mut self, u: u32) -> Vec<(u32, u32)> {
        assert!(!self.needs_prepare(), "call prepare() first");
        // The pseudo-code uses a hash map Δ_i; a dense counter plus a
        // touched-list does the same aggregation with no hashing on the
        // hot path, and sorting the touched sets keeps output
        // deterministic.
        for &e in self.index.get(u as usize) {
            let e = e as usize;
            if !self.covered[e] {
                for &v in self.elements.get(e) {
                    if self.scratch_counts[v as usize] == 0 {
                        self.scratch_touched.push(v);
                    }
                    self.scratch_counts[v as usize] += 1;
                }
                self.covered[e] = true;
                self.covered_count += 1;
            }
        }
        self.drain_scratch()
    }

    /// Number of locally covered elements after the seeds applied so far.
    pub fn covered_count(&self) -> usize {
        self.covered_count
    }

    /// Local coverage a set would add right now (diagnostics/tests).
    pub fn marginal(&self, u: u32) -> usize {
        self.index
            .get(u as usize)
            .iter()
            .filter(|&&e| !self.covered[e as usize])
            .count()
    }

    /// Borrow the raw element records.
    pub fn elements(&self) -> &PooledSets {
        &self.elements
    }
}

/// Executes the coverage-phase subset of the [`WorkerOp`] vocabulary
/// against a shard, or returns `None` for ops outside it (graph loading,
/// RR sampling, validation) so composite workers can route those to their
/// other components.
///
/// This is the single interpretation of coverage ops: the in-process
/// simulator and the `dim-worker` process both funnel through it, which is
/// what makes backend equivalence hold by construction. Each handler
/// mirrors the pre-op closure the master used to run against the shard —
/// in particular [`WorkerOp::InitialCoverage`] and [`WorkerOp::NewCoverage`]
/// call [`CoverageShard::prepare`] first, starting a fresh selection round.
pub fn execute_coverage_op(shard: &mut CoverageShard, op: &WorkerOp) -> Option<WorkerReply> {
    Some(match op {
        WorkerOp::BuildShard { num_sets, elements } => {
            *shard = CoverageShard::from_records(
                *num_sets as usize,
                elements.iter().map(|e| e.as_slice()),
            );
            WorkerReply::Ok
        }
        WorkerOp::InitialCoverage => {
            shard.prepare();
            WorkerReply::Deltas(shard.initial_coverage())
        }
        WorkerOp::NewCoverage => {
            shard.prepare();
            WorkerReply::Deltas(shard.take_new_coverage())
        }
        WorkerOp::ApplySeed { set } => WorkerReply::Deltas(shard.apply_seed(*set)),
        WorkerOp::CoveredCount => WorkerReply::Count(shard.covered_count() as u64),
        WorkerOp::Stats => WorkerReply::Stats(WorkerStats {
            num_elements: shard.num_elements() as u64,
            total_size: shard.total_size() as u64,
            edges_examined: 0,
        }),
        _ => return None,
    })
}

impl OpExecutor for CoverageShard {
    fn execute(&mut self, op: &WorkerOp) -> WorkerReply {
        execute_coverage_op(self, op)
            .unwrap_or_else(|| WorkerReply::Err("op unsupported by coverage shard".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 2 instance as a single shard.
    fn example3() -> CoverageShard {
        CoverageShard::from_records(
            5,
            [
                &[0u32][..],
                &[1, 2],
                &[0, 2],
                &[1, 4],
                &[0],
                &[1, 3],
            ],
        )
    }

    #[test]
    fn initial_coverage_matches_example3() {
        let shard = example3();
        // v1 covers R1,R3,R5 → 3; v2 covers R2,R4,R6 → 3; v3 covers
        // R2,R3 → 2; v4 covers R6 → 1; v5 covers R4 → 1.
        assert_eq!(
            shard.initial_coverage(),
            vec![(0, 3), (1, 3), (2, 2), (3, 1), (4, 1)]
        );
    }

    #[test]
    fn apply_seed_marks_and_reports_deltas() {
        let mut shard = example3();
        // Selecting v1 covers R1, R3, R5. Delta: every node in those sets.
        let deltas = shard.apply_seed(0);
        // R1={v1}, R3={v1,v3}, R5={v1}: v1 loses 3, v3 loses 1.
        assert_eq!(deltas, vec![(0, 3), (2, 1)]);
        assert_eq!(shard.covered_count(), 3);
        // Second application is a no-op: sets already covered.
        assert_eq!(shard.apply_seed(0), vec![]);
        assert_eq!(shard.covered_count(), 3);
    }

    #[test]
    fn greedy_example3_sequence() {
        let mut shard = example3();
        shard.apply_seed(0); // v1: covers R1,R3,R5
        assert_eq!(shard.marginal(1), 3); // v2 still covers R2,R4,R6
        shard.apply_seed(1);
        assert_eq!(shard.marginal(4), 0); // everything v5 covers is covered
        assert_eq!(shard.covered_count(), 6);
    }

    #[test]
    fn prepare_resets_coverage() {
        let mut shard = example3();
        shard.apply_seed(0);
        shard.prepare();
        assert_eq!(shard.covered_count(), 0);
        assert_eq!(shard.marginal(0), 3);
    }

    #[test]
    fn incremental_append_requires_prepare() {
        let mut shard = example3();
        assert!(!shard.needs_prepare());
        shard.push_element(&[4]);
        assert!(shard.needs_prepare());
        shard.prepare();
        assert_eq!(shard.marginal(4), 2);
    }

    #[test]
    fn take_new_coverage_incremental() {
        let mut shard = CoverageShard::new(3);
        shard.push_element(&[0, 1]);
        shard.push_element(&[1]);
        shard.prepare();
        assert_eq!(shard.take_new_coverage(), vec![(0, 1), (1, 2)]);
        // Nothing new: empty delta.
        assert_eq!(shard.take_new_coverage(), vec![]);
        // Append more elements: only their contribution is reported.
        shard.push_element(&[2, 0]);
        shard.prepare();
        assert_eq!(shard.take_new_coverage(), vec![(0, 1), (2, 1)]);
        // Accumulated totals equal a full recount.
        assert_eq!(
            shard.initial_coverage(),
            vec![(0, 2), (1, 2), (2, 1)]
        );
    }

    #[test]
    fn empty_shard() {
        let mut shard = CoverageShard::new(3);
        shard.prepare();
        assert_eq!(shard.initial_coverage(), vec![]);
        assert_eq!(shard.apply_seed(1), vec![]);
        assert_eq!(shard.covered_count(), 0);
    }
}
