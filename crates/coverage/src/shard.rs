//! Per-machine element shard for element-distributed maximum coverage.

use dim_cluster::{OpExecutor, WorkerOp, WorkerReply, WorkerStats};

use crate::pooled::PooledSets;
use crate::scratch::EpochFlags;

/// One machine's shard of the elements in an element-distributed maximum
/// coverage instance (the machine's RR sets `R_i` in the paper).
///
/// Each stored *element record* lists the ids of the sets covering that
/// element (for an RR set, the nodes it contains). The shard maintains:
///
/// * the transpose index `I_i(set) → local element ids` used by the map
///   stage (Algorithm 1, line 16),
/// * per-element `covered` labels (lines 2, 17, 21).
///
/// Elements may keep being appended (DiIMM adds RR sets across iterations);
/// call [`CoverageShard::prepare`] before each selection round to rebuild
/// the index and relabel everything uncovered.
#[derive(Clone, Debug)]
pub struct CoverageShard {
    num_sets: usize,
    elements: PooledSets,
    /// Transpose: set id → local element ids. Rebuilt by `prepare`.
    index: PooledSets,
    /// Number of elements the index was built over (staleness detector).
    indexed_elements: usize,
    covered: Vec<bool>,
    covered_count: usize,
    /// Elements already reported through [`Self::take_new_coverage`].
    reported_elements: usize,
    /// Dense per-set counter reused by the delta-aggregation hot paths
    /// (always all-zero between calls).
    scratch_counts: Vec<u32>,
    /// Sets touched in `scratch_counts` during the current aggregation.
    scratch_touched: Vec<u32>,
}

impl CoverageShard {
    /// Creates an empty shard over a universe of `num_sets` sets.
    pub fn new(num_sets: usize) -> Self {
        CoverageShard {
            num_sets,
            elements: PooledSets::new(),
            index: PooledSets::new(),
            indexed_elements: 0,
            covered: Vec::new(),
            covered_count: 0,
            reported_elements: 0,
            scratch_counts: vec![0; num_sets],
            scratch_touched: Vec::new(),
        }
    }

    /// Rebuilds a prepared shard from a snapshot's parts: element records
    /// plus their already-verified transpose index (dim-store validates
    /// `index == elements.transpose(num_sets)` while decoding, so no
    /// re-transpose happens here). The shard comes out exactly as if the
    /// records had been pushed and [`CoverageShard::prepare`]d: everything
    /// uncovered, nothing yet reported through
    /// [`CoverageShard::take_new_coverage`].
    ///
    /// # Panics
    /// Panics if `index` does not have one list per set.
    pub fn from_pooled(num_sets: usize, elements: PooledSets, index: PooledSets) -> Self {
        assert_eq!(index.len(), num_sets, "index must have one list per set");
        let n = elements.len();
        CoverageShard {
            num_sets,
            index,
            indexed_elements: n,
            covered: vec![false; n],
            covered_count: 0,
            reported_elements: 0,
            scratch_counts: vec![0; num_sets],
            scratch_touched: Vec::new(),
            elements,
        }
    }

    /// Creates a shard pre-populated with element records.
    pub fn from_records<'a>(
        num_sets: usize,
        records: impl IntoIterator<Item = &'a [u32]>,
    ) -> Self {
        let mut shard = CoverageShard::new(num_sets);
        for r in records {
            shard.push_element(r);
        }
        shard.prepare();
        shard
    }

    /// Appends one element record (the sets covering it). Invalidates the
    /// index until the next [`Self::prepare`].
    pub fn push_element(&mut self, covering_sets: &[u32]) {
        debug_assert!(covering_sets
            .iter()
            .all(|&s| (s as usize) < self.num_sets));
        self.elements.push(covering_sets);
    }

    /// Number of local elements (`|R_i|`).
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// Size of the set universe.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Σ over local elements of record length (`Σ_{R∈R_i} |R|`).
    pub fn total_size(&self) -> usize {
        self.elements.total_size()
    }

    /// Rebuilds the transpose index and labels every element *uncovered*
    /// (Algorithm 1, lines 1–3). Must be called before a selection round
    /// and after any `push_element`.
    pub fn prepare(&mut self) {
        self.index = self.elements.transpose(self.num_sets);
        self.indexed_elements = self.elements.len();
        self.covered.clear();
        self.covered.resize(self.elements.len(), false);
        self.covered_count = 0;
    }

    /// True when the index is stale (elements were added since `prepare`).
    pub fn needs_prepare(&self) -> bool {
        self.indexed_elements != self.elements.len()
    }

    /// This machine's coverage contribution from elements appended since
    /// the last call, as sparse `(set, count)` tuples in increasing set
    /// order. The paper's §III-C traffic optimization: across repeated
    /// NewGreeDi invocations (DiIMM adds RR sets between them), a machine
    /// need only report the marginals over its *newly generated* elements
    /// and let the master accumulate.
    pub fn take_new_coverage(&mut self) -> Vec<(u32, u32)> {
        for e in self.reported_elements..self.elements.len() {
            for &v in self.elements.get(e) {
                if self.scratch_counts[v as usize] == 0 {
                    self.scratch_touched.push(v);
                }
                self.scratch_counts[v as usize] += 1;
            }
        }
        self.reported_elements = self.elements.len();
        self.drain_scratch()
    }

    /// Converts the dense scratch counters into sorted sparse tuples and
    /// zeroes them for the next aggregation.
    fn drain_scratch(&mut self) -> Vec<(u32, u32)> {
        self.scratch_touched.sort_unstable();
        let out: Vec<(u32, u32)> = self
            .scratch_touched
            .iter()
            .map(|&v| (v, self.scratch_counts[v as usize]))
            .collect();
        for &v in &self.scratch_touched {
            self.scratch_counts[v as usize] = 0;
        }
        self.scratch_touched.clear();
        out
    }

    /// This machine's initial coverage of every set: `Δ_i(v)` for all `v`
    /// with nonzero local coverage, as sparse `(set, count)` tuples in
    /// increasing set order (Algorithm 1, line 3).
    pub fn initial_coverage(&self) -> Vec<(u32, u32)> {
        assert!(!self.needs_prepare(), "call prepare() first");
        (0..self.num_sets as u32)
            .filter_map(|s| {
                let c = self.index.get(s as usize).len();
                (c > 0).then_some((s, c as u32))
            })
            .collect()
    }

    /// The map stage for a newly selected seed `u` (Algorithm 1,
    /// lines 14–21): labels every uncovered local element containing `u` as
    /// covered, and returns the sparse marginal decrements
    /// `⟨v, Δ_i(v)⟩` for every affected set `v`, in increasing set order.
    pub fn apply_seed(&mut self, u: u32) -> Vec<(u32, u32)> {
        assert!(!self.needs_prepare(), "call prepare() first");
        // The pseudo-code uses a hash map Δ_i; a dense counter plus a
        // touched-list does the same aggregation with no hashing on the
        // hot path, and sorting the touched sets keeps output
        // deterministic.
        for &e in self.index.get(u as usize) {
            let e = e as usize;
            if !self.covered[e] {
                for &v in self.elements.get(e) {
                    if self.scratch_counts[v as usize] == 0 {
                        self.scratch_touched.push(v);
                    }
                    self.scratch_counts[v as usize] += 1;
                }
                self.covered[e] = true;
                self.covered_count += 1;
            }
        }
        self.drain_scratch()
    }

    /// The map stage for seed `u` with a per-occurrence callback instead of
    /// aggregated deltas: invokes `f(v)` once per occurrence of set `v` in
    /// a newly covered element. Local selection loops feed these straight
    /// into `BucketSelector::decrease` — which is commutative, so the
    /// unaggregated, unsorted order yields identical selector state — and
    /// skip the dense-counter aggregation, sort, and `Vec` that
    /// [`Self::apply_seed`] pays for the deterministic wire format.
    pub fn apply_seed_each(&mut self, u: u32, mut f: impl FnMut(u32)) {
        assert!(!self.needs_prepare(), "call prepare() first");
        for &e in self.index.get(u as usize) {
            let e = e as usize;
            if !self.covered[e] {
                for &v in self.elements.get(e) {
                    f(v);
                }
                self.covered[e] = true;
                self.covered_count += 1;
            }
        }
    }

    /// Number of locally covered elements after the seeds applied so far.
    pub fn covered_count(&self) -> usize {
        self.covered_count
    }

    /// Local coverage a set would add right now (diagnostics/tests).
    pub fn marginal(&self, u: u32) -> usize {
        self.index
            .get(u as usize)
            .iter()
            .filter(|&&e| !self.covered[e as usize])
            .count()
    }

    /// Borrow the raw element records.
    pub fn elements(&self) -> &PooledSets {
        &self.elements
    }

    /// Local element ids whose record contains any of the `touched` sets,
    /// sorted and deduped — the RR-set invalidation lookup for incremental
    /// repair: an edge mutation on `(·, v)` can only change the traversal
    /// of RR sets that visited `v`, and those are exactly the elements the
    /// transpose index lists under `v`.
    ///
    /// # Panics
    /// Panics if the index is stale (`needs_prepare`) or a touched id is
    /// outside the set universe.
    pub fn elements_containing(&self, touched: &[u32]) -> Vec<u32> {
        assert!(!self.needs_prepare(), "call prepare() first");
        let mut ids: Vec<u32> = touched
            .iter()
            .flat_map(|&v| self.index.get(v as usize).iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Replaces the records named in `replacements` (sorted by strictly
    /// increasing element id) and rebuilds the shard: new arena, fresh
    /// transpose index, everything uncovered and unreported — exactly the
    /// state [`CoverageShard::from_records`] would produce for the repaired
    /// record set. The incremental-repair path calls this with the
    /// re-sampled RR sets after an edge batch.
    ///
    /// # Panics
    /// Panics if ids are out of range or not strictly increasing.
    pub fn replace_elements(&mut self, replacements: &[(u32, Vec<u32>)]) {
        let n = self.elements.len();
        let mut rebuilt = PooledSets::with_capacity(n, self.elements.total_size());
        let mut next = replacements.iter().peekable();
        let mut prev: Option<u32> = None;
        for e in 0..n {
            let record = match next.peek() {
                Some(&&(id, ref rec)) if id as usize == e => {
                    assert!(prev.is_none_or(|p| p < id), "replacement ids must increase");
                    prev = Some(id);
                    next.next();
                    rec.as_slice()
                }
                _ => self.elements.get(e),
            };
            rebuilt.push(record);
        }
        assert!(next.peek().is_none(), "replacement id out of range");
        self.elements = rebuilt;
        self.reported_elements = 0;
        self.prepare();
    }
}

/// dim-serve shares one sketch across worker threads as
/// `Arc<[CoverageShard]>`; keep the shard (and borrowing cursors)
/// thread-shareable.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CoverageShard>();
    assert_send_sync::<QueryCursor<'_>>();
};

/// A read-only coverage evaluator over a prepared shard.
///
/// Owns its covered labels and scratch space, so any number of cursors
/// can query one `&CoverageShard` concurrently — the substrate for
/// `dim serve`'s thread-per-connection query handling. For the same
/// sequence of seeds, [`QueryCursor::apply_seed`] returns exactly what
/// [`CoverageShard::apply_seed`] would on a freshly prepared shard.
pub struct QueryCursor<'a> {
    shard: &'a CoverageShard,
    /// Epoch-stamped labels: [`QueryCursor::reset`] is an O(1) epoch bump,
    /// so pooled cursors (dim-serve's `SketchCursors`) pay nothing to
    /// start a fresh query.
    covered: EpochFlags,
    covered_count: usize,
    scratch_counts: Vec<u32>,
    scratch_touched: Vec<u32>,
}

impl<'a> QueryCursor<'a> {
    /// Creates a cursor with everything uncovered.
    ///
    /// # Panics
    /// Panics if the shard's index is stale (`needs_prepare`).
    pub fn new(shard: &'a CoverageShard) -> Self {
        assert!(!shard.needs_prepare(), "call prepare() first");
        QueryCursor {
            shard,
            covered: EpochFlags::new(shard.num_elements()),
            covered_count: 0,
            scratch_counts: vec![0; shard.num_sets()],
            scratch_touched: Vec::new(),
        }
    }

    /// The map stage for seed `u` against this cursor's private labels:
    /// same contract and output as [`CoverageShard::apply_seed`].
    ///
    /// # Panics
    /// Panics if `u` is outside the set universe.
    pub fn apply_seed(&mut self, u: u32) -> Vec<(u32, u32)> {
        for &e in self.shard.index.get(u as usize) {
            let e = e as usize;
            if self.covered.set(e) {
                for &v in self.shard.elements.get(e) {
                    if self.scratch_counts[v as usize] == 0 {
                        self.scratch_touched.push(v);
                    }
                    self.scratch_counts[v as usize] += 1;
                }
                self.covered_count += 1;
            }
        }
        self.scratch_touched.sort_unstable();
        let out: Vec<(u32, u32)> = self
            .scratch_touched
            .iter()
            .map(|&v| (v, self.scratch_counts[v as usize]))
            .collect();
        for &v in &self.scratch_touched {
            self.scratch_counts[v as usize] = 0;
        }
        self.scratch_touched.clear();
        out
    }

    /// The map stage for seed `u` with a per-occurrence callback: same
    /// contract as [`CoverageShard::apply_seed_each`], against this
    /// cursor's private labels. No aggregation, sort, or allocation.
    ///
    /// # Panics
    /// Panics if `u` is outside the set universe.
    pub fn apply_seed_each(&mut self, u: u32, mut f: impl FnMut(u32)) {
        for &e in self.shard.index.get(u as usize) {
            let e = e as usize;
            if self.covered.set(e) {
                for &v in self.shard.elements.get(e) {
                    f(v);
                }
                self.covered_count += 1;
            }
        }
    }

    /// Applies seed `u` without aggregating deltas, returning only the
    /// number of newly covered elements — the cheap path for spread
    /// queries, which never feed a selector.
    ///
    /// # Panics
    /// Panics if `u` is outside the set universe.
    pub fn cover(&mut self, u: u32) -> usize {
        let before = self.covered_count;
        for &e in self.shard.index.get(u as usize) {
            if self.covered.set(e as usize) {
                self.covered_count += 1;
            }
        }
        self.covered_count - before
    }

    /// Elements covered by the seeds applied so far.
    pub fn covered_count(&self) -> usize {
        self.covered_count
    }

    /// Coverage set `u` would add right now.
    pub fn marginal(&self, u: u32) -> usize {
        // Chunked counting with independent accumulators: the flag probes
        // are gathers, but four data-independent lanes keep the loads in
        // flight instead of serializing on one counter.
        let idx = self.shard.index.get(u as usize);
        let mut lanes = [0usize; 4];
        let mut chunks = idx.chunks_exact(4);
        for c in &mut chunks {
            for (lane, &e) in lanes.iter_mut().zip(c) {
                *lane += !self.covered.is_set(e as usize) as usize;
            }
        }
        let tail: usize = chunks
            .remainder()
            .iter()
            .filter(|&&e| !self.covered.is_set(e as usize))
            .count();
        lanes.iter().sum::<usize>() + tail
    }

    /// Labels everything uncovered again in O(1) (epoch bump).
    pub fn reset(&mut self) {
        self.covered.clear();
        self.covered_count = 0;
    }
}

/// Executes the coverage-phase subset of the [`WorkerOp`] vocabulary
/// against a shard, or returns `None` for ops outside it (graph loading,
/// RR sampling, validation) so composite workers can route those to their
/// other components.
///
/// This is the single interpretation of coverage ops: the in-process
/// simulator and the `dim-worker` process both funnel through it, which is
/// what makes backend equivalence hold by construction. Each handler
/// mirrors the pre-op closure the master used to run against the shard —
/// in particular [`WorkerOp::InitialCoverage`] and [`WorkerOp::NewCoverage`]
/// call [`CoverageShard::prepare`] first, starting a fresh selection round.
pub fn execute_coverage_op(shard: &mut CoverageShard, op: &WorkerOp) -> Option<WorkerReply> {
    Some(match op {
        WorkerOp::BuildShard { num_sets, elements } => {
            *shard = CoverageShard::from_records(
                *num_sets as usize,
                elements.iter().map(|e| e.as_slice()),
            );
            WorkerReply::Ok
        }
        WorkerOp::InitialCoverage => {
            shard.prepare();
            WorkerReply::Deltas(shard.initial_coverage())
        }
        WorkerOp::NewCoverage => {
            shard.prepare();
            WorkerReply::Deltas(shard.take_new_coverage())
        }
        WorkerOp::ApplySeed { set } => WorkerReply::Deltas(shard.apply_seed(*set)),
        WorkerOp::CoveredCount => WorkerReply::Count(shard.covered_count() as u64),
        WorkerOp::Stats => WorkerReply::Stats(WorkerStats {
            num_elements: shard.num_elements() as u64,
            total_size: shard.total_size() as u64,
            edges_examined: 0,
        }),
        _ => return None,
    })
}

impl OpExecutor for CoverageShard {
    fn execute(&mut self, op: &WorkerOp) -> WorkerReply {
        execute_coverage_op(self, op)
            .unwrap_or_else(|| WorkerReply::Err("op unsupported by coverage shard".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 2 instance as a single shard.
    fn example3() -> CoverageShard {
        CoverageShard::from_records(
            5,
            [
                &[0u32][..],
                &[1, 2],
                &[0, 2],
                &[1, 4],
                &[0],
                &[1, 3],
            ],
        )
    }

    #[test]
    fn initial_coverage_matches_example3() {
        let shard = example3();
        // v1 covers R1,R3,R5 → 3; v2 covers R2,R4,R6 → 3; v3 covers
        // R2,R3 → 2; v4 covers R6 → 1; v5 covers R4 → 1.
        assert_eq!(
            shard.initial_coverage(),
            vec![(0, 3), (1, 3), (2, 2), (3, 1), (4, 1)]
        );
    }

    #[test]
    fn apply_seed_marks_and_reports_deltas() {
        let mut shard = example3();
        // Selecting v1 covers R1, R3, R5. Delta: every node in those sets.
        let deltas = shard.apply_seed(0);
        // R1={v1}, R3={v1,v3}, R5={v1}: v1 loses 3, v3 loses 1.
        assert_eq!(deltas, vec![(0, 3), (2, 1)]);
        assert_eq!(shard.covered_count(), 3);
        // Second application is a no-op: sets already covered.
        assert_eq!(shard.apply_seed(0), vec![]);
        assert_eq!(shard.covered_count(), 3);
    }

    #[test]
    fn greedy_example3_sequence() {
        let mut shard = example3();
        shard.apply_seed(0); // v1: covers R1,R3,R5
        assert_eq!(shard.marginal(1), 3); // v2 still covers R2,R4,R6
        shard.apply_seed(1);
        assert_eq!(shard.marginal(4), 0); // everything v5 covers is covered
        assert_eq!(shard.covered_count(), 6);
    }

    #[test]
    fn prepare_resets_coverage() {
        let mut shard = example3();
        shard.apply_seed(0);
        shard.prepare();
        assert_eq!(shard.covered_count(), 0);
        assert_eq!(shard.marginal(0), 3);
    }

    #[test]
    fn incremental_append_requires_prepare() {
        let mut shard = example3();
        assert!(!shard.needs_prepare());
        shard.push_element(&[4]);
        assert!(shard.needs_prepare());
        shard.prepare();
        assert_eq!(shard.marginal(4), 2);
    }

    #[test]
    fn take_new_coverage_incremental() {
        let mut shard = CoverageShard::new(3);
        shard.push_element(&[0, 1]);
        shard.push_element(&[1]);
        shard.prepare();
        assert_eq!(shard.take_new_coverage(), vec![(0, 1), (1, 2)]);
        // Nothing new: empty delta.
        assert_eq!(shard.take_new_coverage(), vec![]);
        // Append more elements: only their contribution is reported.
        shard.push_element(&[2, 0]);
        shard.prepare();
        assert_eq!(shard.take_new_coverage(), vec![(0, 1), (2, 1)]);
        // Accumulated totals equal a full recount.
        assert_eq!(
            shard.initial_coverage(),
            vec![(0, 2), (1, 2), (2, 1)]
        );
    }

    #[test]
    fn from_pooled_matches_from_records() {
        let fresh = example3();
        let rebuilt = CoverageShard::from_pooled(
            5,
            fresh.elements().clone(),
            fresh.elements().transpose(5),
        );
        assert!(!rebuilt.needs_prepare());
        assert_eq!(rebuilt.initial_coverage(), fresh.initial_coverage());
        let mut a = fresh.clone();
        let mut b = rebuilt.clone();
        assert_eq!(a.apply_seed(0), b.apply_seed(0));
        assert_eq!(a.covered_count(), b.covered_count());
        // Snapshot contents count as unreported, like fresh pushes.
        let mut c = rebuilt.clone();
        assert_eq!(c.take_new_coverage(), fresh.initial_coverage());
    }

    #[test]
    #[should_panic]
    fn from_pooled_rejects_wrong_index_arity() {
        let fresh = example3();
        CoverageShard::from_pooled(5, fresh.elements().clone(), fresh.elements().transpose(4));
    }

    #[test]
    fn query_cursor_mirrors_apply_seed() {
        let shard = example3();
        let mut mutable = example3();
        let mut cursor = QueryCursor::new(&shard);
        for u in [0u32, 1, 0, 3] {
            assert_eq!(cursor.apply_seed(u), mutable.apply_seed(u));
            assert_eq!(cursor.covered_count(), mutable.covered_count());
        }
        for v in 0..5 {
            assert_eq!(cursor.marginal(v), mutable.marginal(v));
        }
    }

    #[test]
    fn query_cursors_are_independent() {
        let shard = example3();
        let mut a = QueryCursor::new(&shard);
        let mut b = QueryCursor::new(&shard);
        assert_eq!(a.cover(0), 3);
        // b is unaffected by a's progress, and the shard itself never
        // changed.
        assert_eq!(b.marginal(0), 3);
        assert_eq!(b.cover(1), 3);
        assert_eq!(shard.covered_count(), 0);
        a.reset();
        assert_eq!(a.covered_count(), 0);
        assert_eq!(a.cover(0), 3);
    }

    #[test]
    fn cover_counts_match_deltas() {
        let shard = example3();
        let mut via_cover = QueryCursor::new(&shard);
        let mut via_deltas = QueryCursor::new(&shard);
        for u in [1u32, 4, 2] {
            let gained = via_cover.cover(u);
            via_deltas.apply_seed(u);
            assert_eq!(via_cover.covered_count(), via_deltas.covered_count());
            assert!(gained <= shard.num_elements());
        }
    }

    #[test]
    fn elements_containing_uses_transpose() {
        let shard = example3();
        // Set 0 appears in elements 0, 2, 4; set 2 in elements 1, 2.
        assert_eq!(shard.elements_containing(&[0]), vec![0, 2, 4]);
        assert_eq!(shard.elements_containing(&[2]), vec![1, 2]);
        // Union is deduped and sorted.
        assert_eq!(shard.elements_containing(&[0, 2]), vec![0, 1, 2, 4]);
        assert_eq!(shard.elements_containing(&[]), Vec::<u32>::new());
    }

    #[test]
    fn replace_elements_matches_fresh_build() {
        let mut repaired = example3();
        repaired.replace_elements(&[(1, vec![3, 4]), (4, vec![2])]);
        let fresh = CoverageShard::from_records(
            5,
            [&[0u32][..], &[3, 4], &[0, 2], &[1, 4], &[2], &[1, 3]],
        );
        assert_eq!(repaired.initial_coverage(), fresh.initial_coverage());
        assert_eq!(repaired.num_elements(), fresh.num_elements());
        assert_eq!(repaired.total_size(), fresh.total_size());
        let mut a = repaired.clone();
        let mut b = fresh.clone();
        assert_eq!(a.apply_seed(4), b.apply_seed(4));
        // Everything counts as unreported again after a repair.
        assert_eq!(repaired.clone().take_new_coverage(), fresh.initial_coverage());
        // Empty replacement list is an identity rebuild.
        let mut id = example3();
        id.replace_elements(&[]);
        assert_eq!(id.initial_coverage(), example3().initial_coverage());
    }

    #[test]
    #[should_panic]
    fn replace_elements_rejects_out_of_range_id() {
        let mut shard = example3();
        shard.replace_elements(&[(99, vec![0])]);
    }

    #[test]
    fn empty_shard() {
        let mut shard = CoverageShard::new(3);
        shard.prepare();
        assert_eq!(shard.initial_coverage(), vec![]);
        assert_eq!(shard.apply_seed(1), vec![]);
        assert_eq!(shard.covered_count(), 0);
    }
}
