//! Budgeted (cost-aware) maximum coverage, centralized and distributed.
//!
//! The paper's conclusion lists *budgeted influence maximization* — "each
//! node is associated with a distinct cost" — among the greedy applications
//! its building blocks accelerate. The classic algorithm (Khuller, Moss,
//! Naor) takes the better of (a) cost-effectiveness greedy (maximize
//! `Δ(v)/c(v)` until the budget is exhausted) and (b) the best single
//! affordable set, achieving a `(1 − 1/√e)` factor.
//!
//! The distributed variant reuses NewGreeDi's element-distributed layout
//! verbatim: workers still answer with sparse `⟨v, Δ⟩` decrements; only the
//! master's selection rule changes (a lazy ratio heap instead of the
//! bucket vector — ratios are fractional, so bucketing no longer applies).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dim_cluster::ops::{expect_counts, expect_deltas};
use dim_cluster::{phase, wire, OpCluster, WireError, WorkerOp};

use crate::newgreedi::reduce_deltas;
use crate::shard::CoverageShard;

/// Result of a budgeted greedy run.
#[derive(Clone, Debug, PartialEq)]
pub struct BudgetedResult {
    /// Selected sets, in selection order.
    pub seeds: Vec<u32>,
    /// Elements covered by `seeds`.
    pub covered: u64,
    /// Total cost spent (≤ budget).
    pub spent: f64,
}

/// Lazy cost-effectiveness greedy over exact coverage counters.
///
/// `coverage[v]` must hold each set's current (global) coverage; the
/// `decrease` callback pulls fresh marginals after each pick (for the
/// distributed caller this is the map/reduce round; for the centralized
/// caller a local shard update).
struct RatioSelector {
    coverage: Vec<u64>,
    costs: Vec<f64>,
    heap: BinaryHeap<(OrderedRatio, Reverse<u32>)>,
    selected: Vec<bool>,
}

/// Total order on non-negative f64 ratios (no NaNs by construction).
#[derive(Clone, Copy, Debug, PartialEq)]
struct OrderedRatio(f64);

impl Eq for OrderedRatio {}
impl PartialOrd for OrderedRatio {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedRatio {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl RatioSelector {
    fn new(coverage: Vec<u64>, costs: &[f64]) -> Self {
        assert_eq!(coverage.len(), costs.len());
        assert!(
            costs.iter().all(|&c| c > 0.0 && c.is_finite()),
            "costs must be positive and finite"
        );
        let heap = coverage
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(v, &c)| (OrderedRatio(c as f64 / costs[v]), Reverse(v as u32)))
            .collect();
        RatioSelector {
            selected: vec![false; coverage.len()],
            costs: costs.to_vec(),
            coverage,
            heap,
        }
    }

    /// Pops the affordable set with the best fresh coverage/cost ratio.
    /// Lazy evaluation is sound because coverage only decreases.
    fn select_next(&mut self, remaining_budget: f64) -> Option<(u32, u64)> {
        while let Some((stale, Reverse(v))) = self.heap.pop() {
            if self.selected[v as usize] || self.costs[v as usize] > remaining_budget {
                continue;
            }
            let fresh = self.coverage[v as usize] as f64 / self.costs[v as usize];
            if fresh <= 0.0 {
                continue;
            }
            debug_assert!(fresh <= stale.0 + 1e-9);
            let next_best = self.heap.peek().map(|&(r, _)| r.0).unwrap_or(0.0);
            if fresh >= next_best {
                self.selected[v as usize] = true;
                return Some((v, self.coverage[v as usize]));
            }
            self.heap.push((OrderedRatio(fresh), Reverse(v)));
        }
        None
    }

    fn decrease(&mut self, v: u32, by: u64) {
        let c = &mut self.coverage[v as usize];
        *c = c.saturating_sub(by);
    }
}

fn dense_initial(shard: &CoverageShard) -> Vec<u64> {
    let mut init = vec![0u64; shard.num_sets()];
    for (v, c) in shard.initial_coverage() {
        init[v as usize] = c as u64;
    }
    init
}

/// Centralized budgeted greedy: cost-effectiveness picks until no
/// affordable set improves coverage, then the better of that solution and
/// the best single affordable set.
pub fn budgeted_greedy(
    shard: &mut CoverageShard,
    costs: &[f64],
    budget: f64,
) -> BudgetedResult {
    shard.prepare();
    assert_eq!(costs.len(), shard.num_sets());
    let initial = dense_initial(shard);

    // Candidate (b): best single affordable set.
    let single = initial
        .iter()
        .enumerate()
        .filter(|&(v, _)| costs[v] <= budget)
        .max_by_key(|&(v, &c)| (c, Reverse(v)))
        .map(|(v, &c)| (v as u32, c));

    // Candidate (a): ratio greedy.
    let mut selector = RatioSelector::new(initial, costs);
    let mut seeds = Vec::new();
    let mut spent = 0.0;
    while let Some((v, _)) = selector.select_next(budget - spent) {
        spent += costs[v as usize];
        seeds.push(v);
        for (u, d) in shard.apply_seed(v) {
            selector.decrease(u, d as u64);
        }
    }
    let ratio_result = BudgetedResult {
        covered: shard.covered_count() as u64,
        seeds,
        spent,
    };

    match single {
        Some((v, c)) if c > ratio_result.covered => BudgetedResult {
            seeds: vec![v],
            covered: c,
            spent: costs[v as usize],
        },
        _ => ratio_result,
    }
}

/// Element-distributed budgeted greedy: identical messaging to NewGreeDi
/// (sparse coverage uploads, per-seed broadcast + delta map/reduce), with
/// the master running the ratio selector. Distributed phases go through
/// the [`OpCluster`] op seam, so it runs unchanged on the simulated and
/// the process-per-machine backends.
pub fn newgreedi_budgeted<B: OpCluster>(
    cluster: &mut B,
    costs: &[f64],
    budget: f64,
) -> Result<BudgetedResult, WireError> {
    let num_sets = costs.len();
    let replies = cluster.op_gather(phase::COVERAGE_UPLOAD, |_| WorkerOp::InitialCoverage)?;
    let initial = expect_deltas(replies, phase::COVERAGE_UPLOAD)?;
    let (mut selector, single) = cluster.master(phase::SEED_SELECT, || {
        let mut coverage = vec![0u64; num_sets];
        reduce_deltas(phase::COVERAGE_UPLOAD, &initial, num_sets, |v, d| {
            coverage[v as usize] += d as u64
        })
        .map(|()| {
            let single = coverage
                .iter()
                .enumerate()
                .filter(|&(v, _)| costs[v] <= budget)
                .max_by_key(|&(v, &c)| (c, Reverse(v)))
                .map(|(v, &c)| (v as u32, c));
            (RatioSelector::new(coverage, costs), single)
        })
    })?;

    let mut seeds = Vec::new();
    let mut spent = 0.0;
    loop {
        let remaining = budget - spent;
        let Some((v, _)) = cluster.master(phase::SEED_SELECT, || selector.select_next(remaining))
        else {
            break;
        };
        spent += costs[v as usize];
        seeds.push(v);
        let replies = cluster.op_broadcast_gather(
            phase::SEED_BROADCAST,
            wire::ids_wire_size(1),
            phase::DELTA_UPLOAD,
            |_| WorkerOp::ApplySeed { set: v },
        )?;
        let deltas = expect_deltas(replies, phase::DELTA_UPLOAD)?;
        cluster.master(phase::SEED_SELECT, || {
            reduce_deltas(phase::DELTA_UPLOAD, &deltas, num_sets, |u, d| {
                selector.decrease(u, d as u64)
            })
        })?;
    }
    let replies = cluster.op_gather(phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount)?;
    let counts = expect_counts(&replies, phase::COUNT_UPLOAD)?;
    let ratio_result = BudgetedResult {
        seeds,
        covered: counts.iter().sum(),
        spent,
    };
    Ok(match single {
        Some((v, c)) if c > ratio_result.covered => BudgetedResult {
            seeds: vec![v],
            covered: c,
            spent: costs[v as usize],
        },
        _ => ratio_result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_cluster::{ExecMode, NetworkModel, SimCluster};

    use crate::problem::CoverageProblem;

    fn example3() -> CoverageProblem {
        CoverageProblem::from_element_records(
            5,
            [
                &[0u32][..],
                &[1, 2],
                &[0, 2],
                &[1, 4],
                &[0],
                &[1, 3],
            ],
        )
    }

    #[test]
    fn unit_costs_match_unbudgeted_greedy() {
        let p = example3();
        let mut shard = p.single_shard();
        let r = budgeted_greedy(&mut shard, &[1.0; 5], 2.0);
        assert_eq!(r.covered, 6);
        let mut s = r.seeds.clone();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1]);
        assert!((r.spent - 2.0).abs() < 1e-12);
    }

    #[test]
    fn expensive_hub_skipped() {
        // v1 and v2 each cover 3 elements, but v1 costs the whole budget;
        // the ratio rule prefers cheap combinations.
        let p = example3();
        let mut shard = p.single_shard();
        let costs = [10.0, 1.0, 1.0, 1.0, 1.0];
        let r = budgeted_greedy(&mut shard, &costs, 3.0);
        assert!(!r.seeds.contains(&0), "v1 unaffordable alongside others");
        assert!(r.covered >= 4);
        assert!(r.spent <= 3.0);
    }

    #[test]
    fn best_single_fallback() {
        // Budget affords exactly one expensive hub that beats all cheap
        // low-coverage options the ratio rule would assemble.
        let p = CoverageProblem::from_element_records(
            3,
            [&[0u32][..], &[0], &[0], &[0], &[1], &[2]],
        );
        let mut shard = p.single_shard();
        // Hub 0 covers 4 elements at cost 5; sets 1 and 2 cover 1 each at
        // cost 1. Ratio greedy picks 1 and 2 first (ratio 1.0 vs 0.8),
        // spends 2, then can't afford the hub with budget 5... budget 5
        // allows 1 + 2 + nothing else (hub needs 5). Best single = hub (4).
        let r = budgeted_greedy(&mut shard, &[5.0, 1.0, 1.0], 5.0);
        assert_eq!(r.seeds, vec![0]);
        assert_eq!(r.covered, 4);
    }

    #[test]
    fn distributed_matches_centralized() {
        let p = example3();
        let costs = [2.0, 1.0, 1.5, 1.0, 3.0];
        let mut shard = p.single_shard();
        let central = budgeted_greedy(&mut shard, &costs, 4.0);
        for l in [1usize, 2, 4] {
            let mut cluster = SimCluster::new(
                p.shard_elements(l),
                NetworkModel::cluster_1gbps(),
                ExecMode::Sequential,
            );
            let r = newgreedi_budgeted(&mut cluster, &costs, 4.0).unwrap();
            assert_eq!(r.seeds, central.seeds, "ℓ = {l}");
            assert_eq!(r.covered, central.covered, "ℓ = {l}");
            assert!((r.spent - central.spent).abs() < 1e-12);
        }
    }

    #[test]
    fn budget_never_exceeded() {
        let p = example3();
        let mut shard = p.single_shard();
        let costs = [1.3, 0.9, 1.1, 0.5, 0.7];
        for budget in [0.4, 1.0, 2.0, 100.0] {
            let r = budgeted_greedy(&mut shard, &costs, budget);
            assert!(r.spent <= budget + 1e-12, "budget {budget}: spent {}", r.spent);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_cost() {
        let p = example3();
        let mut shard = p.single_shard();
        budgeted_greedy(&mut shard, &[1.0, 0.0, 1.0, 1.0, 1.0], 2.0);
    }
}
