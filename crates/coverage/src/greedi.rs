//! GreeDi / RandGreeDi — set-distributed composable core-sets baselines.
//!
//! The conventional distributed submodular maximization layout (§III-B1,
//! Table II): *sets* (nodes) are partitioned across machines, each machine
//! greedily picks a core-set of `κ` of its sets, and the master merges the
//! `ℓ·κ` candidates with another greedy pass, returning the better of the
//! merged solution and the best single-machine solution.
//!
//! Two properties make this the paper's foil:
//! 1. its approximation ratio degrades with `ℓ` (Fig. 10(c)) — unlike
//!    NewGreeDi's exact (1 − 1/e);
//! 2. it needs each set's *complete* element list on one machine, which is
//!    incompatible with distributed RIS where each element (RR set) lives
//!    wholly on the machine that sampled it.
//!
//! GreeDi (Mirzasoleiman et al., NeurIPS'13) uses an arbitrary partition;
//! RandGreeDi (Barbosa et al., ICML'15) a uniformly random one — obtained
//! here by building the shards with a shuffle seed
//! ([`crate::CoverageProblem::shard_sets`]).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dim_cluster::{phase, wire, ClusterBackend};

use crate::greedy::bucket_greedy;
use crate::pooled::PooledSets;
use crate::problem::{CoverageProblem, SetShard};
use crate::scratch;

/// Result of a GreeDi run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GreediResult {
    /// Selected sets (global ids).
    pub seeds: Vec<u32>,
    /// Elements covered by `seeds`.
    pub covered: u64,
}

/// One machine's uploaded core-set: the picked set ids and their element
/// lists (in pick order).
struct Candidates {
    ids: Vec<u32>,
    element_lists: PooledSets,
}

impl Candidates {
    fn wire_bytes(&self) -> u64 {
        wire::ids_wire_size(self.ids.len())
            + self
                .element_lists
                .iter()
                .map(|l| wire::ids_wire_size(l.len()))
                .sum::<u64>()
    }
}

/// Local greedy on a set shard: CELF over the machine's sets, covering the
/// *global* element domain. The covered flags come from the pooled
/// epoch-stamped scratch, so repeated invocations (every machine, every
/// round) reuse one thread-local buffer instead of allocating an
/// `O(num_elements)` bitmap each time.
fn local_greedy(shard: &SetShard, kappa: usize) -> Candidates {
    scratch::with_flags(shard.num_elements, |covered| {
        let mut heap: BinaryHeap<(u64, Reverse<usize>)> = shard
            .set_ids
            .iter()
            .enumerate()
            .map(|(i, _)| (shard.set_elements.get(i).len() as u64, Reverse(i)))
            .filter(|&(c, _)| c > 0)
            .collect();
        let mut ids = Vec::with_capacity(kappa);
        let mut element_lists = PooledSets::new();
        while ids.len() < kappa {
            let Some((stale, Reverse(i))) = heap.pop() else {
                break;
            };
            let fresh = shard
                .set_elements
                .get(i)
                .iter()
                .filter(|&&e| !covered.is_set(e as usize))
                .count() as u64;
            debug_assert!(fresh <= stale);
            if fresh == 0 {
                continue;
            }
            let next_best = heap.peek().map(|&(c, _)| c).unwrap_or(0);
            if fresh >= next_best {
                for &e in shard.set_elements.get(i) {
                    covered.set(e as usize);
                }
                ids.push(shard.set_ids[i]);
                element_lists.push(shard.set_elements.get(i));
            } else {
                heap.push((fresh, Reverse(i)));
            }
        }
        Candidates { ids, element_lists }
    })
}

/// Runs GreeDi with core-set size `kappa` (the paper sets `κ = k`).
/// Returns the better of the merged-greedy solution and the best
/// single-machine solution, per the original algorithm.
pub fn greedi<B>(cluster: &mut B, k: usize, kappa: usize) -> GreediResult
where
    B: ClusterBackend<Worker = SetShard>,
{
    let num_elements = cluster.workers()[0].num_elements;
    // Stage 1: per-machine core-sets, uploaded with their element lists.
    let candidates = cluster.gather(
        phase::CORESET_UPLOAD,
        |_, shard| local_greedy(shard, kappa),
        Candidates::wire_bytes,
    );

    // Stage 2 (master): merged greedy over the ℓ·κ candidates, plus the
    // best single-machine solution truncated to k.
    cluster.master(phase::CORESET_MERGE, || {
        let mut all_ids: Vec<u32> = Vec::new();
        let mut all_lists = PooledSets::new();
        for c in &candidates {
            for (pos, &id) in c.ids.iter().enumerate() {
                all_ids.push(id);
                all_lists.push(c.element_lists.get(pos));
            }
        }
        let merged = if all_ids.is_empty() {
            GreediResult {
                seeds: Vec::new(),
                covered: 0,
            }
        } else {
            let problem = CoverageProblem::from_set_records(num_elements, all_lists.iter());
            let mut shard = problem.single_shard();
            let r = bucket_greedy(&mut shard, k);
            GreediResult {
                seeds: r.seeds.iter().map(|&i| all_ids[i as usize]).collect(),
                covered: r.covered,
            }
        };

        let mut best = merged;
        scratch::with_flags(num_elements, |covered_buf| {
            for c in &candidates {
                covered_buf.clear();
                let take = k.min(c.ids.len());
                let mut covered = 0u64;
                for pos in 0..take {
                    for &e in c.element_lists.get(pos) {
                        if covered_buf.set(e as usize) {
                            covered += 1;
                        }
                    }
                }
                if covered > best.covered {
                    best = GreediResult {
                        seeds: c.ids[..take].to_vec(),
                        covered,
                    };
                }
            }
        });
        best
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_cluster::{ExecMode, NetworkModel, SimCluster};

    use crate::newgreedi::newgreedi;

    fn example3() -> CoverageProblem {
        CoverageProblem::from_element_records(
            5,
            [
                &[0u32][..],
                &[1, 2],
                &[0, 2],
                &[1, 4],
                &[0],
                &[1, 3],
            ],
        )
    }

    fn greedi_cluster(p: &CoverageProblem, l: usize, seed: Option<u64>) -> SimCluster<SetShard> {
        SimCluster::new(
            p.shard_sets(l, seed),
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        )
    }

    #[test]
    fn single_machine_equals_centralized() {
        let p = example3();
        let mut c = greedi_cluster(&p, 1, None);
        let r = greedi(&mut c, 2, 2);
        assert_eq!(r.covered, 6);
        let mut s = r.seeds.clone();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1]);
    }

    #[test]
    fn coverage_consistent_with_global_evaluation() {
        let p = example3();
        for l in [1, 2, 3] {
            let mut c = greedi_cluster(&p, l, None);
            let r = greedi(&mut c, 2, 2);
            assert_eq!(r.covered, p.coverage_of(&r.seeds), "ℓ = {l}");
        }
    }

    #[test]
    fn never_beats_newgreedi() {
        // NewGreeDi returns the centralized greedy solution; GreeDi's
        // merged/best-machine solution can only tie or lose on this
        // instance family.
        let p = example3();
        for l in [2, 3, 5] {
            let mut gc = greedi_cluster(&p, l, None);
            let g = greedi(&mut gc, 2, 2);
            let mut nc = SimCluster::new(
                p.shard_elements(l),
                NetworkModel::cluster_1gbps(),
                ExecMode::Sequential,
            );
            let n = newgreedi(&mut nc, 2).unwrap();
            assert!(g.covered <= n.covered, "ℓ = {l}: {} > {}", g.covered, n.covered);
        }
    }

    #[test]
    fn randomized_partition_valid() {
        let p = example3();
        let mut c = greedi_cluster(&p, 2, Some(7));
        let r = greedi(&mut c, 2, 2);
        assert_eq!(r.covered, p.coverage_of(&r.seeds));
        assert!(r.covered >= 4, "random partition still near-optimal here");
    }

    #[test]
    fn traffic_accounted() {
        let p = example3();
        let mut c = greedi_cluster(&p, 3, None);
        greedi(&mut c, 2, 2);
        let m = c.metrics();
        assert_eq!(m.messages, 3, "one upload per machine");
        assert!(m.bytes_to_master > 0);
    }

    #[test]
    fn kappa_larger_than_local_sets() {
        let p = example3();
        let mut c = greedi_cluster(&p, 5, None);
        let r = greedi(&mut c, 3, 10);
        assert_eq!(r.covered, p.coverage_of(&r.seeds));
        assert!(r.covered >= 5);
    }
}
