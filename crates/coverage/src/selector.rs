//! The paper's coverage-bucketed greedy selector (Algorithm 1, lines 5–13).

/// Number of consecutive coverage levels materialized together. One block
/// of level lists stays cache-resident while the scan walks through it;
/// everything below lives in per-block piles until the scan arrives.
const BLOCK: usize = 64;

/// Master-side greedy selection state: a vector `D` of node lists bucketed
/// by (possibly stale) marginal coverage, scanned from the maximum bucket
/// downward with **lazy updates** — a node found with an outdated coverage
/// is dropped into its true bucket instead of being selected (lines 9–11).
///
/// Total scan work across all `k` selections is O(d* + #moves), and each
/// node moves at most once per coverage decrement, so selection is linear
/// in the total coverage mass — the amortized bound of §III-D.
///
/// Storage is cache-blocked: instead of `d*` separate `Vec`s (one heap
/// allocation per level, most holding a handful of nodes), levels are
/// grouped into blocks of [`BLOCK`]. Only the block under the scan head
/// keeps per-level lists; every other block is a single pile of
/// `(level-in-block, node)` pairs, distributed into level lists in one
/// pass when the scan reaches it. Filing records the level a node was
/// *moved at* (not its final coverage), so the lazy re-check still happens
/// at scan time and the selection order is exactly the per-level-`Vec`
/// order: each list holds its initial-id-order entries first, then moved
/// entries in move order.
///
/// The selector is deliberately independent of where coverage *updates*
/// come from: the centralized greedy feeds it deltas from a local shard,
/// NewGreeDi feeds it aggregated deltas gathered from `ℓ` machines. Both
/// therefore select the *same* sequence of seeds, which is the mechanism
/// behind Lemma 2's exact (1 − 1/e) guarantee.
#[derive(Clone, Debug)]
pub struct BucketSelector {
    /// `piles[b]` = nodes filed into levels `[b·BLOCK, (b+1)·BLOCK)`, as
    /// `(level − b·BLOCK, node)` in filing order.
    piles: Vec<Vec<(u8, u32)>>,
    /// Per-level lists for the block currently under the scan head.
    levels: Vec<Vec<u32>>,
    /// Which block `levels` holds.
    block: usize,
    /// Current true coverage per node.
    coverage: Vec<u64>,
    selected: Vec<bool>,
    /// Scan position: current bucket level.
    cur_d: usize,
    /// Scan position within the current level's list.
    cur_i: usize,
}

impl BucketSelector {
    /// Builds the selector from every node's initial coverage
    /// (Algorithm 1, lines 4–6). Nodes appear in their bucket in increasing
    /// id order, making tie-breaking deterministic.
    pub fn new(initial_coverage: &[u64]) -> Self {
        let d_star = initial_coverage.iter().copied().max().unwrap_or(0) as usize;
        let mut piles = vec![Vec::new(); d_star / BLOCK + 1];
        for (v, &c) in initial_coverage.iter().enumerate() {
            if c > 0 {
                let c = c as usize;
                piles[c / BLOCK].push(((c % BLOCK) as u8, v as u32));
            }
        }
        let mut s = BucketSelector {
            piles,
            levels: vec![Vec::new(); BLOCK],
            block: usize::MAX,
            coverage: initial_coverage.to_vec(),
            selected: vec![false; initial_coverage.len()],
            cur_d: d_star,
            cur_i: 0,
        };
        s.materialize(d_star / BLOCK);
        s
    }

    /// Distributes block `b`'s pile into the per-level lists. Draining in
    /// pile order keeps each level's list in exact push order (initial
    /// id-order entries, then moves in move order).
    fn materialize(&mut self, b: usize) {
        for l in &mut self.levels {
            l.clear();
        }
        let mut pile = std::mem::take(&mut self.piles[b]);
        for (lvl, v) in pile.drain(..) {
            self.levels[lvl as usize].push(v);
        }
        // Hand the emptied allocation back for reuse by later filings.
        self.piles[b] = pile;
        self.block = b;
    }

    /// Files node `v` under `level`: straight into the materialized lists
    /// when the level is in the current block, into the block's pile
    /// otherwise.
    fn file(&mut self, v: u32, level: usize) {
        let b = level / BLOCK;
        if b == self.block {
            self.levels[level % BLOCK].push(v);
        } else {
            self.piles[b].push(((level % BLOCK) as u8, v));
        }
    }

    /// Selects the node with the maximum current coverage, marks it
    /// selected, and returns `(node, its coverage)`. Returns `None` when
    /// every remaining node has zero coverage.
    ///
    /// The caller must afterwards apply the seed's effect on other nodes'
    /// coverages via [`Self::decrease`] before the next `select_next` (the
    /// reduce stage, line 22).
    pub fn select_next(&mut self) -> Option<(u32, u64)> {
        while self.cur_d >= 1 {
            if self.cur_d / BLOCK != self.block {
                self.materialize(self.cur_d / BLOCK);
            }
            let lvl = self.cur_d % BLOCK;
            while self.cur_i < self.levels[lvl].len() {
                let u = self.levels[lvl][self.cur_i];
                self.cur_i += 1;
                if self.selected[u as usize] {
                    continue;
                }
                let true_cov = self.coverage[u as usize] as usize;
                if true_cov < self.cur_d {
                    // Outdated coverage: lazily move to the true bucket.
                    if true_cov > 0 {
                        self.file(u, true_cov);
                    }
                    continue;
                }
                debug_assert_eq!(true_cov, self.cur_d, "coverage never increases");
                self.selected[u as usize] = true;
                return Some((u, true_cov as u64));
            }
            self.cur_d -= 1;
            self.cur_i = 0;
        }
        None
    }

    /// Applies a marginal-coverage decrement to node `v` (reduce stage).
    /// The bucket move is deferred to the lazy check during scanning.
    pub fn decrease(&mut self, v: u32, by: u64) {
        let c = &mut self.coverage[v as usize];
        debug_assert!(*c >= by, "coverage of {v} would go negative");
        *c = c.saturating_sub(by);
    }

    /// Current recorded coverage of `v`.
    pub fn coverage_of(&self, v: u32) -> u64 {
        self.coverage[v as usize]
    }

    /// Whether `v` has been selected.
    pub fn is_selected(&self, v: u32) -> bool {
        self.selected[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_in_decreasing_coverage_order_without_updates() {
        let mut s = BucketSelector::new(&[3, 5, 1, 5, 0]);
        // Ties broken by insertion (id) order: node 1 before node 3.
        assert_eq!(s.select_next(), Some((1, 5)));
        assert_eq!(s.select_next(), Some((3, 5)));
        assert_eq!(s.select_next(), Some((0, 3)));
        assert_eq!(s.select_next(), Some((2, 1)));
        assert_eq!(s.select_next(), None, "zero-coverage node never selected");
    }

    #[test]
    fn lazy_update_moves_node_down() {
        let mut s = BucketSelector::new(&[4, 3]);
        assert_eq!(s.select_next(), Some((0, 4)));
        // Node 1's coverage drops to 1 before the next selection.
        s.decrease(1, 2);
        assert_eq!(s.select_next(), Some((1, 1)));
        assert_eq!(s.select_next(), None);
    }

    #[test]
    fn decrease_to_zero_drops_node() {
        let mut s = BucketSelector::new(&[2, 2]);
        assert_eq!(s.select_next(), Some((0, 2)));
        s.decrease(1, 2);
        assert_eq!(s.select_next(), None);
    }

    #[test]
    fn selected_nodes_skipped_in_lower_buckets() {
        // Node 0 sits in bucket 3; after selection its stale entry must not
        // resurface even if scanning reaches lower buckets.
        let mut s = BucketSelector::new(&[3, 3, 1]);
        assert_eq!(s.select_next(), Some((0, 3)));
        s.decrease(1, 2);
        // Node 1's stale entry moves to bucket 1 behind node 2, so node 2
        // (equal coverage, already in place) is selected first.
        assert_eq!(s.select_next(), Some((2, 1)));
        assert_eq!(s.select_next(), Some((1, 1)));
        assert_eq!(s.select_next(), None);
    }

    #[test]
    fn all_zero_initial() {
        let mut s = BucketSelector::new(&[0, 0, 0]);
        assert_eq!(s.select_next(), None);
    }

    #[test]
    fn empty_universe() {
        let mut s = BucketSelector::new(&[]);
        assert_eq!(s.select_next(), None);
    }

    #[test]
    fn query_helpers() {
        let mut s = BucketSelector::new(&[2, 1]);
        assert_eq!(s.coverage_of(0), 2);
        assert!(!s.is_selected(0));
        s.select_next();
        assert!(s.is_selected(0));
    }

    #[test]
    fn cross_block_moves_preserve_scan_order() {
        // Coverages spanning three 64-level blocks, with lazy moves that
        // cross block boundaries in both directions relative to the scan.
        let mut s = BucketSelector::new(&[150, 140, 100, 70, 70, 5, 3]);
        assert_eq!(s.select_next(), Some((0, 150)));
        // Node 1 drops two blocks (140 → 4): filed into block 0's pile.
        s.decrease(1, 136);
        // Node 2 drops within reach of the block-1 scan (100 → 68).
        s.decrease(2, 32);
        assert_eq!(s.select_next(), Some((3, 70)));
        // Node 4 goes stale between blocks too (70 → 6).
        s.decrease(4, 64);
        assert_eq!(s.select_next(), Some((2, 68)));
        // Block 0: node 5 holds level 5, then node 4's move lands at 6,
        // above it; node 1's move landed at 4.
        assert_eq!(s.select_next(), Some((4, 6)));
        assert_eq!(s.select_next(), Some((5, 5)));
        assert_eq!(s.select_next(), Some((1, 4)));
        assert_eq!(s.select_next(), Some((6, 3)));
        assert_eq!(s.select_next(), None);
    }

    /// Reference implementation: the straightforward per-level-`Vec`
    /// selector the blocked layout must match move for move.
    struct FlatSelector {
        buckets: Vec<Vec<u32>>,
        coverage: Vec<u64>,
        selected: Vec<bool>,
        cur_d: usize,
        cur_i: usize,
    }

    impl FlatSelector {
        fn new(initial: &[u64]) -> Self {
            let d_star = initial.iter().copied().max().unwrap_or(0) as usize;
            let mut buckets = vec![Vec::new(); d_star + 1];
            for (v, &c) in initial.iter().enumerate() {
                if c > 0 {
                    buckets[c as usize].push(v as u32);
                }
            }
            FlatSelector {
                buckets,
                coverage: initial.to_vec(),
                selected: vec![false; initial.len()],
                cur_d: d_star,
                cur_i: 0,
            }
        }

        fn select_next(&mut self) -> Option<(u32, u64)> {
            while self.cur_d >= 1 {
                while self.cur_i < self.buckets[self.cur_d].len() {
                    let u = self.buckets[self.cur_d][self.cur_i];
                    self.cur_i += 1;
                    if self.selected[u as usize] {
                        continue;
                    }
                    let true_cov = self.coverage[u as usize] as usize;
                    if true_cov < self.cur_d {
                        if true_cov > 0 {
                            self.buckets[true_cov].push(u);
                        }
                        continue;
                    }
                    self.selected[u as usize] = true;
                    return Some((u, true_cov as u64));
                }
                self.cur_d -= 1;
                self.cur_i = 0;
            }
            None
        }

        fn decrease(&mut self, v: u32, by: u64) {
            self.coverage[v as usize] -= by;
        }
    }

    #[test]
    fn matches_flat_reference_under_random_decrements() {
        // Deterministic LCG so the scenario is reproducible.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move |m: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let initial: Vec<u64> = (0..300).map(|_| next(500)).collect();
        let mut blocked = BucketSelector::new(&initial);
        let mut flat = FlatSelector::new(&initial);
        loop {
            let a = blocked.select_next();
            let b = flat.select_next();
            assert_eq!(a, b, "blocked and flat selectors diverged");
            let Some((u, _)) = a else { break };
            // Random sparse decrements, identical on both selectors.
            for _ in 0..next(20) {
                let v = next(300) as u32;
                if v == u || blocked.is_selected(v) {
                    continue;
                }
                let by = next(blocked.coverage_of(v) + 1);
                blocked.decrease(v, by);
                flat.decrease(v, by);
            }
        }
    }
}
