//! The paper's coverage-bucketed greedy selector (Algorithm 1, lines 5–13).

/// Master-side greedy selection state: a vector `D` of node lists bucketed
/// by (possibly stale) marginal coverage, scanned from the maximum bucket
/// downward with **lazy updates** — a node found with an outdated coverage
/// is dropped into its true bucket instead of being selected (lines 9–11).
///
/// Total scan work across all `k` selections is O(d* + #moves), and each
/// node moves at most once per coverage decrement, so selection is linear
/// in the total coverage mass — the amortized bound of §III-D.
///
/// The selector is deliberately independent of where coverage *updates*
/// come from: the centralized greedy feeds it deltas from a local shard,
/// NewGreeDi feeds it aggregated deltas gathered from `ℓ` machines. Both
/// therefore select the *same* sequence of seeds, which is the mechanism
/// behind Lemma 2's exact (1 − 1/e) guarantee.
#[derive(Clone, Debug)]
pub struct BucketSelector {
    /// `buckets[d]` = nodes whose last recorded coverage is `d`.
    buckets: Vec<Vec<u32>>,
    /// Current true coverage per node.
    coverage: Vec<u64>,
    selected: Vec<bool>,
    /// Scan position: current bucket level.
    cur_d: usize,
    /// Scan position within `buckets[cur_d]`.
    cur_i: usize,
}

impl BucketSelector {
    /// Builds the selector from every node's initial coverage
    /// (Algorithm 1, lines 4–6). Nodes appear in their bucket in increasing
    /// id order, making tie-breaking deterministic.
    pub fn new(initial_coverage: &[u64]) -> Self {
        let d_star = initial_coverage.iter().copied().max().unwrap_or(0) as usize;
        let mut buckets = vec![Vec::new(); d_star + 1];
        for (v, &c) in initial_coverage.iter().enumerate() {
            if c > 0 {
                buckets[c as usize].push(v as u32);
            }
        }
        BucketSelector {
            buckets,
            coverage: initial_coverage.to_vec(),
            selected: vec![false; initial_coverage.len()],
            cur_d: d_star,
            cur_i: 0,
        }
    }

    /// Selects the node with the maximum current coverage, marks it
    /// selected, and returns `(node, its coverage)`. Returns `None` when
    /// every remaining node has zero coverage.
    ///
    /// The caller must afterwards apply the seed's effect on other nodes'
    /// coverages via [`Self::decrease`] before the next `select_next` (the
    /// reduce stage, line 22).
    pub fn select_next(&mut self) -> Option<(u32, u64)> {
        while self.cur_d >= 1 {
            while self.cur_i < self.buckets[self.cur_d].len() {
                let u = self.buckets[self.cur_d][self.cur_i];
                self.cur_i += 1;
                if self.selected[u as usize] {
                    continue;
                }
                let true_cov = self.coverage[u as usize] as usize;
                if true_cov < self.cur_d {
                    // Outdated coverage: lazily move to the true bucket.
                    if true_cov > 0 {
                        self.buckets[true_cov].push(u);
                    }
                    continue;
                }
                debug_assert_eq!(true_cov, self.cur_d, "coverage never increases");
                self.selected[u as usize] = true;
                return Some((u, true_cov as u64));
            }
            self.cur_d -= 1;
            self.cur_i = 0;
        }
        None
    }

    /// Applies a marginal-coverage decrement to node `v` (reduce stage).
    /// The bucket move is deferred to the lazy check during scanning.
    pub fn decrease(&mut self, v: u32, by: u64) {
        let c = &mut self.coverage[v as usize];
        debug_assert!(*c >= by, "coverage of {v} would go negative");
        *c = c.saturating_sub(by);
    }

    /// Current recorded coverage of `v`.
    pub fn coverage_of(&self, v: u32) -> u64 {
        self.coverage[v as usize]
    }

    /// Whether `v` has been selected.
    pub fn is_selected(&self, v: u32) -> bool {
        self.selected[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_in_decreasing_coverage_order_without_updates() {
        let mut s = BucketSelector::new(&[3, 5, 1, 5, 0]);
        // Ties broken by insertion (id) order: node 1 before node 3.
        assert_eq!(s.select_next(), Some((1, 5)));
        assert_eq!(s.select_next(), Some((3, 5)));
        assert_eq!(s.select_next(), Some((0, 3)));
        assert_eq!(s.select_next(), Some((2, 1)));
        assert_eq!(s.select_next(), None, "zero-coverage node never selected");
    }

    #[test]
    fn lazy_update_moves_node_down() {
        let mut s = BucketSelector::new(&[4, 3]);
        assert_eq!(s.select_next(), Some((0, 4)));
        // Node 1's coverage drops to 1 before the next selection.
        s.decrease(1, 2);
        assert_eq!(s.select_next(), Some((1, 1)));
        assert_eq!(s.select_next(), None);
    }

    #[test]
    fn decrease_to_zero_drops_node() {
        let mut s = BucketSelector::new(&[2, 2]);
        assert_eq!(s.select_next(), Some((0, 2)));
        s.decrease(1, 2);
        assert_eq!(s.select_next(), None);
    }

    #[test]
    fn selected_nodes_skipped_in_lower_buckets() {
        // Node 0 sits in bucket 3; after selection its stale entry must not
        // resurface even if scanning reaches lower buckets.
        let mut s = BucketSelector::new(&[3, 3, 1]);
        assert_eq!(s.select_next(), Some((0, 3)));
        s.decrease(1, 2);
        // Node 1's stale entry moves to bucket 1 behind node 2, so node 2
        // (equal coverage, already in place) is selected first.
        assert_eq!(s.select_next(), Some((2, 1)));
        assert_eq!(s.select_next(), Some((1, 1)));
        assert_eq!(s.select_next(), None);
    }

    #[test]
    fn all_zero_initial() {
        let mut s = BucketSelector::new(&[0, 0, 0]);
        assert_eq!(s.select_next(), None);
    }

    #[test]
    fn empty_universe() {
        let mut s = BucketSelector::new(&[]);
        assert_eq!(s.select_next(), None);
    }

    #[test]
    fn query_helpers() {
        let mut s = BucketSelector::new(&[2, 1]);
        assert_eq!(s.coverage_of(0), 2);
        assert!(!s.is_selected(0));
        s.select_next();
        assert!(s.is_selected(0));
    }
}
