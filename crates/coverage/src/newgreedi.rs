//! NewGreeDi — element-distributed maximum coverage (Algorithm 1).
//!
//! Each machine holds a [`CoverageShard`] of the elements. The master holds
//! one global marginal-coverage counter per set inside a
//! [`crate::BucketSelector`]. Per selected seed, the map stage labels newly
//! covered local elements and produces sparse `⟨set, Δ⟩` decrements; the
//! reduce stage aggregates them into the selector. Because the selector is
//! byte-for-byte the centralized greedy's selector fed with identical
//! aggregated coverage values, NewGreeDi returns exactly the centralized
//! greedy solution — Lemma 2's (1 − 1/e) guarantee.
//!
//! Every distributed phase is expressed as a serializable
//! [`WorkerOp`] executed through the [`OpCluster`] seam: the in-process
//! [`dim_cluster::SimCluster`] interprets the ops directly (the shard is
//! the executor — see [`crate::shard::execute_coverage_op`]), while the
//! process-per-machine backend ships the *identical* op values to
//! `dim-worker` processes holding the shards. Both backends therefore run
//! the same algorithm by construction.

use dim_cluster::ops::{expect_counts, expect_deltas};
use dim_cluster::wire::DeltaVec;
use dim_cluster::{phase, wire, ClusterBackend, OpCluster, WireError, WorkerOp};

use crate::selector::BucketSelector;
use crate::shard::CoverageShard;

/// Applies every `⟨set, Δ⟩` tuple of the per-machine delta vectors in
/// `msgs` (machine order), rejecting out-of-range set ids with a typed
/// [`WireError`] naming the phase and sender.
///
/// Truncated frames are already rejected at the codec layer (op replies
/// decode to `None` before reaching here); this guards the remaining
/// semantic hazard — a delta naming a set outside the universe, which
/// previously indexed straight into the master's coverage vector.
pub(crate) fn reduce_deltas(
    label: &'static str,
    msgs: &[DeltaVec],
    num_sets: usize,
    mut apply: impl FnMut(u32, u32),
) -> Result<(), WireError> {
    for (machine, msg) in msgs.iter().enumerate() {
        for &(v, d) in msg {
            if (v as usize) < num_sets {
                apply(v, d);
            } else {
                return Err(WireError::id_out_of_range(label, machine));
            }
        }
    }
    Ok(())
}

/// Result of a NewGreeDi run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NewGreediResult {
    /// Selected sets, in selection order.
    pub seeds: Vec<u32>,
    /// Total elements covered across all machines.
    pub covered: u64,
    /// Marginal (global) coverage of each selection.
    pub marginals: Vec<u64>,
}

impl NewGreediResult {
    /// Coverage fraction `F_R(S)` over `total` elements.
    pub fn fraction(&self, total: usize) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.covered as f64 / total as f64
        }
    }
}

/// Runs Algorithm 1 on a cluster whose machines each hold a
/// [`CoverageShard`] (directly, or inside a composite worker whose
/// executor routes coverage ops to it).
///
/// `num_sets` is the global set-universe size; `k` the number of seeds.
///
/// # Errors
/// Returns a [`WireError`] if any worker reply is malformed, a link dies,
/// or a delta names an out-of-range set id.
pub fn newgreedi_with<B: OpCluster>(
    cluster: &mut B,
    num_sets: usize,
    k: usize,
) -> Result<NewGreediResult, WireError> {
    // Lines 1–3: label everything uncovered, compute local coverages, and
    // upload them as sparse ⟨v, Δ_i(v)⟩ tuples.
    let replies = cluster.op_gather(phase::COVERAGE_UPLOAD, |_| WorkerOp::InitialCoverage)?;
    let initial = expect_deltas(replies, phase::COVERAGE_UPLOAD)?;

    // Lines 4–6: the master aggregates Δ(v) = Σ_i Δ_i(v) and builds D.
    let mut selector = cluster.master(phase::SEED_SELECT, || {
        let mut coverage = vec![0u64; num_sets];
        reduce_deltas(phase::COVERAGE_UPLOAD, &initial, num_sets, |v, d| {
            coverage[v as usize] += d as u64
        })
        .map(|()| BucketSelector::new(&coverage))
    })?;
    select_seeds(cluster, num_sets, k, &mut selector)
}

/// [`newgreedi_with`] with the paper's §III-C traffic optimization for
/// repeated invocations (as in DiIMM): each machine reports coverage
/// marginals only over elements appended since the previous call, and the
/// caller-owned `base_coverage` accumulates the global totals across calls.
/// Selection itself is unchanged, so the result still equals the
/// centralized greedy exactly.
pub fn newgreedi_incremental<B: OpCluster>(
    cluster: &mut B,
    k: usize,
    base_coverage: &mut [u64],
) -> Result<NewGreediResult, WireError> {
    let replies = cluster.op_gather(phase::COVERAGE_UPLOAD, |_| WorkerOp::NewCoverage)?;
    let fresh = expect_deltas(replies, phase::COVERAGE_UPLOAD)?;
    let num_sets = base_coverage.len();
    let mut selector = cluster.master(phase::SEED_SELECT, || {
        reduce_deltas(phase::COVERAGE_UPLOAD, &fresh, num_sets, |v, d| {
            base_coverage[v as usize] += d as u64
        })
        .map(|()| BucketSelector::new(base_coverage))
    })?;
    select_seeds(cluster, num_sets, k, &mut selector)
}

/// The shared selection loop (Algorithm 1, lines 7–22): greedy picks with
/// lazy bucket updates, one broadcast + sparse-delta map/reduce per seed.
fn select_seeds<B: OpCluster>(
    cluster: &mut B,
    num_sets: usize,
    k: usize,
    selector: &mut BucketSelector,
) -> Result<NewGreediResult, WireError> {
    select_seeds_until(cluster, num_sets, k, None, selector)
}

/// [`select_seeds`] with an optional coverage target: selection stops as
/// soon as the accumulated coverage (Σ of marginals) reaches the target —
/// the primitive behind distributed *seed minimization* (the paper's
/// conclusion lists it among the applications of these building blocks).
pub(crate) fn select_seeds_until<B: OpCluster>(
    cluster: &mut B,
    num_sets: usize,
    k: usize,
    coverage_target: Option<u64>,
    selector: &mut BucketSelector,
) -> Result<NewGreediResult, WireError> {
    let mut seeds = Vec::with_capacity(k);
    let mut marginals = Vec::with_capacity(k);
    let mut accumulated = 0u64;
    while seeds.len() < k {
        if coverage_target.is_some_and(|t| accumulated >= t) {
            break;
        }
        // Lines 7–13: pick the maximum-coverage set with lazy updates.
        let Some((u, cov)) = cluster.master(phase::SEED_SELECT, || selector.select_next()) else {
            break;
        };
        seeds.push(u);
        marginals.push(cov);
        accumulated += cov;
        // Broadcast the new seed, then the map stage (lines 14–21):
        // per-machine sparse deltas. We run it for the final seed too so
        // covered counts below are complete.
        let replies = cluster.op_broadcast_gather(
            phase::SEED_BROADCAST,
            wire::ids_wire_size(1),
            phase::DELTA_UPLOAD,
            |_| WorkerOp::ApplySeed { set: u },
        )?;
        let deltas = expect_deltas(replies, phase::DELTA_UPLOAD)?;
        // Reduce stage (line 22).
        cluster.master(phase::SEED_SELECT, || {
            reduce_deltas(phase::DELTA_UPLOAD, &deltas, num_sets, |v, d| {
                selector.decrease(v, d as u64)
            })
        })?;
    }

    let replies = cluster.op_gather(phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount)?;
    let counts = expect_counts(&replies, phase::COUNT_UPLOAD)?;
    let covered = counts.iter().sum();
    Ok(NewGreediResult {
        seeds,
        covered,
        marginals,
    })
}

/// Element-distributed *partial cover*: selects seeds greedily until the
/// number of covered elements reaches `coverage_target` (or `max_seeds`
/// are spent). This is NewGreeDi with an early-exit stop rule; the greedy
/// sequence itself is unchanged, so it inherits the classic
/// `1 + ln(target)` seed-count approximation of greedy set cover.
pub fn newgreedi_until<B: OpCluster>(
    cluster: &mut B,
    num_sets: usize,
    coverage_target: u64,
    max_seeds: usize,
) -> Result<NewGreediResult, WireError> {
    let replies = cluster.op_gather(phase::COVERAGE_UPLOAD, |_| WorkerOp::InitialCoverage)?;
    let initial = expect_deltas(replies, phase::COVERAGE_UPLOAD)?;
    let mut selector = cluster.master(phase::SEED_SELECT, || {
        let mut coverage = vec![0u64; num_sets];
        reduce_deltas(phase::COVERAGE_UPLOAD, &initial, num_sets, |v, d| {
            coverage[v as usize] += d as u64
        })
        .map(|()| BucketSelector::new(&coverage))
    })?;
    select_seeds_until(
        cluster,
        num_sets,
        max_seeds,
        Some(coverage_target),
        &mut selector,
    )
}

/// [`newgreedi_with`] for clusters whose worker state *is* the shard
/// (reads `num_sets` off machine 0). Backends without master-side worker
/// state (the process backend) should call [`newgreedi_with`] directly.
pub fn newgreedi<B>(cluster: &mut B, k: usize) -> Result<NewGreediResult, WireError>
where
    B: OpCluster + ClusterBackend<Worker = CoverageShard>,
{
    let num_sets = cluster.workers()[0].num_sets();
    newgreedi_with(cluster, num_sets, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_cluster::{ExecMode, NetworkModel, SimCluster};

    use crate::greedy::bucket_greedy;
    use crate::problem::CoverageProblem;

    fn example3() -> CoverageProblem {
        CoverageProblem::from_element_records(
            5,
            [
                &[0u32][..],
                &[1, 2],
                &[0, 2],
                &[1, 4],
                &[0],
                &[1, 3],
            ],
        )
    }

    fn cluster_of(problem: &CoverageProblem, l: usize) -> SimCluster<CoverageShard> {
        SimCluster::new(
            problem.shard_elements(l),
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        )
    }

    #[test]
    fn example3_covers_all_with_two_seeds() {
        let p = example3();
        for l in [1, 2, 3, 6] {
            let mut c = cluster_of(&p, l);
            let r = newgreedi(&mut c, 2).unwrap();
            assert_eq!(r.covered, 6, "ℓ = {l}");
            let mut s = r.seeds.clone();
            s.sort_unstable();
            assert_eq!(s, vec![0, 1], "ℓ = {l}");
        }
    }

    /// Lemma 2's mechanism: NewGreeDi equals centralized greedy exactly —
    /// same seeds, same order, same marginals — for any machine count.
    #[test]
    fn equals_centralized_greedy_exactly() {
        let p = example3();
        let mut shard = p.single_shard();
        let central = bucket_greedy(&mut shard, 4);
        for l in [1, 2, 3, 4, 6] {
            let mut c = cluster_of(&p, l);
            let r = newgreedi(&mut c, 4).unwrap();
            assert_eq!(r.seeds, central.seeds, "ℓ = {l}");
            assert_eq!(r.marginals, central.marginals, "ℓ = {l}");
            assert_eq!(r.covered, central.covered, "ℓ = {l}");
        }
    }

    #[test]
    fn traffic_accounted() {
        let p = example3();
        let mut c = cluster_of(&p, 3);
        let r = newgreedi(&mut c, 2).unwrap();
        assert_eq!(r.covered, 6);
        let m = c.metrics();
        // At least: initial coverage gather + per-seed broadcast/gather +
        // final counts gather.
        assert!(m.messages >= 3 + 2 * (3 + 3) + 3, "messages {}", m.messages);
        assert!(m.bytes_to_master > 0);
        assert!(m.bytes_from_master > 0);
        assert!(m.comm_time > std::time::Duration::ZERO);
    }

    #[test]
    fn timeline_labels_every_phase() {
        let p = example3();
        let mut c = cluster_of(&p, 3);
        newgreedi(&mut c, 2).unwrap();
        let tl = c.timeline();
        let labels: Vec<_> = tl.labels().collect();
        assert_eq!(
            labels,
            vec![
                phase::COVERAGE_UPLOAD,
                phase::SEED_SELECT,
                phase::SEED_BROADCAST,
                phase::DELTA_UPLOAD,
                phase::COUNT_UPLOAD,
            ]
        );
        // 2 seeds → 2 broadcasts of one id each, to 3 machines.
        let bcast = tl.get(phase::SEED_BROADCAST);
        assert_eq!(bcast.messages, 6);
        assert_eq!(bcast.bytes_from_master, 2 * 3 * wire::ids_wire_size(1));
        // Final counts: one u64 per machine.
        let counts = tl.get(phase::COUNT_UPLOAD);
        assert_eq!(counts.bytes_to_master, 3 * wire::u64_wire_size());
        // The flat view is the label-wise sum.
        assert_eq!(c.metrics(), tl.total());
    }

    #[test]
    fn covered_reported_even_when_k_exceeds_sets() {
        let p = example3();
        let mut c = cluster_of(&p, 2);
        let r = newgreedi(&mut c, 50).unwrap();
        assert_eq!(r.covered, 6);
        assert!(r.seeds.len() <= 5);
    }

    #[test]
    fn reduce_rejects_out_of_range_set_id() {
        use dim_cluster::wire::WireErrorKind;
        // Set id 9 is outside a 5-set universe: previously this indexed
        // straight into the coverage vector and panicked the master.
        let msgs = vec![vec![(2u32, 1u32), (9, 1)]];
        let mut applied = Vec::new();
        let err = reduce_deltas(phase::COVERAGE_UPLOAD, &msgs, 5, |v, d| {
            applied.push((v, d))
        })
        .unwrap_err();
        assert_eq!(err.kind, WireErrorKind::IdOutOfRange);
        assert_eq!(err.machine, Some(0));
        // In-range tuples before the bad one may apply; no panic either way.
        assert!(applied.len() <= 1);
    }

    #[test]
    fn incremental_accumulates_across_invocations() {
        // Two NewGreeDi invocations over a growing instance: the second
        // round reports only the appended elements' marginals, yet selects
        // exactly what a from-scratch run over the full instance would.
        let p = example3();
        let mut c = cluster_of(&p, 2);
        let mut base = vec![0u64; 5];
        let first = newgreedi_incremental(&mut c, 2, &mut base).unwrap();
        assert_eq!(first.covered, 6);
        // Append an element covered only by set 4 on machine 0, then rerun.
        c.par_step(phase::RR_SAMPLING, |i, shard| {
            if i == 0 {
                shard.push_element(&[4]);
            }
        });
        let second = newgreedi_incremental(&mut c, 3, &mut base).unwrap();
        let mut full = cluster_of(&p, 1);
        full.par_step(phase::RR_SAMPLING, |_, shard| shard.push_element(&[4]));
        let fresh = newgreedi(&mut full, 3).unwrap();
        assert_eq!(second.seeds, fresh.seeds);
        assert_eq!(second.covered, fresh.covered);
    }

    #[test]
    fn fraction_matches_problem_evaluation() {
        let p = example3();
        let mut c = cluster_of(&p, 2);
        let r = newgreedi(&mut c, 2).unwrap();
        assert_eq!(r.covered, p.coverage_of(&r.seeds));
        assert!((r.fraction(p.num_elements()) - 1.0).abs() < 1e-12);
    }
}
