//! Flat pooled storage of `u32` lists.

/// Append-only storage of variable-length `u32` lists, stored back-to-back
/// in one pool. Mirrors `dim_diffusion::RrStore` but lives here so the
/// coverage layer has no dependency on diffusion (maximum coverage is a
/// standalone problem — Fig. 10 runs it on graph neighborhoods).
///
/// The offset array is `u32` (struct-of-arrays over one arena), halving
/// the index footprint versus `usize` offsets so more of the hot transpose
/// index stays cache-resident; the pool is therefore capped at `u32::MAX`
/// entries and `u32::MAX` lists, enforced by [`PooledSets::push`].
///
/// **Invariant** (maintained by every constructor and relied on by the
/// unchecked hot-path accessors): `offsets` is non-empty, starts at 0, is
/// monotone non-decreasing, and ends at `pool.len()`.
#[derive(Clone, Debug)]
pub struct PooledSets {
    offsets: Vec<u32>,
    pool: Vec<u32>,
}

impl Default for PooledSets {
    fn default() -> Self {
        PooledSets::new()
    }
}

impl PooledSets {
    /// Creates empty storage.
    pub fn new() -> Self {
        PooledSets {
            offsets: vec![0],
            pool: Vec::new(),
        }
    }

    /// Creates empty storage pre-sized for `lists` lists totalling
    /// `total_len` entries.
    pub fn with_capacity(lists: usize, total_len: usize) -> Self {
        let mut offsets = Vec::with_capacity(lists + 1);
        offsets.push(0);
        PooledSets {
            offsets,
            pool: Vec::with_capacity(total_len),
        }
    }

    /// Validated reassembly from raw parts (inverse of
    /// [`Self::into_parts`]): `Err` with the violated condition instead of
    /// panicking, so callers holding untrusted bytes (dim-store snapshot
    /// decoding) can surface a typed corruption error.
    pub fn try_from_parts(offsets: Vec<usize>, pool: Vec<u32>) -> Result<Self, &'static str> {
        if offsets.is_empty() || offsets[0] != 0 {
            return Err("offset array must start at zero");
        }
        if *offsets.last().unwrap() != pool.len() {
            return Err("offset array must end at the pool length");
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offset array must be monotone");
        }
        if pool.len() > u32::MAX as usize || offsets.len() - 1 > u32::MAX as usize {
            return Err("pool or list count exceeds the u32 arena bound");
        }
        Ok(PooledSets {
            offsets: offsets.into_iter().map(|o| o as u32).collect(),
            pool,
        })
    }

    /// Reassembles storage from raw parts.
    ///
    /// # Panics
    /// Panics if `offsets` is not a valid monotone offset array over `pool`.
    /// Use [`Self::try_from_parts`] when the parts are untrusted.
    pub fn from_parts(offsets: Vec<usize>, pool: Vec<u32>) -> Self {
        Self::try_from_parts(offsets, pool).expect("malformed PooledSets parts")
    }

    /// Decomposes into `(offsets, pool)` without copying the pool.
    pub fn into_parts(self) -> (Vec<usize>, Vec<u32>) {
        (
            self.offsets.into_iter().map(|o| o as usize).collect(),
            self.pool,
        )
    }

    /// Appends one list; returns its id.
    ///
    /// # Panics
    /// Panics (with a message naming the bound) instead of silently
    /// truncating when the list count would exceed `u32::MAX` ids or the
    /// pool would outgrow the `u32` offset range.
    pub fn push(&mut self, list: &[u32]) -> u32 {
        let id = self.offsets.len() - 1;
        assert!(
            id <= u32::MAX as usize,
            "PooledSets: list id would exceed u32::MAX (2^32 lists stored)"
        );
        let end = self.pool.len() + list.len();
        assert!(
            end <= u32::MAX as usize,
            "PooledSets: pool length {end} exceeds the u32 offset range"
        );
        self.pool.extend_from_slice(list);
        self.offsets.push(end as u32);
        id as u32
    }

    /// Number of lists.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when no lists are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `id`-th list.
    #[inline]
    pub fn get(&self, id: usize) -> &[u32] {
        let lo = self.offsets[id] as usize;
        let hi = self.offsets[id + 1] as usize;
        // SAFETY: the struct invariant guarantees offsets are monotone and
        // bounded by `pool.len()`, so `lo..hi` is always in range.
        unsafe { self.pool.get_unchecked(lo..hi) }
    }

    /// Total entries across all lists.
    pub fn total_size(&self) -> usize {
        self.pool.len()
    }

    /// Iterates lists in id order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        self.offsets
            .windows(2)
            .map(move |w| &self.pool[w[0] as usize..w[1] as usize])
    }

    /// Builds the transpose over value domain `0..domain`: for each value
    /// `v`, the ids of lists containing `v`. Returned in the same
    /// `PooledSets` representation (list `v` = ids containing `v`).
    pub fn transpose(&self, domain: usize) -> PooledSets {
        // Counting sort; the pool invariant bounds every count by u32.
        let mut counts = vec![0u32; domain + 1];
        for &v in &self.pool {
            counts[v as usize + 1] += 1;
        }
        for i in 0..domain {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut ids = vec![0u32; self.pool.len()];
        for id in 0..self.len() {
            for &v in self.get(id) {
                ids[cursor[v as usize] as usize] = id as u32;
                cursor[v as usize] += 1;
            }
        }
        PooledSets {
            offsets,
            pool: ids,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_iter() {
        let mut p = PooledSets::new();
        assert!(p.is_empty());
        assert_eq!(p.push(&[1, 2]), 0);
        assert_eq!(p.push(&[]), 1);
        assert_eq!(p.push(&[0]), 2);
        assert_eq!(p.len(), 3);
        assert_eq!(p.get(0), &[1, 2]);
        assert_eq!(p.get(1), &[] as &[u32]);
        assert_eq!(p.get(2), &[0]);
        assert_eq!(p.total_size(), 3);
        assert_eq!(p.iter().count(), 3);
    }

    #[test]
    fn parts_roundtrip() {
        let mut p = PooledSets::new();
        p.push(&[3, 1]);
        p.push(&[2]);
        let (o, pool) = p.clone().into_parts();
        assert_eq!(o, vec![0, 2, 3]);
        let q = PooledSets::from_parts(o, pool);
        assert_eq!(q.get(0), p.get(0));
        assert_eq!(q.get(1), p.get(1));
    }

    #[test]
    fn transpose_involution() {
        let mut p = PooledSets::new();
        p.push(&[0, 1]);
        p.push(&[1, 2, 3]);
        p.push(&[0, 2]);
        let t = p.transpose(4);
        assert_eq!(t.get(0), &[0, 2]); // value 0 in lists 0 and 2
        assert_eq!(t.get(1), &[0, 1]);
        assert_eq!(t.get(3), &[1]);
        // Transposing back over the list domain recovers the original.
        let back = t.transpose(3);
        for i in 0..p.len() {
            assert_eq!(back.get(i), p.get(i));
        }
    }

    #[test]
    #[should_panic]
    fn from_parts_validates() {
        PooledSets::from_parts(vec![0, 5], vec![1, 2]);
    }

    #[test]
    fn try_from_parts_reports_each_violation() {
        assert!(PooledSets::try_from_parts(vec![], vec![])
            .unwrap_err()
            .contains("start at zero"));
        assert!(PooledSets::try_from_parts(vec![1, 2], vec![1, 2])
            .unwrap_err()
            .contains("start at zero"));
        assert!(PooledSets::try_from_parts(vec![0, 5], vec![1, 2])
            .unwrap_err()
            .contains("end at the pool length"));
        assert!(PooledSets::try_from_parts(vec![0, 2, 1, 3], vec![1, 2, 3])
            .unwrap_err()
            .contains("monotone"));
        let ok = PooledSets::try_from_parts(vec![0, 1, 3], vec![7, 8, 9]).unwrap();
        assert_eq!(ok.get(1), &[8, 9]);
    }
}
