//! Flat pooled storage of `u32` lists.

/// Append-only storage of variable-length `u32` lists, stored back-to-back
/// in one pool. Mirrors `dim_diffusion::RrStore` but lives here so the
/// coverage layer has no dependency on diffusion (maximum coverage is a
/// standalone problem — Fig. 10 runs it on graph neighborhoods).
#[derive(Clone, Debug, Default)]
pub struct PooledSets {
    offsets: Vec<usize>,
    pool: Vec<u32>,
}

impl PooledSets {
    /// Creates empty storage.
    pub fn new() -> Self {
        PooledSets {
            offsets: vec![0],
            pool: Vec::new(),
        }
    }

    /// Creates empty storage pre-sized for `lists` lists totalling
    /// `total_len` entries.
    pub fn with_capacity(lists: usize, total_len: usize) -> Self {
        let mut offsets = Vec::with_capacity(lists + 1);
        offsets.push(0);
        PooledSets {
            offsets,
            pool: Vec::with_capacity(total_len),
        }
    }

    /// Reassembles storage from raw parts (inverse of [`Self::into_parts`]).
    ///
    /// # Panics
    /// Panics if `offsets` is not a valid monotone offset array over `pool`.
    pub fn from_parts(offsets: Vec<usize>, pool: Vec<u32>) -> Self {
        assert!(!offsets.is_empty() && offsets[0] == 0);
        assert_eq!(*offsets.last().unwrap(), pool.len());
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        PooledSets { offsets, pool }
    }

    /// Decomposes into `(offsets, pool)` without copying.
    pub fn into_parts(self) -> (Vec<usize>, Vec<u32>) {
        (self.offsets, self.pool)
    }

    /// Appends one list; returns its id.
    pub fn push(&mut self, list: &[u32]) -> u32 {
        let id = self.len() as u32;
        self.pool.extend_from_slice(list);
        self.offsets.push(self.pool.len());
        id
    }

    /// Number of lists.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when no lists are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `id`-th list.
    pub fn get(&self, id: usize) -> &[u32] {
        &self.pool[self.offsets[id]..self.offsets[id + 1]]
    }

    /// Total entries across all lists.
    pub fn total_size(&self) -> usize {
        self.pool.len()
    }

    /// Iterates lists in id order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        self.offsets
            .windows(2)
            .map(move |w| &self.pool[w[0]..w[1]])
    }

    /// Builds the transpose over value domain `0..domain`: for each value
    /// `v`, the ids of lists containing `v`. Returned in the same
    /// `PooledSets` representation (list `v` = ids containing `v`).
    pub fn transpose(&self, domain: usize) -> PooledSets {
        let mut counts = vec![0usize; domain + 1];
        for &v in &self.pool {
            counts[v as usize + 1] += 1;
        }
        for i in 0..domain {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut ids = vec![0u32; self.pool.len()];
        for id in 0..self.len() {
            for &v in self.get(id) {
                ids[cursor[v as usize]] = id as u32;
                cursor[v as usize] += 1;
            }
        }
        PooledSets {
            offsets,
            pool: ids,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_iter() {
        let mut p = PooledSets::new();
        assert!(p.is_empty());
        p.push(&[1, 2]);
        p.push(&[]);
        p.push(&[0]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.get(0), &[1, 2]);
        assert_eq!(p.get(1), &[] as &[u32]);
        assert_eq!(p.get(2), &[0]);
        assert_eq!(p.total_size(), 3);
        assert_eq!(p.iter().count(), 3);
    }

    #[test]
    fn parts_roundtrip() {
        let mut p = PooledSets::new();
        p.push(&[3, 1]);
        p.push(&[2]);
        let (o, pool) = p.clone().into_parts();
        let q = PooledSets::from_parts(o, pool);
        assert_eq!(q.get(0), p.get(0));
        assert_eq!(q.get(1), p.get(1));
    }

    #[test]
    fn transpose_involution() {
        let mut p = PooledSets::new();
        p.push(&[0, 1]);
        p.push(&[1, 2, 3]);
        p.push(&[0, 2]);
        let t = p.transpose(4);
        assert_eq!(t.get(0), &[0, 2]); // value 0 in lists 0 and 2
        assert_eq!(t.get(1), &[0, 1]);
        assert_eq!(t.get(3), &[1]);
        // Transposing back over the list domain recovers the original.
        let back = t.transpose(3);
        for i in 0..p.len() {
            assert_eq!(back.get(i), p.get(i));
        }
    }

    #[test]
    #[should_panic]
    fn from_parts_validates() {
        PooledSets::from_parts(vec![0, 5], vec![1, 2]);
    }
}
