//! Global maximum-coverage instances and sharding.

use dim_graph::Graph;

use crate::pooled::PooledSets;
use crate::shard::CoverageShard;

/// A complete set-element maximum-coverage instance: `num_sets` sets over
/// the elements `0..num_elements`, stored as *element records* (for each
/// element, the ids of the sets covering it — the natural orientation for
/// RIS, where an RR set's record is its member nodes).
#[derive(Clone, Debug)]
pub struct CoverageProblem {
    num_sets: usize,
    elements: PooledSets,
}

impl CoverageProblem {
    /// Builds an instance from element records.
    pub fn from_element_records<'a>(
        num_sets: usize,
        records: impl IntoIterator<Item = &'a [u32]>,
    ) -> Self {
        let mut elements = PooledSets::new();
        for r in records {
            debug_assert!(r.iter().all(|&s| (s as usize) < num_sets));
            elements.push(r);
        }
        CoverageProblem { num_sets, elements }
    }

    /// Builds an instance from *set records* (for each set, the elements it
    /// covers) over the element domain `0..num_elements`.
    pub fn from_set_records<'a>(
        num_elements: usize,
        sets: impl IntoIterator<Item = &'a [u32]>,
    ) -> Self {
        let mut set_store = PooledSets::new();
        for s in sets {
            debug_assert!(s.iter().all(|&e| (e as usize) < num_elements));
            set_store.push(s);
        }
        let num_sets = set_store.len();
        CoverageProblem {
            num_sets,
            elements: set_store.transpose(num_elements),
        }
    }

    /// The paper's §IV-C maximum-coverage workload: the graph `G = (V, E)`
    /// is viewed as `|V|` sets over `|V|` elements, where set `u` is the
    /// collection of `u`'s out-neighbors. Element `v`'s record is therefore
    /// `v`'s in-neighbor list.
    pub fn from_graph_neighborhoods(graph: &Graph) -> Self {
        let mut elements = PooledSets::with_capacity(graph.num_nodes(), graph.num_edges());
        for v in graph.nodes() {
            elements.push(graph.in_neighbors(v));
        }
        CoverageProblem {
            num_sets: graph.num_nodes(),
            elements,
        }
    }

    /// Number of sets in the universe.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Number of elements.
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// Total incidence size `Σ_e |record(e)|`.
    pub fn total_size(&self) -> usize {
        self.elements.total_size()
    }

    /// The whole instance as one [`CoverageShard`] (centralized baseline).
    pub fn single_shard(&self) -> CoverageShard {
        CoverageShard::from_records(self.num_sets, self.elements.iter())
    }

    /// Element-distributed sharding: element `e` goes to machine
    /// `e mod machines` (elements arrive in random generation order, so
    /// round-robin matches the paper's "randomly and uniformly distributed"
    /// assumption while staying deterministic).
    pub fn shard_elements(&self, machines: usize) -> Vec<CoverageShard> {
        assert!(machines >= 1);
        let mut shards: Vec<CoverageShard> = (0..machines)
            .map(|_| CoverageShard::new(self.num_sets))
            .collect();
        for (e, record) in self.elements.iter().enumerate() {
            shards[e % machines].push_element(record);
        }
        for s in &mut shards {
            s.prepare();
        }
        shards
    }

    /// Set-distributed sharding for the composable core-sets baselines:
    /// machine `i` receives the sets `{s : s ≡ i (mod machines)}` together
    /// with their full element lists. When `shuffle_seed` is `Some`, set
    /// ids are first permuted pseudo-randomly (RandGreeDi's random
    /// partition).
    pub fn shard_sets(&self, machines: usize, shuffle_seed: Option<u64>) -> Vec<SetShard> {
        assert!(machines >= 1);
        let index = self.elements.transpose(self.num_sets);
        let mut order: Vec<u32> = (0..self.num_sets as u32).collect();
        if let Some(seed) = shuffle_seed {
            // Fisher–Yates with a SplitMix-derived stream.
            let mut state = seed;
            let mut next = move || {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut x = state;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
                x ^ (x >> 31)
            };
            for i in (1..order.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
        }
        let mut shards: Vec<SetShard> = (0..machines)
            .map(|_| SetShard {
                set_ids: Vec::new(),
                set_elements: PooledSets::new(),
                num_elements: self.num_elements(),
            })
            .collect();
        for (pos, &s) in order.iter().enumerate() {
            let shard = &mut shards[pos % machines];
            shard.set_ids.push(s);
            shard.set_elements.push(index.get(s as usize));
        }
        shards
    }

    /// Number of elements covered by `seeds` (global evaluation).
    pub fn coverage_of(&self, seeds: &[u32]) -> u64 {
        let mut covered = 0u64;
        'elem: for record in self.elements.iter() {
            for s in record {
                if seeds.contains(s) {
                    covered += 1;
                    continue 'elem;
                }
            }
        }
        covered
    }

    /// Exact optimum coverage over all size-`k` set subsets. Exponential —
    /// test-sized instances only.
    pub fn brute_force_opt(&self, k: usize) -> (Vec<u32>, u64) {
        assert!(
            self.num_sets <= 24,
            "brute force limited to tiny universes"
        );
        let index = self.elements.transpose(self.num_sets);
        let mut best = (Vec::new(), 0u64);
        let mut subset: Vec<u32> = Vec::with_capacity(k);
        fn recurse(
            problem: &CoverageProblem,
            index: &PooledSets,
            k: usize,
            start: u32,
            subset: &mut Vec<u32>,
            covered: &mut Vec<bool>,
            best: &mut (Vec<u32>, u64),
        ) {
            if subset.len() == k {
                let c = covered.iter().filter(|&&b| b).count() as u64;
                if c > best.1 {
                    *best = (subset.clone(), c);
                }
                return;
            }
            let remaining = (k - subset.len()) as u32;
            let n = problem.num_sets as u32;
            for v in start..=(n - remaining) {
                let newly: Vec<u32> = index
                    .get(v as usize)
                    .iter()
                    .copied()
                    .filter(|&e| !covered[e as usize])
                    .collect();
                for &e in &newly {
                    covered[e as usize] = true;
                }
                subset.push(v);
                recurse(problem, index, k, v + 1, subset, covered, best);
                subset.pop();
                for &e in &newly {
                    covered[e as usize] = false;
                }
            }
        }
        if k > 0 && self.num_sets >= k {
            let mut covered = vec![false; self.num_elements()];
            recurse(self, &index, k, 0, &mut subset, &mut covered, &mut best);
        }
        best
    }
}

/// One machine's shard in the *set-distributed* layout: its assigned set
/// ids and, for each, the full (global) element list. This is the layout
/// composable core-sets requires — and the reason it is incompatible with
/// distributed RIS (§III-B1): assembling it from distributed RR sets would
/// require gathering all samples on one machine first.
#[derive(Clone, Debug)]
pub struct SetShard {
    /// Global ids of the sets this machine owns.
    pub set_ids: Vec<u32>,
    /// `set_elements.get(i)` = elements of `set_ids[i]` (global ids).
    pub set_elements: PooledSets,
    /// Size of the global element domain.
    pub num_elements: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_graph::{GraphBuilder, WeightModel};

    fn example3() -> CoverageProblem {
        CoverageProblem::from_element_records(
            5,
            [
                &[0u32][..],
                &[1, 2],
                &[0, 2],
                &[1, 4],
                &[0],
                &[1, 3],
            ],
        )
    }

    #[test]
    fn counts() {
        let p = example3();
        assert_eq!(p.num_sets(), 5);
        assert_eq!(p.num_elements(), 6);
        assert_eq!(p.total_size(), 10);
    }

    #[test]
    fn coverage_of_example3() {
        let p = example3();
        assert_eq!(p.coverage_of(&[0, 1]), 6); // {v1, v2} covers all
        assert_eq!(p.coverage_of(&[0]), 3);
        assert_eq!(p.coverage_of(&[]), 0);
        assert_eq!(p.coverage_of(&[4]), 1);
    }

    #[test]
    fn brute_force_example3() {
        let p = example3();
        let (seeds, opt) = p.brute_force_opt(2);
        assert_eq!(opt, 6);
        assert_eq!(seeds, vec![0, 1]);
        assert_eq!(p.brute_force_opt(0).1, 0);
    }

    #[test]
    fn from_set_records_transposes() {
        // Sets: A = {0, 1}, B = {1, 2}. Elements 0..3.
        let p = CoverageProblem::from_set_records(3, [&[0u32, 1][..], &[1, 2]]);
        assert_eq!(p.num_sets(), 2);
        assert_eq!(p.num_elements(), 3);
        assert_eq!(p.coverage_of(&[0]), 2);
        assert_eq!(p.coverage_of(&[0, 1]), 3);
    }

    #[test]
    fn graph_neighborhood_instance() {
        // 0 -> 1, 0 -> 2, 1 -> 2: set 0 covers {1,2}, set 1 covers {2}.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        let g = b.build(WeightModel::WeightedCascade);
        let p = CoverageProblem::from_graph_neighborhoods(&g);
        assert_eq!(p.num_sets(), 3);
        assert_eq!(p.num_elements(), 3);
        assert_eq!(p.coverage_of(&[0]), 2);
        assert_eq!(p.coverage_of(&[1]), 1);
        assert_eq!(p.coverage_of(&[2]), 0);
    }

    #[test]
    fn element_shards_partition_everything() {
        let p = example3();
        for l in 1..=4 {
            let shards = p.shard_elements(l);
            assert_eq!(shards.len(), l);
            let total: usize = shards.iter().map(|s| s.num_elements()).sum();
            assert_eq!(total, p.num_elements());
            let size: usize = shards.iter().map(|s| s.total_size()).sum();
            assert_eq!(size, p.total_size());
        }
    }

    #[test]
    fn set_shards_partition_sets() {
        let p = example3();
        let shards = p.shard_sets(2, None);
        let mut all: Vec<u32> = shards.iter().flat_map(|s| s.set_ids.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        // Set 0 (= v1) covers elements R1, R3, R5 → global ids 0, 2, 4.
        let shard0 = &shards[0];
        let pos = shard0.set_ids.iter().position(|&s| s == 0).unwrap();
        assert_eq!(shard0.set_elements.get(pos), &[0, 2, 4]);
    }

    #[test]
    fn shuffled_set_shards_still_partition() {
        let p = example3();
        let shards = p.shard_sets(3, Some(9));
        let mut all: Vec<u32> = shards.iter().flat_map(|s| s.set_ids.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_shard_matches_problem() {
        let p = example3();
        let shard = p.single_shard();
        assert_eq!(shard.num_elements(), p.num_elements());
        assert_eq!(shard.total_size(), p.total_size());
    }
}
