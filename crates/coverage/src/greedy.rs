//! Centralized greedy maximum-coverage algorithms.
//!
//! Three implementations with identical approximation behaviour but
//! different engineering (the paper's ablation dimension):
//!
//! * [`bucket_greedy`] — the paper's bucketed lazy selector (Algorithm 1
//!   restricted to one machine). Amortized linear in Σ|R|.
//! * [`celf_greedy`] — CELF lazy evaluation on a max-heap (Leskovec et al.),
//!   the classic alternative.
//! * [`naive_greedy`] — per-round full rescan; quadratic but obviously
//!   correct, used as an oracle in tests.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::selector::BucketSelector;
use crate::shard::CoverageShard;

/// Outcome of a greedy run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GreedyResult {
    /// Selected sets, in selection order.
    pub seeds: Vec<u32>,
    /// Number of elements covered by `seeds`.
    pub covered: u64,
    /// Marginal coverage of each selection, in order (non-increasing).
    pub marginals: Vec<u64>,
}

impl GreedyResult {
    /// Coverage as a fraction of `total` elements (the paper's `F_R(S)`).
    pub fn fraction(&self, total: usize) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.covered as f64 / total as f64
        }
    }
}

/// Dense initial coverage vector of a prepared shard.
fn dense_initial(shard: &CoverageShard) -> Vec<u64> {
    let mut init = vec![0u64; shard.num_sets()];
    for (v, c) in shard.initial_coverage() {
        init[v as usize] = c as u64;
    }
    init
}

/// The paper's bucketed greedy (Algorithm 1 on one machine): selects up to
/// `k` sets maximizing covered elements. The shard is re-prepared, so any
/// prior coverage state is discarded.
pub fn bucket_greedy(shard: &mut CoverageShard, k: usize) -> GreedyResult {
    shard.prepare();
    let mut selector = BucketSelector::new(&dense_initial(shard));
    let mut seeds = Vec::with_capacity(k);
    let mut marginals = Vec::with_capacity(k);
    while seeds.len() < k {
        let Some((u, cov)) = selector.select_next() else {
            break;
        };
        seeds.push(u);
        marginals.push(cov);
        // Per-occurrence decrements: `decrease` is commutative, so skipping
        // the aggregation/sort of `apply_seed` leaves identical state.
        shard.apply_seed_each(u, |v| selector.decrease(v, 1));
    }
    GreedyResult {
        seeds,
        covered: shard.covered_count() as u64,
        marginals,
    }
}

/// CELF lazy greedy: a max-heap of stale marginals; the top is re-evaluated
/// and either confirmed (submodularity guarantees optimality if it stays on
/// top) or reinserted. Ties break toward the smaller set id.
pub fn celf_greedy(shard: &mut CoverageShard, k: usize) -> GreedyResult {
    shard.prepare();
    let mut heap: BinaryHeap<(u64, Reverse<u32>)> = dense_initial(shard)
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(v, &c)| (c, Reverse(v as u32)))
        .collect();
    let mut seeds = Vec::with_capacity(k);
    let mut marginals = Vec::with_capacity(k);
    while seeds.len() < k {
        let Some((stale, Reverse(u))) = heap.pop() else {
            break;
        };
        let fresh = shard.marginal(u) as u64;
        debug_assert!(fresh <= stale, "marginals never increase");
        if fresh == 0 {
            continue;
        }
        // Fresh value still at least the next candidate's stale value
        // (stale values upper-bound fresh ones) → safe to select.
        let next_best = heap.peek().map(|&(c, _)| c).unwrap_or(0);
        if fresh >= next_best {
            shard.apply_seed(u);
            seeds.push(u);
            marginals.push(fresh);
        } else {
            heap.push((fresh, Reverse(u)));
        }
    }
    GreedyResult {
        seeds,
        covered: shard.covered_count() as u64,
        marginals,
    }
}

/// Naive greedy: rescans every set's marginal each round. O(k · Σ|I(v)|).
/// Ties break toward the smaller set id.
pub fn naive_greedy(shard: &mut CoverageShard, k: usize) -> GreedyResult {
    shard.prepare();
    let mut seeds = Vec::with_capacity(k);
    let mut marginals = Vec::with_capacity(k);
    while seeds.len() < k {
        let mut best: Option<(u32, u64)> = None;
        for v in 0..shard.num_sets() as u32 {
            if seeds.contains(&v) {
                continue;
            }
            let m = shard.marginal(v) as u64;
            if m > 0 && best.is_none_or(|(_, bm)| m > bm) {
                best = Some((v, m));
            }
        }
        let Some((u, m)) = best else { break };
        shard.apply_seed(u);
        seeds.push(u);
        marginals.push(m);
    }
    GreedyResult {
        seeds,
        covered: shard.covered_count() as u64,
        marginals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example3() -> CoverageShard {
        CoverageShard::from_records(
            5,
            [
                &[0u32][..],
                &[1, 2],
                &[0, 2],
                &[1, 4],
                &[0],
                &[1, 3],
            ],
        )
    }

    /// Replays a seed sequence, asserting the greedy invariant: each seed
    /// had the maximum marginal at its selection point.
    fn assert_greedy_invariant(mut shard: CoverageShard, seeds: &[u32], marginals: &[u64]) {
        shard.prepare();
        for (&u, &m) in seeds.iter().zip(marginals) {
            let max = (0..shard.num_sets() as u32)
                .map(|v| shard.marginal(v) as u64)
                .max()
                .unwrap_or(0);
            assert_eq!(shard.marginal(u) as u64, m, "recorded marginal of {u}");
            assert_eq!(m, max, "seed {u} was not a maximizer");
            shard.apply_seed(u);
        }
    }

    #[test]
    fn example3_all_algorithms_cover_everything() {
        // Paper Example 3: {v1, v2} covers all 6 RR sets.
        for algo in [bucket_greedy, celf_greedy, naive_greedy] {
            let mut shard = example3();
            let r = algo(&mut shard, 2);
            assert_eq!(r.covered, 6, "full coverage with k = 2");
            let mut s = r.seeds.clone();
            s.sort_unstable();
            assert_eq!(s, vec![0, 1]);
            assert_eq!(r.marginals, vec![3, 3]);
        }
    }

    #[test]
    fn greedy_invariant_holds() {
        for algo in [bucket_greedy, celf_greedy, naive_greedy] {
            let mut shard = example3();
            let r = algo(&mut shard, 4);
            assert_greedy_invariant(example3(), &r.seeds, &r.marginals);
        }
    }

    #[test]
    fn marginals_non_increasing() {
        for algo in [bucket_greedy, celf_greedy, naive_greedy] {
            let mut shard = example3();
            let r = algo(&mut shard, 5);
            assert!(r.marginals.windows(2).all(|w| w[0] >= w[1]), "{:?}", r.marginals);
        }
    }

    #[test]
    fn stops_when_everything_covered() {
        let mut shard = example3();
        let r = bucket_greedy(&mut shard, 100);
        assert_eq!(r.covered, 6);
        assert!(r.seeds.len() <= 5);
        assert!(r.marginals.iter().all(|&m| m > 0));
    }

    #[test]
    fn k_zero() {
        let mut shard = example3();
        let r = bucket_greedy(&mut shard, 0);
        assert!(r.seeds.is_empty());
        assert_eq!(r.covered, 0);
    }

    #[test]
    fn fraction_helper() {
        let mut shard = example3();
        let r = bucket_greedy(&mut shard, 1);
        assert_eq!(r.covered, 3);
        assert!((r.fraction(6) - 0.5).abs() < 1e-12);
        assert_eq!(r.fraction(0), 0.0);
    }

    #[test]
    fn celf_matches_bucket_coverage_on_example() {
        let mut a = example3();
        let mut b = example3();
        assert_eq!(bucket_greedy(&mut a, 3).covered, celf_greedy(&mut b, 3).covered);
    }
}
