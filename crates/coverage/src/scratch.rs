//! Reusable epoch-stamped scratch flags for the coverage hot paths.
//!
//! Several selection paths need a transient "seen" flag per element or per
//! set. Allocating `vec![false; n]` on every invocation puts an O(n)
//! allocation + zeroing on paths that are otherwise linear in the touched
//! entries; an epoch-stamped array clears in O(1) (bump the epoch) and a
//! thread-local pool makes the buffer survive across invocations, so
//! repeated queries stop allocating entirely once warm.

use std::cell::RefCell;

/// O(1)-clearable boolean flags over indices `0..len`, cleared by bumping
/// an epoch instead of sweeping the array (the coverage-side sibling of
/// `dim_diffusion::visit::VisitTracker`).
#[derive(Clone, Debug, Default)]
pub struct EpochFlags {
    stamp: Vec<u32>,
    epoch: u32,
}

impl EpochFlags {
    /// Creates flags for `n` indices, all unset.
    pub fn new(n: usize) -> Self {
        EpochFlags {
            stamp: vec![0; n],
            epoch: 1,
        }
    }

    /// Number of tracked indices.
    pub fn len(&self) -> usize {
        self.stamp.len()
    }

    /// True when no indices are tracked.
    pub fn is_empty(&self) -> bool {
        self.stamp.is_empty()
    }

    /// Grows the tracked range to at least `n` indices (new indices unset).
    /// Never shrinks, so a pooled instance keeps its largest allocation.
    pub fn grow(&mut self, n: usize) {
        if n > self.stamp.len() {
            self.stamp.resize(n, 0);
        }
    }

    /// Unsets every flag in amortized O(1) (a full sweep happens once per
    /// `u32::MAX` clears to survive epoch wraparound).
    #[inline]
    pub fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Sets flag `i`. Returns `true` if it was previously unset.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        let slot = &mut self.stamp[i];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// True when flag `i` is set.
    #[inline]
    pub fn is_set(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }
}

thread_local! {
    static POOL: RefCell<EpochFlags> = RefCell::new(EpochFlags::default());
}

/// Runs `f` with a cleared thread-local [`EpochFlags`] covering `0..n`.
///
/// The buffer persists across calls on the same thread, so steady-state
/// invocations perform no allocation (it only grows toward the largest `n`
/// seen). Re-entrant: a nested call simply gets a fresh buffer for its own
/// scope instead of aliasing the outer one.
pub fn with_flags<T>(n: usize, f: impl FnOnce(&mut EpochFlags) -> T) -> T {
    let mut flags = POOL.with(|cell| cell.take());
    flags.grow(n);
    flags.clear();
    let out = f(&mut flags);
    POOL.with(|cell| {
        // Keep the larger buffer if a nested call left one behind.
        if cell.borrow().len() <= flags.len() {
            cell.replace(flags);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_query_clear() {
        let mut f = EpochFlags::new(4);
        assert!(!f.is_set(2));
        assert!(f.set(2));
        assert!(!f.set(2), "second set reports already-set");
        assert!(f.is_set(2));
        f.clear();
        assert!(!f.is_set(2));
        assert_eq!(f.len(), 4);
        assert!(!f.is_empty());
    }

    #[test]
    fn grow_keeps_existing_flags() {
        let mut f = EpochFlags::new(2);
        f.set(1);
        f.grow(5);
        assert!(f.is_set(1));
        assert!(!f.is_set(4));
        assert_eq!(f.len(), 5);
        f.grow(3);
        assert_eq!(f.len(), 5, "never shrinks");
    }

    #[test]
    fn many_clears_stay_correct() {
        let mut f = EpochFlags::new(1);
        for _ in 0..10_000 {
            f.clear();
            assert!(!f.is_set(0));
            f.set(0);
            assert!(f.is_set(0));
        }
    }

    #[test]
    fn epoch_wraparound_no_false_positives() {
        // Force the counter to the edge of its range: the next clear() must
        // take the sweep path (fill + restart at epoch 1) and flags set at
        // epoch u32::MAX must NOT read as set afterwards — a stale stamp of
        // u32::MAX colliding with a post-wrap epoch would be a false
        // positive that silently corrupts coverage counts.
        let mut f = EpochFlags {
            stamp: vec![0; 8],
            epoch: u32::MAX - 2,
        };
        for _ in 0..2 {
            f.clear(); // reaches u32::MAX without wrapping
        }
        assert_eq!(f.epoch, u32::MAX);
        assert!(f.set(3));
        assert!(f.set(7));
        assert!(f.is_set(3) && f.is_set(7));

        f.clear(); // the wraparound sweep
        assert_eq!(f.epoch, 1);
        for i in 0..8 {
            assert!(!f.is_set(i), "false positive at {i} after wraparound");
        }
        // Flags keep working across the boundary: set/clear cycles behave
        // exactly like a fresh instance.
        assert!(f.set(3));
        assert!(!f.set(3));
        f.clear();
        assert!(!f.is_set(3));
        assert!(f.set(0));
    }

    #[test]
    fn with_flags_is_reentrant() {
        let outer = with_flags(8, |a| {
            a.set(3);
            let inner = with_flags(4, |b| {
                // The nested buffer is independent and starts cleared.
                assert!(!b.is_set(3));
                b.set(1);
                b.is_set(1)
            });
            assert!(inner);
            a.is_set(3) && !a.is_set(1)
        });
        assert!(outer);
        // The pooled buffer is cleared on reuse.
        with_flags(8, |a| assert!(!a.is_set(3)));
    }

    #[test]
    fn with_flags_keeps_largest_buffer() {
        with_flags(100, |f| assert_eq!(f.len(), 100));
        // A smaller request reuses the grown buffer.
        with_flags(10, |f| assert!(f.len() >= 100));
    }
}
