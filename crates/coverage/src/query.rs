//! Read-only influence queries over frozen coverage shards.
//!
//! Once RR sets are sampled (and possibly persisted through dim-store),
//! the coverage shards become an immutable sketch that can answer many
//! queries: the spread of an arbitrary seed set, or a fresh constrained
//! top-k selection. Everything here works on `&[CoverageShard]` via
//! [`QueryCursor`]s, so a server can share one sketch across concurrent
//! query threads with no locking.

use crate::greedy::GreedyResult;
use crate::scratch;
use crate::selector::BucketSelector;
use crate::shard::{CoverageShard, QueryCursor};

/// Elements of the sketch covered by an arbitrary seed set, summed across
/// shards. Divide by the total RR-set count θ for the coverage fraction
/// `F_R(S)`, and multiply by `n` for the spread estimate (Eq. 2).
/// Out-of-range and duplicate seed ids are ignored.
pub fn seed_set_coverage(shards: &[CoverageShard], seeds: &[u32]) -> u64 {
    SketchCursors::new(shards).seed_set_coverage(seeds)
}

/// Reusable per-shard cursors for evaluating many seed sets against one
/// frozen sketch.
///
/// [`seed_set_coverage`] allocates a fresh [`QueryCursor`] — a covered
/// bitmap the size of the shard plus scratch space — per shard *per
/// query*. For a single query that is the price of admission, but a batch
/// of queries (dim-serve's `REQ_BATCH`) pays it N times for buffers that
/// always come back all-zero. `SketchCursors` allocates once and
/// [`QueryCursor::reset`]s between evaluations, which is the allocation
/// amortization that makes batched queries cheaper than N singles.
///
/// Holds `&[CoverageShard]`, so many instances can serve one shared
/// sketch concurrently (one per worker thread or per batch).
pub struct SketchCursors<'a> {
    shards: &'a [CoverageShard],
    cursors: Vec<QueryCursor<'a>>,
    /// True when the cursors carry coverage from a previous evaluation
    /// and must be reset before the next one (skips the reset sweep on
    /// the first query).
    dirty: bool,
}

impl<'a> SketchCursors<'a> {
    /// Allocates one cursor per shard, everything uncovered.
    ///
    /// # Panics
    /// Panics if any shard's index is stale (`needs_prepare`).
    pub fn new(shards: &'a [CoverageShard]) -> Self {
        SketchCursors {
            shards,
            cursors: shards.iter().map(QueryCursor::new).collect(),
            dirty: false,
        }
    }

    /// Same contract as the free [`seed_set_coverage`], reusing this
    /// instance's buffers: out-of-range and duplicate seed ids are
    /// ignored, and the result is independent of any earlier evaluation.
    pub fn seed_set_coverage(&mut self, seeds: &[u32]) -> u64 {
        if self.dirty {
            self.cursors.iter_mut().for_each(QueryCursor::reset);
        }
        self.dirty = !seeds.is_empty();
        let mut total = 0u64;
        for (shard, cursor) in self.shards.iter().zip(&mut self.cursors) {
            for &u in seeds {
                if (u as usize) < shard.num_sets() {
                    cursor.cover(u);
                }
            }
            total += cursor.covered_count() as u64;
        }
        total
    }

    /// The shards this evaluator reads.
    pub fn shards(&self) -> &'a [CoverageShard] {
        self.shards
    }
}

/// Greedy maximum coverage over frozen shards with constraints: every
/// node in `include` is forced into the seed set first (in the given
/// order), nodes in `exclude` are never selected, and greedy selection
/// tops the set up to `k` seeds total (if `include` already has `k` or
/// more, nothing is added). Runs the same bucketed lazy selector as
/// [`crate::greedy::bucket_greedy`], so with no constraints it selects
/// the identical seed sequence.
///
/// Duplicate and out-of-range include ids are skipped. The recorded
/// marginal of each seed — forced or selected — is its coverage gain at
/// its application point; `covered` is the final total, so `include`
/// choices that overlap each other are accounted exactly once.
pub fn constrained_greedy(
    shards: &[CoverageShard],
    k: usize,
    include: &[u32],
    exclude: &[u32],
) -> GreedyResult {
    let num_sets = shards.first().map(|s| s.num_sets()).unwrap_or(0);
    debug_assert!(shards.iter().all(|s| s.num_sets() == num_sets));
    let mut cursors: Vec<QueryCursor<'_>> = shards.iter().map(QueryCursor::new).collect();
    let mut counts = vec![0u64; num_sets];
    for shard in shards {
        for (v, c) in shard.initial_coverage() {
            counts[v as usize] += c as u64;
        }
    }
    let mut seeds: Vec<u32> = Vec::new();
    let mut marginals: Vec<u64> = Vec::new();
    for &u in include {
        if (u as usize) >= num_sets || seeds.contains(&u) {
            continue;
        }
        seeds.push(u);
        marginals.push(counts[u as usize]);
        for cursor in &mut cursors {
            cursor.apply_seed_each(u, |v| counts[v as usize] -= 1);
        }
    }
    // The exclusion flags come from the pooled epoch-stamped scratch, so
    // repeated queries (dim-serve) stop allocating them once warm.
    scratch::with_flags(num_sets, |excluded| {
        for &u in exclude {
            if (u as usize) < num_sets {
                counts[u as usize] = 0;
                excluded.set(u as usize);
            }
        }
        // Forced seeds end at zero count (all their elements are covered),
        // and excluded nodes were just zeroed, so neither enters the
        // selector.
        let mut selector = BucketSelector::new(&counts);
        while seeds.len() < k {
            let Some((u, cov)) = selector.select_next() else {
                break;
            };
            seeds.push(u);
            marginals.push(cov);
            for cursor in &mut cursors {
                // Excluded nodes sit at a forced zero; their true coverage
                // may still shrink, but the selector never revisits them.
                cursor.apply_seed_each(u, |v| {
                    if !excluded.is_set(v as usize) {
                        selector.decrease(v, 1);
                    }
                });
            }
        }
    });
    GreedyResult {
        seeds,
        covered: cursors.iter().map(|c| c.covered_count() as u64).sum(),
        marginals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::bucket_greedy;

    /// Fig. 2 instance split over two shards.
    fn two_shards() -> Vec<CoverageShard> {
        vec![
            CoverageShard::from_records(5, [&[0u32][..], &[1, 2], &[0, 2]]),
            CoverageShard::from_records(5, [&[1u32, 4][..], &[0], &[1, 3]]),
        ]
    }

    fn one_shard() -> CoverageShard {
        CoverageShard::from_records(
            5,
            [&[0u32][..], &[1, 2], &[0, 2], &[1, 4], &[0], &[1, 3]],
        )
    }

    #[test]
    fn seed_set_coverage_matches_mutable_replay() {
        let shards = two_shards();
        assert_eq!(seed_set_coverage(&shards, &[0]), 3);
        assert_eq!(seed_set_coverage(&shards, &[0, 1]), 6);
        assert_eq!(seed_set_coverage(&shards, &[]), 0);
        // Duplicates and out-of-range ids are ignored.
        assert_eq!(seed_set_coverage(&shards, &[0, 0, 99]), 3);
        // The shards were not mutated by any of the above.
        assert_eq!(shards[0].covered_count(), 0);
        assert_eq!(shards[1].covered_count(), 0);
    }

    #[test]
    fn unconstrained_matches_bucket_greedy() {
        for k in 0..=5 {
            let sharded = constrained_greedy(&two_shards(), k, &[], &[]);
            let mut single = one_shard();
            let central = bucket_greedy(&mut single, k);
            assert_eq!(sharded.seeds, central.seeds, "k = {k}");
            assert_eq!(sharded.marginals, central.marginals, "k = {k}");
            assert_eq!(sharded.covered, central.covered, "k = {k}");
        }
    }

    #[test]
    fn include_forces_membership_and_counts_marginals() {
        let shards = two_shards();
        // Force v4 (coverage 1) despite better candidates.
        let r = constrained_greedy(&shards, 2, &[4], &[]);
        assert_eq!(r.seeds[0], 4);
        assert_eq!(r.marginals[0], 1);
        assert_eq!(r.seeds.len(), 2);
        // The total equals a replay of the final seed set.
        assert_eq!(r.covered, seed_set_coverage(&shards, &r.seeds));
        // Includes beyond k: nothing extra is selected.
        let r = constrained_greedy(&shards, 1, &[4, 3], &[]);
        assert_eq!(r.seeds, vec![4, 3]);
    }

    #[test]
    fn exclude_is_never_selected() {
        let shards = two_shards();
        let unconstrained = constrained_greedy(&shards, 2, &[], &[]);
        let banned = unconstrained.seeds[0];
        let r = constrained_greedy(&shards, 2, &[], &[banned]);
        assert!(!r.seeds.contains(&banned));
        assert_eq!(r.seeds.len(), 2);
        // Banning everything useful stops selection early instead of
        // padding with zero-gain seeds.
        let r = constrained_greedy(&shards, 5, &[], &[0, 1, 2, 3, 4]);
        assert!(r.seeds.is_empty());
        assert_eq!(r.covered, 0);
    }

    #[test]
    fn include_duplicates_and_out_of_range_skipped() {
        let shards = two_shards();
        let r = constrained_greedy(&shards, 3, &[1, 1, 99, 0], &[]);
        assert_eq!(&r.seeds[..2], &[1, 0]);
        assert_eq!(r.covered, 6);
        // Everything is covered after {v1, v2}: no third pick exists.
        assert_eq!(r.seeds.len(), 2);
    }

    #[test]
    fn empty_shard_list() {
        let r = constrained_greedy(&[], 3, &[], &[]);
        assert!(r.seeds.is_empty());
        assert_eq!(seed_set_coverage(&[], &[1, 2]), 0);
        assert_eq!(SketchCursors::new(&[]).seed_set_coverage(&[1, 2]), 0);
    }

    #[test]
    fn sketch_cursors_reuse_is_invisible() {
        let shards = two_shards();
        let mut cursors = SketchCursors::new(&shards);
        // Every evaluation equals a fresh single-query computation, in
        // whatever order — including empty sets and repeats — so buffer
        // reuse never leaks coverage between queries.
        let queries: &[&[u32]] = &[&[0], &[], &[0, 1], &[4], &[0], &[0, 0, 99], &[]];
        for &seeds in queries {
            assert_eq!(
                cursors.seed_set_coverage(seeds),
                seed_set_coverage(&shards, seeds),
                "{seeds:?}"
            );
        }
        assert_eq!(cursors.shards().len(), 2);
    }
}
