//! Property-based tests for maximum coverage.

use dim_cluster::{ExecMode, NetworkModel, SimCluster};
use dim_coverage::greedi::greedi;
use dim_coverage::greedy::{bucket_greedy, celf_greedy, naive_greedy};
use dim_coverage::{newgreedi, CoverageProblem};
use proptest::prelude::*;

/// Random instances: up to 12 sets, up to 40 elements, each element covered
/// by 0–5 sets.
fn instance_strategy() -> impl Strategy<Value = CoverageProblem> {
    (2usize..=12, 1usize..=40)
        .prop_flat_map(|(num_sets, num_elements)| {
            prop::collection::vec(
                prop::collection::vec(0u32..num_sets as u32, 0..=5),
                num_elements,
            )
            .prop_map(move |mut records| {
                for r in &mut records {
                    r.sort_unstable();
                    r.dedup();
                }
                CoverageProblem::from_element_records(
                    num_sets,
                    records.iter().map(|r| r.as_slice()),
                )
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The paper's Lemma 2 mechanism: NewGreeDi returns the exact
    /// centralized-greedy solution for every machine count.
    #[test]
    fn newgreedi_equals_centralized(problem in instance_strategy(), k in 1usize..=6,
                                    l in 1usize..=5) {
        let mut shard = problem.single_shard();
        let central = bucket_greedy(&mut shard, k);
        let mut cluster = SimCluster::new(
            problem.shard_elements(l),
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        );
        let distributed = newgreedi(&mut cluster, k).unwrap();
        prop_assert_eq!(&distributed.seeds, &central.seeds);
        prop_assert_eq!(&distributed.marginals, &central.marginals);
        prop_assert_eq!(distributed.covered, central.covered);
    }

    /// Greedy achieves at least (1 − 1/e) of the brute-force optimum
    /// (Feige's bound; Lemma 2).
    #[test]
    fn greedy_within_1_minus_1_over_e(problem in instance_strategy(), k in 1usize..=4) {
        let (_, opt) = problem.brute_force_opt(k);
        let mut shard = problem.single_shard();
        let r = bucket_greedy(&mut shard, k);
        let bound = (1.0 - (-1.0f64).exp()) * opt as f64;
        prop_assert!(
            r.covered as f64 >= bound - 1e-9,
            "greedy {} < (1-1/e)·OPT = {bound}", r.covered
        );
    }

    /// All three centralized greedies respect the greedy invariant: every
    /// selection maximizes the marginal at its point in the sequence.
    #[test]
    fn greedy_invariant_all_variants(problem in instance_strategy(), k in 1usize..=5) {
        for algo in [bucket_greedy, celf_greedy, naive_greedy] {
            let mut shard = problem.single_shard();
            let r = algo(&mut shard, k);
            let mut replay = problem.single_shard();
            replay.prepare();
            for (&u, &m) in r.seeds.iter().zip(&r.marginals) {
                let max = (0..problem.num_sets() as u32)
                    .map(|v| replay.marginal(v) as u64)
                    .max()
                    .unwrap_or(0);
                prop_assert_eq!(replay.marginal(u) as u64, m);
                prop_assert_eq!(m, max);
                replay.apply_seed(u);
            }
            // Reported coverage matches a from-scratch evaluation.
            prop_assert_eq!(r.covered, problem.coverage_of(&r.seeds));
        }
    }

    /// Marginal sequences are non-increasing (submodularity surfaced).
    #[test]
    fn marginals_non_increasing(problem in instance_strategy(), k in 1usize..=6) {
        let mut shard = problem.single_shard();
        let r = bucket_greedy(&mut shard, k);
        prop_assert!(r.marginals.windows(2).all(|w| w[0] >= w[1]));
    }

    /// GreeDi reports coverage consistent with global evaluation and never
    /// exceeds the centralized greedy's guarantee territory arbitrarily:
    /// its coverage is at most OPT and at least a 1/min(ℓ,k)-ish fraction —
    /// we check the hard invariants only (≤ OPT, consistency).
    #[test]
    fn greedi_consistent(problem in instance_strategy(), k in 1usize..=4, l in 1usize..=4) {
        let mut cluster = SimCluster::new(
            problem.shard_sets(l, None),
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        );
        let r = greedi(&mut cluster, k, k);
        prop_assert_eq!(r.covered, problem.coverage_of(&r.seeds));
        let (_, opt) = problem.brute_force_opt(k.min(problem.num_sets()));
        prop_assert!(r.covered <= opt);
        prop_assert!(r.seeds.len() <= k);
    }

    /// Element sharding is a partition: per-shard element counts sum to the
    /// instance's, and NewGreeDi's covered count never exceeds the element
    /// count.
    #[test]
    fn sharding_partition(problem in instance_strategy(), l in 1usize..=6) {
        let shards = problem.shard_elements(l);
        let total: usize = shards.iter().map(|s| s.num_elements()).sum();
        prop_assert_eq!(total, problem.num_elements());
        let mut cluster = SimCluster::new(
            shards, NetworkModel::zero(), ExecMode::Sequential);
        let r = newgreedi(&mut cluster, 3).unwrap();
        prop_assert!(r.covered as usize <= problem.num_elements());
    }
}
