//! Sequential IMM (Tang, Shi, Xiao, SIGMOD'15) with Chen's δ′ fix.
//!
//! This is the single-machine baseline that every speedup figure in the
//! paper compares against. The implementation deliberately mirrors
//! [`mod@crate::diimm`] step for step — same parameter math, same RNG stream as
//! DiIMM's machine 0, same bucket-greedy selector — so that
//! `imm(cfg) == diimm(cfg, ℓ=1)` seed-for-seed (verified by an integration
//! test), exactly as the paper treats "IMM" and "DiIMM with one machine" as
//! the same algorithm.

use std::time::Instant;

use rand::SeedableRng;
use rand_pcg::Pcg64;

use dim_cluster::{rr_set_seed, stream_seed, ClusterMetrics, PhaseTimeline};
use dim_coverage::greedy::bucket_greedy;
use dim_coverage::CoverageShard;
use dim_diffusion::rr::RrSampler;
use dim_diffusion::visit::VisitTracker;
use dim_graph::Graph;

use crate::config::{ImConfig, ImResult, Timings};
use crate::params::ImParams;

/// Runs sequential IMM.
pub fn imm(graph: &Graph, config: &ImConfig) -> ImResult {
    let n = graph.num_nodes();
    let params = ImParams::derive(n, config.k, config.epsilon, config.delta);
    let sampler = config.sampler.make(graph);
    // Machine-0 per-set streams: keeps imm() bit-identical to diimm() with
    // ℓ = 1 (each RR set draws from its own seeded RNG, so a set's bytes
    // depend only on its index, never on how sets were batched).
    let machine_seed = stream_seed(config.seed, 0);
    let mut sets = 0u64;
    let mut shard = CoverageShard::new(n);
    let mut buf = Vec::new();
    let mut visited = VisitTracker::new(n);
    let mut edges_examined = 0u64;
    let mut timings = Timings::default();

    let mut generate = |shard: &mut CoverageShard,
                        count: usize,
                        timings: &mut Timings,
                        edges: &mut u64| {
        let start = Instant::now();
        for _ in 0..count {
            let mut rng = Pcg64::seed_from_u64(rr_set_seed(machine_seed, sets));
            *edges += sampler.sample(&mut rng, &mut buf, &mut visited);
            shard.push_element(&buf);
            sets += 1;
        }
        timings.sampling += start.elapsed();
    };

    let mut theta_cur = 0usize;
    let mut lower_bound = 1.0f64;
    let mut rounds = 0u32;
    let mut last = None;
    for t in 1..=params.max_rounds() {
        rounds = t;
        let x = n as f64 / 2f64.powi(t as i32);
        let theta_t = params.theta_at(t);
        if theta_t > theta_cur {
            generate(&mut shard, theta_t - theta_cur, &mut timings, &mut edges_examined);
            theta_cur = theta_t;
        }
        let start = Instant::now();
        let r = bucket_greedy(&mut shard, config.k);
        timings.selection += start.elapsed();
        let est = n as f64 * r.covered as f64 / theta_cur as f64;
        last = Some(r);
        if est >= (1.0 + params.epsilon_prime) * x {
            lower_bound = est / (1.0 + params.epsilon_prime);
            break;
        }
    }

    let theta = params.theta_final(lower_bound);
    let final_result = if theta > theta_cur || last.is_none() {
        generate(&mut shard, theta - theta_cur, &mut timings, &mut edges_examined);
        theta_cur = theta_cur.max(theta);
        let start = Instant::now();
        let r = bucket_greedy(&mut shard, config.k);
        timings.selection += start.elapsed();
        r
    } else if let Some(last) = last {
        last
    } else {
        unreachable!("guarded by last.is_none() above")
    };

    let coverage = final_result.covered;
    ImResult {
        seeds: final_result.seeds,
        marginals: final_result.marginals,
        coverage,
        num_rr_sets: theta_cur,
        total_rr_size: shard.total_size(),
        edges_examined,
        est_spread: n as f64 * coverage as f64 / theta_cur as f64,
        lower_bound,
        rounds,
        timings,
        metrics: ClusterMetrics::default(),
        timeline: PhaseTimeline::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_cluster::{ExecMode, NetworkModel};
    use dim_diffusion::exact::{exact_opt, exact_spread};
    use dim_diffusion::DiffusionModel;
    use dim_graph::generators::{barabasi_albert, erdos_renyi};
    use dim_graph::{GraphBuilder, WeightModel};

    use crate::config::SamplerKind;
    use crate::diimm::diimm;

    fn config(k: usize, epsilon: f64, seed: u64) -> ImConfig {
        ImConfig {
            k,
            epsilon,
            delta: 0.1,
            seed,
            sampler: SamplerKind::Standard(DiffusionModel::IndependentCascade),
        }
    }

    #[test]
    fn equals_diimm_with_one_machine() {
        let g = barabasi_albert(250, 3, WeightModel::WeightedCascade, 6);
        let cfg = config(5, 0.5, 17);
        let a = imm(&g, &cfg);
        let b = diimm(&g, &cfg, 1, NetworkModel::zero(), ExecMode::Sequential).unwrap();
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.num_rr_sets, b.num_rr_sets);
        assert_eq!(a.total_rr_size, b.total_rr_size);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.edges_examined, b.edges_examined);
        assert!((a.lower_bound - b.lower_bound).abs() < 1e-9);
    }

    /// End-to-end guarantee on a brute-forceable graph: the returned seed
    /// set's true spread is within (1 − 1/e − ε)·OPT.
    #[test]
    fn approximation_guarantee_ic() {
        let mut b = GraphBuilder::new(8);
        // Two stars of unequal value plus a chain.
        for (u, v, p) in [
            (0u32, 1u32, 0.8f32),
            (0, 2, 0.8),
            (0, 3, 0.6),
            (4, 5, 0.7),
            (4, 6, 0.4),
            (6, 7, 0.5),
        ] {
            b.add_weighted_edge(u, v, p);
        }
        let g = b.build(WeightModel::WeightedCascade);
        let cfg = config(2, 0.3, 23);
        let r = imm(&g, &cfg);
        let model = DiffusionModel::IndependentCascade;
        let achieved = exact_spread(&g, model, &r.seeds);
        let (_, opt) = exact_opt(&g, model, 2);
        let bound = (1.0 - (-1.0f64).exp() - cfg.epsilon) * opt;
        assert!(
            achieved >= bound,
            "σ(S) = {achieved} < (1 − 1/e − ε)·OPT = {bound}"
        );
    }

    #[test]
    fn approximation_guarantee_lt() {
        let mut b = GraphBuilder::new(7);
        for (u, v) in [(0u32, 1u32), (0, 2), (1, 3), (2, 3), (4, 5), (5, 6)] {
            b.add_edge(u, v);
        }
        let g = b.build(WeightModel::WeightedCascade);
        let mut cfg = config(2, 0.3, 31);
        cfg.sampler = SamplerKind::Standard(DiffusionModel::LinearThreshold);
        let r = imm(&g, &cfg);
        let model = DiffusionModel::LinearThreshold;
        let achieved = exact_spread(&g, model, &r.seeds);
        let (_, opt) = exact_opt(&g, model, 2);
        let bound = (1.0 - (-1.0f64).exp() - cfg.epsilon) * opt;
        assert!(
            achieved >= bound,
            "σ(S) = {achieved} < (1 − 1/e − ε)·OPT = {bound}"
        );
    }

    #[test]
    fn est_spread_close_to_true_spread() {
        let g = erdos_renyi(400, 2400, WeightModel::WeightedCascade, 12);
        let cfg = config(8, 0.3, 3);
        let r = imm(&g, &cfg);
        let mc = dim_diffusion::forward::estimate_spread(
            &g,
            DiffusionModel::IndependentCascade,
            &r.seeds,
            20_000,
            99,
        );
        let rel = (r.est_spread - mc).abs() / mc;
        assert!(rel < cfg.epsilon, "RIS {} vs MC {mc}", r.est_spread);
    }

    #[test]
    fn tighter_epsilon_needs_more_samples() {
        let g = barabasi_albert(300, 3, WeightModel::WeightedCascade, 8);
        let loose = imm(&g, &config(5, 0.5, 4));
        let tight = imm(&g, &config(5, 0.2, 4));
        assert!(
            tight.num_rr_sets > 2 * loose.num_rr_sets,
            "tight {} vs loose {}",
            tight.num_rr_sets,
            loose.num_rr_sets
        );
    }

    #[test]
    fn subsim_matches_standard_quality() {
        let g = barabasi_albert(300, 4, WeightModel::WeightedCascade, 10);
        let std_r = imm(&g, &config(5, 0.4, 21));
        let mut cfg = config(5, 0.4, 21);
        cfg.sampler = SamplerKind::Subsim;
        let sub_r = imm(&g, &cfg);
        let rel = (std_r.est_spread - sub_r.est_spread).abs() / std_r.est_spread;
        assert!(rel < 0.2, "std {} vs subsim {}", std_r.est_spread, sub_r.est_spread);
        // SUBSIM examines fewer edges for the same sample counts on
        // WC-weighted graphs (that is its entire point).
        let per_set_std = std_r.edges_examined as f64 / std_r.num_rr_sets as f64;
        let per_set_sub = sub_r.edges_examined as f64 / sub_r.num_rr_sets as f64;
        assert!(
            per_set_sub < per_set_std,
            "subsim {per_set_sub} ≥ standard {per_set_std}"
        );
    }
}
