//! SSA — Stop-and-Stare (Nguyen, Thai, Dinh; SIGMOD'16) — sequential and
//! distributed.
//!
//! The last of the four `(1 − 1/e − ε)` frameworks the paper names
//! (IMM, SSA, OPIM-C, SUBSIM). SSA alternates two moves:
//!
//! * **Stop**: double the selection collection `R₁`, run greedy, get `S_t`
//!   and its inflated coverage estimate `f₁ = Λ₁(S_t)/θ`.
//! * **Stare**: estimate the same seed set on an *independent* collection
//!   `R₂` of equal size, `f₂ = Λ₂(S_t)/θ`. Greedy overfits its own samples,
//!   so `f₁ ≥ f₂` in expectation; once the two agree within `1 + ε₁` *and*
//!   the validation coverage clears a concentration floor
//!   `Λ_min = (2 + ⅔ε)·ln(i_max/δ)/ε²`, the estimate is trustworthy and
//!   the algorithm stops.
//!
//! This implementation follows the simplified exposition above (the
//! original's ε₁/ε₂/ε₃ split is folded into `ε₁ = ε/2` and the floor);
//! the end-to-end guarantee is exercised empirically against brute-force
//! optima, exactly like the other frameworks in this crate.
//!
//! The distributed variant (D-SSA here ≠ the original authors' "DSSA",
//! which is their dynamic algorithm) runs both collections through
//! distributed RIS and the selection through NewGreeDi, mirroring
//! [`crate::opim`].

use rand::SeedableRng;
use rand_pcg::Pcg64;

use dim_cluster::ops::{expect_counts, expect_ok};
use dim_cluster::{
    phase, stream_seed, ClusterBackend, ClusterMetrics, ExecMode, NetworkModel, OpCluster,
    OpExecutor, PhaseTimeline, SimCluster, WireError, WorkerOp, WorkerReply, WorkerStats,
};
use dim_coverage::greedy::bucket_greedy;
use dim_coverage::newgreedi::newgreedi_incremental;
use dim_coverage::{execute_coverage_op, CoverageShard};
use dim_diffusion::rr::{AnySampler, RrSampler};
use dim_diffusion::visit::VisitTracker;
use dim_graph::Graph;

use crate::config::{ImConfig, ImResult, Timings};

/// Coverage of `seeds` over a shard's elements (validation side).
fn shard_coverage(shard: &CoverageShard, seeds: &[u32], marked: &mut VisitTracker) -> u64 {
    marked.clear();
    for &s in seeds {
        marked.mark(s);
    }
    shard
        .elements()
        .iter()
        .filter(|rr| rr.iter().any(|&v| marked.is_marked(v)))
        .count() as u64
}

struct SsaSchedule {
    theta_0: usize,
    i_max: u32,
    lambda_min: f64,
    eps_1: f64,
}

fn schedule(n: usize, k: usize, epsilon: f64, delta: f64) -> SsaSchedule {
    // Worst-case ceiling mirrors IMM's budget with OPT ≥ k; the stare rule
    // almost always stops far earlier.
    let t_max = {
        let nf = n as f64;
        let one_minus_inv_e = 1.0 - (-1.0f64).exp();
        let ln2 = std::f64::consts::LN_2;
        let alpha = ((2.0 / delta).ln() + ln2).sqrt();
        let beta = (one_minus_inv_e
            * (crate::params::log_choose(n, k) + (2.0 / delta).ln() + ln2))
        .sqrt();
        (2.0 * nf * (one_minus_inv_e * alpha + beta).powi(2)
            / (epsilon * epsilon * k as f64))
            .ceil() as usize
    };
    let theta_0 = ((t_max as f64 * epsilon * epsilon * k as f64 / n as f64).ceil() as usize)
        .max(32);
    let i_max = ((t_max as f64 / theta_0 as f64).log2().ceil() as u32).max(1);
    let lambda_min =
        (2.0 + 2.0 * epsilon / 3.0) * (i_max as f64 / delta).ln() / (epsilon * epsilon);
    SsaSchedule {
        theta_0,
        i_max,
        lambda_min,
        eps_1: epsilon / 2.0,
    }
}

/// Sequential SSA.
pub fn ssa(graph: &Graph, config: &ImConfig) -> ImResult {
    let n = graph.num_nodes();
    let sched = schedule(n, config.k, config.epsilon, config.delta);
    let sampler = config.sampler.make(graph);
    let mut rng = Pcg64::seed_from_u64(stream_seed(config.seed, 0));
    let mut r1 = CoverageShard::new(n);
    let mut r2 = CoverageShard::new(n);
    let mut buf = Vec::new();
    let mut visited = VisitTracker::new(n);
    let mut marked = VisitTracker::new(n);
    let mut edges = 0u64;
    let mut timings = Timings::default();

    let mut theta = sched.theta_0;
    let mut best = None;
    for round in 1..=sched.i_max {
        let start = std::time::Instant::now();
        while r1.num_elements() < theta {
            edges += sampler.sample(&mut rng, &mut buf, &mut visited);
            r1.push_element(&buf);
            edges += sampler.sample(&mut rng, &mut buf, &mut visited);
            r2.push_element(&buf);
        }
        timings.sampling += start.elapsed();

        let start = std::time::Instant::now();
        let sel = bucket_greedy(&mut r1, config.k);
        r2.prepare();
        let cov2 = shard_coverage(&r2, &sel.seeds, &mut marked);
        timings.selection += start.elapsed();

        let f1 = sel.covered as f64 / r1.num_elements() as f64;
        let f2 = cov2 as f64 / r2.num_elements() as f64;
        let est = n as f64 * f2; // report the unbiased validation estimate
        let stare_ok =
            cov2 as f64 >= sched.lambda_min && f1 <= (1.0 + sched.eps_1) * f2.max(f64::MIN_POSITIVE);
        best = Some((sel, est, round));
        if stare_ok || round == sched.i_max {
            break;
        }
        theta *= 2;
    }

    let (sel, est_spread, rounds) = best.expect("at least one round");
    ImResult {
        seeds: sel.seeds,
        marginals: sel.marginals,
        coverage: sel.covered,
        num_rr_sets: r1.num_elements() + r2.num_elements(),
        total_rr_size: r1.total_size() + r2.total_size(),
        edges_examined: edges,
        est_spread,
        lower_bound: 0.0,
        rounds,
        timings,
        metrics: ClusterMetrics::default(),
        timeline: PhaseTimeline::default(),
    }
}

/// One machine's state for distributed SSA.
pub struct DssaWorker<'g> {
    sampler: AnySampler<'g>,
    rng: Pcg64,
    r1: CoverageShard,
    r2: CoverageShard,
    buf: Vec<u32>,
    visited: VisitTracker,
    marked: VisitTracker,
    edges_examined: u64,
}

impl<'g> DssaWorker<'g> {
    fn new(graph: &'g Graph, config: &ImConfig, machine_id: usize) -> Self {
        DssaWorker {
            sampler: config.sampler.make(graph),
            rng: Pcg64::seed_from_u64(stream_seed(config.seed, machine_id)),
            r1: CoverageShard::new(graph.num_nodes()),
            r2: CoverageShard::new(graph.num_nodes()),
            buf: Vec::new(),
            visited: VisitTracker::new(graph.num_nodes()),
            marked: VisitTracker::new(graph.num_nodes()),
            edges_examined: 0,
        }
    }

    fn generate_pairs(&mut self, count: usize) {
        for _ in 0..count {
            self.edges_examined +=
                self.sampler
                    .sample(&mut self.rng, &mut self.buf, &mut self.visited);
            self.r1.push_element(&self.buf);
            self.edges_examined +=
                self.sampler
                    .sample(&mut self.rng, &mut self.buf, &mut self.visited);
            self.r2.push_element(&self.buf);
        }
    }
}

/// Same op vocabulary as [`crate::opim::DopimWorker`]: paired sampling,
/// NewGreeDi phases on `R₁`, stare-step validation counts on `R₂`.
impl OpExecutor for DssaWorker<'_> {
    fn execute(&mut self, op: &WorkerOp) -> WorkerReply {
        match op {
            WorkerOp::SampleRr { count } => {
                self.generate_pairs(*count as usize);
                WorkerReply::Ok
            }
            WorkerOp::Validate { seeds } => {
                self.r2.prepare();
                WorkerReply::Count(shard_coverage(&self.r2, seeds, &mut self.marked))
            }
            WorkerOp::Stats => WorkerReply::Stats(WorkerStats {
                num_elements: (self.r1.num_elements() + self.r2.num_elements()) as u64,
                total_size: (self.r1.total_size() + self.r2.total_size()) as u64,
                edges_examined: self.edges_examined,
            }),
            other => execute_coverage_op(&mut self.r1, other)
                .unwrap_or_else(|| WorkerReply::Err("op unsupported by SSA worker".into())),
        }
    }
}

/// Distributed SSA: distributed RIS for both collections, NewGreeDi for
/// selection, per-machine coverage counts for the stare step.
pub fn dssa(
    graph: &Graph,
    config: &ImConfig,
    machines: usize,
    network: NetworkModel,
    mode: ExecMode,
) -> Result<ImResult, WireError> {
    assert!(machines >= 1);
    let n = graph.num_nodes();
    let sched = schedule(n, config.k, config.epsilon, config.delta);
    let workers: Vec<DssaWorker> = (0..machines)
        .map(|i| DssaWorker::new(graph, config, i))
        .collect();
    let mut cluster = SimCluster::new(workers, network, mode);
    let mut base_coverage = vec![0u64; n];

    let mut theta = sched.theta_0;
    let mut generated = 0usize;
    let mut best = None;
    for round in 1..=sched.i_max {
        let counts = crate::diimm::split_counts(theta.saturating_sub(generated), machines);
        let replies = cluster.control(phase::RR_SAMPLING, |i| WorkerOp::SampleRr {
            count: counts[i] as u64,
        })?;
        expect_ok(&replies, phase::RR_SAMPLING)?;
        generated = theta;

        let sel = newgreedi_incremental(&mut cluster, config.k, &mut base_coverage)?;
        let replies = cluster.op_broadcast_gather(
            phase::SEED_BROADCAST,
            dim_cluster::wire::ids_wire_size(sel.seeds.len()),
            phase::VALIDATION,
            |_| WorkerOp::Validate {
                seeds: sel.seeds.clone(),
            },
        )?;
        let cov2: u64 = expect_counts(&replies, phase::VALIDATION)?.iter().sum();

        let theta1: usize = cluster.workers().iter().map(|w| w.r1.num_elements()).sum();
        let theta2: usize = cluster.workers().iter().map(|w| w.r2.num_elements()).sum();
        let f1 = sel.covered as f64 / theta1 as f64;
        let f2 = cov2 as f64 / theta2 as f64;
        let est = n as f64 * f2;
        let stare_ok =
            cov2 as f64 >= sched.lambda_min && f1 <= (1.0 + sched.eps_1) * f2.max(f64::MIN_POSITIVE);
        best = Some((sel, est, round));
        if stare_ok || round == sched.i_max {
            break;
        }
        theta *= 2;
    }

    let (sel, est_spread, rounds) = best.expect("at least one round");
    let timeline = cluster.timeline().clone();
    Ok(ImResult {
        seeds: sel.seeds,
        marginals: sel.marginals,
        coverage: sel.covered,
        num_rr_sets: cluster
            .workers()
            .iter()
            .map(|w| w.r1.num_elements() + w.r2.num_elements())
            .sum(),
        total_rr_size: cluster
            .workers()
            .iter()
            .map(|w| w.r1.total_size() + w.r2.total_size())
            .sum(),
        edges_examined: cluster.workers().iter().map(|w| w.edges_examined).sum(),
        est_spread,
        lower_bound: 0.0,
        rounds,
        timings: Timings::from_timeline(&timeline),
        metrics: timeline.total(),
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_diffusion::exact::{exact_opt, exact_spread};
    use dim_diffusion::DiffusionModel;
    use dim_graph::generators::barabasi_albert;
    use dim_graph::{GraphBuilder, WeightModel};

    use crate::config::SamplerKind;
    use crate::imm::imm;

    fn config(k: usize, epsilon: f64, seed: u64) -> ImConfig {
        ImConfig {
            k,
            epsilon,
            delta: 0.1,
            seed,
            sampler: SamplerKind::Standard(DiffusionModel::IndependentCascade),
        }
    }

    #[test]
    fn guarantee_on_small_graph() {
        let mut b = GraphBuilder::new(8);
        for (u, v, p) in [
            (0u32, 1u32, 0.8f32),
            (0, 2, 0.8),
            (0, 3, 0.6),
            (4, 5, 0.7),
            (4, 6, 0.4),
            (6, 7, 0.5),
        ] {
            b.add_weighted_edge(u, v, p);
        }
        let g = b.build(WeightModel::WeightedCascade);
        let cfg = config(2, 0.3, 7);
        let r = ssa(&g, &cfg);
        let model = DiffusionModel::IndependentCascade;
        let achieved = exact_spread(&g, model, &r.seeds);
        let (_, opt) = exact_opt(&g, model, 2);
        let bound = (1.0 - (-1.0f64).exp() - cfg.epsilon) * opt;
        assert!(achieved >= bound, "σ(S) = {achieved} < {bound}");
    }

    #[test]
    fn stops_earlier_than_imm() {
        let g = barabasi_albert(400, 4, WeightModel::WeightedCascade, 9);
        let cfg = config(10, 0.2, 7);
        let s = ssa(&g, &cfg);
        let i = imm(&g, &cfg);
        assert!(
            s.num_rr_sets < i.num_rr_sets,
            "SSA {} ≥ IMM {}",
            s.num_rr_sets,
            i.num_rr_sets
        );
        assert_eq!(s.seeds.len(), 10);
    }

    #[test]
    fn validation_estimate_not_inflated() {
        // The stare rule reports the unbiased R₂ estimate; it must agree
        // with an independent Monte-Carlo evaluation within ε.
        let g = barabasi_albert(300, 3, WeightModel::WeightedCascade, 4);
        let cfg = config(6, 0.2, 13);
        let r = ssa(&g, &cfg);
        let mc = dim_diffusion::forward::estimate_spread(
            &g,
            DiffusionModel::IndependentCascade,
            &r.seeds,
            30_000,
            55,
        );
        let rel = (r.est_spread - mc).abs() / mc;
        assert!(rel < cfg.epsilon, "SSA est {} vs MC {mc}", r.est_spread);
    }

    #[test]
    fn distributed_matches_sequential_with_one_machine() {
        let g = barabasi_albert(250, 3, WeightModel::WeightedCascade, 2);
        let cfg = config(5, 0.3, 21);
        let a = ssa(&g, &cfg);
        let b = dssa(&g, &cfg, 1, NetworkModel::zero(), ExecMode::Sequential).unwrap();
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.num_rr_sets, b.num_rr_sets);
        assert_eq!(a.coverage, b.coverage);
    }

    #[test]
    fn distributed_quality_stable() {
        let g = barabasi_albert(400, 4, WeightModel::WeightedCascade, 6);
        let cfg = config(8, 0.25, 5);
        let spreads: Vec<f64> = [1usize, 4, 12]
            .iter()
            .map(|&l| dssa(&g, &cfg, l, NetworkModel::zero(), ExecMode::Sequential).unwrap().est_spread)
            .collect();
        let max = spreads.iter().cloned().fold(f64::MIN, f64::max);
        let min = spreads.iter().cloned().fold(f64::MAX, f64::min);
        assert!((max - min) / max < 0.2, "spreads {spreads:?}");
    }

    #[test]
    fn schedule_sane() {
        let s = schedule(10_000, 50, 0.1, 1e-4);
        assert!(s.theta_0 >= 32);
        assert!(s.i_max >= 1);
        assert!(s.lambda_min > 0.0);
        assert!(s.eps_1 > 0.0 && s.eps_1 < 0.1 + 1e-12);
    }
}
