//! Straggler detection and speculative shard recovery (the chaos
//! subsystem's `dim-core` half).
//!
//! The paper's cost model assumes `ℓ` healthy machines; a real cluster
//! loses links mid-phase. [`RecoveringCluster`] wraps any [`OpCluster`]
//! and turns a *single-machine* link loss from fail-stop into a degraded
//! completion:
//!
//! * every op round goes through the partial-failure primitive
//!   ([`OpCluster::exec_ops_each`]), so one dead link never discards the
//!   survivors' replies;
//! * the lost machine's worker is **speculatively re-executed** on the
//!   master: its `DiimmWorker` is rebuilt from the configured
//!   [`RecoverySource`] and the full op log is replayed against it.
//!   Because RR set `j` of machine `i` is always drawn from the dedicated
//!   stream `rr_set_seed(stream_seed(seed, i), j)` (see
//!   [`DiimmWorker::generate`]), the replayed shard is *byte-identical*
//!   to the one the dead machine held — so seeds and marginals match a
//!   fault-free run exactly, which `tests/backend_equivalence.rs` asserts;
//! * the run keeps going only while a quorum survives
//!   ([`RecoveryPolicy::min_survivors`]); past that the loss surfaces as
//!   the original typed [`WireError`] — recovery never masks a partition
//!   that could split the cluster's view.
//!
//! Straggler detection rides on the same seam: every round's observed
//! time (virtual for [`dim_cluster::SimCluster`], wall-clock for the TCP
//! backends) is checked against [`RecoveryPolicy::straggler_deadline`]
//! and logged as a [`StragglerEvent`] — the run is *not* aborted, the
//! events surface in the typed [`DegradedOutcome`] so harnesses can see
//! which phases blew their deadline.

use std::path::PathBuf;
use std::time::Duration;

use dim_cluster::{
    ClusterBackend, ClusterMetrics, NetworkModel, OpCluster, OpExecutor, PhaseTimeline, WireError,
    WireErrorKind, WorkerOp, WorkerReply,
};
use dim_coverage::CoverageShard;
use dim_graph::Graph;

use crate::config::{ImConfig, ImResult};
use crate::diimm::{diimm_on, DiimmWorker};
use crate::snapshot::load_rr_snapshot;

/// Where a lost machine's worker state is rebuilt from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoverySource {
    /// The machines started empty (a fresh DiIMM run): rebuild = a fresh
    /// [`DiimmWorker`] plus a replay of every logged op. Per-set RNG
    /// streams make the replayed shard byte-identical to the lost one.
    Resample,
    /// The machines started from the persisted `dim-store` generation in
    /// this directory: rebuild = the lost machine's snapshot shard
    /// restored via [`DiimmWorker::restore`], then the same full replay.
    /// Much cheaper than [`RecoverySource::Resample`] when the snapshot
    /// carries most of θ (see EXPERIMENTS.md §fault_recover).
    Store(PathBuf),
}

/// When recovery may proceed and when a round counts as straggling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Minimum machines that must still answer for speculative recovery
    /// to run; `0` means a strict majority of the original `ℓ`. Below
    /// the quorum the loss is surfaced as the original link error.
    pub min_survivors: usize,
    /// An op round observed to take longer than this is logged as a
    /// [`StragglerEvent`]. `Duration::MAX` disables detection.
    pub straggler_deadline: Duration,
    /// Where rebuilt workers start from.
    pub source: RecoverySource,
}

impl RecoveryPolicy {
    /// Majority quorum, no straggler deadline, resample-from-scratch.
    pub fn resample() -> Self {
        RecoveryPolicy {
            min_survivors: 0,
            straggler_deadline: Duration::MAX,
            source: RecoverySource::Resample,
        }
    }

    /// Majority quorum, no straggler deadline, rebuild from the
    /// generation directory `dir`.
    pub fn from_store(dir: impl Into<PathBuf>) -> Self {
        RecoveryPolicy {
            min_survivors: 0,
            straggler_deadline: Duration::MAX,
            source: RecoverySource::Store(dir.into()),
        }
    }

    fn quorum(&self, machines: usize) -> usize {
        if self.min_survivors == 0 {
            machines / 2 + 1
        } else {
            self.min_survivors
        }
    }
}

/// One op round that exceeded the straggler deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StragglerEvent {
    /// Phase label of the slow round.
    pub phase: &'static str,
    /// Observed round time (virtual on sim, wall-clock on TCP backends).
    pub observed: Duration,
    /// The deadline it exceeded.
    pub deadline: Duration,
}

/// What degraded about a recovered run — absent entirely when the run
/// was fault-free.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegradedOutcome {
    /// Machines whose links died and whose shards were rebuilt, in
    /// adoption order.
    pub lost: Vec<usize>,
    /// Rounds that exceeded the straggler deadline.
    pub stragglers: Vec<StragglerEvent>,
    /// RR sets resident in rebuilt shards right after adoption (the
    /// speculative re-execution volume).
    pub rebuilt_sets: u64,
}

/// A run result plus its typed degradation record.
#[derive(Clone, Debug)]
pub struct RecoveredRun {
    /// The algorithm outcome — byte-identical to a fault-free run when
    /// every loss was recoverable.
    pub result: ImResult,
    /// `None` for a clean run; otherwise what was lost and rebuilt.
    pub degraded: Option<DegradedOutcome>,
}

/// An [`OpCluster`] adapter that survives single-machine link loss by
/// speculative shard re-execution (see the module docs).
///
/// The wrapper logs every op it issues, so it must own the cluster from
/// the first post-setup op round onward: ops executed before wrapping
/// must be covered by the [`RecoverySource`] instead (fresh workers for
/// [`RecoverySource::Resample`], a persisted generation for
/// [`RecoverySource::Store`]). Recovery applies to the op seam only —
/// closure phases ([`ClusterBackend::par_step`]) delegate straight to
/// the inner backend.
pub struct RecoveringCluster<'g, C: OpCluster> {
    inner: C,
    graph: &'g Graph,
    config: ImConfig,
    policy: RecoveryPolicy,
    /// Every op round issued through this wrapper: `log[r][i]` is the op
    /// machine `i` ran in round `r`. Replaying a machine's column over a
    /// source-fresh worker reproduces its resident state exactly.
    log: Vec<Vec<WorkerOp>>,
    /// Rebuilt workers serving lost machines, in machine order.
    adopted: Vec<Option<DiimmWorker<'g>>>,
    lost: Vec<usize>,
    stragglers: Vec<StragglerEvent>,
    rebuilt_sets: u64,
    last_elapsed: Duration,
}

impl<'g, C: OpCluster> RecoveringCluster<'g, C> {
    /// Wraps `inner`, whose machines must currently hold the state the
    /// policy's [`RecoverySource`] describes.
    pub fn new(inner: C, graph: &'g Graph, config: &ImConfig, policy: RecoveryPolicy) -> Self {
        let machines = inner.num_machines();
        let last_elapsed = inner.timeline().total().elapsed();
        RecoveringCluster {
            inner,
            graph,
            config: *config,
            policy,
            log: Vec::new(),
            adopted: (0..machines).map(|_| None).collect(),
            lost: Vec::new(),
            stragglers: Vec::new(),
            rebuilt_sets: 0,
            last_elapsed,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwraps, discarding recovery state.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Machines lost and adopted so far, in adoption order.
    pub fn lost(&self) -> &[usize] {
        &self.lost
    }

    /// Straggler events observed so far.
    pub fn stragglers(&self) -> &[StragglerEvent] {
        &self.stragglers
    }

    /// The typed degradation record, `None` when nothing degraded.
    pub fn degraded_outcome(&self) -> Option<DegradedOutcome> {
        if self.lost.is_empty() && self.stragglers.is_empty() {
            return None;
        }
        Some(DegradedOutcome {
            lost: self.lost.clone(),
            stragglers: self.stragglers.clone(),
            rebuilt_sets: self.rebuilt_sets,
        })
    }

    /// Rebuilds machine `i`'s worker from the recovery source and replays
    /// every logged round *before* the current one (the caller then
    /// executes the current op to produce the round's reply).
    fn rebuild(&mut self, phase: &'static str, i: usize) -> Result<DiimmWorker<'g>, WireError> {
        let mut worker = match &self.policy.source {
            RecoverySource::Resample => DiimmWorker::new(self.graph, &self.config, i),
            RecoverySource::Store(dir) => {
                let snapshot = load_rr_snapshot(self.graph, &self.config, dir)
                    .map_err(|_| WireError::link(phase, i))?;
                let num_sets = snapshot.num_sets as usize;
                let shard = snapshot
                    .shards
                    .into_iter()
                    .find(|s| s.header.shard_id as usize == i)
                    .ok_or_else(|| WireError::link(phase, i))?;
                let edges = shard.header.edges_examined;
                let restored = CoverageShard::from_pooled(num_sets, shard.elements, shard.index);
                DiimmWorker::restore(self.graph, None, &self.config, i, restored, edges)
            }
        };
        for round in &self.log[..self.log.len() - 1] {
            worker.execute(&round[i]);
        }
        Ok(worker)
    }

    /// One op round with recovery: issue to the inner backend, adopt any
    /// newly lost machine (quorum permitting), serve adopted machines'
    /// ops locally, and check the straggler deadline.
    fn exec_round(
        &mut self,
        down_label: Option<&'static str>,
        up_label: &'static str,
        ops: Vec<WorkerOp>,
    ) -> Result<Vec<WorkerReply>, WireError> {
        self.log.push(ops);
        let ops = self.log.last().expect("just pushed");
        let results = self
            .inner
            .exec_ops_each(down_label, up_label, |i| ops[i].clone());
        let quorum = self.policy.quorum(self.inner.num_machines());
        let mut out = Vec::with_capacity(results.len());
        for (i, result) in results.into_iter().enumerate() {
            match result {
                Ok(reply) => out.push(reply),
                Err(e) if e.kind == WireErrorKind::Link => {
                    if self.adopted[i].is_none() {
                        let survivors = self.inner.num_machines() - self.lost.len() - 1;
                        if survivors < quorum {
                            return Err(e);
                        }
                        let worker = self.rebuild(up_label, i)?;
                        self.rebuilt_sets += worker.shard.num_elements() as u64;
                        self.adopted[i] = Some(worker);
                        self.lost.push(i);
                    }
                    let op = self.log.last().expect("just pushed")[i].clone();
                    let worker = self.adopted[i].as_mut().expect("adopted above");
                    match worker.execute(&op) {
                        WorkerReply::Err(_) => {
                            return Err(WireError::malformed(up_label, i));
                        }
                        reply => out.push(reply),
                    }
                }
                Err(e) => return Err(e),
            }
        }
        if self.policy.straggler_deadline < Duration::MAX {
            let elapsed = self.inner.timeline().total().elapsed();
            let observed = elapsed.saturating_sub(self.last_elapsed);
            self.last_elapsed = elapsed;
            if observed > self.policy.straggler_deadline {
                self.stragglers.push(StragglerEvent {
                    phase: up_label,
                    observed,
                    deadline: self.policy.straggler_deadline,
                });
            }
        }
        Ok(out)
    }
}

impl<'g, C: OpCluster> ClusterBackend for RecoveringCluster<'g, C> {
    type Worker = C::Worker;

    fn num_machines(&self) -> usize {
        self.inner.num_machines()
    }

    fn network(&self) -> NetworkModel {
        self.inner.network()
    }

    fn workers(&self) -> &[Self::Worker] {
        self.inner.workers()
    }

    fn timeline(&self) -> &PhaseTimeline {
        self.inner.timeline()
    }

    fn record(&mut self, label: &'static str, delta: ClusterMetrics) {
        self.inner.record(label, delta);
    }

    fn par_step<R, F>(&mut self, label: &'static str, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut Self::Worker) -> R + Sync,
    {
        self.inner.par_step(label, f)
    }

    fn master<R, F>(&mut self, label: &'static str, f: F) -> R
    where
        F: FnOnce() -> R,
    {
        self.inner.master(label, f)
    }
}

impl<'g, C: OpCluster> OpCluster for RecoveringCluster<'g, C> {
    fn exec_ops<F>(
        &mut self,
        down_label: Option<&'static str>,
        up_label: &'static str,
        op: F,
    ) -> Result<Vec<WorkerReply>, WireError>
    where
        F: Fn(usize) -> WorkerOp + Sync,
    {
        let ops: Vec<WorkerOp> = (0..self.inner.num_machines()).map(op).collect();
        self.exec_round(down_label, up_label, ops)
    }
}

/// Runs DiIMM on `cluster` under `policy`: [`crate::diimm::diimm_on`]
/// wrapped in a [`RecoveringCluster`], returning the result with its
/// typed degradation record. Every machine must already hold the state
/// the policy's [`RecoverySource`] describes (fresh workers in machine
/// order for [`RecoverySource::Resample`]).
pub fn diimm_on_recovering<C: OpCluster>(
    cluster: C,
    graph: &Graph,
    config: &ImConfig,
    incremental: bool,
    policy: RecoveryPolicy,
) -> Result<RecoveredRun, WireError> {
    let mut recovering = RecoveringCluster::new(cluster, graph, config, policy);
    let result = diimm_on(&mut recovering, graph, config, incremental)?;
    Ok(RecoveredRun {
        result,
        degraded: recovering.degraded_outcome(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    use dim_cluster::{ExecMode, FaultInjector, FaultPlan, LinkFault, SimCluster};
    use dim_diffusion::DiffusionModel;
    use dim_graph::generators::{barabasi_albert, erdos_renyi};
    use dim_graph::WeightModel;

    use crate::config::SamplerKind;
    use crate::diimm::diimm;

    fn config(k: usize, seed: u64) -> ImConfig {
        ImConfig {
            k,
            epsilon: 0.5,
            delta: 0.1,
            seed,
            sampler: SamplerKind::Standard(DiffusionModel::IndependentCascade),
        }
    }

    fn sim_with_kill<'g>(
        graph: &'g Graph,
        cfg: &ImConfig,
        machines: usize,
        victim: u32,
        round: u64,
    ) -> SimCluster<DiimmWorker<'g>> {
        let workers: Vec<DiimmWorker> = (0..machines)
            .map(|i| DiimmWorker::new(graph, cfg, i))
            .collect();
        SimCluster::new(workers, NetworkModel::zero(), ExecMode::Sequential)
            .with_faults(FaultInjector::new(FaultPlan::kill_machine(victim, round), machines))
    }

    #[test]
    fn single_kill_recovers_byte_identically() {
        let g = erdos_renyi(250, 1200, WeightModel::WeightedCascade, 4);
        let cfg = config(5, 23);
        let healthy = diimm(&g, &cfg, 4, NetworkModel::zero(), ExecMode::Sequential).unwrap();
        for (victim, round) in [(0u32, 0u64), (2, 1), (3, 4)] {
            let cluster = sim_with_kill(&g, &cfg, 4, victim, round);
            let run =
                diimm_on_recovering(cluster, &g, &cfg, true, RecoveryPolicy::resample()).unwrap();
            assert_eq!(run.result.seeds, healthy.seeds, "victim {victim} round {round}");
            assert_eq!(run.result.marginals, healthy.marginals);
            assert_eq!(run.result.num_rr_sets, healthy.num_rr_sets);
            assert_eq!(run.result.total_rr_size, healthy.total_rr_size);
            assert_eq!(run.result.edges_examined, healthy.edges_examined);
            let degraded = run.degraded.expect("a machine was lost");
            assert_eq!(degraded.lost, vec![victim as usize]);
            assert!(degraded.rebuilt_sets > 0 || round == 0);
        }
    }

    #[test]
    fn clean_run_reports_no_degradation() {
        let g = erdos_renyi(150, 700, WeightModel::WeightedCascade, 7);
        let cfg = config(3, 11);
        let workers: Vec<DiimmWorker> = (0..3).map(|i| DiimmWorker::new(&g, &cfg, i)).collect();
        let cluster = SimCluster::new(workers, NetworkModel::zero(), ExecMode::Sequential);
        let run = diimm_on_recovering(cluster, &g, &cfg, true, RecoveryPolicy::resample()).unwrap();
        assert!(run.degraded.is_none());
        let healthy = diimm(&g, &cfg, 3, NetworkModel::zero(), ExecMode::Sequential).unwrap();
        assert_eq!(run.result.seeds, healthy.seeds);
        assert_eq!(run.result.marginals, healthy.marginals);
    }

    #[test]
    fn quorum_loss_fails_stop_with_typed_error() {
        let g = erdos_renyi(150, 700, WeightModel::WeightedCascade, 9);
        let cfg = config(3, 13);
        let workers: Vec<DiimmWorker> = (0..2).map(|i| DiimmWorker::new(&g, &cfg, i)).collect();
        let mut plan = FaultPlan::kill_machine(0, 0);
        plan.link_faults.push(LinkFault {
            machine: 1,
            kill_at_round: Some(0),
            ..LinkFault::default()
        });
        let cluster = SimCluster::new(workers, NetworkModel::zero(), ExecMode::Sequential)
            .with_faults(FaultInjector::new(plan, 2));
        // ℓ = 2, majority quorum = 2: losing both machines (even one!)
        // leaves fewer survivors than the quorum — typed link error.
        let err = diimm_on_recovering(cluster, &g, &cfg, true, RecoveryPolicy::resample())
            .unwrap_err();
        assert_eq!(err.kind, WireErrorKind::Link);
    }

    #[test]
    fn min_survivors_one_recovers_two_losses() {
        let g = barabasi_albert(200, 3, WeightModel::WeightedCascade, 5);
        let cfg = config(4, 17);
        let healthy = diimm(&g, &cfg, 3, NetworkModel::zero(), ExecMode::Sequential).unwrap();
        let workers: Vec<DiimmWorker> = (0..3).map(|i| DiimmWorker::new(&g, &cfg, i)).collect();
        let mut plan = FaultPlan::kill_machine(0, 1);
        plan.link_faults.push(LinkFault {
            machine: 2,
            kill_at_round: Some(3),
            ..LinkFault::default()
        });
        let cluster = SimCluster::new(workers, NetworkModel::zero(), ExecMode::Sequential)
            .with_faults(FaultInjector::new(plan, 3));
        let policy = RecoveryPolicy {
            min_survivors: 1,
            ..RecoveryPolicy::resample()
        };
        let run = diimm_on_recovering(cluster, &g, &cfg, true, policy).unwrap();
        assert_eq!(run.result.seeds, healthy.seeds);
        assert_eq!(run.result.marginals, healthy.marginals);
        let degraded = run.degraded.expect("two machines were lost");
        assert_eq!(degraded.lost, vec![0, 2]);
    }

    #[test]
    fn store_source_rebuilds_from_generation() {
        use dim_cluster::phase;
        use dim_cluster::ops::expect_counts;

        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "dim-core-recover-store-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();

        let g = erdos_renyi(180, 900, WeightModel::WeightedCascade, 15);
        let cfg = config(3, 31);
        // Persist a sampled run, then restore it twice: a healthy control
        // cluster and a chaos cluster that loses machine 1 on round 0.
        crate::snapshot::diimm_sample(
            &g,
            &cfg,
            3,
            NetworkModel::zero(),
            ExecMode::Sequential,
            &dir,
        )
        .unwrap();
        let restore_all = || -> Vec<DiimmWorker> {
            let snapshot = load_rr_snapshot(&g, &cfg, &dir).unwrap();
            let num_sets = snapshot.num_sets as usize;
            snapshot
                .shards
                .into_iter()
                .map(|s| {
                    let id = s.header.shard_id as usize;
                    let edges = s.header.edges_examined;
                    let shard = CoverageShard::from_pooled(num_sets, s.elements, s.index);
                    DiimmWorker::restore(&g, None, &cfg, id, shard, edges)
                })
                .collect()
        };
        let mut control = SimCluster::new(
            restore_all(),
            NetworkModel::zero(),
            ExecMode::Sequential,
        );
        let chaos = SimCluster::new(restore_all(), NetworkModel::zero(), ExecMode::Sequential)
            .with_faults(FaultInjector::new(FaultPlan::kill_machine(1, 0), 3));
        let mut recovering =
            RecoveringCluster::new(chaos, &g, &cfg, RecoveryPolicy::from_store(&dir));

        // Drive identical post-restore rounds on both: top-up sampling,
        // then a covered-count gather.
        control
            .control(phase::RR_SAMPLING, |_| WorkerOp::SampleRr { count: 40 })
            .unwrap();
        recovering
            .control(phase::RR_SAMPLING, |_| WorkerOp::SampleRr { count: 40 })
            .unwrap();
        let want = expect_counts(
            &control
                .op_gather(phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount)
                .unwrap(),
            phase::COUNT_UPLOAD,
        )
        .unwrap();
        let got = expect_counts(
            &recovering
                .op_gather(phase::COUNT_UPLOAD, |_| WorkerOp::CoveredCount)
                .unwrap(),
            phase::COUNT_UPLOAD,
        )
        .unwrap();
        assert_eq!(got, want);
        assert_eq!(recovering.lost(), &[1]);
        let degraded = recovering.degraded_outcome().unwrap();
        // The rebuilt shard held the snapshot's shard-1 sets at adoption.
        assert!(degraded.rebuilt_sets > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn straggler_deadline_logs_events_without_aborting() {
        let g = erdos_renyi(150, 700, WeightModel::WeightedCascade, 19);
        let cfg = config(3, 37);
        let workers: Vec<DiimmWorker> = (0..3).map(|i| DiimmWorker::new(&g, &cfg, i)).collect();
        // Every round on machine 2's link takes +50ms of virtual time; a
        // 1ms deadline flags every op round as straggling.
        let mut plan = FaultPlan {
            chaos_seed: 99,
            ..FaultPlan::default()
        };
        plan.link_faults.push(LinkFault {
            machine: 2,
            extra_latency_us: 50_000,
            ..LinkFault::default()
        });
        let cluster = SimCluster::new(workers, NetworkModel::zero(), ExecMode::Sequential)
            .with_faults(FaultInjector::new(plan, 3));
        let policy = RecoveryPolicy {
            straggler_deadline: Duration::from_millis(1),
            ..RecoveryPolicy::resample()
        };
        let run = diimm_on_recovering(cluster, &g, &cfg, true, policy).unwrap();
        let healthy = diimm(&g, &cfg, 3, NetworkModel::zero(), ExecMode::Sequential).unwrap();
        assert_eq!(run.result.seeds, healthy.seeds, "delay never diverges results");
        let degraded = run.degraded.expect("stragglers were observed");
        assert!(degraded.lost.is_empty());
        assert!(!degraded.stragglers.is_empty());
        let ev = degraded.stragglers[0];
        assert!(ev.observed >= Duration::from_millis(50));
        assert_eq!(ev.deadline, Duration::from_millis(1));
    }
}
