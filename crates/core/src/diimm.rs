//! DiIMM — distributed IMM (Algorithm 2 of the paper).
//!
//! Both IMM phases run distributed:
//!
//! * **Sampling** — each of the `ℓ` machines generates `(θ_t − θ_{t−1})/ℓ`
//!   RR sets from its own RNG stream into its own shard (distributed RIS,
//!   §III-A). The phase's virtual time is the slowest machine's — exactly
//!   the paper's model, and concentrated around the mean by Corollary 1.
//! * **Seed selection** — NewGreeDi (Algorithm 1) over the element shards,
//!   returning exactly the centralized greedy solution (Lemma 2), hence
//!   preserving IMM's `(1 − 1/e − ε)` guarantee (Theorem 1).

use rand::SeedableRng;
use rand_pcg::Pcg64;

use dim_cluster::ops::{expect_ok, expect_stats};
use dim_cluster::{
    phase, rr_set_seed, stream_seed, ExecMode, NetworkModel, OpCluster,
    OpExecutor, SimCluster, WireError, WorkerOp, WorkerReply, WorkerStats,
};
use dim_coverage::newgreedi::{newgreedi_incremental, newgreedi_with, NewGreediResult};
use dim_coverage::{execute_coverage_op, CoverageShard};
use dim_diffusion::rr::RrSampler;
use dim_diffusion::visit::VisitTracker;
use dim_graph::{DeltaBatch, Graph};

use crate::config::{ImConfig, ImResult, SamplerKind, Timings};
use crate::params::ImParams;

/// One machine's state: its graph view, RNG discipline, and element shard.
///
/// RR set `j` of a machine is always drawn from the dedicated stream
/// `rr_set_seed(machine_seed, j)` rather than one sequential per-machine
/// stream. That makes every set's randomness a pure function of
/// `(master seed, machine, set index)` — the property edge-stream repair
/// rests on: re-sampling an invalidated set on the mutated graph
/// reproduces exactly what a from-scratch run on that graph would have
/// drawn for it, so an applied [`DeltaBatch`] is byte-identical to a full
/// re-sample (see [`DiimmWorker::apply_delta`]).
pub struct DiimmWorker<'g> {
    /// The graph the worker was installed with.
    base: &'g Graph,
    /// The mutated graph after applied edge batches (`None` until the
    /// first batch: `base` is current).
    current: Option<Graph>,
    sampler_kind: SamplerKind,
    machine_seed: u64,
    machine_id: u32,
    /// The machine's RR sets, stored directly as coverage elements
    /// (element record = the RR set's member nodes).
    pub shard: CoverageShard,
    buf: Vec<u32>,
    visited: VisitTracker,
    edges_examined: u64,
    /// RR sets generated so far — the next set's stream index.
    sets: u64,
}

impl<'g> DiimmWorker<'g> {
    /// Creates the worker for `machine_id` with its derived RNG stream.
    pub fn new(graph: &'g Graph, config: &ImConfig, machine_id: usize) -> Self {
        DiimmWorker {
            base: graph,
            current: None,
            sampler_kind: config.sampler,
            machine_seed: stream_seed(config.seed, machine_id),
            machine_id: machine_id as u32,
            shard: CoverageShard::new(graph.num_nodes()),
            buf: Vec::new(),
            visited: VisitTracker::new(graph.num_nodes()),
            edges_examined: 0,
            sets: 0,
        }
    }

    /// Restores a machine's worker from persisted state: its resident RR
    /// sets (stream position resumes after them), prior sampling stats,
    /// and — for a streamed chain — the mutated tip graph the sets are
    /// valid against (`None` when `base` is current).
    pub fn restore(
        base: &'g Graph,
        current: Option<Graph>,
        config: &ImConfig,
        machine_id: usize,
        shard: CoverageShard,
        edges_examined: u64,
    ) -> Self {
        let sets = shard.num_elements() as u64;
        DiimmWorker {
            base,
            current,
            sampler_kind: config.sampler,
            machine_seed: stream_seed(config.seed, machine_id),
            machine_id: machine_id as u32,
            shard,
            buf: Vec::new(),
            visited: VisitTracker::new(base.num_nodes()),
            edges_examined,
            sets,
        }
    }

    /// The graph RR sets are currently drawn from.
    pub fn current_graph(&self) -> &Graph {
        self.current.as_ref().unwrap_or(self.base)
    }

    /// Samples `count` RR sets into the shard (Algorithm 2, lines 6/12),
    /// each from its own per-set RNG stream.
    pub fn generate(&mut self, count: usize) {
        let graph = self.current.as_ref().unwrap_or(self.base);
        let sampler = self.sampler_kind.make(graph);
        for _ in 0..count {
            let mut rng = Pcg64::seed_from_u64(rr_set_seed(self.machine_seed, self.sets));
            self.edges_examined += sampler.sample(&mut rng, &mut self.buf, &mut self.visited);
            self.shard.push_element(&self.buf);
            self.sets += 1;
        }
    }

    /// Applies an edge batch to the resident graph and repairs the shard
    /// incrementally: exactly the RR sets whose traversal touched a
    /// mutated in-list are re-sampled (on their original per-set streams,
    /// against the mutated graph); every other set is left untouched.
    ///
    /// Soundness: every sampler draws RNG only while scanning the in-lists
    /// of visited nodes, and an edge op on `u→v` changes only `v`'s
    /// in-list — so a set that contains no touched node replays
    /// byte-identically on the mutated graph, and a set that does is
    /// regenerated exactly as a fresh run would. The repaired shard is
    /// therefore byte-identical to a full re-sample of the mutated graph.
    ///
    /// Returns the repaired records `(set index, new member nodes)` in
    /// increasing index order.
    pub fn apply_delta(&mut self, batch: &DeltaBatch) -> Result<Vec<(u32, Vec<u32>)>, String> {
        let graph = self.current.as_ref().unwrap_or(self.base);
        batch
            .validate(graph.num_nodes())
            .map_err(|e| e.to_string())?;
        let mutated = dim_graph::apply_batch(graph, batch).map_err(|e| e.to_string())?;
        if self.shard.needs_prepare() {
            self.shard.prepare();
        }
        let invalid = self.shard.elements_containing(&batch.touched_nodes());
        let sampler = self.sampler_kind.make(&mutated);
        let mut repaired = Vec::with_capacity(invalid.len());
        for &j in &invalid {
            let mut rng = Pcg64::seed_from_u64(rr_set_seed(self.machine_seed, j as u64));
            self.edges_examined += sampler.sample(&mut rng, &mut self.buf, &mut self.visited);
            repaired.push((j, self.buf.clone()));
        }
        drop(sampler);
        self.shard.replace_elements(&repaired);
        self.current = Some(mutated);
        Ok(repaired)
    }
}

/// The op vocabulary a DiIMM machine answers: RR sampling into its
/// resident shard, the coverage phases against that shard, and stats.
/// This single interpretation serves both the in-process simulator and the
/// `dim-worker` process (via `WorkerHost`), so the two backends execute
/// identical phase logic by construction.
impl OpExecutor for DiimmWorker<'_> {
    fn execute(&mut self, op: &WorkerOp) -> WorkerReply {
        match op {
            WorkerOp::SampleRr { count } => {
                self.generate(*count as usize);
                WorkerReply::Ok
            }
            WorkerOp::Stats => WorkerReply::Stats(WorkerStats {
                num_elements: self.shard.num_elements() as u64,
                total_size: self.shard.total_size() as u64,
                edges_examined: self.edges_examined,
            }),
            // Persist the resident shard as one dim-store snapshot file.
            // The master supplies the run provenance (it owns θ and the
            // config); the worker contributes only what is resident here —
            // its RR sets and sampling stats. Failures come back as typed
            // `Err` replies, never a worker panic.
            WorkerOp::PersistShard {
                dir,
                fingerprint,
                seed,
                theta,
                shard_id,
                shard_count,
                spec,
            } => {
                let header = dim_store::ShardHeader {
                    fingerprint: *fingerprint,
                    sampler: *spec,
                    seed: *seed,
                    theta: *theta,
                    shard_id: *shard_id,
                    shard_count: *shard_count,
                    num_sets: self.shard.num_sets() as u64,
                    num_elements: self.shard.num_elements() as u64,
                    edges_examined: self.edges_examined,
                };
                match dim_store::write_shard(
                    std::path::Path::new(dir),
                    &header,
                    self.shard.elements(),
                ) {
                    Ok(_) => WorkerReply::Ok,
                    Err(e) => WorkerReply::Err(format!("PersistShard: {e}")),
                }
            }
            // Apply an edge batch and repair the resident shard in place
            // (the edge-stream half of sample-once/select-many). As with
            // PersistShard, the master supplies chain provenance and the
            // worker persists only its own repairs — shard bytes never
            // cross the wire. Replies with the number of repaired sets.
            WorkerOp::ApplyDelta {
                batch,
                persist_dir,
                base_generation,
                fingerprint,
                parent_fingerprint,
                seed,
                theta,
                shard_count,
                spec,
            } => {
                let decoded = match DeltaBatch::decode(batch) {
                    Ok(b) => b,
                    Err(e) => return WorkerReply::Err(format!("ApplyDelta: {e}")),
                };
                let repaired = match self.apply_delta(&decoded) {
                    Ok(r) => r,
                    Err(e) => return WorkerReply::Err(format!("ApplyDelta: {e}")),
                };
                if let Some(dir) = persist_dir {
                    let header = dim_store::DeltaShardHeader {
                        base_generation: *base_generation,
                        parent_fingerprint: *parent_fingerprint,
                        fingerprint: *fingerprint,
                        sampler: *spec,
                        seed: *seed,
                        theta: *theta,
                        batch_seq: decoded.seq,
                        shard_id: self.machine_id,
                        shard_count: *shard_count,
                        num_sets: self.shard.num_sets() as u64,
                        num_elements: self.shard.num_elements() as u64,
                        repaired_count: repaired.len() as u64,
                    };
                    if let Err(e) = dim_store::write_delta_shard(
                        std::path::Path::new(dir),
                        &header,
                        &decoded,
                        &repaired,
                    ) {
                        return WorkerReply::Err(format!("ApplyDelta: {e}"));
                    }
                }
                WorkerReply::Count(repaired.len() as u64)
            }
            other => execute_coverage_op(&mut self.shard, other)
                .unwrap_or_else(|| WorkerReply::Err("op unsupported by DiIMM worker".into())),
        }
    }
}

/// Splits `total` new RR sets across `machines`: machine `i` gets the base
/// share plus one of the remainder (deterministic, balanced to ±1).
pub(crate) fn split_counts(total: usize, machines: usize) -> Vec<usize> {
    let base = total / machines;
    let rem = total % machines;
    (0..machines)
        .map(|i| base + usize::from(i < rem))
        .collect()
}

fn generate_up_to<B: OpCluster>(cluster: &mut B, from: usize, to: usize) -> Result<(), WireError> {
    if to <= from {
        return Ok(());
    }
    let counts = split_counts(to - from, cluster.num_machines());
    let replies = cluster.control(phase::RR_SAMPLING, |i| WorkerOp::SampleRr {
        count: counts[i] as u64,
    })?;
    expect_ok(&replies, phase::RR_SAMPLING)
}

fn select<B: OpCluster>(
    cluster: &mut B,
    n: usize,
    k: usize,
    base_coverage: &mut Option<Vec<u64>>,
) -> Result<NewGreediResult, WireError> {
    match base_coverage {
        // The paper's §III-C traffic optimization: machines report coverage
        // only over their newly generated RR sets; the master accumulates.
        Some(base) => newgreedi_incremental(cluster, k, base),
        // Ablation baseline: full coverage re-upload on every call.
        None => newgreedi_with(cluster, n, k),
    }
}

/// Runs DiIMM on `machines` simulated machines connected by `network`.
///
/// Phase structure follows Algorithm 2: a lower-bound search doubling the
/// RR-set budget until `n · F_R(S_t) ≥ (1 + ε′) · n/2^t`, then a final
/// top-up to `θ = λ*/LB` and one last NewGreeDi pass.
pub fn diimm(
    graph: &Graph,
    config: &ImConfig,
    machines: usize,
    network: NetworkModel,
    mode: ExecMode,
) -> Result<ImResult, WireError> {
    diimm_with_options(graph, config, machines, network, mode, true)
}

/// [`diimm`] with the incremental coverage-reporting optimization of
/// §III-C toggled explicitly (`incremental = false` re-uploads every
/// machine's full coverage vector on each NewGreeDi call — the ablation
/// baseline). Seed selection is identical either way.
pub fn diimm_with_options(
    graph: &Graph,
    config: &ImConfig,
    machines: usize,
    network: NetworkModel,
    mode: ExecMode,
    incremental: bool,
) -> Result<ImResult, WireError> {
    assert!(machines >= 1, "need at least one machine");
    let workers: Vec<DiimmWorker> = (0..machines)
        .map(|i| DiimmWorker::new(graph, config, i))
        .collect();
    let mut cluster = SimCluster::new(workers, network, mode);
    diimm_on(&mut cluster, graph, config, incremental)
}

/// Runs DiIMM on an already-constructed cluster — the entry point for
/// alternative [`OpCluster`]s (e.g. the TCP process backend), whose
/// construction the caller owns. Every machine must already hold a
/// DiIMM worker for this graph and `config.seed` (constructed in machine
/// order so RNG streams line up — for the process backend, via the
/// `LoadGraph`/`InitSampler` setup ops); this function only issues phase
/// ops, so it never touches worker state from the master side.
pub fn diimm_on<B: OpCluster>(
    cluster: &mut B,
    graph: &Graph,
    config: &ImConfig,
    incremental: bool,
) -> Result<ImResult, WireError> {
    let n = graph.num_nodes();
    let params = ImParams::derive(n, config.k, config.epsilon, config.delta);
    let mut base_coverage = incremental.then(|| vec![0u64; n]);

    // Lines 3–10: lower-bound search.
    let mut theta_cur = 0usize;
    let mut lower_bound = 1.0f64;
    let mut rounds = 0u32;
    let mut last: Option<NewGreediResult> = None;
    for t in 1..=params.max_rounds() {
        rounds = t;
        let x = n as f64 / 2f64.powi(t as i32);
        let theta_t = params.theta_at(t);
        generate_up_to(cluster, theta_cur, theta_t)?;
        theta_cur = theta_cur.max(theta_t);
        let r = select(cluster, n, config.k, &mut base_coverage)?;
        let est = n as f64 * r.covered as f64 / theta_cur as f64;
        last = Some(r);
        if est >= (1.0 + params.epsilon_prime) * x {
            lower_bound = est / (1.0 + params.epsilon_prime);
            break;
        }
    }

    // Lines 11–13: final sampling top-up and selection.
    let theta = params.theta_final(lower_bound);
    let final_result = if theta > theta_cur || last.is_none() {
        generate_up_to(cluster, theta_cur, theta)?;
        theta_cur = theta_cur.max(theta);
        select(cluster, n, config.k, &mut base_coverage)?
    } else if let Some(last) = last {
        // θ ≤ θ_cur: the last S_t was computed over this exact collection.
        last
    } else {
        unreachable!("guarded by last.is_none() above")
    };

    let coverage = final_result.covered;
    let est_spread = n as f64 * coverage as f64 / theta_cur as f64;
    // Worker state is resident on the machines; collect the run's shard
    // statistics through the same op seam as every other phase.
    let replies = cluster.control(phase::SETUP, |_| WorkerOp::Stats)?;
    let stats = expect_stats(&replies, phase::SETUP)?;
    let total_rr_size: usize = stats.iter().map(|s| s.total_size as usize).sum();
    let edges_examined: u64 = stats.iter().map(|s| s.edges_examined).sum();
    let timeline = cluster.timeline().clone();

    Ok(ImResult {
        seeds: final_result.seeds,
        marginals: final_result.marginals,
        coverage,
        num_rr_sets: theta_cur,
        total_rr_size,
        edges_examined,
        est_spread,
        lower_bound,
        rounds,
        timings: Timings::from_timeline(&timeline),
        metrics: timeline.total(),
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_diffusion::DiffusionModel;
    use dim_graph::generators::{barabasi_albert, erdos_renyi};
    use dim_graph::WeightModel;

    use crate::config::SamplerKind;

    fn config(k: usize, seed: u64) -> ImConfig {
        ImConfig {
            k,
            epsilon: 0.5,
            delta: 0.1,
            seed,
            sampler: SamplerKind::Standard(DiffusionModel::IndependentCascade),
        }
    }

    #[test]
    fn split_counts_balanced() {
        assert_eq!(split_counts(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(split_counts(3, 5), vec![1, 1, 1, 0, 0]);
        assert_eq!(split_counts(0, 2), vec![0, 0]);
        let c = split_counts(1_000_003, 17);
        assert_eq!(c.iter().sum::<usize>(), 1_000_003);
        assert!(c.iter().max().unwrap() - c.iter().min().unwrap() <= 1);
    }

    #[test]
    fn returns_k_seeds() {
        let g = erdos_renyi(300, 1500, WeightModel::WeightedCascade, 2);
        let r = diimm(
            &g,
            &config(5, 1),
            4,
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        )
        .unwrap();
        assert_eq!(r.seeds.len(), 5);
        assert!(r.num_rr_sets > 0);
        assert!(r.total_rr_size >= r.num_rr_sets, "each RR set has ≥ 1 node");
        assert!(r.est_spread >= 5.0);
        assert!(r.est_spread <= 300.0);
        assert!(r.lower_bound >= 1.0);
    }

    #[test]
    fn deterministic_per_seed_and_machine_count() {
        let g = barabasi_albert(200, 3, WeightModel::WeightedCascade, 3);
        let a = diimm(
            &g,
            &config(4, 9),
            4,
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        )
        .unwrap();
        let b = diimm(
            &g,
            &config(4, 9),
            4,
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        )
        .unwrap();
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.num_rr_sets, b.num_rr_sets);
        assert_eq!(a.coverage, b.coverage);
    }

    #[test]
    fn spread_stable_across_machine_counts() {
        // Different ℓ means different RNG streams, so seeds may differ —
        // but estimated spreads must agree within the approximation band.
        let g = barabasi_albert(300, 4, WeightModel::WeightedCascade, 5);
        let r1 = diimm(
            &g,
            &config(5, 11),
            1,
            NetworkModel::zero(),
            ExecMode::Sequential,
        )
        .unwrap();
        let r8 = diimm(
            &g,
            &config(5, 11),
            8,
            NetworkModel::zero(),
            ExecMode::Sequential,
        )
        .unwrap();
        let rel = (r1.est_spread - r8.est_spread).abs() / r1.est_spread;
        assert!(rel < 0.25, "ℓ=1: {}, ℓ=8: {}", r1.est_spread, r8.est_spread);
    }

    #[test]
    fn timings_and_traffic_populated() {
        let g = erdos_renyi(200, 1000, WeightModel::WeightedCascade, 7);
        let r = diimm(
            &g,
            &config(3, 2),
            4,
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        )
        .unwrap();
        assert!(r.timings.sampling > std::time::Duration::ZERO);
        assert!(r.timings.selection > std::time::Duration::ZERO);
        assert!(r.timings.communication > std::time::Duration::ZERO);
        assert!(r.metrics.bytes_to_master > 0);
        assert!(r.edges_examined > 0);
        // The stacked bars are views of the phase timeline.
        assert_eq!(r.metrics, r.timeline.total());
        assert_eq!(
            r.timings.sampling,
            r.timeline.get(phase::RR_SAMPLING).compute()
        );
        assert!(r.timeline.get(phase::COVERAGE_UPLOAD).bytes_to_master > 0);
        assert!(r.timeline.get(phase::SEED_BROADCAST).bytes_from_master > 0);
    }

    #[test]
    fn subsim_sampler_works_distributed() {
        let g = barabasi_albert(200, 3, WeightModel::WeightedCascade, 4);
        let mut cfg = config(4, 6);
        cfg.sampler = SamplerKind::Subsim;
        let r = diimm(
            &g,
            &cfg,
            4,
            NetworkModel::cluster_1gbps(),
            ExecMode::Sequential,
        )
        .unwrap();
        assert_eq!(r.seeds.len(), 4);
        assert!(r.est_spread > 4.0);
    }

    #[test]
    fn delta_repair_matches_full_resample() {
        use dim_graph::EdgeOp;
        let g = erdos_renyi(120, 600, WeightModel::WeightedCascade, 21);
        for sampler in [
            SamplerKind::Standard(DiffusionModel::IndependentCascade),
            SamplerKind::Subsim,
        ] {
            let mut cfg = config(3, 5);
            cfg.sampler = sampler;
            let mut incremental = DiimmWorker::new(&g, &cfg, 0);
            incremental.generate(400);
            let (u, v, _p) = g.edges().next().unwrap();
            let batch = DeltaBatch::new(
                0,
                vec![
                    EdgeOp::Delete { u, v },
                    EdgeOp::Insert { u: 1, v: 0, p: 0.9 },
                    EdgeOp::Reweight { u, v, p: 0.4 }, // deleted above: no-op
                ],
            );
            let repaired = incremental.apply_delta(&batch).unwrap();
            assert!(
                !repaired.is_empty() && repaired.len() < 400,
                "expected a partial repair, got {} of 400",
                repaired.len()
            );
            // The repaired shard must be byte-identical to sampling the
            // mutated graph from scratch — including sets generated AFTER
            // the batch (per-set streams keep their positions).
            let mutated = dim_graph::apply_batch(&g, &batch).unwrap();
            let mut full = DiimmWorker::new(&mutated, &cfg, 0);
            full.generate(400);
            incremental.generate(50);
            full.generate(50);
            assert_eq!(incremental.shard.num_elements(), full.shard.num_elements());
            for j in 0..incremental.shard.num_elements() {
                assert_eq!(
                    incremental.shard.elements().get(j),
                    full.shard.elements().get(j),
                    "set {j} diverged ({sampler:?})"
                );
            }
        }
    }

    #[test]
    fn delta_repair_rejects_invalid_batch() {
        use dim_graph::EdgeOp;
        let g = erdos_renyi(50, 200, WeightModel::WeightedCascade, 3);
        let mut w = DiimmWorker::new(&g, &config(2, 1), 0);
        w.generate(10);
        let oob = DeltaBatch::new(0, vec![EdgeOp::Delete { u: 0, v: 5000 }]);
        assert!(w.apply_delta(&oob).is_err());
        // The failed batch left the worker untouched and still usable.
        assert_eq!(w.shard.num_elements(), 10);
        w.generate(5);
        assert_eq!(w.shard.num_elements(), 15);
    }

    #[test]
    fn threads_mode_matches_sequential() {
        let g = erdos_renyi(150, 700, WeightModel::WeightedCascade, 8);
        let a = diimm(
            &g,
            &config(3, 13),
            3,
            NetworkModel::zero(),
            ExecMode::Sequential,
        )
        .unwrap();
        let b = diimm(
            &g,
            &config(3, 13),
            3,
            NetworkModel::zero(),
            ExecMode::Threads,
        )
        .unwrap();
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.num_rr_sets, b.num_rr_sets);
    }
}
