//! IMM sample-complexity parameters (eqs. (3)–(7) of the paper).
//!
//! DiIMM inherits IMM's analysis: generate `θ_t = λ′ · 2^t / n` RR sets per
//! lower-bound-search iteration, and `θ = λ* / LB` for the final solution,
//! where `λ′` and `λ*` are functions of `(n, k, ε, δ′)`. The paper adopts
//! Chen's fix to IMM's martingale analysis: `δ′` is the root of
//! `⌈λ*⌉ · δ′ = δ` rather than `δ` itself (eq. (7)).

/// The derived parameters of one IMM/DiIMM run.
#[derive(Clone, Copy, Debug)]
pub struct ImParams {
    /// Number of nodes `n`.
    pub n: usize,
    /// Seed-set size `k`.
    pub k: usize,
    /// Error threshold `ε`.
    pub epsilon: f64,
    /// Failure probability `δ`.
    pub delta: f64,
    /// `ε′ = √2 · ε` used during the lower-bound search.
    pub epsilon_prime: f64,
    /// The martingale-fix `δ′` — root of `⌈λ*⌉ · δ′ = δ`.
    pub delta_prime: f64,
    /// `λ′` (eq. (3)): RR-set budget scale of the lower-bound search.
    pub lambda_prime: f64,
    /// `λ*` (eq. (6)): RR-set budget scale of the final solution.
    pub lambda_star: f64,
}

impl ImParams {
    /// Derives all parameters, solving the `δ′` fixed point of eq. (7).
    ///
    /// # Panics
    /// Panics unless `n ≥ 2`, `1 ≤ k ≤ n`, `ε ∈ (0, 1)`, and `δ ∈ (0, 1)`.
    pub fn derive(n: usize, k: usize, epsilon: f64, delta: f64) -> Self {
        assert!(n >= 2, "need at least two nodes");
        assert!(k >= 1 && k <= n, "k = {k} out of [1, {n}]");
        assert!(epsilon > 0.0 && epsilon < 1.0, "ε = {epsilon} out of (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "δ = {delta} out of (0,1)");
        let epsilon_prime = std::f64::consts::SQRT_2 * epsilon;

        // Fixed point: δ′ → λ*(δ′) → δ′ = δ / ⌈λ*⌉. λ* grows only
        // logarithmically as δ′ shrinks, so iteration converges fast.
        let mut delta_prime = delta;
        let mut lambda_star = lambda_star_of(n, k, epsilon, delta_prime);
        for _ in 0..64 {
            let next = delta / lambda_star.ceil();
            if (next - delta_prime).abs() <= 1e-15 * delta_prime {
                delta_prime = next;
                break;
            }
            delta_prime = next;
            lambda_star = lambda_star_of(n, k, epsilon, delta_prime);
        }
        lambda_star = lambda_star_of(n, k, epsilon, delta_prime);

        let lambda_prime = lambda_prime_of(n, k, epsilon_prime, delta_prime);
        ImParams {
            n,
            k,
            epsilon,
            delta,
            epsilon_prime,
            delta_prime,
            lambda_prime,
            lambda_star,
        }
    }

    /// `θ_t = ⌈λ′ / x⌉` with `x = n / 2^t` — the cumulative RR-set target of
    /// lower-bound-search iteration `t ≥ 1`.
    pub fn theta_at(&self, t: u32) -> usize {
        let x = self.n as f64 / 2f64.powi(t as i32);
        (self.lambda_prime / x).ceil() as usize
    }

    /// `θ = ⌈λ* / LB⌉` — the final RR-set target given a lower bound on OPT.
    pub fn theta_final(&self, lower_bound: f64) -> usize {
        assert!(lower_bound >= 1.0, "LB must be at least 1");
        (self.lambda_star / lower_bound).ceil() as usize
    }

    /// Number of lower-bound-search iterations, `log₂(n) − 1`.
    pub fn max_rounds(&self) -> u32 {
        ((self.n as f64).log2() as u32).saturating_sub(1).max(1)
    }
}

/// `ln C(n, k)` without overflow: `Σ_{i=1..k} ln((n − k + i) / i)`.
pub fn log_choose(n: usize, k: usize) -> f64 {
    assert!(k <= n);
    let k = k.min(n - k);
    (1..=k)
        .map(|i| (((n - k + i) as f64) / i as f64).ln())
        .sum()
}

/// Eq. (3): `λ′ = (2 + 2ε′/3)(ln C(n,k) + ln(2/δ′) + ln log₂ n) · n / ε′²`.
fn lambda_prime_of(n: usize, k: usize, eps_prime: f64, delta_prime: f64) -> f64 {
    let nf = n as f64;
    (2.0 + 2.0 * eps_prime / 3.0)
        * (log_choose(n, k) + (2.0 / delta_prime).ln() + nf.log2().ln())
        * nf
        / (eps_prime * eps_prime)
}

/// Eqs. (4)–(6): `λ* = 2n((1 − 1/e)·α + β)² / ε²`.
fn lambda_star_of(n: usize, k: usize, epsilon: f64, delta_prime: f64) -> f64 {
    let nf = n as f64;
    let one_minus_inv_e = 1.0 - (-1.0f64).exp();
    let ln2 = std::f64::consts::LN_2;
    let alpha = ((2.0 / delta_prime).ln() + ln2).sqrt();
    let beta = (one_minus_inv_e * (log_choose(n, k) + (2.0 / delta_prime).ln() + ln2)).sqrt();
    2.0 * nf * (one_minus_inv_e * alpha + beta).powi(2) / (epsilon * epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_choose_small_values() {
        assert!((log_choose(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert!((log_choose(10, 0) - 0.0).abs() < 1e-12);
        assert!((log_choose(10, 10) - 0.0).abs() < 1e-12);
        assert!((log_choose(52, 5) - (2_598_960f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn log_choose_symmetry() {
        assert!((log_choose(100, 3) - log_choose(100, 97)).abs() < 1e-9);
    }

    #[test]
    fn delta_prime_satisfies_fixed_point() {
        let p = ImParams::derive(10_000, 50, 0.1, 1e-4);
        // Eq. (7): ⌈λ*⌉ · δ′ = δ.
        let residual = p.lambda_star.ceil() * p.delta_prime - p.delta;
        assert!(
            residual.abs() < 1e-9 * p.delta,
            "residual {residual}, δ′ = {}",
            p.delta_prime
        );
        assert!(p.delta_prime < p.delta, "the fix strictly shrinks δ′");
    }

    #[test]
    fn lambda_monotone_in_epsilon() {
        let loose = ImParams::derive(1000, 10, 0.5, 0.01);
        let tight = ImParams::derive(1000, 10, 0.1, 0.01);
        assert!(tight.lambda_star > loose.lambda_star);
        assert!(tight.lambda_prime > loose.lambda_prime);
    }

    #[test]
    fn theta_progression_doubles() {
        let p = ImParams::derive(4096, 5, 0.3, 0.01);
        // θ_t ≈ λ′·2^t/n: consecutive targets roughly double.
        let t1 = p.theta_at(1) as f64;
        let t2 = p.theta_at(2) as f64;
        assert!((t2 / t1 - 2.0).abs() < 0.01, "ratio {}", t2 / t1);
    }

    #[test]
    fn theta_final_scales_inversely_with_lb() {
        let p = ImParams::derive(1000, 10, 0.2, 0.01);
        assert!(p.theta_final(100.0) > p.theta_final(200.0));
        assert_eq!(
            p.theta_final(1.0),
            p.lambda_star.ceil() as usize
        );
    }

    #[test]
    fn max_rounds_log2() {
        assert_eq!(ImParams::derive(1024, 2, 0.3, 0.1).max_rounds(), 9);
        assert_eq!(ImParams::derive(4, 2, 0.3, 0.1).max_rounds(), 1);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_epsilon() {
        ImParams::derive(100, 5, 1.5, 0.1);
    }

    #[test]
    #[should_panic]
    fn rejects_k_zero() {
        ImParams::derive(100, 0, 0.5, 0.1);
    }
}
