//! Influence maximization with `(1 − 1/e − ε)` guarantees — sequential and
//! distributed.
//!
//! The paper's primary contribution, built on the workspace substrates:
//!
//! * [`params`] — the IMM sample-complexity machinery: `λ′`, `λ*`, and the
//!   martingale-fix `δ′` (eqs. (3)–(7)) of Chen's correction.
//! * [`mod@imm`] — sequential IMM (Tang et al., SIGMOD'15, with the δ′ fix):
//!   the baseline every speedup figure compares against.
//! * [`mod@diimm`] — **DiIMM** (Algorithm 2): IMM with distributed RIS for the
//!   sampling phase and NewGreeDi for seed selection, generic over any
//!   [`dim_cluster::ClusterBackend`] (with [`dim_cluster::SimCluster`] as the
//!   stock backend).
//! * [`config`] — shared run configuration ([`ImConfig`]) and result type
//!   ([`ImResult`]) with per-phase timing breakdowns matching the paper's
//!   stacked bars (RR generation / computation / communication).
//!
//! * [`snapshot`] — sample-once / select-many: [`diimm_sample`] persists every
//!   machine's RR shard through `dim-store`, and [`diimm_load_rr`] reruns seed
//!   selection from the snapshot with byte-identical seeds and marginals.
//!
//! SUBSIM variants (Fig. 7) are obtained by selecting
//! [`SamplerKind::Subsim`] in the configuration. The [`opim`] module adds
//! OPIM-C and its distributed variant — the adaptive-stopping framework
//! the paper names as equally compatible with its building blocks.
//!
//! # Example
//!
//! ```
//! use dim_core::{diimm, ImConfig, SamplerKind};
//! use dim_cluster::{ExecMode, NetworkModel};
//! use dim_diffusion::DiffusionModel;
//! use dim_graph::generators::erdos_renyi;
//! use dim_graph::WeightModel;
//!
//! let g = erdos_renyi(200, 1000, WeightModel::WeightedCascade, 1);
//! let config = ImConfig {
//!     k: 5,
//!     epsilon: 0.5,
//!     delta: 0.1,
//!     seed: 42,
//!     sampler: SamplerKind::Standard(DiffusionModel::IndependentCascade),
//! };
//! let result = diimm::diimm(&g, &config, 4, NetworkModel::cluster_1gbps(), ExecMode::Sequential)
//!     .expect("wire messages from SimCluster workers are well-formed");
//! assert_eq!(result.seeds.len(), 5);
//! assert!(result.est_spread > 5.0);
//! ```

pub mod config;
pub mod diimm;
pub mod extensions;
pub mod heuristics;
pub mod imm;
pub mod opim;
pub mod params;
pub mod recover;
pub mod snapshot;
pub mod ssa;
pub mod worker;

pub use config::{ImConfig, ImResult, SamplerKind, Timings};
pub use recover::{
    diimm_on_recovering, DegradedOutcome, RecoveredRun, RecoveringCluster, RecoveryPolicy,
    RecoverySource, StragglerEvent,
};
pub use snapshot::{
    diimm_load_rr, diimm_sample, diimm_sample_generation, load_latest_rr_snapshot,
    load_rr_snapshot, persist_rr_shards, rr_snapshot_request, snapshot_shards, SnapshotError,
    StreamApplied, StreamSession,
};
pub use worker::{setup_im_cluster, WorkerHost};
pub use diimm::diimm;
pub use imm::imm;
pub use extensions::{budgeted_im, seed_minimization, targeted_im};
pub use opim::{dopim_c, opim_c};
pub use ssa::{dssa, ssa};
pub use params::ImParams;
