//! Influence-based applications beyond plain IM — the paper's conclusion:
//! "the greedy algorithms for many influence-based applications, e.g.,
//! targeted/multi-objective/budgeted influence maximization, …, seed
//! minimization, etc., can be implemented in a distributed manner via our
//! approaches."
//!
//! Each application follows the same two-phase recipe: (i) distributed RIS
//! generates `θ` RR sets across the machines, (ii) a greedy search over
//! the element-distributed shards picks the answer. Only the stopping or
//! scoring rule of the greedy changes, so these functions take an explicit
//! `theta` sampling budget rather than re-deriving IMM's worst-case bound
//! (whose constants are specific to top-`k` maximization).

use rand::SeedableRng;
use rand_pcg::Pcg64;

use dim_cluster::{
    phase, stream_seed, ClusterBackend, ClusterMetrics, ExecMode, NetworkModel, OpExecutor,
    SimCluster, WireError, WorkerOp, WorkerReply,
};
use dim_coverage::budgeted::{newgreedi_budgeted, BudgetedResult};
use dim_coverage::newgreedi::{newgreedi_until, newgreedi_with};
use dim_coverage::{execute_coverage_op, CoverageShard};
use dim_diffusion::rr::{RrSampler, TargetedSampler};
use dim_diffusion::visit::VisitTracker;
use dim_graph::Graph;

use crate::config::SamplerKind;
use crate::diimm::split_counts;

/// A generic distributed-RIS worker: any sampler, one element shard.
struct RisWorker<S> {
    sampler: S,
    rng: Pcg64,
    shard: CoverageShard,
    buf: Vec<u32>,
    visited: VisitTracker,
}

impl<S: RrSampler> RisWorker<S> {
    fn new(n: usize, sampler: S, seed: u64, machine_id: usize) -> Self {
        RisWorker {
            sampler,
            rng: Pcg64::seed_from_u64(stream_seed(seed, machine_id)),
            shard: CoverageShard::new(n),
            buf: Vec::new(),
            visited: VisitTracker::new(n),
        }
    }

    fn generate(&mut self, count: usize) {
        for _ in 0..count {
            self.sampler
                .sample(&mut self.rng, &mut self.buf, &mut self.visited);
            self.shard.push_element(&self.buf);
        }
    }
}

impl<S: RrSampler> OpExecutor for RisWorker<S> {
    fn execute(&mut self, op: &WorkerOp) -> WorkerReply {
        match op {
            WorkerOp::SampleRr { count } => {
                self.generate(*count as usize);
                WorkerReply::Ok
            }
            other => execute_coverage_op(&mut self.shard, other)
                .unwrap_or_else(|| WorkerReply::Err("op unsupported by RIS worker".into())),
        }
    }
}

fn ris_cluster<S: RrSampler + Send>(
    n: usize,
    make_sampler: impl Fn(usize) -> S,
    theta: usize,
    seed: u64,
    machines: usize,
    network: NetworkModel,
    mode: ExecMode,
) -> SimCluster<RisWorker<S>> {
    assert!(machines >= 1);
    assert!(theta >= 1, "need a positive sampling budget");
    let workers: Vec<RisWorker<S>> = (0..machines)
        .map(|i| RisWorker::new(n, make_sampler(i), seed, i))
        .collect();
    let mut cluster = SimCluster::new(workers, network, mode);
    let counts = split_counts(theta, machines);
    cluster.par_step(phase::RR_SAMPLING, |i, w| w.generate(counts[i]));
    cluster
}

/// Result of a budgeted influence-maximization run.
#[derive(Clone, Debug)]
pub struct BudgetedImResult {
    /// Selected seeds, in selection order.
    pub seeds: Vec<u32>,
    /// Total seed cost spent (≤ budget).
    pub spent: f64,
    /// Estimated influence spread of the seed set.
    pub est_spread: f64,
    /// RR sets used.
    pub num_rr_sets: usize,
    /// Cluster metrics of the run.
    pub metrics: ClusterMetrics,
}

/// Budgeted influence maximization: each node `v` has cost `costs[v]`;
/// maximize spread subject to total cost ≤ `budget`. Uses `theta` RR sets
/// and the element-distributed cost-effectiveness greedy with best-single
/// fallback (`(1 − 1/√e)`-approximate on the sampled coverage objective).
#[allow(clippy::too_many_arguments)]
pub fn budgeted_im(
    graph: &Graph,
    sampler: SamplerKind,
    costs: &[f64],
    budget: f64,
    theta: usize,
    seed: u64,
    machines: usize,
    network: NetworkModel,
    mode: ExecMode,
) -> Result<BudgetedImResult, WireError> {
    let n = graph.num_nodes();
    assert_eq!(costs.len(), n, "one cost per node");
    let mut cluster = ris_cluster(
        n,
        |_| sampler.make(graph),
        theta,
        seed,
        machines,
        network,
        mode,
    );
    let BudgetedResult {
        seeds,
        covered,
        spent,
    } = newgreedi_budgeted(&mut cluster, costs, budget)?;
    Ok(BudgetedImResult {
        seeds,
        spent,
        est_spread: n as f64 * covered as f64 / theta as f64,
        num_rr_sets: theta,
        metrics: cluster.metrics(),
    })
}

/// Result of a seed-minimization run.
#[derive(Clone, Debug)]
pub struct SeedMinResult {
    /// Selected seeds, in selection order.
    pub seeds: Vec<u32>,
    /// Estimated influence spread achieved.
    pub est_spread: f64,
    /// The spread target that was requested (`eta · n`).
    pub target_spread: f64,
    /// RR sets used.
    pub num_rr_sets: usize,
    /// Cluster metrics of the run.
    pub metrics: ClusterMetrics,
}

/// Seed minimization: find a (small) seed set whose estimated spread
/// reaches `eta · n`. Greedy partial cover over `theta` distributed RR
/// sets — by Lemma 1, spread ≥ η·n iff coverage ≥ η·θ (in expectation).
///
/// # Panics
/// Panics unless `0 < eta < 1`.
#[allow(clippy::too_many_arguments)]
pub fn seed_minimization(
    graph: &Graph,
    sampler: SamplerKind,
    eta: f64,
    theta: usize,
    seed: u64,
    machines: usize,
    network: NetworkModel,
    mode: ExecMode,
) -> Result<SeedMinResult, WireError> {
    assert!(eta > 0.0 && eta < 1.0, "η = {eta} out of (0,1)");
    let n = graph.num_nodes();
    let mut cluster = ris_cluster(
        n,
        |_| sampler.make(graph),
        theta,
        seed,
        machines,
        network,
        mode,
    );
    let target_coverage = (eta * theta as f64).ceil() as u64;
    let r = newgreedi_until(&mut cluster, n, target_coverage, n)?;
    Ok(SeedMinResult {
        seeds: r.seeds,
        est_spread: n as f64 * r.covered as f64 / theta as f64,
        target_spread: eta * n as f64,
        num_rr_sets: theta,
        metrics: cluster.metrics(),
    })
}

/// Result of a targeted influence-maximization run.
#[derive(Clone, Debug)]
pub struct TargetedImResult {
    /// Selected seeds, in selection order.
    pub seeds: Vec<u32>,
    /// Estimated *targeted* spread: expected activated targets.
    pub est_targeted_spread: f64,
    /// RR sets used.
    pub num_rr_sets: usize,
    /// Cluster metrics of the run.
    pub metrics: ClusterMetrics,
}

/// Targeted influence maximization: maximize the expected number of
/// activated users among `targets` with `k` seeds. RR roots are drawn from
/// the target set, so `σ_T(S) = |T| · F_R(S)` (targeted Lemma 1).
#[allow(clippy::too_many_arguments)]
pub fn targeted_im(
    graph: &Graph,
    sampler: SamplerKind,
    targets: &[u32],
    k: usize,
    theta: usize,
    seed: u64,
    machines: usize,
    network: NetworkModel,
    mode: ExecMode,
) -> Result<TargetedImResult, WireError> {
    let n = graph.num_nodes();
    let num_targets = targets.len();
    let mut cluster = ris_cluster(
        n,
        |_| TargetedSampler::new(sampler.make(graph), targets.to_vec()),
        theta,
        seed,
        machines,
        network,
        mode,
    );
    let r = newgreedi_with(&mut cluster, n, k)?;
    Ok(TargetedImResult {
        seeds: r.seeds,
        est_targeted_spread: num_targets as f64 * r.covered as f64 / theta as f64,
        num_rr_sets: theta,
        metrics: cluster.metrics(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_diffusion::DiffusionModel;
    use dim_graph::generators::barabasi_albert;
    use dim_graph::WeightModel;

    const IC: SamplerKind = SamplerKind::Standard(DiffusionModel::IndependentCascade);

    fn graph() -> Graph {
        barabasi_albert(300, 3, WeightModel::WeightedCascade, 5)
    }

    #[test]
    fn budgeted_respects_budget() {
        let g = graph();
        let costs: Vec<f64> = g
            .nodes()
            .map(|u| 1.0 + g.out_degree(u) as f64 / 10.0)
            .collect();
        let r = budgeted_im(
            &g,
            IC,
            &costs,
            12.0,
            5_000,
            7,
            4,
            NetworkModel::zero(),
            ExecMode::Sequential,
        )
        .unwrap();
        assert!(r.spent <= 12.0 + 1e-9);
        assert!(!r.seeds.is_empty());
        assert!(r.est_spread > 0.0);
        let actual_cost: f64 = r.seeds.iter().map(|&s| costs[s as usize]).sum();
        assert!((actual_cost - r.spent).abs() < 1e-9);
    }

    #[test]
    fn budgeted_more_budget_no_worse() {
        let g = graph();
        let costs = vec![1.0; g.num_nodes()];
        let small = budgeted_im(
            &g, IC, &costs, 2.0, 5_000, 7, 2, NetworkModel::zero(), ExecMode::Sequential,
        )
        .unwrap();
        let large = budgeted_im(
            &g, IC, &costs, 10.0, 5_000, 7, 2, NetworkModel::zero(), ExecMode::Sequential,
        )
        .unwrap();
        assert!(large.est_spread >= small.est_spread);
    }

    #[test]
    fn seed_min_reaches_target() {
        let g = graph();
        let r = seed_minimization(
            &g, IC, 0.3, 8_000, 3, 4, NetworkModel::zero(), ExecMode::Sequential,
        )
        .unwrap();
        assert!(
            r.est_spread >= r.target_spread * 0.99,
            "spread {} below target {}",
            r.est_spread,
            r.target_spread
        );
        // A lower target needs no more seeds.
        let easier = seed_minimization(
            &g, IC, 0.1, 8_000, 3, 4, NetworkModel::zero(), ExecMode::Sequential,
        )
        .unwrap();
        assert!(easier.seeds.len() <= r.seeds.len());
    }

    #[test]
    fn seed_min_distributed_matches_centralized() {
        let g = graph();
        let a = seed_minimization(
            &g, IC, 0.25, 4_000, 9, 1, NetworkModel::zero(), ExecMode::Sequential,
        )
        .unwrap();
        // Same seed stream split differently: seeds may differ, spread
        // must not (both stop at the same coverage target).
        let b = seed_minimization(
            &g, IC, 0.25, 4_000, 9, 6, NetworkModel::zero(), ExecMode::Sequential,
        )
        .unwrap();
        let rel = (a.est_spread - b.est_spread).abs() / a.est_spread;
        assert!(rel < 0.15, "{} vs {}", a.est_spread, b.est_spread);
    }

    #[test]
    fn targeted_prefers_influencers_of_targets() {
        // Two communities; targets live only in the second one.
        let mut b = dim_graph::GraphBuilder::new(20);
        for i in 1..10u32 {
            b.add_weighted_edge(0, i, 0.9); // hub 0 → community A
        }
        for i in 11..20u32 {
            b.add_weighted_edge(10, i, 0.9); // hub 10 → community B
        }
        let g = b.build(WeightModel::WeightedCascade);
        let targets: Vec<u32> = (10..20).collect();
        let r = targeted_im(
            &g,
            IC,
            &targets,
            1,
            4_000,
            3,
            2,
            NetworkModel::zero(),
            ExecMode::Sequential,
        )
        .unwrap();
        assert_eq!(r.seeds, vec![10], "hub of the target community wins");
        assert!(r.est_targeted_spread > 5.0);
        assert!(r.est_targeted_spread <= 10.0 + 1e-9);
    }

    #[test]
    fn targeted_spread_bounded_by_targets() {
        let g = graph();
        let targets: Vec<u32> = (0..30).collect();
        let r = targeted_im(
            &g, IC, &targets, 5, 4_000, 11, 3, NetworkModel::zero(), ExecMode::Sequential,
        )
        .unwrap();
        assert!(r.est_targeted_spread <= targets.len() as f64 + 1e-9);
        assert_eq!(r.seeds.len(), 5);
    }
}
