//! The worker-process endpoint: resident state plus op interpretation.
//!
//! A `dim-worker` process is a [`WorkerHost`] behind a TCP link. The host
//! owns whatever state the master installs through setup ops — the graph
//! (from [`WorkerOp::LoadGraph`]), a DiIMM sampler/shard pair (from
//! [`WorkerOp::InitSampler`]), or a standalone coverage shard (from
//! [`WorkerOp::BuildShard`]) — and answers every subsequent phase op
//! against that resident state.
//!
//! Crucially the host delegates to the *same* interpreters the in-process
//! simulator uses ([`DiimmWorker`]'s `OpExecutor` impl and
//! [`dim_coverage::execute_coverage_op`]), so the process backend and
//! [`dim_cluster::SimCluster`] execute identical phase logic by
//! construction: equivalence is a property of the dispatch table, not of
//! two implementations kept in sync by hand.

use dim_cluster::ops::expect_ok;
use dim_cluster::{
    phase, OpCluster, OpExecutor, SamplerSpec, WireError, WorkerOp, WorkerReply,
};
use dim_coverage::{execute_coverage_op, CoverageShard};
use dim_diffusion::DiffusionModel;
use dim_graph::{binary, Graph};

use crate::config::{ImConfig, SamplerKind};
use crate::diimm::DiimmWorker;

impl From<SamplerSpec> for SamplerKind {
    fn from(spec: SamplerSpec) -> Self {
        match spec {
            SamplerSpec::StandardIc => {
                SamplerKind::Standard(DiffusionModel::IndependentCascade)
            }
            SamplerSpec::StandardLt => SamplerKind::Standard(DiffusionModel::LinearThreshold),
            SamplerSpec::Subsim => SamplerKind::Subsim,
        }
    }
}

impl From<SamplerKind> for SamplerSpec {
    fn from(kind: SamplerKind) -> Self {
        match kind {
            SamplerKind::Standard(DiffusionModel::IndependentCascade) => SamplerSpec::StandardIc,
            SamplerKind::Standard(DiffusionModel::LinearThreshold) => SamplerSpec::StandardLt,
            SamplerKind::Subsim => SamplerSpec::Subsim,
        }
    }
}

/// One worker process's resident state: the op-dispatching peer of a
/// [`SimCluster`](dim_cluster::SimCluster) slot.
///
/// Phase ops route to the DiIMM worker when one has been initialized
/// (IM runs: `LoadGraph` + `InitSampler`), otherwise to the standalone
/// shard (max-coverage runs: `BuildShard`). The graph is leaked into
/// `'static` on load — a worker process hosts exactly one graph for its
/// lifetime, and the sampler borrows it for the rest of the run.
pub struct WorkerHost {
    machine_id: usize,
    master_seed: u64,
    graph: Option<&'static Graph>,
    /// FNV-1a digest of the blob the resident graph was decoded from, so a
    /// re-sent identical `LoadGraph` (the normal case for a join-mode
    /// worker serving run after run) reuses the leaked graph instead of
    /// leaking another copy per session.
    graph_digest: Option<u64>,
    diimm: Option<DiimmWorker<'static>>,
    shard: Option<CoverageShard>,
}

impl WorkerHost {
    /// Creates an empty host for machine `machine_id`. `master_seed` is the
    /// run's master seed; sampler RNG streams derive from it exactly as the
    /// simulator's do (`stream_seed(master_seed, machine_id)`), which is
    /// what makes proc-backend seed selection byte-identical.
    pub fn new(machine_id: usize, master_seed: u64) -> Self {
        WorkerHost {
            machine_id,
            master_seed,
            graph: None,
            graph_digest: None,
            diimm: None,
            shard: None,
        }
    }

    /// Re-binds a long-lived host to a new rendezvous session: adopts the
    /// session's machine id and master seed and drops all per-run state
    /// (sampler, shards). The resident graph survives — if the next run
    /// ships the identical blob, [`WorkerOp::LoadGraph`] is a no-op.
    pub fn reset_session(&mut self, machine_id: usize, master_seed: u64) {
        self.machine_id = machine_id;
        self.master_seed = master_seed;
        self.diimm = None;
        self.shard = None;
    }

    /// The machine id this host currently serves as.
    pub fn machine_id(&self) -> usize {
        self.machine_id
    }

    fn load_graph(&mut self, blob: &[u8]) -> WorkerReply {
        let digest = fnv1a(blob);
        if self.graph.is_some() && self.graph_digest == Some(digest) {
            // Same graph already resident (a join-mode worker's next
            // session): keep it, just reset the sampler built over it.
            self.diimm = None;
            return WorkerReply::Ok;
        }
        match binary::read_binary(&mut &blob[..]) {
            Ok(g) => {
                self.graph = Some(Box::leak(Box::new(g)));
                self.graph_digest = Some(digest);
                self.diimm = None;
                WorkerReply::Ok
            }
            Err(e) => WorkerReply::Err(format!("LoadGraph: {e}")),
        }
    }

    fn init_sampler(&mut self, spec: SamplerSpec) -> WorkerReply {
        let Some(graph) = self.graph else {
            return WorkerReply::Err("InitSampler before LoadGraph".into());
        };
        // Only `sampler` and `seed` shape worker-side state; the selection
        // parameters (k, ε, δ) live with the master.
        let config = ImConfig {
            k: 1,
            epsilon: 0.5,
            delta: 0.5,
            seed: self.master_seed,
            sampler: spec.into(),
        };
        self.diimm = Some(DiimmWorker::new(graph, &config, self.machine_id));
        WorkerReply::Ok
    }
}

/// FNV-1a over a byte slice; cheap and collision-safe enough for "is this
/// the same blob the master sent last session".
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Installs resident IM state on every machine of an op cluster: the
/// graph (its portable binary encoding, one [`WorkerOp::LoadGraph`] per
/// machine) followed by a sampler over it ([`WorkerOp::InitSampler`]).
/// After this, [`crate::diimm::diimm_on`] can run its phase ops against
/// the cluster — process-backed or simulated — without ever touching
/// worker state from the master side.
///
/// Setup traffic is deliberately recorded under the `setup` phase, whose
/// modeled byte count stays zero: the paper's communication accounting
/// starts after data placement.
pub fn setup_im_cluster<B: OpCluster>(
    cluster: &mut B,
    graph: &Graph,
    sampler: SamplerKind,
) -> Result<(), WireError> {
    let mut blob = Vec::new();
    binary::write_binary(graph, &mut blob).expect("writing to a Vec cannot fail");
    let replies = cluster.control(phase::SETUP, |_| WorkerOp::LoadGraph { blob: blob.clone() })?;
    expect_ok(&replies, phase::SETUP)?;
    let spec: SamplerSpec = sampler.into();
    let replies = cluster.control(phase::SETUP, |_| WorkerOp::InitSampler { spec })?;
    expect_ok(&replies, phase::SETUP)
}

impl OpExecutor for WorkerHost {
    fn execute(&mut self, op: &WorkerOp) -> WorkerReply {
        match op {
            WorkerOp::LoadGraph { blob } => self.load_graph(blob),
            WorkerOp::InitSampler { spec } => self.init_sampler(*spec),
            WorkerOp::BuildShard { .. } => {
                let shard = self.shard.get_or_insert_with(|| CoverageShard::new(0));
                execute_coverage_op(shard, op)
                    .expect("BuildShard is a coverage op")
            }
            WorkerOp::Shutdown => WorkerReply::Ok,
            phase_op => {
                if let Some(diimm) = self.diimm.as_mut() {
                    diimm.execute(phase_op)
                } else if let Some(shard) = self.shard.as_mut() {
                    shard.execute(phase_op)
                } else {
                    WorkerReply::Err(
                        "no resident state: send LoadGraph + InitSampler or BuildShard first"
                            .into(),
                    )
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_cluster::WorkerStats;
    use dim_graph::generators::erdos_renyi;
    use dim_graph::WeightModel;

    fn graph_blob(g: &Graph) -> Vec<u8> {
        let mut blob = Vec::new();
        binary::write_binary(g, &mut blob).unwrap();
        blob
    }

    #[test]
    fn sampler_spec_round_trips_through_kind() {
        for spec in [
            SamplerSpec::StandardIc,
            SamplerSpec::StandardLt,
            SamplerSpec::Subsim,
        ] {
            let kind: SamplerKind = spec.into();
            assert_eq!(SamplerSpec::from(kind), spec);
        }
    }

    #[test]
    fn host_matches_sim_worker_after_setup() {
        let g = erdos_renyi(120, 600, WeightModel::WeightedCascade, 3);
        let config = ImConfig {
            k: 2,
            epsilon: 0.5,
            delta: 0.1,
            seed: 99,
            sampler: SamplerKind::Standard(DiffusionModel::IndependentCascade),
        };
        // The simulator's worker, driven directly.
        let mut sim = DiimmWorker::new(&g, &config, 1);
        // The process host, driven through setup ops.
        let mut host = WorkerHost::new(1, 99);
        assert_eq!(
            host.execute(&WorkerOp::LoadGraph { blob: graph_blob(&g) }),
            WorkerReply::Ok
        );
        assert_eq!(
            host.execute(&WorkerOp::InitSampler { spec: SamplerSpec::StandardIc }),
            WorkerReply::Ok
        );
        for op in [
            WorkerOp::SampleRr { count: 200 },
            WorkerOp::InitialCoverage,
            WorkerOp::ApplySeed { set: 7 },
            WorkerOp::CoveredCount,
            WorkerOp::Stats,
        ] {
            assert_eq!(host.execute(&op), sim.execute(&op), "op {op:?}");
        }
    }

    #[test]
    fn phase_op_without_state_is_a_typed_error() {
        let mut host = WorkerHost::new(0, 1);
        assert!(matches!(
            host.execute(&WorkerOp::InitialCoverage),
            WorkerReply::Err(_)
        ));
        assert!(matches!(
            host.execute(&WorkerOp::InitSampler { spec: SamplerSpec::Subsim }),
            WorkerReply::Err(_)
        ));
    }

    #[test]
    fn reset_session_keeps_graph_and_dedups_reload() {
        let g = erdos_renyi(60, 240, WeightModel::Uniform(0.1), 5);
        let blob = graph_blob(&g);
        let mut host = WorkerHost::new(0, 7);
        assert_eq!(
            host.execute(&WorkerOp::LoadGraph { blob: blob.clone() }),
            WorkerReply::Ok
        );
        let first: *const Graph = host.graph.unwrap();
        // Next session, different slot and seed, same graph blob: the
        // resident graph must be reused, not re-leaked.
        host.reset_session(1, 8);
        assert_eq!(host.machine_id(), 1);
        assert!(host.diimm.is_none() && host.shard.is_none());
        assert_eq!(
            host.execute(&WorkerOp::LoadGraph { blob: blob.clone() }),
            WorkerReply::Ok
        );
        assert!(std::ptr::eq(first, host.graph.unwrap()));
        // The rebound host behaves exactly like a fresh one for that slot.
        assert_eq!(
            host.execute(&WorkerOp::InitSampler { spec: SamplerSpec::StandardIc }),
            WorkerReply::Ok
        );
        let mut fresh = WorkerHost::new(1, 8);
        fresh.execute(&WorkerOp::LoadGraph { blob: blob.clone() });
        fresh.execute(&WorkerOp::InitSampler { spec: SamplerSpec::StandardIc });
        for op in [
            WorkerOp::SampleRr { count: 150 },
            WorkerOp::InitialCoverage,
            WorkerOp::CoveredCount,
        ] {
            assert_eq!(host.execute(&op), fresh.execute(&op), "op {op:?}");
        }
        // A *different* blob still replaces the graph.
        let g2 = erdos_renyi(30, 90, WeightModel::Uniform(0.2), 6);
        assert_eq!(
            host.execute(&WorkerOp::LoadGraph { blob: graph_blob(&g2) }),
            WorkerReply::Ok
        );
        assert!(!std::ptr::eq(first, host.graph.unwrap()));
    }

    #[test]
    fn build_shard_serves_coverage_ops() {
        let mut host = WorkerHost::new(0, 1);
        let reply = host.execute(&WorkerOp::BuildShard {
            num_sets: 5,
            elements: vec![vec![0], vec![1, 2], vec![0, 2]],
        });
        assert_eq!(reply, WorkerReply::Ok);
        assert_eq!(
            host.execute(&WorkerOp::InitialCoverage),
            WorkerReply::Deltas(vec![(0, 2), (1, 1), (2, 2)])
        );
        assert_eq!(
            host.execute(&WorkerOp::Stats),
            WorkerReply::Stats(WorkerStats {
                num_elements: 3,
                total_size: 5,
                edges_examined: 0,
            })
        );
    }
}
