//! Shared configuration and result types for IMM/DiIMM runs.

use std::time::Duration;

use dim_cluster::{phase, ClusterMetrics, PhaseTimeline};
use dim_diffusion::rr::AnySampler;
use dim_diffusion::DiffusionModel;
use dim_graph::Graph;

/// Which RR-set sampler the run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplerKind {
    /// The model's standard sampler: reverse BFS (IC) or reverse walk (LT).
    /// This is what IMM/DiIMM use.
    Standard(DiffusionModel),
    /// SUBSIM's geometric-jump sampler (IC distribution, faster generation)
    /// — the Fig. 7 configuration.
    Subsim,
}

impl SamplerKind {
    /// Instantiates the sampler over a graph.
    pub fn make<'g>(&self, graph: &'g Graph) -> AnySampler<'g> {
        match self {
            SamplerKind::Standard(model) => AnySampler::for_model(graph, *model),
            SamplerKind::Subsim => AnySampler::subsim(graph),
        }
    }

    /// The diffusion model whose RR distribution is sampled.
    pub fn model(&self) -> DiffusionModel {
        match self {
            SamplerKind::Standard(m) => *m,
            SamplerKind::Subsim => DiffusionModel::IndependentCascade,
        }
    }
}

/// Configuration of one influence-maximization run.
#[derive(Clone, Copy, Debug)]
pub struct ImConfig {
    /// Seed-set size `k` (paper default: 50).
    pub k: usize,
    /// Approximation error `ε` (paper default: 0.01; this reproduction's
    /// bench default is 0.1 — see DESIGN.md §4).
    pub epsilon: f64,
    /// Failure probability `δ` (paper default: 1/n).
    pub delta: f64,
    /// Master RNG seed; machine `i` derives its independent stream via
    /// [`dim_cluster::stream_seed`].
    pub seed: u64,
    /// RR-set sampler selection.
    pub sampler: SamplerKind,
}

impl ImConfig {
    /// The paper's default parameters for `graph`: `k = 50`, `ε` as given,
    /// `δ = 1/n`, IC model.
    pub fn paper_defaults(graph: &Graph, epsilon: f64, seed: u64) -> Self {
        ImConfig {
            k: 50.min(graph.num_nodes()),
            epsilon,
            delta: 1.0 / graph.num_nodes() as f64,
            seed,
            sampler: SamplerKind::Standard(DiffusionModel::IndependentCascade),
        }
    }
}

/// Per-phase timing breakdown matching the paper's stacked bars
/// (Figs. 5, 6, 8, 9): RR generation / computation / communication.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Timings {
    /// RR-set generation (the sampling phase's worker compute).
    pub sampling: Duration,
    /// Seed-selection computation (worker prepare/map + master reduce).
    pub selection: Duration,
    /// Modeled network transfer time.
    pub communication: Duration,
}

impl Timings {
    /// Total virtual running time.
    pub fn total(&self) -> Duration {
        self.sampling + self.selection + self.communication
    }

    /// Derives the paper's three stacked bars from a phase-labeled
    /// timeline: sampling is the [`phase::RR_SAMPLING`] compute, selection
    /// is every other phase's compute (worker map stages + master
    /// reduce/select), and communication is the modeled transfer time of
    /// the whole run.
    pub fn from_timeline(timeline: &PhaseTimeline) -> Self {
        let total = timeline.total();
        let sampling = timeline.get(phase::RR_SAMPLING).compute();
        Timings {
            sampling,
            selection: total.compute().saturating_sub(sampling),
            communication: total.comm_time,
        }
    }
}

/// Outcome of an IMM/DiIMM/SUBSIM run.
#[derive(Clone, Debug)]
pub struct ImResult {
    /// The selected seed set `S*`, in selection order.
    pub seeds: Vec<u32>,
    /// Marginal RR-set coverage of each seed at its selection point
    /// (non-increasing; same length as `seeds`).
    pub marginals: Vec<u64>,
    /// RR sets covered by `S*` out of `num_rr_sets`.
    pub coverage: u64,
    /// Total RR sets generated (θ; Table IV column 1).
    pub num_rr_sets: usize,
    /// Σ over RR sets of their size (Table IV column 2).
    pub total_rr_size: usize,
    /// Total edges examined while sampling (Σ w(R), the EPT mass).
    pub edges_examined: u64,
    /// Estimated influence spread `n · F_R(S*)`.
    pub est_spread: f64,
    /// The lower bound LB on OPT found by the search phase.
    pub lower_bound: f64,
    /// Lower-bound-search iterations executed.
    pub rounds: u32,
    /// Per-phase timing breakdown.
    pub timings: Timings,
    /// Raw cluster metrics (traffic, messages; zeros for sequential runs).
    pub metrics: ClusterMetrics,
    /// Phase-labeled metrics timeline of the run (empty for sequential
    /// runs). `timings` and `metrics` are derived views of this.
    pub timeline: PhaseTimeline,
}

impl ImResult {
    /// Coverage fraction `F_R(S*)`.
    pub fn coverage_fraction(&self) -> f64 {
        if self.num_rr_sets == 0 {
            0.0
        } else {
            self.coverage as f64 / self.num_rr_sets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_graph::{GraphBuilder, WeightModel};

    #[test]
    fn paper_defaults() {
        let mut b = GraphBuilder::new(1000);
        b.add_edge(0, 1);
        let g = b.build(WeightModel::WeightedCascade);
        let c = ImConfig::paper_defaults(&g, 0.1, 7);
        assert_eq!(c.k, 50);
        assert!((c.delta - 1e-3).abs() < 1e-12);
        assert_eq!(c.sampler.model(), DiffusionModel::IndependentCascade);
    }

    #[test]
    fn k_capped_at_n() {
        let mut b = GraphBuilder::new(10);
        b.add_edge(0, 1);
        let g = b.build(WeightModel::WeightedCascade);
        assert_eq!(ImConfig::paper_defaults(&g, 0.1, 7).k, 10);
    }

    #[test]
    fn timings_total() {
        let t = Timings {
            sampling: Duration::from_secs(3),
            selection: Duration::from_secs(2),
            communication: Duration::from_millis(100),
        };
        assert_eq!(t.total(), Duration::from_millis(5100));
    }

    #[test]
    fn timings_derived_from_timeline() {
        let mut tl = PhaseTimeline::new();
        tl.record(
            phase::RR_SAMPLING,
            ClusterMetrics {
                worker_compute: Duration::from_secs(4),
                ..Default::default()
            },
        );
        tl.record(
            phase::DELTA_UPLOAD,
            ClusterMetrics {
                worker_compute: Duration::from_secs(1),
                comm_time: Duration::from_millis(250),
                ..Default::default()
            },
        );
        tl.record(
            phase::SEED_SELECT,
            ClusterMetrics {
                master_compute: Duration::from_secs(2),
                ..Default::default()
            },
        );
        let t = Timings::from_timeline(&tl);
        assert_eq!(t.sampling, Duration::from_secs(4));
        assert_eq!(t.selection, Duration::from_secs(3));
        assert_eq!(t.communication, Duration::from_millis(250));
        assert_eq!(t.total(), tl.total().elapsed());
    }

    #[test]
    fn subsim_kind_is_ic() {
        assert_eq!(
            SamplerKind::Subsim.model(),
            DiffusionModel::IndependentCascade
        );
    }
}
