//! OPIM-C — Online Processing of Influence Maximization (Tang, Tang, Xiao,
//! Yuan; SIGMOD'18) — sequential and distributed.
//!
//! The paper states its two building blocks apply to OPIM-C as well as IMM
//! ("our distributed RIS and NewGreeDi approaches are compatible with all
//! the aforementioned frameworks", §III-C). OPIM-C differs from IMM in its
//! stopping rule: it keeps **two independent RR-set collections** — `R₁`
//! for seed selection, `R₂` for validation — doubling both each round, and
//! stops as soon as concentration bounds certify
//! `σ_lower(S_k) / σ_upper(OPT) ≥ 1 − 1/e − ε`, which often needs far
//! fewer samples than IMM's worst-case budget.
//!
//! Bounds per round (with per-round failure budget `δ/(3·i_max)` and
//! `a = ln(3·i_max/δ)`):
//!
//! * lower bound on `σ(S_k)` from the validation collection `R₂`:
//!   `σ_l = ((√(Λ₂(S_k) + 2a/9) − √(a/2))² − a/18) · n/θ₂`;
//! * upper bound on `σ(S°)` from the selection collection `R₁`, using the
//!   greedy certificate `Λ₁(S°) ≤ Λ₁(S_k)/(1 − 1/e)`:
//!   `σ_u = (√(Λ₁(S_k)/(1−1/e) + a/2) + √(a/2))² · n/θ₁`.
//!
//! The distributed variant keeps both collections sharded: selection runs
//! through NewGreeDi on the `R₁` shards; validation gathers one coverage
//! count per machine over the `R₂` shards.

use rand::SeedableRng;
use rand_pcg::Pcg64;

use dim_cluster::ops::{expect_counts, expect_ok};
use dim_cluster::{
    phase, stream_seed, ClusterBackend, ClusterMetrics, ExecMode, NetworkModel, OpCluster,
    OpExecutor, PhaseTimeline, SimCluster, WireError, WorkerOp, WorkerReply, WorkerStats,
};
use dim_coverage::greedy::bucket_greedy;
use dim_coverage::newgreedi::newgreedi_incremental;
use dim_coverage::{execute_coverage_op, CoverageShard};
use dim_diffusion::rr::{AnySampler, RrSampler};
use dim_diffusion::visit::VisitTracker;
use dim_graph::Graph;

use crate::config::{ImConfig, ImResult, Timings};
use crate::params::log_choose;

/// θ_max: the IMM-style worst-case budget with the trivial `OPT ≥ k`
/// bound, so OPIM-C never exceeds IMM's asymptotic sample count.
fn theta_max(n: usize, k: usize, epsilon: f64, delta: f64) -> usize {
    let nf = n as f64;
    let one_minus_inv_e = 1.0 - (-1.0f64).exp();
    let ln2 = std::f64::consts::LN_2;
    let alpha = ((2.0 / delta).ln() + ln2).sqrt();
    let beta = (one_minus_inv_e * (log_choose(n, k) + (2.0 / delta).ln() + ln2)).sqrt();
    let lambda = 2.0 * nf * (one_minus_inv_e * alpha + beta).powi(2) / (epsilon * epsilon);
    ((lambda / k as f64).ceil() as usize).max(64)
}

/// OPIM-C's lower bound on `σ(S)` given validation coverage `cov` over
/// `theta` RR sets.
fn sigma_lower(cov: u64, theta: usize, n: usize, a: f64) -> f64 {
    let c = cov as f64;
    let inner = (c + 2.0 * a / 9.0).sqrt() - (a / 2.0).sqrt();
    ((inner * inner) - a / 18.0).max(0.0) * n as f64 / theta as f64
}

/// OPIM-C's upper bound on `σ(S°)` given selection coverage `cov` of the
/// greedy solution over `theta` RR sets.
fn sigma_upper(cov: u64, theta: usize, n: usize, a: f64) -> f64 {
    let one_minus_inv_e = 1.0 - (-1.0f64).exp();
    let ub_cov = cov as f64 / one_minus_inv_e;
    let inner = (ub_cov + a / 2.0).sqrt() + (a / 2.0).sqrt();
    inner * inner * n as f64 / theta as f64
}

/// Coverage of `seeds` over one RR-set shard (validation side): number of
/// local elements intersecting the seed set.
fn shard_coverage(shard: &CoverageShard, seeds: &[u32], marked: &mut VisitTracker) -> u64 {
    marked.clear();
    for &s in seeds {
        marked.mark(s);
    }
    shard
        .elements()
        .iter()
        .filter(|rr| rr.iter().any(|&v| marked.is_marked(v)))
        .count() as u64
}

/// Sequential OPIM-C. Interface-compatible with [`crate::imm::imm`]; the
/// returned [`ImResult`] counts both collections in `num_rr_sets`.
pub fn opim_c(graph: &Graph, config: &ImConfig) -> ImResult {
    let n = graph.num_nodes();
    let sampler = config.sampler.make(graph);
    let mut rng = Pcg64::seed_from_u64(stream_seed(config.seed, 0));
    let t_max = theta_max(n, config.k, config.epsilon, config.delta);
    let theta_0 = ((t_max as f64 * config.epsilon * config.epsilon * config.k as f64
        / n as f64)
        .ceil() as usize)
        .max(32);
    let i_max = ((t_max as f64 / theta_0 as f64).log2().ceil() as u32).max(1);
    let a = (3.0 * i_max as f64 / config.delta).ln();

    let mut r1 = CoverageShard::new(n);
    let mut r2 = CoverageShard::new(n);
    let mut buf = Vec::new();
    let mut visited = VisitTracker::new(n);
    let mut marked = VisitTracker::new(n);
    let mut edges = 0u64;
    let mut timings = Timings::default();
    let mut theta = theta_0;
    let target = 1.0 - (-1.0f64).exp() - config.epsilon;

    let mut best = None;
    for round in 1..=i_max {
        let start = std::time::Instant::now();
        while r1.num_elements() < theta {
            edges += sampler.sample(&mut rng, &mut buf, &mut visited);
            r1.push_element(&buf);
            edges += sampler.sample(&mut rng, &mut buf, &mut visited);
            r2.push_element(&buf);
        }
        timings.sampling += start.elapsed();

        let start = std::time::Instant::now();
        let sel = bucket_greedy(&mut r1, config.k);
        r2.prepare();
        let cov2 = shard_coverage(&r2, &sel.seeds, &mut marked);
        timings.selection += start.elapsed();

        let lower = sigma_lower(cov2, r2.num_elements(), n, a);
        let upper = sigma_upper(sel.covered, r1.num_elements(), n, a);
        let est = n as f64 * sel.covered as f64 / r1.num_elements() as f64;
        let ratio = lower / upper;
        best = Some((sel, est, round));
        if ratio >= target || round == i_max {
            break;
        }
        theta *= 2;
    }

    let (sel, est_spread, rounds) = best.expect("at least one round");
    ImResult {
        seeds: sel.seeds,
        marginals: sel.marginals,
        coverage: sel.covered,
        num_rr_sets: r1.num_elements() + r2.num_elements(),
        total_rr_size: r1.total_size() + r2.total_size(),
        edges_examined: edges,
        est_spread,
        lower_bound: 0.0,
        rounds,
        timings,
        metrics: ClusterMetrics::default(),
        timeline: PhaseTimeline::default(),
    }
}

/// One machine's state for distributed OPIM-C: its shards of both
/// collections plus its sampler/RNG.
pub struct DopimWorker<'g> {
    sampler: AnySampler<'g>,
    rng: Pcg64,
    /// Selection collection shard (`R₁,ᵢ`).
    pub r1: CoverageShard,
    /// Validation collection shard (`R₂,ᵢ`).
    pub r2: CoverageShard,
    buf: Vec<u32>,
    visited: VisitTracker,
    marked: VisitTracker,
    edges_examined: u64,
}

impl<'g> DopimWorker<'g> {
    fn new(graph: &'g Graph, config: &ImConfig, machine_id: usize) -> Self {
        DopimWorker {
            sampler: config.sampler.make(graph),
            rng: Pcg64::seed_from_u64(stream_seed(config.seed, machine_id)),
            r1: CoverageShard::new(graph.num_nodes()),
            r2: CoverageShard::new(graph.num_nodes()),
            buf: Vec::new(),
            visited: VisitTracker::new(graph.num_nodes()),
            marked: VisitTracker::new(graph.num_nodes()),
            edges_examined: 0,
        }
    }

    fn generate_pairs(&mut self, count: usize) {
        for _ in 0..count {
            self.edges_examined +=
                self.sampler
                    .sample(&mut self.rng, &mut self.buf, &mut self.visited);
            self.r1.push_element(&self.buf);
            self.edges_examined +=
                self.sampler
                    .sample(&mut self.rng, &mut self.buf, &mut self.visited);
            self.r2.push_element(&self.buf);
        }
    }
}

/// The op vocabulary a distributed-OPIM machine answers: paired sampling
/// into both resident collections, NewGreeDi's coverage phases against
/// `R₁`, and validation coverage of a broadcast seed set against `R₂`.
impl OpExecutor for DopimWorker<'_> {
    fn execute(&mut self, op: &WorkerOp) -> WorkerReply {
        match op {
            WorkerOp::SampleRr { count } => {
                self.generate_pairs(*count as usize);
                WorkerReply::Ok
            }
            WorkerOp::Validate { seeds } => {
                self.r2.prepare();
                WorkerReply::Count(shard_coverage(&self.r2, seeds, &mut self.marked))
            }
            WorkerOp::Stats => WorkerReply::Stats(WorkerStats {
                num_elements: (self.r1.num_elements() + self.r2.num_elements()) as u64,
                total_size: (self.r1.total_size() + self.r2.total_size()) as u64,
                edges_examined: self.edges_examined,
            }),
            other => execute_coverage_op(&mut self.r1, other)
                .unwrap_or_else(|| WorkerReply::Err("op unsupported by OPIM worker".into())),
        }
    }
}

/// Distributed OPIM-C: distributed RIS for both collections, NewGreeDi for
/// selection, a one-count-per-machine gather for validation.
pub fn dopim_c(
    graph: &Graph,
    config: &ImConfig,
    machines: usize,
    network: NetworkModel,
    mode: ExecMode,
) -> Result<ImResult, WireError> {
    assert!(machines >= 1);
    let n = graph.num_nodes();
    let t_max = theta_max(n, config.k, config.epsilon, config.delta);
    let theta_0 = ((t_max as f64 * config.epsilon * config.epsilon * config.k as f64
        / n as f64)
        .ceil() as usize)
        .max(32);
    let i_max = ((t_max as f64 / theta_0 as f64).log2().ceil() as u32).max(1);
    let a = (3.0 * i_max as f64 / config.delta).ln();
    let target = 1.0 - (-1.0f64).exp() - config.epsilon;

    let workers: Vec<DopimWorker> = (0..machines)
        .map(|i| DopimWorker::new(graph, config, i))
        .collect();
    let mut cluster = SimCluster::new(workers, network, mode);
    let mut base_coverage = vec![0u64; n];

    let mut theta = theta_0;
    let mut generated = 0usize;
    let mut best = None;
    for round in 1..=i_max {
        let counts = crate::diimm::split_counts(theta.saturating_sub(generated), machines);
        let replies = cluster.control(phase::RR_SAMPLING, |i| WorkerOp::SampleRr {
            count: counts[i] as u64,
        })?;
        expect_ok(&replies, phase::RR_SAMPLING)?;
        generated = theta;

        let sel = newgreedi_incremental(&mut cluster, config.k, &mut base_coverage)?;
        // Validation: broadcast S_k, gather one covered-count per machine.
        let replies = cluster.op_broadcast_gather(
            phase::SEED_BROADCAST,
            dim_cluster::wire::ids_wire_size(sel.seeds.len()),
            phase::VALIDATION,
            |_| WorkerOp::Validate {
                seeds: sel.seeds.clone(),
            },
        )?;
        let cov2: u64 = expect_counts(&replies, phase::VALIDATION)?.iter().sum();

        let theta1: usize = cluster.workers().iter().map(|w| w.r1.num_elements()).sum();
        let theta2: usize = cluster.workers().iter().map(|w| w.r2.num_elements()).sum();
        let lower = sigma_lower(cov2, theta2, n, a);
        let upper = sigma_upper(sel.covered, theta1, n, a);
        let est = n as f64 * sel.covered as f64 / theta1 as f64;
        let ratio = lower / upper;
        best = Some((sel, est, round));
        if ratio >= target || round == i_max {
            break;
        }
        theta *= 2;
    }

    let (sel, est_spread, rounds) = best.expect("at least one round");
    let theta_total: usize = cluster
        .workers()
        .iter()
        .map(|w| w.r1.num_elements() + w.r2.num_elements())
        .sum();
    let total_rr_size: usize = cluster
        .workers()
        .iter()
        .map(|w| w.r1.total_size() + w.r2.total_size())
        .sum();
    let edges_examined: u64 = cluster.workers().iter().map(|w| w.edges_examined).sum();
    let timeline = cluster.timeline().clone();
    Ok(ImResult {
        seeds: sel.seeds,
        marginals: sel.marginals,
        coverage: sel.covered,
        num_rr_sets: theta_total,
        total_rr_size,
        edges_examined,
        est_spread,
        lower_bound: 0.0,
        rounds,
        timings: Timings::from_timeline(&timeline),
        metrics: timeline.total(),
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dim_diffusion::exact::{exact_opt, exact_spread};
    use dim_diffusion::DiffusionModel;
    use dim_graph::generators::barabasi_albert;
    use dim_graph::{GraphBuilder, WeightModel};

    use crate::config::SamplerKind;
    use crate::imm::imm;

    fn config(k: usize, epsilon: f64, seed: u64) -> ImConfig {
        ImConfig {
            k,
            epsilon,
            delta: 0.1,
            seed,
            sampler: SamplerKind::Standard(DiffusionModel::IndependentCascade),
        }
    }

    #[test]
    fn bounds_are_ordered() {
        // For the same coverage/θ, the lower bound is below the naive
        // estimate and the upper bound above it.
        let (cov, theta, n, a) = (500u64, 1000usize, 100usize, 3.0);
        let naive = n as f64 * cov as f64 / theta as f64;
        assert!(sigma_lower(cov, theta, n, a) < naive);
        assert!(sigma_upper(cov, theta, n, a) > naive);
    }

    #[test]
    fn bounds_tighten_with_theta() {
        let n = 100;
        let a = 3.0;
        // Same empirical coverage fraction at 4x the samples.
        let gap_small = sigma_upper(100, 200, n, a) - sigma_lower(100, 200, n, a);
        let gap_big = sigma_upper(400, 800, n, a) - sigma_lower(400, 800, n, a);
        assert!(gap_big < gap_small);
    }

    #[test]
    fn guarantee_on_small_graph() {
        let mut b = GraphBuilder::new(8);
        for (u, v, p) in [
            (0u32, 1u32, 0.8f32),
            (0, 2, 0.8),
            (0, 3, 0.6),
            (4, 5, 0.7),
            (4, 6, 0.4),
            (6, 7, 0.5),
        ] {
            b.add_weighted_edge(u, v, p);
        }
        let g = b.build(WeightModel::WeightedCascade);
        let cfg = config(2, 0.3, 5);
        let r = opim_c(&g, &cfg);
        let model = DiffusionModel::IndependentCascade;
        let achieved = exact_spread(&g, model, &r.seeds);
        let (_, opt) = exact_opt(&g, model, 2);
        let bound = (1.0 - (-1.0f64).exp() - cfg.epsilon) * opt;
        assert!(achieved >= bound, "σ(S) = {achieved} < {bound}");
    }

    #[test]
    fn uses_fewer_samples_than_imm() {
        // OPIM-C's whole point: early stopping on easy instances.
        let g = barabasi_albert(400, 4, WeightModel::WeightedCascade, 9);
        let cfg = config(10, 0.2, 7);
        let o = opim_c(&g, &cfg);
        let i = imm(&g, &cfg);
        assert!(
            o.num_rr_sets < i.num_rr_sets,
            "OPIM-C {} ≥ IMM {}",
            o.num_rr_sets,
            i.num_rr_sets
        );
        assert_eq!(o.seeds.len(), 10);
    }

    #[test]
    fn distributed_matches_sequential_with_one_machine() {
        let g = barabasi_albert(300, 3, WeightModel::WeightedCascade, 4);
        let cfg = config(5, 0.3, 11);
        let a = opim_c(&g, &cfg);
        let b = dopim_c(&g, &cfg, 1, NetworkModel::zero(), ExecMode::Sequential).unwrap();
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.num_rr_sets, b.num_rr_sets);
        assert_eq!(a.coverage, b.coverage);
    }

    #[test]
    fn distributed_quality_stable_across_machines() {
        let g = barabasi_albert(400, 4, WeightModel::WeightedCascade, 13);
        let cfg = config(8, 0.25, 3);
        let spreads: Vec<f64> = [1usize, 4, 16]
            .iter()
            .map(|&l| {
                dopim_c(&g, &cfg, l, NetworkModel::zero(), ExecMode::Sequential).unwrap().est_spread
            })
            .collect();
        let max = spreads.iter().cloned().fold(f64::MIN, f64::max);
        let min = spreads.iter().cloned().fold(f64::MAX, f64::min);
        assert!((max - min) / max < 0.2, "spreads {spreads:?}");
    }

    #[test]
    fn traffic_cheaper_than_diimm_when_stopping_early() {
        let g = barabasi_albert(400, 4, WeightModel::WeightedCascade, 21);
        let cfg = config(10, 0.2, 5);
        let o = dopim_c(&g, &cfg, 8, NetworkModel::cluster_1gbps(), ExecMode::Sequential).unwrap();
        assert!(o.metrics.bytes_to_master > 0);
        assert!(o.rounds >= 1);
    }
}
